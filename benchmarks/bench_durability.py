"""Durability benchmark: audit-journal overhead per fsync policy.

Pytest usage (alongside the figure benchmarks)::

    PYTHONPATH=src python -m pytest benchmarks/bench_durability.py -q

Standalone usage (CI smoke runs this)::

    PYTHONPATH=src python benchmarks/bench_durability.py [--quick]

Both write ``benchmarks/results/BENCH_durability.json`` — audited
queries/second with no journal and with a write-ahead audit journal under
``fsync='off' | 'batch' | 'always'``, the overhead multiple of each
policy against the no-journal baseline (``'batch'`` must stay within
2x), and one injected-crash/recover/verify cycle.
"""

from __future__ import annotations

import json
import pathlib
import sys

RESULTS_DIR = pathlib.Path(__file__).parent / "results"
RESULT_FILE = RESULTS_DIR / "BENCH_durability.json"


def run(total_requests: int, rounds: int) -> dict:
    from repro.bench.durability import durability_benchmark

    results = durability_benchmark(
        total_requests=total_requests, rounds=rounds
    )
    RESULTS_DIR.mkdir(exist_ok=True)
    RESULT_FILE.write_text(json.dumps(results, indent=2, default=str) + "\n")
    return results


def _summarize(results: dict) -> str:
    lines = [
        f"durability benchmark ({results['total_requests']} audited "
        f"queries, best of {results['rounds']})"
    ]
    for policy, cell in results["policies"].items():
        extra = ""
        if "journal_fsyncs" in cell:
            extra = (
                f", {cell['journal_appends']} appends / "
                f"{cell['journal_fsyncs']} fsyncs"
            )
        lines.append(
            f"  fsync={policy:<7} {cell['qps']:8.0f} qps  "
            f"({cell['overhead_x']:.2f}x baseline{extra})"
        )
    lines.append(
        f"  batch within {results['batch_max_overhead_x']:.1f}x bound: "
        f"{results['batch_within_bound']}"
    )
    recovery = results["recovery"]
    lines.append(
        f"  crash/recover: crashed at request "
        f"{recovery['crashed_at_request']}, replayed "
        f"{recovery['replayed']}/{recovery['journal_intents']} intents, "
        f"{recovery['recovered_audit_rows']} rows recovered "
        f"(expected {recovery['expected_audit_rows']}) -> "
        f"match={recovery['match']}"
    )
    lines.append(f"  written to {RESULT_FILE}")
    return "\n".join(lines)


def _check(results: dict) -> list[str]:
    """Acceptance criteria; returns a list of failure descriptions."""
    failures = []
    if not results["batch_within_bound"]:
        failures.append(
            "fsync='batch' costs "
            f"{results['policies']['batch']['overhead_x']:.2f}x the "
            "no-journal baseline (> "
            f"{results['batch_max_overhead_x']:.1f}x)"
        )
    for policy, cell in results["policies"].items():
        if not cell["zero_lost_firings"]:
            failures.append(
                f"fsync={policy}: audit-log rows diverge from expected"
            )
        if "appends_per_query" in cell \
                and abs(cell["appends_per_query"] - 2.0) > 1e-9:
            failures.append(
                f"fsync={policy}: {cell['appends_per_query']:.2f} journal "
                "appends per query (expected 2: intent + commit)"
            )
    if not results["recovery"]["match"]:
        failures.append(
            "crash/recover cycle did not reproduce the expected audit log"
        )
    return failures


def test_report_durability():
    from repro.bench.durability import QUICK_REQUESTS, QUICK_ROUNDS

    results = run(QUICK_REQUESTS, QUICK_ROUNDS)
    print()
    print(_summarize(results))
    assert not _check(results)


def main(argv: list[str]) -> int:
    from repro.bench.durability import (
        DEFAULT_REQUESTS,
        DEFAULT_ROUNDS,
        QUICK_REQUESTS,
        QUICK_ROUNDS,
    )

    quick = "--quick" in argv
    results = run(
        QUICK_REQUESTS if quick else DEFAULT_REQUESTS,
        QUICK_ROUNDS if quick else DEFAULT_ROUNDS,
    )
    print(_summarize(results))
    failures = _check(results)
    for failure in failures:
        print(f"FAIL: {failure}")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
