"""Cluster scatter-gather benchmark: 1/2/4/8-shard sweep.

Pytest usage (alongside the figure benchmarks)::

    PYTHONPATH=src python -m pytest benchmarks/bench_cluster.py -q

Standalone usage (CI smoke runs ``--quick``)::

    PYTHONPATH=src python benchmarks/bench_cluster.py [--quick]

Both write ``benchmarks/results/BENCH_cluster.json`` — per-shard-count
qps over a scan-heavy armed workload on the TPC-H customer table, gated
on result parity, ACCESSED parity, and zero lost trigger firings against
the 1-shard baseline. The ``modeled_io`` timings use the coordinator's
``simulated_io_us_per_row`` stall (recorded in the JSON); compute-only
timings are reported alongside and stay flat under the GIL. A
``slow_shard`` section records deadline-capped p99 latency with one
hung shard (fail-open degraded reads), gated on the p99 staying under
the deadline-plus-slack bound.
"""

from __future__ import annotations

import json
import pathlib
import sys

RESULTS_DIR = pathlib.Path(__file__).parent / "results"
RESULT_FILE = RESULTS_DIR / "BENCH_cluster.json"


def run(scale_factor: float, repeats: int, shard_counts) -> dict:
    from repro.bench.cluster import cluster_benchmark

    results = cluster_benchmark(
        scale_factor=scale_factor,
        repeats=repeats,
        shard_counts=shard_counts,
    )
    RESULTS_DIR.mkdir(exist_ok=True)
    RESULT_FILE.write_text(json.dumps(results, indent=2, default=str) + "\n")
    return results


def _summarize(results: dict) -> str:
    lines = [
        f"cluster benchmark (SF {results['scale_factor']}, "
        f"{results['customer_rows']} customers, "
        f"{len(results['workload'])} armed queries, "
        f"io stall {results['io_us_per_row']} us/row, "
        f"best of {results['repeats']})"
    ]
    for shards, entry in results["shards"].items():
        lines.append(
            f"  {shards} shard(s): qps {entry['qps']:.1f} "
            f"({entry['speedup_vs_1shard']:.2f}x vs 1-shard), "
            f"compute {entry['compute_only_s'] * 1e3:.1f} ms, "
            f"modeled-io {entry['modeled_io_s'] * 1e3:.1f} ms, "
            f"firings {entry['firings']} "
            f"(lost {entry['lost_firings']})"
        )
    slow = results["slow_shard"]
    lines.append(
        f"  slow shard ({slow['hang_s']:.0f}s hang, "
        f"{slow['deadline_s'] * 1e3:.0f} ms deadline): "
        f"p99 {slow['degraded_p99_ms']:.1f} ms "
        f"(healthy {slow['healthy_p99_ms']:.1f} ms, "
        f"bound {slow['p99_bound_ms']:.0f} ms), "
        f"{slow['deadline_timeouts']} timeouts, "
        f"victim {slow['victim_state']}"
    )
    lines.append(f"  written to {RESULT_FILE}")
    return "\n".join(lines)


def _invariants_ok(results: dict) -> bool:
    return (
        all(
            entry["lost_firings"] == 0
            for entry in results["shards"].values()
        )
        and results["slow_shard"]["p99_bounded"]
    )


def test_report_cluster():
    from repro.bench.cluster import (
        DEFAULT_REPEATS,
        DEFAULT_SCALE_FACTOR,
        SHARD_COUNTS,
    )

    results = run(DEFAULT_SCALE_FACTOR, DEFAULT_REPEATS, SHARD_COUNTS)
    print()
    print(_summarize(results))
    assert _invariants_ok(results)
    # ISSUE acceptance: ≥2x aggregate qps at 4 shards on the scan-heavy
    # armed workload vs the 1-shard baseline, zero lost firings
    assert results["shards"]["4"]["speedup_vs_1shard"] >= 2.0


def main(argv: list[str]) -> int:
    from repro.bench.cluster import (
        DEFAULT_REPEATS,
        DEFAULT_SCALE_FACTOR,
        QUICK_REPEATS,
        QUICK_SCALE_FACTOR,
        QUICK_SHARD_COUNTS,
        SHARD_COUNTS,
    )

    quick = "--quick" in argv
    results = run(
        QUICK_SCALE_FACTOR if quick else DEFAULT_SCALE_FACTOR,
        QUICK_REPEATS if quick else DEFAULT_REPEATS,
        QUICK_SHARD_COUNTS if quick else SHARD_COUNTS,
    )
    print(_summarize(results))
    if not _invariants_ok(results):
        print("FAIL: lost trigger firings or unbounded slow-shard p99")
        return 1
    if not quick and results["shards"]["4"]["speedup_vs_1shard"] < 2.0:
        print("FAIL: <2x qps at 4 shards")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
