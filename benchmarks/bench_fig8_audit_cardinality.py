"""Figure 8: hcn overhead vs audit-expression cardinality (§V-B).

Paper: sweeping the number of audited customers from 1 to ≈1M changes the
overhead barely at all (≈2 % at the top end) because the audit operator's
per-row work is one hash probe regardless of the sensitive-ID set size.
We sweep 1 → every customer at our scale factor.
"""

from repro.bench.figures import (
    FIG8_SELECTIVITY,
    fig8_audit_cardinality,
    fig8_cardinalities,
    micro_parameters,
)
from repro import HEURISTIC_HCN
from repro.tpch import MICRO_BENCHMARK_QUERY

from conftest import report


def test_benchmark_hcn_full_table_audit(fixture, benchmark):
    """Instrumented run with every customer audited (the worst case)."""
    database = fixture.database
    total = fixture.row_counts["customer"]
    database.execute(
        f"CREATE AUDIT EXPRESSION audit_everyone AS SELECT * FROM customer "
        f"WHERE c_custkey <= {total} "
        "FOR SENSITIVE TABLE customer, PARTITION BY c_custkey"
    )
    try:
        parameters = micro_parameters(fixture, FIG8_SELECTIVITY)
        physical = fixture.compile_with_heuristic(
            MICRO_BENCHMARK_QUERY, HEURISTIC_HCN, "hash"
        )

        def run():
            context = database.make_context(parameters)
            for __ in physical.rows(context):
                pass

        benchmark(run)
    finally:
        database.execute("DROP AUDIT EXPRESSION audit_everyone")


def test_report_fig8(fixture, benchmark):
    headers, rows = benchmark.pedantic(
        lambda: fig8_audit_cardinality(fixture), rounds=1, iterations=1
    )
    report(
        "fig8",
        "Figure 8 - HCN Micro-Benchmark: Overheads For Audit Cardinality",
        headers,
        rows,
    )
    assert [row[0] for row in rows] == list(fig8_cardinalities(fixture))
    # paper shape: overhead stays small at every cardinality — flat in the
    # size of the sensitive-ID set (we allow generous noise headroom; the
    # paper reports ≈2 % at one million audited customers)
    for cardinality, __, overhead in rows:
        assert overhead < 35.0, (cardinality, overhead)
