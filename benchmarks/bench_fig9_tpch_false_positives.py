"""Figure 9: false positives for complex TPC-H queries (§V-C).

Paper: the leaf-node heuristic audits essentially the whole segment for
every query (TPC-H queries rarely filter customers directly) — a high
false-positive rate; hcn tracks the offline cardinality closely except on
the top-k query Q10, where it incurs a burst of false positives and the
offline system must verify. Neither heuristic ever under-reports.
"""

from repro import HEURISTIC_HCN, OfflineAuditor
from repro.bench.figures import fig9_tpch_false_positives
from repro.bench.harness import AUDIT_NAME
from repro.tpch import QUERIES, QUERY_PARAMETERS

from conftest import report


def test_benchmark_offline_audit_q10(fixture, benchmark):
    auditor = OfflineAuditor(fixture.database)
    benchmark(
        lambda: auditor.audit(
            QUERIES["Q10"], AUDIT_NAME, QUERY_PARAMETERS["Q10"]
        )
    )


def test_benchmark_hcn_run_q10(fixture, benchmark):
    physical = fixture.compile_with_heuristic(
        QUERIES["Q10"], HEURISTIC_HCN, None
    )
    database = fixture.database

    def run():
        context = database.make_context(QUERY_PARAMETERS["Q10"])
        for __ in physical.rows(context):
            pass

    benchmark(run)


def test_report_fig9(fixture, benchmark):
    headers, rows = benchmark.pedantic(
        lambda: fig9_tpch_false_positives(fixture), rounds=1, iterations=1
    )
    report(
        "fig9",
        "Figure 9 - Evaluating False Positives for Complex Queries",
        headers,
        rows,
    )
    by_query = {row[0]: row for row in rows}
    for name, (__, offline, hcn, leaf) in by_query.items():
        # no false negatives anywhere (Claims 3.5/3.6)
        assert offline <= hcn <= leaf or offline <= hcn, name
        assert offline <= hcn and offline <= leaf, name
        assert hcn <= leaf, name
    # paper shape: Q10's top-k gives hcn a false-positive burst
    __, q10_offline, q10_hcn, __leaf = by_query["Q10"]
    assert q10_hcn > q10_offline
    # paper shape: queries with no predicate on customer make the leaf
    # heuristic audit the entire market segment ("most queries do not have
    # any predicates on the Customer table", §V-C)
    segment_size = len(fixture.audit_view)
    for name in ("Q5", "Q7", "Q8", "Q10", "Q18"):
        assert by_query[name][3] == segment_size, name
