"""Ablation: the offline auditor's sensitive-free subplan caching.

The offline auditor re-executes one plan per candidate tuple; caching the
subtrees that never read the sensitive table (they produce identical rows
on every deletion run) is what makes per-tuple deletion testing practical.
"""

from repro import OfflineAuditor
from repro.bench.figures import offline_cache_ablation

from conftest import report


def test_benchmark_offline_cached(fixture, benchmark):
    from repro.bench.figures import micro_parameters
    from repro.bench.harness import AUDIT_NAME
    from repro.tpch import MICRO_BENCHMARK_QUERY

    # pin the deletion strategy: this ablation measures the per-run
    # subplan cache, which the lineage fast path would bypass entirely
    auditor = OfflineAuditor(fixture.database, use_cache=True,
                             mode="deletion")
    parameters = micro_parameters(fixture, 0.4)
    benchmark(
        lambda: auditor.audit(MICRO_BENCHMARK_QUERY, AUDIT_NAME, parameters)
    )


def test_report_offline_cache_ablation(fixture, benchmark):
    headers, rows = benchmark.pedantic(
        lambda: offline_cache_ablation(fixture), rounds=1, iterations=1
    )
    report(
        "ablation_offline_cache",
        "Ablation - offline auditor with/without sensitive-free subplan "
        "caching",
        headers,
        rows,
    )
    for name, cached_ms, uncached_ms, speedup in rows:
        assert cached_ms <= uncached_ms * 1.1, name  # caching never hurts
