"""Offline-audit benchmark: lineage fast path vs (parallel) deletion runs.

Pytest usage (alongside the figure benchmarks)::

    PYTHONPATH=src python -m pytest benchmarks/bench_offline_lineage.py -q

Standalone usage (CI smoke runs this)::

    PYTHONPATH=src python benchmarks/bench_offline_lineage.py [--quick]

Both write ``benchmarks/results/BENCH_offline.json`` — a machine-readable
record of the TPC-H offline-audit timings under the three strategies
(lineage / serial deletion / pooled deletion), the deletion runs each
avoided or performed, the worker count, and proof that all three agree on
the accessed-ID set (the lineage engine is exact, not approximate).
"""

from __future__ import annotations

import json
import pathlib
import sys

RESULTS_DIR = pathlib.Path(__file__).parent / "results"
RESULT_FILE = RESULTS_DIR / "BENCH_offline.json"


def run(repeats: int) -> dict:
    from repro.bench import BenchmarkFixture
    from repro.bench.offline import (
        DEFAULT_WORKERS,
        offline_lineage_benchmark,
    )

    fixture = BenchmarkFixture()
    results = offline_lineage_benchmark(
        fixture, repeats=repeats, workers=DEFAULT_WORKERS
    )
    RESULTS_DIR.mkdir(exist_ok=True)
    RESULT_FILE.write_text(json.dumps(results, indent=2, default=str) + "\n")
    return results


def _summarize(results: dict) -> str:
    lines = [
        f"offline audit benchmark (SF {results['scale_factor']}, "
        f"best of {results['repeats']}, {results['workers']} workers)"
    ]
    for name, entry in results["queries"].items():
        lines.append(
            f"  {name}: lineage {entry['lineage_s'] * 1e3:.2f} ms "
            f"({entry['speedup_lineage']:.1f}x), "
            f"deletion {entry['deletion_s'] * 1e3:.2f} ms "
            f"({entry['deletion_runs']} runs), "
            f"pooled {entry['deletion_parallel_s'] * 1e3:.2f} ms; "
            f"runs avoided {entry['deletion_runs_avoided']}, "
            f"accessed sets equal: {entry['accessed_sets_equal']}"
        )
    lines.append(f"  written to {RESULT_FILE}")
    return "\n".join(lines)


def test_report_offline_lineage():
    from repro.bench.offline import DEFAULT_REPEATS

    results = run(DEFAULT_REPEATS)
    print()
    print(_summarize(results))
    for entry in results["queries"].values():
        # the lineage strategy is exact: all three strategies agree
        assert entry["accessed_sets_equal"]
        # the fast path really was one instrumented run, not N deletions
        assert entry["lineage_certified"]
        assert entry["lineage_deletion_runs"] == 0
        assert entry["deletion_runs_avoided"] == entry["deletion_runs"]
        assert entry["deletion_runs"] > 0
    # ISSUE acceptance: lineage ≥5x over per-candidate deletion testing
    # on the TPC-H offline workload
    assert results["queries"]["tpch_q3"]["speedup_lineage"] >= 5.0
    assert results["queries"]["micro_join"]["speedup_lineage"] >= 5.0


def main(argv: list[str]) -> int:
    from repro.bench.offline import DEFAULT_REPEATS, QUICK_REPEATS

    repeats = QUICK_REPEATS if "--quick" in argv else DEFAULT_REPEATS
    results = run(repeats)
    print(_summarize(results))
    failures = [
        name
        for name, entry in results["queries"].items()
        if not (entry["accessed_sets_equal"] and entry["lineage_certified"])
    ]
    if failures:
        print(f"FAIL: lineage/deletion strategies diverge for {failures}")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
