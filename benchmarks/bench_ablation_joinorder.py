"""Ablation: greedy join reordering vs FROM-order plans.

Engine-substrate quality check: the reproduction's optimizer takes the
authentic TPC-H FROM clauses (Q8 begins with ``part``) and finds the
key/foreign-key chain on its own. Audit cardinalities are unaffected —
the paper's §III observation that false positives are independent of the
physical plan — which `tests/test_properties.py` asserts property-wise.
"""

from repro.bench.figures import join_reorder_ablation

from conftest import report


def test_report_join_reorder_ablation(fixture, benchmark):
    headers, rows = benchmark.pedantic(
        lambda: join_reorder_ablation(fixture), rounds=1, iterations=1
    )
    report(
        "ablation_joinorder",
        "Ablation - greedy join reordering vs FROM-order plans",
        headers,
        rows,
    )
    assert len(rows) == 4
    # reordering must never be catastrophically worse
    for __, reordered_ms, from_order_ms, __speedup in rows:
        assert reordered_ms < from_order_ms * 3
