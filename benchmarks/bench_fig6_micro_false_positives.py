"""Figure 6: micro-benchmark false positives (§V-A).

Paper: the offline audit cardinality grows with the order-date predicate
selectivity; the leaf-node heuristic's cardinality stays constant at every
segment customer passing the account-balance predicate (≈250K at SF 10),
a large false-positive gap; hcn equals offline for this SJ query
(Theorem 3.7).
"""

from repro import HEURISTIC_LEAF, OfflineAuditor
from repro.bench.figures import (
    fig6_micro_false_positives,
    micro_parameters,
)
from repro.bench.harness import AUDIT_NAME
from repro.tpch import MICRO_BENCHMARK_QUERY

from conftest import report


def test_benchmark_offline_audit(fixture, benchmark):
    """Time one offline (deletion-based) audit of the micro query."""
    auditor = OfflineAuditor(fixture.database)
    parameters = micro_parameters(fixture, 0.4)
    benchmark(
        lambda: auditor.audit(MICRO_BENCHMARK_QUERY, AUDIT_NAME, parameters)
    )


def test_benchmark_leaf_instrumented_run(fixture, benchmark):
    parameters = micro_parameters(fixture, 0.4)
    physical = fixture.compile_with_heuristic(
        MICRO_BENCHMARK_QUERY, HEURISTIC_LEAF, "hash"
    )
    database = fixture.database

    def run():
        context = database.make_context(parameters)
        for __ in physical.rows(context):
            pass

    benchmark(run)


def test_report_fig6(fixture, benchmark):
    headers, rows = benchmark.pedantic(
        lambda: fig6_micro_false_positives(fixture), rounds=1, iterations=1
    )
    report(
        "fig6",
        "Figure 6 - Micro-Benchmark: False Positives "
        "(audit cardinality vs orderdate selectivity)",
        headers,
        rows,
    )
    # paper shape 1: leaf cardinality is constant across the sweep
    leaf_counts = {row[3] for row in rows}
    assert len(leaf_counts) == 1
    # paper shape 2: offline cardinality is non-decreasing in selectivity
    offline_counts = [row[1] for row in rows]
    assert offline_counts == sorted(offline_counts)
    # paper shape 3 (Theorem 3.7): hcn equals offline for this SJ query
    for __, offline, hcn, leaf in rows:
        assert hcn == offline
        assert leaf >= hcn
