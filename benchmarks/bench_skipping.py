"""Data-skipping benchmark: block-sketch audit skipping on vs off.

Pytest usage (alongside the figure benchmarks)::

    PYTHONPATH=src python -m pytest benchmarks/bench_skipping.py -q

Standalone usage (CI smoke runs this)::

    PYTHONPATH=src python benchmarks/bench_skipping.py [--quick]

Both write ``benchmarks/results/BENCH_skipping.json`` — scan-under-audit
and end-to-end times plus probe counts at several sensitive
selectivities, with the ``skipping`` knob on vs off, in online and
offline audit modes. Every timing is gated on the conservative-skip
differential: ACCESSED sets and offline-audit verdicts must be identical
under both knob settings (``--quick`` runs a smaller scale factor and
checks only the differential, not the speedup floor).
"""

from __future__ import annotations

import json
import pathlib
import sys

RESULTS_DIR = pathlib.Path(__file__).parent / "results"
RESULT_FILE = RESULTS_DIR / "BENCH_skipping.json"


def run(scale_factor: float, repeats: int) -> dict:
    from repro.bench.skipping import skipping_benchmark

    results = skipping_benchmark(scale_factor=scale_factor, repeats=repeats)
    RESULTS_DIR.mkdir(exist_ok=True)
    RESULT_FILE.write_text(json.dumps(results, indent=2, default=str) + "\n")
    return results


def _summarize(results: dict) -> str:
    lines = [
        f"data-skipping benchmark (SF {results['scale_factor']}, "
        f"{results['customer_rows']} customers in "
        f"{results['block_count']} blocks, best of {results['repeats']})"
    ]
    for fraction, entry in results["selectivities"].items():
        lines.append(
            f"  sel {fraction} ({entry['sensitive_ids']} ids): "
            f"scan-under-audit {entry['scan_under_audit_off_s'] * 1e3:.2f}"
            f" -> {entry['scan_under_audit_on_s'] * 1e3:.2f} ms "
            f"({entry['scan_under_audit_speedup']:.1f}x), "
            f"probes {entry['probes_off']} -> {entry['probes_on']}, "
            f"query {entry['query_speedup']:.2f}x, "
            f"offline {entry['offline_speedup']:.2f}x, "
            f"accessed equal: {entry['accessed_equal']}, "
            f"verdicts equal: {entry['offline_verdicts_equal']}"
        )
    lines.append(f"  written to {RESULT_FILE}")
    return "\n".join(lines)


def _differential_ok(results: dict) -> bool:
    return all(
        entry["accessed_equal"] and entry["offline_verdicts_equal"]
        for entry in results["selectivities"].values()
    )


def test_report_skipping():
    from repro.bench.skipping import DEFAULT_REPEATS, DEFAULT_SCALE_FACTOR

    results = run(DEFAULT_SCALE_FACTOR, DEFAULT_REPEATS)
    print()
    print(_summarize(results))
    assert _differential_ok(results)
    for entry in results["selectivities"].values():
        # skipping never probes more than the full pass
        assert entry["probes_on"] <= entry["probes_off"]
    # ISSUE acceptance: ≥3x scan-under-audit speedup at ≤1% sensitive
    # selectivity (with identical ACCESSED sets and verdicts, above)
    low_selectivity = [
        entry
        for fraction, entry in results["selectivities"].items()
        if float(fraction) <= 0.01
    ]
    assert low_selectivity
    assert max(
        entry["scan_under_audit_speedup"] for entry in low_selectivity
    ) >= 3.0


def main(argv: list[str]) -> int:
    from repro.bench.skipping import (
        DEFAULT_REPEATS,
        DEFAULT_SCALE_FACTOR,
        QUICK_REPEATS,
        QUICK_SCALE_FACTOR,
    )

    quick = "--quick" in argv
    results = run(
        QUICK_SCALE_FACTOR if quick else DEFAULT_SCALE_FACTOR,
        QUICK_REPEATS if quick else DEFAULT_REPEATS,
    )
    print(_summarize(results))
    if not _differential_ok(results):
        print("FAIL: skipping on/off diverged (ACCESSED or verdicts)")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
