"""Cluster chaos differential: flaky → slow → dead → rejoin.

Pytest usage (alongside the figure benchmarks)::

    PYTHONPATH=src python -m pytest benchmarks/bench_cluster_chaos.py -q

Standalone usage (CI smoke runs this directly)::

    PYTHONPATH=src python benchmarks/bench_cluster_chaos.py

Writes ``benchmarks/results/BENCH_cluster_chaos.json``. The differential
drives the same armed workload through a fault-injected cluster and a
serial ground truth across four fault phases and fails (non-zero exit)
on any contract violation: a fail-closed cluster returning partial
results, a degraded read without a recorded audit gap, DML accepted for
a quarantined owner, or a lost/misattributed firing after rejoin.
"""

from __future__ import annotations

import json
import pathlib
import sys

RESULTS_DIR = pathlib.Path(__file__).parent / "results"
RESULT_FILE = RESULTS_DIR / "BENCH_cluster_chaos.json"


def run() -> dict:
    from repro.bench.chaos import chaos_differential

    report = chaos_differential()
    RESULTS_DIR.mkdir(exist_ok=True)
    RESULT_FILE.write_text(json.dumps(report, indent=2, default=str) + "\n")
    return report


def _summarize(report: dict) -> str:
    phases = report["phases"]
    lines = [
        f"cluster chaos differential ({report['shards']} shards, "
        f"victim {report['victim']}, deadline "
        f"{report['deadline_s'] * 1e3:.0f} ms, hang {report['hang_s']:.0f}s)",
        f"  flaky: {phases['flaky']['retries']} retries, full parity, "
        f"{phases['flaky']['audit_rows']} audit rows",
        f"  slow: {phases['slow']['fail_closed_refusals']} fail-closed "
        f"refusals (never partial), {phases['slow']['degraded_queries']} "
        f"degraded reads / {phases['slow']['gaps']} gaps, victim "
        f"{phases['slow']['victim_state']}",
        f"  dead: quarantined, owner DML refused, "
        f"{phases['dead']['gaps']} gaps",
        f"  rejoin: {phases['rejoin']['replayed']} replayed / "
        f"{phases['rejoin']['skipped_applied']} already applied, "
        f"{phases['rejoin']['post_rejoin_firings']} post-rejoin firings, "
        f"zero lost",
    ]
    for violation in report["violations"]:
        lines.append(f"  VIOLATION: {violation}")
    lines.append(f"  written to {RESULT_FILE}")
    return "\n".join(lines)


def test_report_cluster_chaos():
    report = run()
    print()
    print(_summarize(report))
    assert report["ok"], report["violations"]


def main() -> int:
    report = run()
    print(_summarize(report))
    return 0 if report["ok"] else 1


if __name__ == "__main__":
    sys.exit(main())
