"""Ablation: Bloom-filter probe structure for the audit operator (§IV-A.2).

Paper: "We assume that the sensitiveIDs can fit in memory. If they cannot,
standard optimizations such as bloom filters can be used instead." The
counting Bloom probe keeps the one-sided guarantee (extra false positives
possible, false negatives impossible) at constant small memory.
"""

from repro.bench.figures import bloom_probe_ablation

from conftest import report


def test_report_bloom_ablation(fixture, benchmark):
    headers, rows = benchmark.pedantic(
        lambda: bloom_probe_ablation(fixture), rounds=1, iterations=1
    )
    report(
        "ablation_bloom",
        "Ablation - audit probe structure: exact ID set vs counting "
        "Bloom filter",
        headers,
        rows,
    )
    by_probe = {row[0]: row for row in rows}
    exact = by_probe["set"]
    bloom = by_probe["bloom"]
    # one-sided: the Bloom probe never under-reports
    assert bloom[2] >= exact[2]
    assert exact[3] == 0
