"""Ablation: Bloom-filter probe structure for the audit operator (§IV-A.2).

Paper: "We assume that the sensitiveIDs can fit in memory. If they cannot,
standard optimizations such as bloom filters can be used instead." The
counting Bloom probe keeps the one-sided guarantee (extra false positives
possible, false negatives impossible) at constant small memory.

Pytest usage (alongside the figure benchmarks)::

    PYTHONPATH=src python -m pytest benchmarks/bench_ablation_bloom.py -q

Standalone usage::

    PYTHONPATH=src python benchmarks/bench_ablation_bloom.py

Both write ``benchmarks/results/BENCH_ablation_bloom.json`` — probe
memory, accessed-ID counts, and extra false positives per probe
structure, plus the *measured* false-positive rates of the ID view's
Bloom probe and of the per-block sensitive-ID sketches (the data-skipping
layer reuses the same counting Bloom filter; both must stay near their
configured targets for skipping to pay off).
"""

from __future__ import annotations

import json
import pathlib
import sys

RESULTS_DIR = pathlib.Path(__file__).parent / "results"
RESULT_FILE = RESULTS_DIR / "BENCH_ablation_bloom.json"

#: non-member probes per false-positive-rate measurement
FP_TRIALS = 4000


def _view_fp_rate(database, audit_name: str) -> float:
    """Measured FP rate of a bloom-probe IdView over non-member IDs."""
    from repro.audit.idview import IdView

    expression = database.audit_manager.expression(audit_name)
    view = IdView(
        expression,
        database.catalog,
        database._materialize_ids,
        probe_structure="bloom",
    )
    members = view.ids()
    upper = max(members) if members else 0
    non_members = range(upper + 1, upper + 1 + FP_TRIALS)
    bloom = view.live_id_set
    positives = sum(1 for value in non_members if value in bloom)
    return positives / FP_TRIALS


def _sketch_fp_rate(database, table_name: str, column: str) -> float:
    """Measured FP rate of the per-block sensitive-ID sketches.

    Probes each block's sketch with IDs the block provably does not hold
    (values of *other* blocks plus out-of-domain keys), bypassing the
    zone-range shortcut so the Bloom layer itself is what answers.
    """
    table = database.catalog.table(table_name)
    position = table.schema.position_of(column)
    assert position in table.sketch_positions, (
        f"{column} is not sketched; create the audit expression first"
    )
    trials = positives = 0
    blocks = table.blocks()
    all_values = {
        row[position] for block in blocks for row in block.rows_snapshot()
    }
    per_block = max(1, FP_TRIALS // max(1, len(blocks)))
    upper = max(all_values) if all_values else 0
    for block in blocks:
        summary = table.fresh_summary(block)
        sketch = summary.sketches.get(position)
        if sketch is None:
            continue
        held = {row[position] for row in block.rows_snapshot()}
        candidates = [v for v in all_values - held if v is not None]
        candidates += list(range(upper + 1, upper + 1 + per_block))
        for value in candidates[:per_block]:
            trials += 1
            if value in sketch:
                positives += 1
    return positives / trials if trials else 0.0


def run() -> dict:
    from repro.bench import BenchmarkFixture
    from repro.bench.figures import bloom_probe_ablation
    from repro.bench.harness import AUDIT_NAME
    from repro.storage.blocks import SKETCH_FALSE_POSITIVE_RATE

    fixture = BenchmarkFixture()
    database = fixture.database
    headers, rows = bloom_probe_ablation(fixture)
    probes = {
        row[0]: dict(zip(headers[1:], row[1:])) for row in rows
    }
    results = {
        "benchmark": "ablation_bloom",
        "scale_factor": fixture.scale_factor,
        "audit_expression": AUDIT_NAME,
        "probes": probes,
        "view_bloom_fp_rate": _view_fp_rate(database, AUDIT_NAME),
        "sketch_fp_rate": _sketch_fp_rate(
            database, "customer", "c_custkey"
        ),
        "sketch_fp_target": SKETCH_FALSE_POSITIVE_RATE,
        "fp_trials": FP_TRIALS,
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    RESULT_FILE.write_text(json.dumps(results, indent=2, default=str) + "\n")
    return results


def _summarize(results: dict) -> str:
    lines = [
        f"bloom probe ablation (SF {results['scale_factor']})"
    ]
    for probe, entry in results["probes"].items():
        lines.append(
            f"  {probe}: {entry['memory_bytes']} bytes, "
            f"{entry['accessed_ids']} accessed, "
            f"{entry['extra_false_positives']} extra false positives"
        )
    lines.append(
        f"  measured FP rates: id-view bloom "
        f"{results['view_bloom_fp_rate']:.4f}, block sketch "
        f"{results['sketch_fp_rate']:.4f} "
        f"(target {results['sketch_fp_target']})"
    )
    lines.append(f"  written to {RESULT_FILE}")
    return "\n".join(lines)


def test_report_bloom_ablation():
    results = run()
    print()
    print(_summarize(results))
    exact = results["probes"]["set"]
    bloom = results["probes"]["bloom"]
    # one-sided: the Bloom probe never under-reports
    assert bloom["accessed_ids"] >= exact["accessed_ids"]
    assert exact["extra_false_positives"] == 0
    # both Bloom layers stay within ~5x of the 1% configured target
    # (generous: FP rate is a random variable over a few thousand trials)
    assert results["view_bloom_fp_rate"] <= 0.05
    assert results["sketch_fp_rate"] <= 0.05


def main(argv: list[str]) -> int:
    results = run()
    print(_summarize(results))
    if results["probes"]["set"]["extra_false_positives"] != 0:
        print("FAIL: exact probe reported false positives")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
