"""Figure 7: micro-benchmark overheads vs predicate selectivity (§V-A).

Paper: the leaf-node heuristic's overhead grows with the order-date
selectivity (up to ≈10 %) because its audit operator sits inside the
per-order customer access; hcn checks at the join output and stays low
(the paper calls it "more robust to the selectivity of the predicate").
The index nested-loop plan family reproduces that mechanism.
"""

from repro import HEURISTIC_HCN, HEURISTIC_LEAF
from repro.bench.figures import fig7_micro_overheads, micro_parameters
from repro.tpch import MICRO_BENCHMARK_QUERY

from conftest import report


def _timed_run(fixture, heuristic, benchmark):
    parameters = micro_parameters(fixture, 0.4)
    physical = fixture.compile_with_heuristic(
        MICRO_BENCHMARK_QUERY, heuristic, "index-nl"
    )
    database = fixture.database

    def run():
        context = database.make_context(parameters)
        for __ in physical.rows(context):
            pass

    benchmark(run)


def test_benchmark_micro_baseline(fixture, benchmark):
    _timed_run(fixture, None, benchmark)


def test_benchmark_micro_leaf(fixture, benchmark):
    _timed_run(fixture, HEURISTIC_LEAF, benchmark)


def test_benchmark_micro_hcn(fixture, benchmark):
    _timed_run(fixture, HEURISTIC_HCN, benchmark)


def test_report_fig7(fixture, benchmark):
    headers, rows = benchmark.pedantic(
        lambda: fig7_micro_overheads(fixture), rounds=1, iterations=1
    )
    report(
        "fig7",
        "Figure 7 - Micro-Benchmark: Overheads For Predicate Selectivity "
        "(index nested-loop plan)",
        headers,
        rows,
    )
    # paper shape: averaged over the sweep, leaf costs more than hcn
    leaf_mean = sum(row[2] for row in rows) / len(rows)
    hcn_mean = sum(row[3] for row in rows) / len(rows)
    assert leaf_mean >= hcn_mean
