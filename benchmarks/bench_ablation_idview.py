"""Ablation: compiled ID views vs evaluating the audit predicate (§IV-A.1).

The paper compiles each audit expression into a materialized view of
partition-by IDs so the physical audit operator does an O(1) hash probe
per row. The alternative — evaluating the audit expression's predicate on
every passing row — is what this ablation prices.
"""

from repro.bench.figures import idview_probe_ablation

from conftest import report


def test_benchmark_id_probe(fixture, benchmark):
    view = fixture.audit_view
    table = fixture.database.catalog.table("customer")
    key_slot = table.schema.position_of("c_custkey")
    rows = list(table.rows())
    probe_set = view.live_id_set

    def probe_all():
        hits = 0
        for row in rows:
            if row[key_slot] in probe_set:
                hits += 1
        return hits

    benchmark(probe_all)


def test_report_idview_ablation(fixture, benchmark):
    headers, rows = benchmark.pedantic(
        lambda: idview_probe_ablation(fixture), rounds=1, iterations=1
    )
    report(
        "ablation_idview",
        "Ablation - audit probe: compiled ID view vs full predicate "
        "evaluation",
        headers,
        rows,
    )
    timings = {row[0]: row[2] for row in rows}
    # the compiled view must beat predicate evaluation comfortably
    assert timings["compiled_id_view"] < timings["full_predicate"]
