"""Concurrent serving benchmark: threads × trigger mode × auditing.

Pytest usage (alongside the figure benchmarks)::

    PYTHONPATH=src python -m pytest benchmarks/bench_concurrency.py -q

Standalone usage (CI smoke runs this)::

    PYTHONPATH=src python benchmarks/bench_concurrency.py [--quick]

Both write ``benchmarks/results/BENCH_concurrency.json`` — queries/second
and p50/p95 execute latency at 1/2/4/8 serving threads for unaudited,
synchronously audited, and asynchronously audited traffic, plus the
zero-lost-firings proof (audit-log row counts vs the analytic expectation
after ``drain_triggers``) and the 8-thread mixed SELECT/DML stress parity
check against a serial replay.
"""

from __future__ import annotations

import json
import pathlib
import sys

RESULTS_DIR = pathlib.Path(__file__).parent / "results"
RESULT_FILE = RESULTS_DIR / "BENCH_concurrency.json"


def run(total_requests: int, rounds: int) -> dict:
    from repro.bench.concurrency import concurrency_benchmark, stress_parity

    results = concurrency_benchmark(
        total_requests=total_requests, rounds=rounds
    )
    results["stress"] = stress_parity()
    RESULTS_DIR.mkdir(exist_ok=True)
    RESULT_FILE.write_text(json.dumps(results, indent=2, default=str) + "\n")
    return results


def _summarize(results: dict) -> str:
    lines = [
        f"concurrency benchmark ({results['total_requests']} requests, "
        f"{results['simulated_stall_ms']:.1f} ms simulated stall, "
        f"best of {results['rounds']})"
    ]
    for mode, cells in results["modes"].items():
        parts = []
        for threads, cell in cells.items():
            parts.append(
                f"{threads}t {cell['qps']:.0f} qps "
                f"(p50 {cell['p50_ms']:.2f} ms)"
            )
        lines.append(f"  {mode:<14} " + " | ".join(parts))
    lines.append(
        f"  scaling 4 threads vs 1 (audited, async): "
        f"{results['scaling_async_4v1']:.2f}x"
    )
    lines.append(
        f"  async p50 < sync p50 per thread count: "
        f"{results['async_p50_beats_sync']}"
    )
    lines.append(
        f"  zero lost firings: {results['zero_lost_firings']}; "
        f"pipeline {results['pipeline']}"
    )
    stress = results["stress"]
    lines.append(
        f"  stress parity ({stress['threads']} threads, "
        f"{stress['operations']} mixed ops): concurrent "
        f"{stress['concurrent_audit_rows']} rows vs serial "
        f"{stress['serial_audit_rows']} -> match={stress['match']}"
    )
    lines.append(f"  written to {RESULT_FILE}")
    return "\n".join(lines)


def _check(results: dict) -> list[str]:
    """Acceptance criteria; returns a list of failure descriptions."""
    failures = []
    if results["scaling_async_4v1"] < 2.5:
        failures.append(
            "audited async qps at 4 threads is only "
            f"{results['scaling_async_4v1']:.2f}x the 1-thread qps (< 2.5x)"
        )
    if not results["zero_lost_firings"]:
        failures.append("audit-log rows diverge from expected disclosures")
    if not any(results["async_p50_beats_sync"].values()):
        failures.append("async p50 never beats sync p50")
    if not results["stress"]["match"]:
        failures.append(
            "stress: concurrent audit-log count != serial replay count"
        )
    if results["stress"]["trigger_errors"]:
        failures.append("stress: async trigger firings raised errors")
    return failures


def test_report_concurrency():
    from repro.bench.concurrency import DEFAULT_REQUESTS, DEFAULT_ROUNDS

    results = run(DEFAULT_REQUESTS, DEFAULT_ROUNDS)
    print()
    print(_summarize(results))
    assert not _check(results)


def main(argv: list[str]) -> int:
    from repro.bench.concurrency import (
        DEFAULT_REQUESTS,
        DEFAULT_ROUNDS,
        QUICK_REQUESTS,
        QUICK_ROUNDS,
    )

    quick = "--quick" in argv
    results = run(
        QUICK_REQUESTS if quick else DEFAULT_REQUESTS,
        QUICK_ROUNDS if quick else DEFAULT_ROUNDS,
    )
    print(_summarize(results))
    failures = _check(results)
    for failure in failures:
        print(f"FAIL: {failure}")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
