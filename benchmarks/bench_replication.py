"""Replication benchmark: read scaling, lag, and the audit differential.

Pytest usage (alongside the figure benchmarks)::

    PYTHONPATH=src python -m pytest benchmarks/bench_replication.py -q

Standalone usage (CI smoke runs this)::

    PYTHONPATH=src python benchmarks/bench_replication.py [--quick]

Both write ``benchmarks/results/BENCH_replication.json`` — read qps at
0/1/2/4 replicas under a concurrent write stream, replication lag during
a write burst plus the catch-up time, and the audit differential: a
seeded workload spread over two replicas must leave the primary's audit
log identical to the same workload run serially on a single node.
"""

from __future__ import annotations

import json
import pathlib
import sys

RESULTS_DIR = pathlib.Path(__file__).parent / "results"
RESULT_FILE = RESULTS_DIR / "BENCH_replication.json"


def run(quick: bool) -> dict:
    from repro.bench.replication import (
        DEFAULT_AUDIT_QUERIES,
        DEFAULT_READS,
        DEFAULT_WRITES,
        QUICK_AUDIT_QUERIES,
        QUICK_READS,
        QUICK_SATURATED_WINDOW_S,
        QUICK_WRITES,
        SATURATED_WINDOW_S,
        replication_benchmark,
    )

    results = replication_benchmark(
        total_reads=QUICK_READS if quick else DEFAULT_READS,
        total_writes=QUICK_WRITES if quick else DEFAULT_WRITES,
        audit_queries=QUICK_AUDIT_QUERIES if quick else DEFAULT_AUDIT_QUERIES,
        saturated_window_s=(
            QUICK_SATURATED_WINDOW_S if quick else SATURATED_WINDOW_S
        ),
    )
    RESULTS_DIR.mkdir(exist_ok=True)
    RESULT_FILE.write_text(json.dumps(results, indent=2, default=str) + "\n")
    return results


def _summarize(results: dict) -> str:
    scaling = results["read_scaling"]
    lines = [
        f"replication benchmark ({scaling['reads']} reads, "
        f"{scaling['readers']} readers, concurrent write stream)"
    ]
    for count in scaling["replica_counts"]:
        cell = scaling["cells"][str(count)]
        label = "primary-only" if count == 0 else f"{count} replica(s)"
        speedup = scaling["speedup_vs_primary_only"].get(str(count))
        tail = scaling["p99_improvement_vs_primary_only"].get(str(count))
        extra = (
            f"  ({speedup:.2f}x qps, {tail:.1f}x lower p99)"
            if speedup is not None else ""
        )
        lines.append(
            f"  {label:<13} {cell['qps']:8.0f} read qps  "
            f"(p99 {cell['p99_ms']:.2f} ms, "
            f"{cell['writes_during']} writes landed){extra}"
        )
    saturated = scaling["saturated"]
    lines.append(
        f"  saturated writer ({saturated['window_s']:.1f}s window): "
        f"primary-only {saturated['primary_only']['qps']:.0f} read qps "
        f"vs 2 replicas {saturated['two_replicas']['qps']:.0f} — "
        f"{saturated['speedup']:.0f}x"
    )
    lag = results["lag"]
    lines.append(
        f"  lag: burst of {lag['writes']} writes in "
        f"{lag['write_wall_s'] * 1000:.0f} ms, max lag "
        f"{lag['max_lag_records']} records, caught up in "
        f"{lag['catch_up_s'] * 1000:.0f} ms"
    )
    diff = results["audit_differential"]
    lines.append(
        f"  audit differential: {diff['queries']} queries over "
        f"{diff['replicas']} replicas → {diff['actual_firings']} firings "
        f"vs {diff['expected_firings']} serial — identical: "
        f"{diff['identical_to_serial']}"
    )
    lines.append(f"  written to {RESULT_FILE}")
    return "\n".join(lines)


def _check(results: dict) -> list[str]:
    """Acceptance criteria; returns a list of failure descriptions."""
    failures = []
    scaling = results["read_scaling"]
    for count, cell in scaling["cells"].items():
        if cell["errors"] or cell["reads"] != cell["expected"]:
            failures.append(
                f"read_scaling@{count}: dropped reads or reader errors"
            )
        if cell.get("stalled"):
            failures.append(f"read_scaling@{count}: a replica stalled")
    saturated = scaling["saturated"]
    for label in ("primary_only", "two_replicas"):
        if saturated[label]["errors"]:
            failures.append(f"saturated {label}: reader errors")
    if saturated["speedup"] < 2.0:
        failures.append(
            "saturated: replicas did not beat the starved primary "
            f"({saturated['speedup']:.2f}x < 2x)"
        )
    lag = results["lag"]
    if not lag["caught_up"] or lag["final_lag_records"] != 0:
        failures.append("lag: replica failed to catch up after the burst")
    if lag["stalled"]:
        failures.append("lag: replica stalled during the burst")
    diff = results["audit_differential"]
    if not diff["identical_to_serial"]:
        failures.append(
            "audit differential: replicated log != serial ground truth "
            f"({diff['actual_firings']} vs {diff['expected_firings']})"
        )
    if diff["replica_stalled"]:
        failures.append("audit differential: a replica stalled")
    return failures


def test_report_replication():
    results = run(quick=True)
    print()
    print(_summarize(results))
    assert not _check(results)


def main(argv: list[str]) -> int:
    results = run(quick="--quick" in argv)
    print(_summarize(results))
    failures = _check(results)
    for failure in failures:
        print(f"FAIL: {failure}")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
