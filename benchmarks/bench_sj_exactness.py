"""Ablation X7: Theorem 3.7 — hcn equals offline on select-join queries.

Sweeps the micro join query across the selectivity range and checks the
hcn audit set equals the deletion-based ground truth exactly (zero false
positives, zero false negatives).
"""

from repro import OfflineAuditor
from repro.bench.figures import micro_parameters, sj_exactness
from repro.bench.harness import AUDIT_NAME
from repro.tpch import MICRO_BENCHMARK_QUERY

from conftest import report


def test_benchmark_offline_sj(fixture, benchmark):
    auditor = OfflineAuditor(fixture.database)
    parameters = micro_parameters(fixture, 0.2)
    benchmark(
        lambda: auditor.audit(MICRO_BENCHMARK_QUERY, AUDIT_NAME, parameters)
    )


def test_report_sj_exactness(fixture, benchmark):
    headers, rows = benchmark.pedantic(
        lambda: sj_exactness(fixture), rounds=1, iterations=1
    )
    report(
        "sj_exactness",
        "Theorem 3.7 check - hcn vs offline on select-join queries",
        headers,
        rows,
    )
    for __, offline, hcn, false_positives in rows:
        assert hcn == offline
        assert false_positives == 0
