"""Shared fixtures and reporting helpers for the benchmark suite.

Every figure of the paper's evaluation (§V) has one file here. Each file
contains pytest-benchmark timings of the underlying operations plus a
``test_report_*`` that regenerates the figure's rows, prints them, and
writes them to ``benchmarks/results/<name>.txt``.

Scale is controlled by the ``REPRO_BENCH_SF`` environment variable
(default 0.005 ≈ 750 customers). The paper used TPC-H SF 10; all reported
quantities are cardinalities or relative overheads, so the shapes carry.

Overhead measurements are best-of-N with interleaved variants and GC
disabled, but they still assume an otherwise idle machine — concurrent
load inflates the relative-overhead columns.
"""

from __future__ import annotations

import pathlib

import pytest

from repro.bench import BenchmarkFixture, render_table

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def fixture() -> BenchmarkFixture:
    return BenchmarkFixture()


def report(name: str, title: str, headers, rows) -> str:
    """Render a figure table, persist it, and return the text."""
    text = render_table(title, headers, rows)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
    print()
    print(text)
    return text
