"""Columnar execution benchmark: row vs batch vs columnar.

Pytest usage (alongside the figure benchmarks)::

    PYTHONPATH=src python -m pytest benchmarks/bench_columnar.py -q

Standalone usage (CI smoke runs this)::

    PYTHONPATH=src python benchmarks/bench_columnar.py [--quick]

Both write ``benchmarks/results/BENCH_columnar.json`` — the three-mode ×
armed/unarmed timing grid over scan-heavy queries, proof that results,
ACCESSED sets, and audit probe counts are identical across modes for
every cell, and the ``__slots__`` allocation micro-benchmark note. The
standalone entry point exits non-zero when any cell's three-mode
comparison diverges, which is the CI differential gate.
"""

from __future__ import annotations

import json
import pathlib
import sys

RESULTS_DIR = pathlib.Path(__file__).parent / "results"
RESULT_FILE = RESULTS_DIR / "BENCH_columnar.json"


def run(repeats: int) -> dict:
    from repro.bench import BenchmarkFixture
    from repro.bench.columnar import columnar_benchmark

    fixture = BenchmarkFixture()
    results = columnar_benchmark(fixture, repeats=repeats)
    RESULTS_DIR.mkdir(exist_ok=True)
    RESULT_FILE.write_text(json.dumps(results, indent=2, default=str) + "\n")
    return results


def _summarize(results: dict) -> str:
    lines = [f"columnar benchmark (SF {results['scale_factor']}, "
             f"best of {results['repeats']})"]
    for name, entry in results["queries"].items():
        for cell in ("armed", "unarmed"):
            data = entry[cell]
            lines.append(
                f"  {name}/{cell}: row {data['row_s'] * 1e3:.2f} ms, "
                f"batch {data['batch_s'] * 1e3:.2f} ms, "
                f"columnar {data['columnar_s'] * 1e3:.2f} ms "
                f"({data['speedup_columnar_vs_batch']:.2f}x vs batch), "
                f"artifacts equal: {data['artifacts_equal']}"
            )
    note = results["slots_microbenchmark"]
    lines.append(
        f"  __slots__: {note['slotted_alloc_ns']:.0f} ns/alloc vs "
        f"{note['dict_alloc_ns']:.0f} ns with __dict__, "
        f"{note['bytes_saved_per_instance']} bytes saved per batch"
    )
    lines.append(f"  written to {RESULT_FILE}")
    return "\n".join(lines)


def _speedup_gated(results: dict) -> bool:
    from repro.bench.columnar import SPEEDUP_GATE_SCALE_FACTOR

    return results["scale_factor"] >= SPEEDUP_GATE_SCALE_FACTOR


def test_report_columnar():
    from repro.bench.columnar import DEFAULT_REPEATS

    results = run(DEFAULT_REPEATS)
    print()
    print(_summarize(results))
    # columnar mode is a pure optimization: identical results, ACCESSED
    # sets, and probe counts in every cell of the grid
    assert results["artifacts_equal_all"]
    if _speedup_gated(results):
        # ISSUE acceptance: ≥2x over batch on scan-heavy armed queries
        for name in results["scan_heavy"]:
            cell = results["queries"][name]["armed"]
            assert cell["speedup_columnar_vs_batch"] >= 2.0, name


def main(argv: list[str]) -> int:
    from repro.bench.columnar import DEFAULT_REPEATS, QUICK_REPEATS

    repeats = QUICK_REPEATS if "--quick" in argv else DEFAULT_REPEATS
    results = run(repeats)
    print(_summarize(results))
    if not results["artifacts_equal_all"]:
        diverged = [
            f"{name}/{cell}"
            for name, entry in results["queries"].items()
            for cell in ("armed", "unarmed")
            if not entry[cell]["artifacts_equal"]
        ]
        print(f"FAIL: three-mode artifacts diverge for {diverged}")
        return 1
    if _speedup_gated(results):
        slow = [
            name
            for name in results["scan_heavy"]
            if results["queries"][name]["armed"][
                "speedup_columnar_vs_batch"] < 2.0
        ]
        if slow:
            print(f"FAIL: columnar speedup below 2x on {slow}")
            return 1
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
