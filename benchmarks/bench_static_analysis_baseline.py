"""§VI / Example 6.1: the Oracle-FGA-style static-analysis baseline.

Paper: static analysis "would produce false positives for almost all of
the queries (with the exception of Query 3)" because TPC-H queries place
no analyzable predicates on the customer table; the execution-based audit
operator does not share those false positives. The Example 6.1 pair shows
the mechanism: a predicate on a *different* column defeats region
reasoning.
"""

from repro import StaticAnalysisAuditor
from repro.bench.figures import static_analysis_comparison
from repro.bench.harness import AUDIT_NAME
from repro.tpch import QUERIES, QUERY_PARAMETERS

from conftest import report


def test_benchmark_static_analysis(fixture, benchmark):
    analyzer = StaticAnalysisAuditor(fixture.database)
    benchmark(
        lambda: analyzer.flags_query(
            QUERIES["Q8"], AUDIT_NAME, QUERY_PARAMETERS["Q8"]
        )
    )


def test_report_static_analysis(fixture, benchmark):
    headers, rows = benchmark.pedantic(
        lambda: static_analysis_comparison(fixture), rounds=1, iterations=1
    )
    report(
        "static_analysis",
        "Section VI - Static analysis (FGA) vs audit operators vs offline",
        headers,
        rows,
    )
    by_query = {row[0]: row for row in rows}
    # FGA flags every standard query (they reference customer and carry
    # no provably-disjoint predicate)
    for name in ("Q5", "Q7", "Q8", "Q10", "Q18", "Q22"):
        assert by_query[name][1] == "yes", name
    # the Q3 variant against a different market segment is the paper's
    # "except Query 3" case: FGA proves disjointness and does not flag
    q3_variant = next(row for row in rows if row[0].startswith("Q3("))
    assert q3_variant[1] == "no"
    assert q3_variant[3] == 0
