"""Pipeline benchmark: row vs batch vs batch + plan cache.

Pytest usage (alongside the figure benchmarks)::

    PYTHONPATH=src python -m pytest benchmarks/bench_pipeline.py -q

Standalone usage (CI smoke runs this)::

    PYTHONPATH=src python benchmarks/bench_pipeline.py [--quick]

Both write ``benchmarks/results/BENCH_pipeline.json`` — a machine-readable
record of the micro-join and TPC-H Q3 timings under the three execution
pipelines, their speedups over the row-at-a-time seed path, and proof that
the audit artifacts (ACCESSED sets, probe counts) are identical across
modes.
"""

from __future__ import annotations

import json
import pathlib
import sys

RESULTS_DIR = pathlib.Path(__file__).parent / "results"
RESULT_FILE = RESULTS_DIR / "BENCH_pipeline.json"


def run(repeats: int) -> dict:
    from repro.bench import BenchmarkFixture
    from repro.bench.pipeline import pipeline_benchmark

    fixture = BenchmarkFixture()
    results = pipeline_benchmark(fixture, repeats=repeats)
    RESULTS_DIR.mkdir(exist_ok=True)
    RESULT_FILE.write_text(json.dumps(results, indent=2, default=str) + "\n")
    return results


def _summarize(results: dict) -> str:
    lines = [f"pipeline benchmark (SF {results['scale_factor']}, "
             f"best of {results['repeats']})"]
    for name, entry in results["queries"].items():
        lines.append(
            f"  {name}: row {entry['row_s'] * 1e3:.2f} ms, "
            f"batch {entry['batch_s'] * 1e3:.2f} ms, "
            f"batch+cache {entry['batch_cached_s'] * 1e3:.2f} ms "
            f"({entry['speedup_batch_cached']:.2f}x), "
            f"audit artifacts equal: {entry['audit_artifacts_equal']}"
        )
    lines.append(f"  plan cache: {results['plan_cache']}")
    lines.append(f"  written to {RESULT_FILE}")
    return "\n".join(lines)


def test_report_pipeline():
    from repro.bench.pipeline import DEFAULT_REPEATS

    results = run(DEFAULT_REPEATS)
    print()
    print(_summarize(results))
    for entry in results["queries"].values():
        # batch mode is a pure optimization: identical audit semantics
        assert entry["audit_artifacts_equal"]
        # the warm variant hit the plan cache on every timed call
        assert entry["warm_cache_hits"] >= results["repeats"]
    # ISSUE acceptance: micro-join ≥2x over the seed row-at-a-time path
    assert results["queries"]["micro_join"]["speedup_batch_cached"] >= 2.0


def main(argv: list[str]) -> int:
    from repro.bench.pipeline import DEFAULT_REPEATS, QUICK_REPEATS

    repeats = QUICK_REPEATS if "--quick" in argv else DEFAULT_REPEATS
    results = run(repeats)
    print(_summarize(results))
    failures = [
        name
        for name, entry in results["queries"].items()
        if not entry["audit_artifacts_equal"]
    ]
    if failures:
        print(f"FAIL: audit artifacts diverge for {failures}")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
