"""§V-D / Figure 1: SELECT triggers as a filter for offline auditing.

Paper: "Another benefit of SELECT triggers is that they reduce the overall
auditing run time by filtering queries and their associated accesses that
must be analyzed by the offline system." A mixed workload is audited two
ways: every query offline, or only queries whose online ACCESSED state is
non-empty. The no-false-negative guarantee makes the skip safe.
"""

from repro.bench.figures import offline_filtering_benefit

from conftest import report


def test_report_offline_filtering(fixture, benchmark):
    headers, rows = benchmark.pedantic(
        lambda: offline_filtering_benefit(fixture), rounds=1, iterations=1
    )
    report(
        "offline_filtering",
        "Section V-D - SELECT triggers filter the offline workload",
        headers,
        rows,
    )
    by_strategy = {row[0]: row for row in rows}
    everything = by_strategy["offline-everything"]
    filtered = by_strategy["trigger-filtered"]
    # the filter must shrink the offline workload...
    assert filtered[1] < everything[1]
    # ...and the total wall-clock time with it
    assert filtered[2] < everything[2]
