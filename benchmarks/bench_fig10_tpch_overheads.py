"""Figure 10: hcn overheads for complex queries (§V-C).

Paper: the hcn heuristic adds roughly 1 % to each TPC-H query — including
the cost of keeping partition-by IDs flowing to the operator. Our pure-
Python substrate has a much higher per-row noise floor, so we assert a
generous bound while reporting the measured numbers.
"""

from repro import HEURISTIC_HCN
from repro.bench.figures import fig10_tpch_overheads
from repro.tpch import QUERIES, QUERY_PARAMETERS

from conftest import report


def _timed_query(fixture, name, heuristic, benchmark):
    physical = fixture.compile_with_heuristic(QUERIES[name], heuristic, None)
    database = fixture.database

    def run():
        context = database.make_context(QUERY_PARAMETERS[name])
        for __ in physical.rows(context):
            pass

    benchmark(run)


def test_benchmark_q3_baseline(fixture, benchmark):
    _timed_query(fixture, "Q3", None, benchmark)


def test_benchmark_q3_hcn(fixture, benchmark):
    _timed_query(fixture, "Q3", HEURISTIC_HCN, benchmark)


def test_benchmark_q18_baseline(fixture, benchmark):
    _timed_query(fixture, "Q18", None, benchmark)


def test_benchmark_q18_hcn(fixture, benchmark):
    _timed_query(fixture, "Q18", HEURISTIC_HCN, benchmark)


def test_report_fig10(fixture, benchmark):
    headers, rows = benchmark.pedantic(
        lambda: fig10_tpch_overheads(fixture), rounds=1, iterations=1
    )
    report(
        "fig10",
        "Figure 10 - HCN Overheads for Complex Queries",
        headers,
        rows,
    )
    # paper shape: low overhead on every query (≈1 % on their testbed;
    # we allow for the Python noise floor)
    mean_overhead = sum(row[3] for row in rows) / len(rows)
    assert mean_overhead < 15.0
    for name, __, __hcn, overhead in rows:
        assert overhead < 40.0, (name, overhead)
