"""Network serving benchmark: the wire vs the in-process engine.

Pytest usage (alongside the figure benchmarks)::

    PYTHONPATH=src python -m pytest benchmarks/bench_server.py -q

Standalone usage (CI smoke runs this)::

    PYTHONPATH=src python benchmarks/bench_server.py [--quick]

Both write ``benchmarks/results/BENCH_server.json`` — queries/second and
p50/p99 latency at 1/4/16 concurrent clients, in-process vs over TCP,
with and without an armed (async) audit trigger, plus the zero-lost-
firings proof for every armed cell. The full run additionally sweeps
256/1024 open connections against both front ends (threaded vs asyncio,
with resident thread counts) and measures the pipelining speedup of
``execute_many`` over one-at-a-time ``execute`` on a single connection.
"""

from __future__ import annotations

import json
import pathlib
import sys

RESULTS_DIR = pathlib.Path(__file__).parent / "results"
RESULT_FILE = RESULTS_DIR / "BENCH_server.json"


def run(quick: bool) -> dict:
    from repro.bench.server import (
        DEFAULT_REQUESTS,
        DEFAULT_ROUNDS,
        HIGHCONC_CLIENTS,
        HIGHCONC_REQUESTS,
        PIPELINE_STATEMENTS,
        QUICK_HIGHCONC_CLIENTS,
        QUICK_HIGHCONC_REQUESTS,
        QUICK_PIPELINE_STATEMENTS,
        QUICK_REQUESTS,
        QUICK_ROUNDS,
        server_benchmark,
    )

    if quick:
        results = server_benchmark(
            total_requests=QUICK_REQUESTS,
            rounds=QUICK_ROUNDS,
            highconc_clients=QUICK_HIGHCONC_CLIENTS,
            highconc_requests=QUICK_HIGHCONC_REQUESTS,
            pipeline_statements=QUICK_PIPELINE_STATEMENTS,
        )
    else:
        results = server_benchmark(
            total_requests=DEFAULT_REQUESTS,
            rounds=DEFAULT_ROUNDS,
            highconc_clients=HIGHCONC_CLIENTS,
            highconc_requests=HIGHCONC_REQUESTS,
            pipeline_statements=PIPELINE_STATEMENTS,
        )
    RESULTS_DIR.mkdir(exist_ok=True)
    RESULT_FILE.write_text(json.dumps(results, indent=2, default=str) + "\n")
    return results


def _summarize(results: dict) -> str:
    lines = [
        f"server benchmark ({results['total_requests']} requests, "
        f"best of {results['rounds']})"
    ]
    for mode, cells in results["modes"].items():
        parts = []
        for clients, cell in cells.items():
            parts.append(
                f"{clients}c {cell['qps']:.0f} qps "
                f"(p50 {cell['p50_ms']:.2f} / p99 {cell['p99_ms']:.2f} ms)"
            )
        lines.append(f"  {mode:<18} " + " | ".join(parts))
    lines.append(
        f"  wire overhead (1 client, unarmed): "
        f"{results['wire_overhead_1c']:.2f}x"
    )
    lines.append(
        f"  audit overhead over the wire (1 client): "
        f"{results['audit_overhead_server_1c']:.2f}x"
    )
    lines.append(
        f"  zero lost firings: {results['zero_lost_firings']}; "
        f"all requests served: {results['all_requests_served']}"
    )
    highconc = results["high_concurrency"]
    lines.append(
        f"  high concurrency ({highconc['requests']} requests, "
        f"{highconc['driver_threads']} drivers):"
    )
    for frontend, cells in highconc["frontends"].items():
        parts = []
        for clients, cell in cells.items():
            parts.append(
                f"{clients}conn {cell['qps']:.0f} qps "
                f"(p99 {cell['p99_ms']:.2f} ms, "
                f"{cell['resident_threads']} threads)"
            )
        lines.append(f"    {frontend:<9} " + " | ".join(parts))
    for frontend, cell in results["pipelining"].items():
        lines.append(
            f"  pipelining [{frontend}]: {cell['statements']} statements "
            f"serial {cell['serial_s'] * 1000:.0f} ms vs batched "
            f"{cell['batched_s'] * 1000:.0f} ms — "
            f"{cell['speedup']:.1f}x"
        )
    lines.append(f"  written to {RESULT_FILE}")
    return "\n".join(lines)


def _check(results: dict) -> list[str]:
    """Acceptance criteria; returns a list of failure descriptions."""
    failures = []
    if not results["zero_lost_firings"]:
        failures.append(
            "an armed cell lost audit firings (log rows != requests)"
        )
    if not results["all_requests_served"]:
        failures.append("a cell dropped requests or raised client errors")
    for mode, cells in results["modes"].items():
        for clients, cell in cells.items():
            if cell["qps"] <= 0:
                failures.append(f"{mode}@{clients}: qps is zero")
    for frontend, cells in results["high_concurrency"]["frontends"].items():
        for clients, cell in cells.items():
            if cell["errors"] or cell["requests"] != cell["expected"]:
                failures.append(
                    f"high_concurrency {frontend}@{clients}: dropped "
                    f"requests or client errors"
                )
    for frontend, cell in results["pipelining"].items():
        if cell["served"] != cell["statements"]:
            failures.append(
                f"pipelining {frontend}: only {cell['served']} of "
                f"{cell['statements']} statements returned rows"
            )
    # the asyncio front end batches pipelined statements into single
    # worker-pool hops; a >= 2x win over one-at-a-time is the bar
    if results["pipelining"]["async"]["speedup"] < 2.0:
        failures.append(
            "pipelining async: speedup "
            f"{results['pipelining']['async']['speedup']:.2f}x < 2x"
        )
    return failures


def test_report_server():
    results = run(quick=True)
    print()
    print(_summarize(results))
    assert not _check(results)


def main(argv: list[str]) -> int:
    results = run(quick="--quick" in argv)
    print(_summarize(results))
    failures = _check(results)
    for failure in failures:
        print(f"FAIL: {failure}")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
