"""Network serving benchmark: the wire vs the in-process engine.

Pytest usage (alongside the figure benchmarks)::

    PYTHONPATH=src python -m pytest benchmarks/bench_server.py -q

Standalone usage (CI smoke runs this)::

    PYTHONPATH=src python benchmarks/bench_server.py [--quick]

Both write ``benchmarks/results/BENCH_server.json`` — queries/second and
p50/p99 latency at 1/4/16 concurrent clients, in-process vs over TCP,
with and without an armed (async) audit trigger, plus the zero-lost-
firings proof for every armed cell.
"""

from __future__ import annotations

import json
import pathlib
import sys

RESULTS_DIR = pathlib.Path(__file__).parent / "results"
RESULT_FILE = RESULTS_DIR / "BENCH_server.json"


def run(total_requests: int, rounds: int) -> dict:
    from repro.bench.server import server_benchmark

    results = server_benchmark(
        total_requests=total_requests, rounds=rounds
    )
    RESULTS_DIR.mkdir(exist_ok=True)
    RESULT_FILE.write_text(json.dumps(results, indent=2, default=str) + "\n")
    return results


def _summarize(results: dict) -> str:
    lines = [
        f"server benchmark ({results['total_requests']} requests, "
        f"best of {results['rounds']})"
    ]
    for mode, cells in results["modes"].items():
        parts = []
        for clients, cell in cells.items():
            parts.append(
                f"{clients}c {cell['qps']:.0f} qps "
                f"(p50 {cell['p50_ms']:.2f} / p99 {cell['p99_ms']:.2f} ms)"
            )
        lines.append(f"  {mode:<18} " + " | ".join(parts))
    lines.append(
        f"  wire overhead (1 client, unarmed): "
        f"{results['wire_overhead_1c']:.2f}x"
    )
    lines.append(
        f"  audit overhead over the wire (1 client): "
        f"{results['audit_overhead_server_1c']:.2f}x"
    )
    lines.append(
        f"  zero lost firings: {results['zero_lost_firings']}; "
        f"all requests served: {results['all_requests_served']}"
    )
    lines.append(f"  written to {RESULT_FILE}")
    return "\n".join(lines)


def _check(results: dict) -> list[str]:
    """Acceptance criteria; returns a list of failure descriptions."""
    failures = []
    if not results["zero_lost_firings"]:
        failures.append(
            "an armed cell lost audit firings (log rows != requests)"
        )
    if not results["all_requests_served"]:
        failures.append("a cell dropped requests or raised client errors")
    for mode, cells in results["modes"].items():
        for clients, cell in cells.items():
            if cell["qps"] <= 0:
                failures.append(f"{mode}@{clients}: qps is zero")
    return failures


def test_report_server():
    from repro.bench.server import QUICK_REQUESTS, QUICK_ROUNDS

    results = run(QUICK_REQUESTS, QUICK_ROUNDS)
    print()
    print(_summarize(results))
    assert not _check(results)


def main(argv: list[str]) -> int:
    from repro.bench.server import (
        DEFAULT_REQUESTS,
        DEFAULT_ROUNDS,
        QUICK_REQUESTS,
        QUICK_ROUNDS,
    )

    quick = "--quick" in argv
    results = run(
        QUICK_REQUESTS if quick else DEFAULT_REQUESTS,
        QUICK_ROUNDS if quick else DEFAULT_ROUNDS,
    )
    print(_summarize(results))
    failures = _check(results)
    for failure in failures:
        print(f"FAIL: {failure}")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
