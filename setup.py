"""Legacy setup shim so `pip install -e .` works without the wheel package."""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "Reproduction of 'SELECT Triggers for Data Auditing' (ICDE 2013)"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
)
