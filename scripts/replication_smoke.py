"""CI smoke for the asyncio front end plus one live read replica.

Boots ``python -m repro.server --frontend async --replicate`` as a real
subprocess, drives a pipelined mixed DML/SELECT workload over one
connection (``execute_many``), attaches a socket replica
(:meth:`ReplicaDatabase.from_primary`), proves read-your-writes across
the wire with a replication token, and lets the replica's audited read
forward its AFTER intents back to the primary. Then SIGTERMs the
primary and proves the audited-shutdown contract end to end: exit code
0, **zero uncommitted intents**, and a fresh engine recovered from the
journal (``apply_statements=True``) that matches the replica's final
table state and holds the exact expected audit log.

Usage:  PYTHONPATH=src python scripts/replication_smoke.py
Exits non-zero on the first violated expectation.
"""

from __future__ import annotations

import os
import pathlib
import signal
import subprocess
import sys
import tempfile
import time

REPO = pathlib.Path(__file__).resolve().parent.parent

INIT_SQL = """
CREATE TABLE patients (pid INT PRIMARY KEY, name VARCHAR, age INT);
CREATE TABLE log (uid VARCHAR, pid INT);
INSERT INTO patients VALUES
    (1, 'Alice', 34), (2, 'Bob', 41), (3, 'Carol', 29), (4, 'Dan', 57);
CREATE AUDIT EXPRESSION aud AS SELECT * FROM patients
    FOR SENSITIVE TABLE patients, PARTITION BY pid;
CREATE TRIGGER ins_log ON ACCESS TO aud AS
    INSERT INTO log SELECT user_id(), pid FROM accessed
"""

#: the pipelined workload: interleaved DML and armed point reads
WORKLOAD = [
    "INSERT INTO patients VALUES (5, 'Eve', 23)",
    "SELECT name FROM patients WHERE pid = 1",
    "INSERT INTO patients VALUES (6, 'Frank', 61)",
    "SELECT name FROM patients WHERE pid = 2",
    "UPDATE patients SET age = 30 WHERE pid = 3",
    "SELECT name FROM patients WHERE pid = 3",
]

ALICE_PIDS = (1, 2, 3)
ALL_PIDS = (1, 2, 3, 4, 5, 6)


def fail(message: str) -> None:
    print(f"FAIL: {message}")
    sys.exit(1)


def main() -> int:
    sys.path.insert(0, str(REPO / "src"))
    from repro.database import Database
    from repro.durability.recovery import uncommitted_intents
    from repro.replication import ReplicaDatabase
    from repro.server.client import Connection

    tmp = tempfile.TemporaryDirectory(prefix="repro-replication-smoke-")
    journal_dir = pathlib.Path(tmp.name) / "journal"
    init_file = pathlib.Path(tmp.name) / "init.sql"
    init_file.write_text(INIT_SQL)

    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO / "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    process = subprocess.Popen(
        [
            sys.executable, "-m", "repro.server",
            "--port", "0",
            "--frontend", "async",
            "--init", str(init_file),
            "--journal", str(journal_dir),
            "--replicate",
            "--fsync", "always",
            "--trigger-mode", "async",
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        env=env,
        text=True,
    )
    replica = None
    try:
        line = process.stdout.readline().strip()
        if "listening on" not in line:
            fail(f"unexpected server banner: {line!r}")
        port = int(line.rsplit(":", 1)[1])
        print(f"  asyncio server up on port {port}")

        with Connection("127.0.0.1", port, user_id="alice") as alice:
            # 1) pipelined mixed workload on one connection; the done
            #    frames carry replication tokens because --replicate is on
            outcomes = alice.execute_many(WORKLOAD)
            if len(outcomes) != len(WORKLOAD):
                fail("pipelined batch returned wrong outcome count")
            token = alice.last_token
            if not token:
                fail("no replication token on the done frame")
            print(f"  pipelined {len(WORKLOAD)} statements, token {token}")

            # 2) a live socket replica catches up to the token
            replica = ReplicaDatabase.from_primary("127.0.0.1", port)
            if not replica.wait_for(token, timeout=20.0):
                fail(f"replica never reached token {token}")
            print(f"  replica caught up (lag {replica.replication_lag()['lag_records']})")

            # 3) read-your-writes on the replica: the pipelined DML is
            #    visible; the audited read forwards intents to the primary
            rows = replica.execute(
                "SELECT pid, name, age FROM patients ORDER BY pid",
                user_id="dr_remote",
            ).rows
            replica_patients = sorted(rows)
            if [pid for pid, _, _ in replica_patients] != list(ALL_PIDS):
                fail(f"replica table state wrong: {replica_patients}")
            print("  replica serves the pipelined writes locally")

            # 4) the primary's audit log converges to exactly the armed
            #    reads: alice's pipelined ones plus the replica's read,
            #    attributed to its original user
            expected_log = sorted(
                [("alice", pid) for pid in ALICE_PIDS]
                + [("dr_remote", pid) for pid in ALL_PIDS]
            )
            deadline = time.monotonic() + 20.0
            while time.monotonic() < deadline:
                log = sorted(alice.execute("SELECT uid, pid FROM log").rows)
                if log == expected_log:
                    break
                time.sleep(0.05)
            if log != expected_log:
                fail(f"audit log mismatch: {log} != {expected_log}")
            print(f"  {len(log)} audit rows on the primary, "
                  "replica read attributed to dr_remote")
    except Exception:
        process.kill()
        raise
    finally:
        if replica is not None:
            replica.close()
        if process.poll() is None:
            # 5) SIGTERM: audited graceful shutdown of the async front end
            process.send_signal(signal.SIGTERM)
        code = process.wait(timeout=60)
        output = process.stdout.read()

    if code != 0:
        fail(f"server exited {code}; output:\n{output}")
    if "repro server stopped" not in output:
        fail(f"missing shutdown banner; output:\n{output}")
    leftovers = uncommitted_intents(journal_dir)
    if leftovers:
        fail(f"shutdown lost {len(leftovers)} journaled firings")
    print("  clean shutdown, zero uncommitted intents")

    # 6) a fresh engine rebuilt from the journal alone matches the
    #    replica's final table state and the exact audit log
    recovered = Database(user_id="recovery")
    try:
        recovered.recover(journal_dir, apply_statements=True)
        log = sorted(recovered.execute("SELECT uid, pid FROM log").rows)
        if log != expected_log:
            fail(f"recovered audit log mismatch: {log} != {expected_log}")
        rows = sorted(
            recovered.execute(
                "SELECT pid, name, age FROM patients"
            ).rows
        )
        if rows != replica_patients:
            fail(
                "recovered table state != replica state: "
                f"{rows} != {replica_patients}"
            )
    finally:
        recovered.close()
    print("  journal replay reproduces replica state and full audit log")
    tmp.cleanup()
    return 0


if __name__ == "__main__":
    sys.exit(main())
