#!/usr/bin/env bash
# CI smoke: tier-1 test suite plus one quick end-to-end benchmark.
#
# Usage: scripts/ci_smoke.sh
# Runs from any working directory; exits non-zero on the first failure.

set -euo pipefail

cd "$(dirname "$0")/.."

echo "== tier-1 tests =="
PYTHONPATH=src python -m pytest -x -q

echo
echo "== pipeline benchmark (--quick) =="
PYTHONPATH=src python benchmarks/bench_pipeline.py --quick

echo
echo "== columnar three-mode differential (--quick) =="
# row vs batch vs columnar over the same compiled plans, armed and
# unarmed; exits non-zero if any cell's results, ACCESSED sets, or
# audit probe counts diverge across the three execution modes
PYTHONPATH=src python benchmarks/bench_columnar.py --quick

echo
echo "== offline lineage-vs-deletion differential (--quick) =="
# exits non-zero if the one-pass lineage auditor and the deletion-test
# oracle disagree on any accessed-ID set (exactness regression)
PYTHONPATH=src python benchmarks/bench_offline_lineage.py --quick

echo
echo "== data-skipping on/off differential (--quick) =="
# small TPC-H load audited at several sensitive selectivities with the
# block-skipping knob on vs off; exits non-zero if ACCESSED sets or
# offline-audit verdicts differ (conservative-skip regression)
PYTHONPATH=src python benchmarks/bench_skipping.py --quick

echo
echo "== sharded-vs-single-node differential (--quick) =="
# 2-shard scatter-gather cluster vs a single-node run of the same armed
# workload; exits non-zero on any result, ACCESSED, or trigger-firing
# divergence (lost firings) across the shard boundary
PYTHONPATH=src python benchmarks/bench_cluster.py --quick

echo
echo "== cluster chaos differential =="
# flaky -> slow -> dead -> rejoin fault phases on one shard vs a serial
# ground truth; exits non-zero if fail-closed ever returns partial
# results, a degraded read skips a shard without recording an audit
# gap, a quarantined owner accepts DML, or rejoin loses/misattributes
# a trigger firing
PYTHONPATH=src python benchmarks/bench_cluster_chaos.py

echo
echo "== concurrent serving stress (--quick) =="
# 8 threads of mixed audited SELECT / DML traffic with async triggers;
# exits non-zero if the audit-log row count diverges from a serial
# replay (lost or spurious firings) or the thread-scaling floor breaks
PYTHONPATH=src python benchmarks/bench_concurrency.py --quick

echo
echo "== durability / fault-injection smoke (--quick) =="
# audit-journal overhead per fsync policy (batch must stay within 2x of
# the no-journal baseline) plus one injected-crash -> recover -> verify
# cycle; exits non-zero if recovery loses or duplicates audit rows
PYTHONPATH=src python benchmarks/bench_durability.py --quick

echo
echo "== network serving smoke =="
# boots python -m repro.server as a subprocess, runs a scripted
# multi-user client session (auth rejection, attributed point queries,
# one DENY-trigger rejection over the wire), then SIGTERMs it; exits
# non-zero unless shutdown is clean with zero uncommitted journal intents
PYTHONPATH=src python scripts/server_smoke.py

echo
echo "== asyncio front end + replica smoke =="
# boots python -m repro.server --frontend async --replicate as a
# subprocess, pipelines a mixed DML/SELECT batch on one connection,
# attaches a live socket replica (token catch-up, read-your-writes,
# forwarded audit intents), then SIGTERMs the primary; exits non-zero
# unless shutdown is clean with zero uncommitted intents and a fresh
# journal replay reproduces the replica's tables and the exact log
PYTHONPATH=src python scripts/replication_smoke.py

echo
echo "== server benchmark (--quick) =="
# in-process vs over-TCP qps/latency grid with and without an armed
# audit trigger, plus the threaded-vs-asyncio high-concurrency sweep
# and the pipelining speedup bar (async execute_many >= 2x); exits
# non-zero if any armed cell loses firings or any cell drops requests
PYTHONPATH=src python benchmarks/bench_server.py --quick

echo
echo "== replication benchmark (--quick) =="
# replica read scaling under a write stream (paced and saturated), lag
# profile with catch-up, and the audit differential: a workload spread
# over two replicas must leave the primary's log identical to a serial
# single-node run; exits non-zero on any divergence or stalled replica
PYTHONPATH=src python benchmarks/bench_replication.py --quick
