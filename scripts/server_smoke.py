"""CI smoke for the network serving layer.

Boots ``python -m repro.server`` as a real subprocess (journaled, async
triggers, static auth), drives a scripted multi-user client session —
including one DENY-trigger rejection crossing the wire — then shuts the
server down with SIGTERM and proves the audited-shutdown contract: exit
code 0 and **zero uncommitted intents** left in the journal.

Usage:  PYTHONPATH=src python scripts/server_smoke.py
Exits non-zero on the first violated expectation.
"""

from __future__ import annotations

import os
import pathlib
import signal
import subprocess
import sys
import tempfile

REPO = pathlib.Path(__file__).resolve().parent.parent

INIT_SQL = """
CREATE TABLE patients (pid INT PRIMARY KEY, name VARCHAR, age INT);
CREATE TABLE log (uid VARCHAR, query VARCHAR, pid INT);
INSERT INTO patients VALUES
    (1, 'Alice', 34), (2, 'Bob', 41), (3, 'Carol', 29), (4, 'Dan', 57);
CREATE AUDIT EXPRESSION aud AS SELECT * FROM patients
    FOR SENSITIVE TABLE patients, PARTITION BY pid;
CREATE TRIGGER ins_log ON ACCESS TO aud AS
    INSERT INTO log SELECT user_id(), sql_text(), pid FROM accessed;
CREATE TRIGGER gate ON ACCESS TO aud BEFORE AS
    IF ((SELECT COUNT(*) FROM accessed) > 2)
    DENY 'bulk access denied'
"""


def fail(message: str) -> None:
    print(f"FAIL: {message}")
    sys.exit(1)


def main() -> int:
    sys.path.insert(0, str(REPO / "src"))
    from repro.durability.recovery import uncommitted_intents
    from repro.errors import AccessDeniedError, AuthenticationError
    from repro.server.client import Connection

    tmp = tempfile.TemporaryDirectory(prefix="repro-server-smoke-")
    journal_dir = pathlib.Path(tmp.name) / "journal"
    init_file = pathlib.Path(tmp.name) / "init.sql"
    init_file.write_text(INIT_SQL)

    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO / "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    process = subprocess.Popen(
        [
            sys.executable, "-m", "repro.server",
            "--port", "0",
            "--init", str(init_file),
            "--journal", str(journal_dir),
            "--fsync", "always",
            "--trigger-mode", "async",
            "--user", "alice:wonder", "--user", "bob:builder",
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        env=env,
        text=True,
    )
    try:
        line = process.stdout.readline().strip()
        if "listening on" not in line:
            fail(f"unexpected server banner: {line!r}")
        port = int(line.rsplit(":", 1)[1])
        print(f"  server up on port {port}")

        # 1) authentication is enforced
        try:
            Connection("127.0.0.1", port, user_id="alice", password="nope")
            fail("bad password was accepted")
        except AuthenticationError:
            print("  bad password rejected")

        # 2) two authenticated users, attributed point queries
        with Connection(
            "127.0.0.1", port, user_id="alice", password="wonder"
        ) as alice:
            for pid in (1, 2):
                result = alice.execute(
                    f"SELECT name FROM patients WHERE pid = {pid}"
                )
                if result.accessed.get("aud") != frozenset({pid}):
                    fail(f"alice ACCESSED wrong for pid={pid}")

            # 3) the DENY trigger rejects a bulk read over the wire
            try:
                alice.execute("SELECT * FROM patients")
                fail("bulk read was not denied")
            except AccessDeniedError as error:
                print(f"  bulk read denied: {error}")

        with Connection(
            "127.0.0.1", port, user_id="bob", password="builder"
        ) as bob:
            result = bob.execute("SELECT * FROM patients WHERE pid = 3")
            if len(result.rows) != 1:
                fail("bob's point query returned wrong rows")

            # 4) per-user attribution is visible in the shared log
            #    (drain by polling: firings ride the async pipeline)
            import time
            deadline = time.monotonic() + 10.0
            while time.monotonic() < deadline:
                rows = sorted(
                    bob.execute("SELECT uid, pid FROM log").rows
                )
                if len(rows) == 7:  # 2 + 4 (denied-but-audited) + 1
                    break
                time.sleep(0.05)
            expected = sorted(
                [("alice", 1), ("alice", 2), ("bob", 3)]
                + [("alice", pid) for pid in (1, 2, 3, 4)]
            )
            if rows != expected:
                fail(f"attribution mismatch: {rows}")
            print(f"  {len(rows)} audit rows, attributed per user")
    except Exception:
        process.kill()
        raise
    finally:
        if process.poll() is None:
            # 5) SIGTERM: audited graceful shutdown
            process.send_signal(signal.SIGTERM)
        code = process.wait(timeout=60)
        output = process.stdout.read()

    if code != 0:
        fail(f"server exited {code}; output:\n{output}")
    if "repro server stopped" not in output:
        fail(f"missing shutdown banner; output:\n{output}")
    leftovers = uncommitted_intents(journal_dir)
    if leftovers:
        fail(f"shutdown lost {len(leftovers)} journaled firings")
    print("  clean shutdown, zero uncommitted intents")
    tmp.cleanup()
    return 0


if __name__ == "__main__":
    sys.exit(main())
