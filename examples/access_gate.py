"""Blocking access in real time: BEFORE triggers and DENY.

The paper (§II) sketches an alternative SELECT-trigger semantics —
"execute before the query result is returned to warn users that they are
accessing sensitive data" — and leaves it to future work. This repository
implements it: a trigger declared ``ON ACCESS TO <expr> BEFORE`` runs
after the query executes but before any row reaches the caller, and its
body may ``DENY`` the result set. The access is still recorded by the
AFTER-timing audit trigger — denial withholds data, not evidence.

This example gates bulk exports of VIP customer records: small lookups
pass (with a warning), wholesale dumps are denied, and everything lands
in the audit log either way.

Run:  python examples/access_gate.py
"""

from repro import Database
from repro.errors import AccessDeniedError


def main() -> None:
    db = Database(user_id="support_rep")
    db.execute(
        "CREATE TABLE customers (custid INT PRIMARY KEY, name VARCHAR, "
        "tier VARCHAR, balance FLOAT)"
    )
    db.execute(
        "CREATE TABLE audit_log (uid VARCHAR, query VARCHAR, custid INT)"
    )
    rows = ", ".join(
        f"({index}, 'Customer{index}', "
        f"'{'vip' if index % 4 == 0 else 'standard'}', {index * 100.0})"
        for index in range(1, 21)
    )
    db.execute(f"INSERT INTO customers VALUES {rows}")

    db.execute(
        "CREATE AUDIT EXPRESSION audit_vips AS "
        "SELECT * FROM customers WHERE tier = 'vip' "
        "FOR SENSITIVE TABLE customers, PARTITION BY custid"
    )

    # evidence first: an AFTER trigger that always logs
    db.execute(
        "CREATE TRIGGER log_vip_access ON ACCESS TO audit_vips AS "
        "INSERT INTO audit_log SELECT user_id(), sql_text(), custid "
        "FROM accessed"
    )
    # then the gate: warn on small reads, deny bulk reads
    db.execute(
        "CREATE TRIGGER warn_vip ON ACCESS TO audit_vips BEFORE AS "
        "NOTIFY 'heads up: VIP records in this result'"
    )
    db.execute(
        "CREATE TRIGGER gate_bulk ON ACCESS TO audit_vips BEFORE AS "
        "IF ((SELECT COUNT(*) FROM accessed) > 2) "
        "DENY 'bulk export of VIP records requires approval'"
    )

    print("1) single-customer lookup (one VIP): allowed, with warning")
    result = db.execute("SELECT * FROM customers WHERE custid = 4")
    print("   rows returned:", len(result.rows))
    print("   warning:", db.notifications[-1])

    print("\n2) full table dump (five VIPs): denied")
    try:
        db.execute("SELECT * FROM customers")
    except AccessDeniedError as error:
        print("   DENIED:", error.message)

    print("\n3) the audit log recorded both attempts anyway:")
    log = db.execute(
        "SELECT query, COUNT(*) FROM audit_log GROUP BY query"
    )
    for query, count in log.rows:
        print(f"   {count} VIP record(s) via: {query[:48]}...")

    total = db.execute("SELECT COUNT(*) FROM audit_log").scalar()
    assert total == 1 + 5, "both accesses must be on record"
    print("\ndenial withholds data, not evidence.")


if __name__ == "__main__":
    main()
