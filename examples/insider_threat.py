"""Real-time insider-threat detection with cascading triggers (§I, §II-C).

The paper's intro motivates real-time feedback: *"finding users that have
accessed more than a given number of patient records with a particular
disease"*. This example wires the full cascade the paper sketches:

    SELECT trigger  ->  INSERT into access log  ->  AFTER INSERT trigger
                                                     -> threshold check
                                                     -> SEND EMAIL

A curious employee browses increasingly broad queries; the moment their
distinct-patient count crosses the threshold, the notification fires —
while the queries are still running against the live database, with no
offline log analysis in the loop.

Run:  python examples/insider_threat.py
"""

from repro import Database

THRESHOLD = 4


def build_hospital() -> Database:
    db = Database(user_id="nosy_employee")
    db.execute(
        "CREATE TABLE patients (patientid INT PRIMARY KEY, "
        "name VARCHAR, age INT, ward VARCHAR)"
    )
    db.execute("CREATE TABLE disease (patientid INT, disease VARCHAR)")
    db.execute(
        "CREATE TABLE access_log (uid VARCHAR, patientid INT)"
    )
    rows = []
    wards = ("east", "west", "north")
    conditions = ("diabetes", "flu", "asthma")
    for patient in range(1, 13):
        rows.append(
            f"({patient}, 'Patient{patient}', {20 + patient * 3}, "
            f"'{wards[patient % 3]}')"
        )
    db.execute("INSERT INTO patients VALUES " + ", ".join(rows))
    sick = [
        f"({patient}, '{conditions[patient % 3]}')"
        for patient in range(1, 13)
    ]
    db.execute("INSERT INTO disease VALUES " + ", ".join(sick))

    # sensitive data: every diabetic patient (the paper's Audit_Cancer
    # pattern, Example 2.2, with a key-foreign-key join)
    db.execute(
        "CREATE AUDIT EXPRESSION audit_diabetics AS "
        "SELECT p.* FROM patients p, disease d "
        "WHERE p.patientid = d.patientid AND d.disease = 'diabetes' "
        "FOR SENSITIVE TABLE patients, PARTITION BY patientid"
    )

    # layer 1: the SELECT trigger records accesses as queries execute
    db.execute(
        "CREATE TRIGGER record_access ON ACCESS TO audit_diabetics AS "
        "INSERT INTO access_log SELECT user_id(), patientid FROM accessed"
    )

    # layer 2: the cascading AFTER INSERT trigger enforces the threshold
    db.execute(
        "CREATE TRIGGER watch_threshold ON access_log AFTER INSERT AS "
        f"IF ((SELECT COUNT(DISTINCT patientid) FROM access_log "
        f"WHERE uid = new.uid) >= {THRESHOLD}) "
        "SEND EMAIL 'insider alert: too many diabetic records accessed'"
    )
    return db


BROWSING_SESSION = (
    "SELECT name FROM patients WHERE patientid = 3",
    "SELECT p.name FROM patients p, disease d "
    "WHERE p.patientid = d.patientid AND d.disease = 'diabetes' "
    "AND p.ward = 'east'",
    "SELECT p.name, p.age FROM patients p, disease d "
    "WHERE p.patientid = d.patientid AND d.disease = 'diabetes' "
    "AND p.age > 35",
)


def main() -> None:
    db = build_hospital()
    diabetics = db.audit_manager.view("audit_diabetics").ids()
    print(f"{len(diabetics)} diabetic patients are under audit: "
          f"{sorted(diabetics)}\n")

    for step, query in enumerate(BROWSING_SESSION, start=1):
        result = db.execute(query)
        touched = sorted(
            result.accessed.get("audit_diabetics", frozenset())
        )
        seen = db.execute(
            "SELECT COUNT(DISTINCT patientid) FROM access_log "
            "WHERE uid = 'nosy_employee'"
        ).scalar()
        print(f"query {step}: touched {touched or 'no'} sensitive records "
              f"(cumulative distinct: {seen})")
        if db.notifications:
            print(f"   !! {db.notifications[-1]}")
            break
    else:
        raise AssertionError("expected the threshold alert to fire")

    print("\nfinal access log:")
    for uid, patient in db.execute(
        "SELECT uid, patientid FROM access_log ORDER BY patientid"
    ):
        print(f"   {uid} -> patient {patient}")


if __name__ == "__main__":
    main()
