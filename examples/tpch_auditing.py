"""Auditing a TPC-H workload — the paper's evaluation scenario (§V).

Loads a scaled TPC-H database, declares the paper's audit expression (all
customers of one market segment, ≈20 % of the table), runs the seven-query
workload under both placement heuristics, and compares the audit
cardinalities against the deletion-based offline ground truth — a compact
rerun of Figure 9.

Run:  python examples/tpch_auditing.py [scale_factor]
"""

import sys
import time

from repro import (
    Database,
    HEURISTIC_HCN,
    HEURISTIC_LEAF,
    OfflineAuditor,
)
from repro.tpch import (
    QUERIES,
    QUERY_PARAMETERS,
    audit_expression_sql,
    load_tpch,
)


def main() -> None:
    scale_factor = float(sys.argv[1]) if len(sys.argv) > 1 else 0.003

    print(f"loading TPC-H at scale factor {scale_factor}...")
    db = Database(user_id="analyst")
    counts = load_tpch(db, scale_factor=scale_factor)
    print("  " + ", ".join(f"{k}={v}" for k, v in counts.items()))

    db.execute(audit_expression_sql("audit_customer", "BUILDING"))
    view = db.audit_manager.view("audit_customer")
    print(f"\naudit expression covers {len(view)} BUILDING-segment "
          f"customers (~20% of {counts['customer']})")

    auditor = OfflineAuditor(db)
    header = (f"{'query':<6} {'rows':>5} {'offline':>8} {'hcn':>5} "
              f"{'leaf':>5} {'hcn FP':>7} {'time':>8}")
    print("\n" + header)
    print("-" * len(header))
    for name in sorted(QUERIES):
        sql, parameters = QUERIES[name], QUERY_PARAMETERS[name]
        start = time.perf_counter()

        db.audit_manager.heuristic = HEURISTIC_HCN
        result = db.execute(sql, parameters)
        hcn = result.accessed.get("audit_customer", frozenset())

        db.audit_manager.heuristic = HEURISTIC_LEAF
        leaf = db.execute(sql, parameters).accessed.get(
            "audit_customer", frozenset()
        )

        truth = auditor.audit(sql, "audit_customer", parameters)
        elapsed = time.perf_counter() - start

        assert truth <= hcn <= leaf, "no-false-negative guarantee violated"
        print(
            f"{name:<6} {len(result.rows):>5} {len(truth):>8} "
            f"{len(hcn):>5} {len(leaf):>5} {len(hcn - truth):>7} "
            f"{elapsed:>7.2f}s"
        )

    db.audit_manager.heuristic = HEURISTIC_HCN
    print(
        "\nreading the table: 'offline' is the deletion-based ground "
        "truth;\n'hcn'/'leaf' are the online audit cardinalities. "
        "hcn never under-reports\n(Claim 3.6) and stays close to the "
        "truth except on top-k queries (Q10),\nwhere the offline system "
        "verifies the flagged accesses (Figure 1)."
    )


if __name__ == "__main__":
    main()
