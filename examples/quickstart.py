"""Quickstart: SELECT triggers in five minutes.

Creates a tiny clinical database, declares an audit expression for one
patient (the paper's Audit_Alice, Example 2.1), attaches a SELECT trigger
that writes an audit-log entry whenever her record is accessed (§II-C),
and shows that subtle queries — including the inference attack of
Example 1.2 — are caught while innocent queries are not.

Run:  python examples/quickstart.py
"""

from repro import Database


def main() -> None:
    db = Database(user_id="dr_house")

    # -- schema and data ---------------------------------------------------
    db.execute(
        "CREATE TABLE patients (patientid INT PRIMARY KEY, "
        "name VARCHAR NOT NULL, age INT, zip VARCHAR)"
    )
    db.execute("CREATE TABLE disease (patientid INT, disease VARCHAR)")
    db.execute(
        "CREATE TABLE log (ts VARCHAR, uid VARCHAR, query VARCHAR, "
        "patientid INT)"
    )
    db.execute(
        "INSERT INTO patients VALUES "
        "(1, 'Alice', 40, '98101'), (2, 'Bob', 25, '98102'), "
        "(3, 'Carol', 33, '98101')"
    )
    db.execute(
        "INSERT INTO disease VALUES (1, 'cancer'), (2, 'flu'), (3, 'flu')"
    )

    # -- the paper's Example 2.1 audit expression --------------------------
    db.execute(
        "CREATE AUDIT EXPRESSION audit_alice AS "
        "SELECT * FROM patients WHERE name = 'Alice' "
        "FOR SENSITIVE TABLE patients, PARTITION BY patientid"
    )

    # -- a SELECT trigger writing to the audit log (§II-C) -----------------
    db.execute(
        "CREATE TRIGGER log_alice_accesses ON ACCESS TO audit_alice AS "
        "INSERT INTO log SELECT cast_varchar(now()), user_id(), "
        "sql_text(), patientid FROM accessed"
    )

    # -- queries -----------------------------------------------------------
    print("1) a query that touches only Bob:")
    result = db.execute("SELECT name FROM patients WHERE name = 'Bob'")
    print("   rows:", result.rows)
    print("   ACCESSED:", dict(result.accessed) or "(nothing)")

    print("\n2) a join revealing Alice's diagnosis:")
    result = db.execute(
        "SELECT p.name, d.disease FROM patients p, disease d "
        "WHERE p.patientid = d.patientid AND d.disease = 'cancer'"
    )
    print("   rows:", result.rows)
    print("   ACCESSED:", dict(result.accessed))

    print("\n3) the Example 1.2 inference attack (EXISTS probe):")
    result = db.execute(
        "SELECT 1 FROM patients WHERE EXISTS "
        "(SELECT * FROM patients p, disease d "
        "WHERE p.patientid = d.patientid AND name = 'Alice' "
        "AND disease = 'cancer')"
    )
    print("   rows returned:", len(result.rows))
    print("   ACCESSED:", dict(result.accessed))

    print("\naudit log (written by the SELECT trigger):")
    for when, who, query, patient in db.execute(
        "SELECT ts, uid, query, patientid FROM log"
    ):
        print(f"   [{when}] user={who} patient={patient}")
        print(f"      query: {query[:70]}...")

    print("\nplan of query 2 (note the AuditOperator at the root):")
    print(db.explain(
        "SELECT p.name, d.disease FROM patients p, disease d "
        "WHERE p.patientid = d.patientid AND d.disease = 'cancer'"
    ))


if __name__ == "__main__":
    main()
