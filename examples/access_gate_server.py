"""The access gate, served: DENY and attribution over the wire.

``examples/access_gate.py`` gates bulk VIP exports inside one process.
This variant puts the same database behind :class:`repro.server.Server`
and drives it from authenticated client connections — the deployment
shape the paper assumes (§II: a DBMS serving live queries from many
users). Three things change, none of them the triggers:

* each client authenticates once; every audit-log row it causes is
  attributed to *its* user, even though all clients share one engine;
* ``DENY`` crosses the wire as a typed
  :class:`~repro.errors.AccessDeniedError` the client re-raises;
* shutdown is audited — the server drains in-flight statements and the
  trigger pipeline before closing, so the log is complete when the
  process exits.

Run:  python examples/access_gate_server.py
"""

from repro import Database
from repro.errors import AccessDeniedError
from repro.server import Connection, StaticAuthenticator


def build_database() -> Database:
    db = Database(user_id="dba")
    db.execute(
        "CREATE TABLE customers (custid INT PRIMARY KEY, name VARCHAR, "
        "tier VARCHAR, balance FLOAT)"
    )
    db.execute(
        "CREATE TABLE audit_log (uid VARCHAR, query VARCHAR, custid INT)"
    )
    rows = ", ".join(
        f"({index}, 'Customer{index}', "
        f"'{'vip' if index % 4 == 0 else 'standard'}', {index * 100.0})"
        for index in range(1, 21)
    )
    db.execute(f"INSERT INTO customers VALUES {rows}")
    db.execute(
        "CREATE AUDIT EXPRESSION audit_vips AS "
        "SELECT * FROM customers WHERE tier = 'vip' "
        "FOR SENSITIVE TABLE customers, PARTITION BY custid"
    )
    db.execute(
        "CREATE TRIGGER log_vip_access ON ACCESS TO audit_vips AS "
        "INSERT INTO audit_log SELECT user_id(), sql_text(), custid "
        "FROM accessed"
    )
    db.execute(
        "CREATE TRIGGER gate_bulk ON ACCESS TO audit_vips BEFORE AS "
        "IF ((SELECT COUNT(*) FROM accessed) > 2) "
        "DENY 'bulk export of VIP records requires approval'"
    )
    # firings ride the async pipeline: the serving configuration
    db.trigger_mode = "async"
    return db


def main() -> None:
    db = build_database()
    authenticator = StaticAuthenticator(
        {"support_rep": "rep-pw", "analyst": "analyst-pw"}
    )
    server = db.serve(port=0, authenticator=authenticator).start()
    print(f"server listening on {server.host}:{server.port}")

    print("\n1) support_rep looks up one customer: allowed, attributed")
    with Connection(
        server.host, server.port, user_id="support_rep", password="rep-pw"
    ) as rep:
        result = rep.execute("SELECT * FROM customers WHERE custid = 4")
        print("   rows returned:", len(result.rows))
        print("   ACCESSED:", dict(result.accessed))

    print("\n2) analyst tries a full dump: DENIED across the wire")
    with Connection(
        server.host, server.port, user_id="analyst", password="analyst-pw"
    ) as analyst:
        try:
            analyst.execute("SELECT * FROM customers")
        except AccessDeniedError as error:
            print("   DENIED:", error.message)

    print("\n3) wrong password never reaches the engine")
    try:
        Connection(
            server.host, server.port, user_id="analyst", password="guess"
        )
    except Exception as error:  # AuthenticationError
        print(f"   {type(error).__name__}: {error}")

    # audited graceful shutdown: drain statements, drain firings, close
    server.shutdown()

    print("\n4) the audit log survived shutdown, attributed per client:")
    log = db.execute(
        "SELECT uid, COUNT(*) FROM audit_log GROUP BY uid"
    )
    for uid, count in sorted(log.rows):
        print(f"   {uid}: {count} VIP record(s) on file")
    total = db.execute("SELECT COUNT(*) FROM audit_log").scalar()
    assert total == 1 + 5, "both accesses must be on record"
    print("\ndenial withholds data, not evidence — now over TCP.")


if __name__ == "__main__":
    main()
