"""HIPAA accounting-of-disclosures, end to end (the paper's Example 1.1).

HIPAA lets any patient demand the name of every entity to whom her health
information was revealed. The paper's architecture answers this with two
cooperating layers:

1. **online** — SELECT triggers record candidate accesses as queries run
   (no database rollback ever needed);
2. **offline** — the deletion-based auditor verifies the flagged queries,
   eliminating the false positives the light-weight layer may produce.

This example simulates a small clinic: several staff members run queries,
the SELECT trigger builds the disclosure log, and then patient Alice files
a HIPAA request which is answered from the log plus offline verification.

Run:  python examples/healthcare_hipaa.py
"""

from repro import Database, OfflineAuditor


def build_clinic() -> Database:
    db = Database(user_id="system")
    db.execute(
        "CREATE TABLE patients (patientid INT PRIMARY KEY, "
        "name VARCHAR NOT NULL, age INT, zip VARCHAR)"
    )
    db.execute("CREATE TABLE disease (patientid INT, disease VARCHAR)")
    db.execute(
        "CREATE TABLE disclosure_log (ts VARCHAR, uid VARCHAR, "
        "query VARCHAR, patientid INT)"
    )
    db.execute(
        "INSERT INTO patients VALUES "
        "(1, 'Alice', 34, '98101'), (2, 'Bob', 52, '98102'), "
        "(3, 'Carol', 61, '98101'), (4, 'Dan', 29, '98103'), "
        "(5, 'Erin', 45, '98102')"
    )
    db.execute(
        "INSERT INTO disease VALUES "
        "(1, 'diabetes'), (2, 'flu'), (3, 'diabetes'), (4, 'asthma'), "
        "(5, 'flu')"
    )
    # every patient is sensitive: HIPAA requests can come from anyone, so
    # the expression covers the whole table (the paper's scaling argument)
    db.execute(
        "CREATE AUDIT EXPRESSION audit_patients AS SELECT * FROM patients "
        "FOR SENSITIVE TABLE patients, PARTITION BY patientid"
    )
    db.execute(
        "CREATE TRIGGER record_disclosures ON ACCESS TO audit_patients AS "
        "INSERT INTO disclosure_log SELECT cast_varchar(now()), user_id(), "
        "sql_text(), patientid FROM accessed"
    )
    return db


WORKLOAD = (
    # (user, query) — a day at the clinic
    ("dr_house", "SELECT p.name, d.disease FROM patients p, disease d "
                 "WHERE p.patientid = d.patientid AND d.disease = 'diabetes'"),
    ("billing",  "SELECT COUNT(*) FROM patients WHERE zip = '98102'"),
    ("marketing", "SELECT 1 FROM patients WHERE EXISTS "
                  "(SELECT * FROM patients p, disease d "
                  "WHERE p.patientid = d.patientid AND p.name = 'Alice' "
                  "AND d.disease = 'diabetes')"),
    ("dr_wilson", "SELECT name FROM patients WHERE zip = '98103'"),
)


def main() -> None:
    db = build_clinic()

    print("running the day's workload through SELECT triggers...\n")
    for user, query in WORKLOAD:
        db.session.user_id = user
        db.execute(query)
    db.session.user_id = "security_admin"

    print("disclosure log (online, possibly with false positives):")
    for when, who, query, patient in db.execute(
        "SELECT ts, uid, query, patientid FROM disclosure_log "
        "ORDER BY uid, patientid"
    ):
        print(f"   user={who:<10} patient={patient}")

    # ---- Alice (patientid 1) files a HIPAA request -----------------------
    print("\nAlice requests her accounting of disclosures.")
    candidates = db.execute(
        "SELECT DISTINCT uid, query FROM disclosure_log "
        "WHERE patientid = 1"
    ).rows
    print(f"   {len(candidates)} candidate queries touch her record")

    # offline verification (Definition 2.3): did each flagged query really
    # access Alice's tuple?
    auditor = OfflineAuditor(db)
    verified = []
    for user, query in candidates:
        accessed = auditor.audit(query, "audit_patients")
        if 1 in accessed:
            verified.append((user, query))
    print("   offline-verified disclosures of Alice's record:")
    for user, query in verified:
        print(f"     -> {user}: {query[:64]}...")

    # the marketing probe (an inference attack) must be among them
    users = {user for user, __ in verified}
    assert "marketing" in users, "the inference attack must be disclosed"
    assert "dr_house" in users
    assert "dr_wilson" not in users, "Dan's zip query never touched Alice"
    print("\nHIPAA answer:", ", ".join(sorted(users)))


if __name__ == "__main__":
    main()
