"""Fault-tolerance tests for the scatter-gather coordinator.

The contract under test, per failure class:

* **transient fragment failures** (an ``Exception`` at the scatter
  site) retry with jittered exponential backoff and converge to the
  exact single-node result — retries are invisible except in the
  ``scatter_retries`` counter;
* **deterministic engine errors** (``ReproError``) propagate unchanged
  with zero retries and zero health damage (single-vs-cluster parity);
* **slow or hung shards** are bounded by ``shard_deadline``: the
  fragment is cancelled cooperatively, the miss is a health failure,
  and repeated misses escalate healthy → suspect → quarantined;
* **dead shards** (``CrashError``) quarantine immediately; reads
  degrade under ``fail_open`` (one audit gap per skipped shard) and
  refuse under ``fail_closed``; DML to a quarantined owner is refused
  up front and never retried;
* **rejoin** repairs stale replicas from a live copy, replays the
  shard's journal with the original attribution, and restores full
  parity.

Plus the satellites: :func:`repro.cluster.health.backoff_delay`
property bounds, ``retry_after`` on overload error frames, and
``retried_batches`` in ``audit_trail_health``.
"""

from __future__ import annotations

import datetime
import threading
import time

import pytest
from hypothesis import given, settings, strategies as st

from repro.cluster import (
    HEALTHY,
    QUARANTINED,
    SUSPECT,
    ClusterDatabase,
    HealthTracker,
    backoff_delay,
    shard_of,
)
from repro.database import Database
from repro.errors import (
    AuditUnavailableError,
    ClusterDegradedError,
    ExecutionError,
    ServerOverloadedError,
    ShardTimeoutError,
)
from repro.server import Connection, protocol
from repro.testing import CrashError, FaultInjector

pytestmark = pytest.mark.filterwarnings(
    "ignore::pytest.PytestUnhandledThreadExceptionWarning"
)

_CLOCK = lambda: datetime.datetime(2013, 4, 8, 12, 0, 0)  # noqa: E731

SCHEMA = """
CREATE TABLE patients (pid INT PRIMARY KEY, name VARCHAR, disease VARCHAR,
                       age INT, zip VARCHAR);
CREATE TABLE visits (vid INT PRIMARY KEY, pid INT, cost INT);
CREATE TABLE audit_log (uid VARCHAR, pid INT);
CREATE AUDIT EXPRESSION sick AS SELECT pid FROM patients
    WHERE disease = 'flu' FOR SENSITIVE TABLE patients, PARTITION BY pid;
"""

TRIGGER = ("CREATE TRIGGER log_access ON ACCESS TO sick AS "
           "INSERT INTO audit_log SELECT user_id(), pid FROM accessed")

DISEASES = ("flu", "cold", "flu", "cough")

ARMED = "SELECT pid, name FROM patients WHERE disease = 'flu' ORDER BY pid"


def _load(db, rows: int = 24) -> None:
    db.execute_script(SCHEMA)
    for i in range(rows):
        db.execute(
            f"INSERT INTO patients VALUES ({i}, 'p{i}', "
            f"'{DISEASES[i % len(DISEASES)]}', {20 + i % 7}, "
            f"'{11111 * (1 + i % 3)}')"
        )
        db.execute(f"INSERT INTO visits VALUES ({100 + i}, {i}, {i * 10})")


def _pair(shards: int = 3, rows: int = 24, **cluster_kwargs):
    single = Database(clock=_CLOCK)
    cluster = ClusterDatabase(shards=shards, clock=_CLOCK, **cluster_kwargs)
    _load(single, rows)
    _load(cluster, rows)
    return single, cluster


def _faulty_cluster(shards: int = 3, victim: int = 1, **cluster_kwargs):
    """A loaded cluster with a dedicated injector on shard ``victim``."""
    injector = FaultInjector()
    cluster = ClusterDatabase(
        shards=shards,
        clock=_CLOCK,
        shard_fault_injectors={victim: injector},
        **cluster_kwargs,
    )
    _load(cluster)
    return cluster, injector


def _key_owned_by(shard: int, shards: int = 3, start: int = 1000) -> int:
    key = start
    while shard_of(key, shards) != shard:
        key += 1
    return key


# ----------------------------------------------------------------------
# backoff_delay: property tests (satellite 4)


@settings(max_examples=200, deadline=None)
@given(
    attempt=st.integers(min_value=0, max_value=40),
    base=st.floats(min_value=0.0, max_value=10.0,
                   allow_nan=False, allow_infinity=False),
    spread=st.floats(min_value=0.0, max_value=100.0,
                     allow_nan=False, allow_infinity=False),
    seed=st.integers(min_value=0, max_value=2**32 - 1),
)
def test_backoff_delay_always_within_base_and_cap(
    attempt, base, spread, seed
) -> None:
    import random

    cap = base + spread
    delay = backoff_delay(attempt, base, cap, random.Random(seed))
    assert base <= delay <= cap


@settings(max_examples=100, deadline=None)
@given(
    attempt=st.integers(min_value=0, max_value=20),
    seed=st.integers(min_value=0, max_value=2**32 - 1),
)
def test_backoff_delay_range_grows_exponentially(attempt, seed) -> None:
    """With the same draw, a later attempt never gets a *smaller* delay
    and stays under the exponential ceiling until it saturates at cap."""
    import random

    base, cap = 0.01, 100.0
    draw = random.Random(seed).random()

    class _Fixed:
        def random(self):
            return draw

    this = backoff_delay(attempt, base, cap, _Fixed())
    after = backoff_delay(attempt + 1, base, cap, _Fixed())
    assert this <= after
    assert this <= min(cap, base * 2 ** attempt)


def test_backoff_delay_rejects_bad_bounds() -> None:
    import random

    with pytest.raises(ValueError):
        backoff_delay(0, -0.1, 1.0, random.Random(0))
    with pytest.raises(ValueError):
        backoff_delay(0, 1.0, 0.5, random.Random(0))


def test_backoff_delay_degenerate_base_equals_cap() -> None:
    import random

    assert backoff_delay(7, 0.25, 0.25, random.Random(3)) == 0.25


# ----------------------------------------------------------------------
# HealthTracker: breaker state machine


def test_health_tracker_escalates_and_resets() -> None:
    tracker = HealthTracker(2, suspect_after=1, quarantine_after=3)
    assert tracker.state(0) == HEALTHY
    assert tracker.record_failure(0, OSError("x")) == SUSPECT
    assert tracker.record_failure(0, OSError("x")) == SUSPECT
    # success before the threshold resets the streak entirely
    tracker.record_success(0)
    assert tracker.state(0) == HEALTHY
    for _ in range(3):
        state = tracker.record_failure(0, OSError("x"))
    assert state == QUARANTINED
    assert tracker.is_quarantined(0)
    assert tracker.live() == (1,)
    assert tracker.quarantined() == (0,)
    # quarantine is sticky: successes do not readmit behind our back
    tracker.record_success(0)
    assert tracker.state(0) == QUARANTINED
    tracker.readmit(0)
    assert tracker.state(0) == HEALTHY
    assert tracker.live() == (0, 1)


def test_health_tracker_fatal_failure_skips_suspect() -> None:
    tracker = HealthTracker(3)
    assert tracker.record_failure(2, CrashError("dead"), fatal=True) \
        == QUARANTINED
    (entry,) = [d for d in tracker.describe() if d["shard"] == 2]
    assert entry["state"] == QUARANTINED
    assert "dead" in entry["quarantine_reason"]


# ----------------------------------------------------------------------
# transient failures: retry with parity


def test_transient_scatter_failure_retries_to_parity() -> None:
    single = Database(clock=_CLOCK)
    _load(single)
    cluster, injector = _faulty_cluster(shard_retries=2,
                                        retry_backoff_base=0.001,
                                        retry_backoff_cap=0.01)
    try:
        injector.arm("shard-scatter", error=OSError("blip"))
        result = cluster.execute(ARMED)
        assert result.rows_list() == single.execute(ARMED).rows_list()
        assert result.accessed == single.execute(ARMED).accessed
        health = cluster.cluster_health()
        assert health["scatter_retries"] >= 1
        assert health["quarantined"] == []
        assert all(d["state"] == HEALTHY for d in health["shards"])
        assert cluster.cluster_gaps == []
    finally:
        cluster.close()
        single.close()


def test_retries_exhausted_fail_open_degrades_with_gap() -> None:
    cluster, injector = _faulty_cluster(
        shard_retries=1, retry_backoff_base=0.001, retry_backoff_cap=0.01,
        audit_policy="fail_open", degraded_reads=True,
    )
    try:
        injector.arm("shard-scatter", error=OSError("down"), repeat=True)
        full = 24
        result = cluster.execute("SELECT COUNT(*) FROM patients")
        # partial: the victim's rows are missing
        assert result.rows_list()[0][0] < full
        health = cluster.cluster_health()
        assert health["degraded_reads"] >= 1
        (gap,) = [g for g in cluster.cluster_gaps
                  if g["site"] == "shard-read"]
        assert gap["shard"] == 1
        assert "COUNT" in gap["sql"]
        # the damage shows up in the merged audit-trail health
        assert cluster.audit_trail_health()["audit_gaps"] >= 1
    finally:
        cluster.close()


def test_retries_exhausted_fail_closed_refuses() -> None:
    cluster, injector = _faulty_cluster(
        shard_retries=1, retry_backoff_base=0.001, retry_backoff_cap=0.01,
        audit_policy="fail_closed",
    )
    try:
        injector.arm("shard-scatter", error=OSError("down"), repeat=True)
        with pytest.raises(ClusterDegradedError) as excinfo:
            cluster.execute(ARMED)
        assert excinfo.value.shards == (1,)
        assert cluster.cluster_gaps == []  # refusal leaves no gap
    finally:
        cluster.close()


def test_degraded_reads_off_refuses_even_fail_open() -> None:
    cluster, injector = _faulty_cluster(
        shard_retries=0, audit_policy="fail_open", degraded_reads=False,
    )
    try:
        injector.arm("shard-scatter", error=OSError("down"), repeat=True)
        with pytest.raises(ClusterDegradedError):
            cluster.execute(ARMED)
    finally:
        cluster.close()


def test_deterministic_errors_propagate_without_retry() -> None:
    single = Database(clock=_CLOCK)
    _load(single)
    cluster = ClusterDatabase(shards=3, clock=_CLOCK, shard_retries=5)
    _load(cluster)
    bad = "SELECT age / (age - age) FROM patients"
    try:
        with pytest.raises(ExecutionError):
            single.execute(bad)
        with pytest.raises(ExecutionError):
            cluster.execute(bad)
        health = cluster.cluster_health()
        # a ReproError is the query's fault, not the shard's
        assert health["scatter_retries"] == 0
        assert all(d["state"] == HEALTHY for d in health["shards"])
    finally:
        cluster.close()
        single.close()


# ----------------------------------------------------------------------
# deadlines: bounded latency + breaker escalation


def test_shard_deadline_bounds_a_hung_shard() -> None:
    cluster, injector = _faulty_cluster(
        shard_deadline=0.2, shard_retries=0,
        audit_policy="fail_open", quarantine_after=3,
    )
    try:
        injector.arm_latency("shard-scatter", delay_s=5.0, repeat=True)
        started = time.monotonic()
        result = cluster.execute("SELECT COUNT(*) FROM patients")
        elapsed = time.monotonic() - started
        assert elapsed < 2.5, f"deadline did not bound the hang: {elapsed}"
        assert result.rows_list()[0][0] < 24
        health = cluster.cluster_health()
        assert health["deadline_timeouts"] >= 1
        assert health["shards"][1]["state"] in (SUSPECT, QUARANTINED)
        assert "ShardTimeoutError" in str(health["shards"][1]["last_error"])
    finally:
        cluster.close()


def test_repeated_deadline_misses_quarantine_then_skip() -> None:
    cluster, injector = _faulty_cluster(
        shard_deadline=0.15, shard_retries=0,
        audit_policy="fail_open", quarantine_after=2,
    )
    try:
        injector.arm_latency("shard-scatter", delay_s=5.0, repeat=True)
        cluster.execute("SELECT COUNT(*) FROM patients")
        cluster.execute("SELECT COUNT(*) FROM patients")
        assert cluster.cluster_health()["quarantined"] == [1]
        hits = injector.hit_count("shard-scatter")
        started = time.monotonic()
        cluster.execute("SELECT COUNT(*) FROM patients")
        elapsed = time.monotonic() - started
        # quarantined shard is skipped outright: no new fault-site hits,
        # no deadline wait
        assert injector.hit_count("shard-scatter") == hits
        assert elapsed < 0.15
    finally:
        cluster.close()


def test_deadline_fail_closed_raises_with_timeout_cause() -> None:
    cluster, injector = _faulty_cluster(
        shard_deadline=0.2, shard_retries=0, audit_policy="fail_closed",
    )
    try:
        injector.arm_latency("shard-scatter", delay_s=5.0, repeat=True)
        started = time.monotonic()
        with pytest.raises(ClusterDegradedError) as excinfo:
            cluster.execute(ARMED)
        assert time.monotonic() - started < 2.5
        assert isinstance(excinfo.value.__cause__, ShardTimeoutError)
    finally:
        cluster.close()


def test_failed_scatter_releases_locks() -> None:
    """Satellite 1: an aborted scatter must not wedge later writes."""
    cluster, injector = _faulty_cluster(
        shard_deadline=0.2, shard_retries=0, audit_policy="fail_closed",
    )
    try:
        injector.arm_latency("shard-scatter", delay_s=5.0, repeat=True)
        with pytest.raises(ClusterDegradedError):
            cluster.execute(ARMED)
        injector.disarm()
        done = threading.Event()

        def _write():
            cluster.execute(
                "INSERT INTO patients VALUES (500, 'late', 'flu', 40, '1')"
            )
            done.set()

        worker = threading.Thread(target=_write, daemon=True)
        worker.start()
        worker.join(timeout=10.0)
        assert done.is_set(), "post-failure DML deadlocked on a stale lock"
        assert cluster.execute(
            "SELECT COUNT(*) FROM patients WHERE pid = 500"
        ).rows_list() == [(1,)]
    finally:
        cluster.close()


# ----------------------------------------------------------------------
# dead shards: quarantine, DML refusal, never-retried DML


def test_crash_error_quarantines_immediately() -> None:
    cluster, injector = _faulty_cluster(
        shard_retries=5, audit_policy="fail_open",
    )
    try:
        injector.arm("shard-scatter", error=CrashError("shard died"))
        cluster.execute("SELECT COUNT(*) FROM patients")
        health = cluster.cluster_health()
        assert health["quarantined"] == [1]
        # fatal: no retry was attempted against the corpse
        assert health["scatter_retries"] == 0
    finally:
        cluster.close()


def test_dml_to_quarantined_owner_refused_never_retried() -> None:
    cluster, injector = _faulty_cluster(shard_retries=5)
    try:
        loaded_hits = injector.hit_count("shard-dml")
        cluster.quarantine_shard(1, "test")
        dead_key = _key_owned_by(1)
        live_key = _key_owned_by(0)
        with pytest.raises(ClusterDegradedError) as excinfo:
            cluster.execute(
                f"INSERT INTO patients VALUES ({dead_key}, 'x', 'flu', 1, '1')"
            )
        assert excinfo.value.shards == (1,)
        # a live owner still accepts writes while shard 1 is down
        cluster.execute(
            f"INSERT INTO patients VALUES ({live_key}, 'y', 'flu', 1, '1')"
        )
        # partitioned UPDATE / DELETE / DDL all refuse outright
        for sql in (
            "UPDATE patients SET age = 1 WHERE pid = 0",
            "DELETE FROM patients WHERE pid = 0",
            "CREATE TABLE later (x INT)",
        ):
            with pytest.raises(ClusterDegradedError):
                cluster.execute(sql)
        # refusal happens before the shard-dml fault site: no new hits
        # on the dead shard, so nothing was (re)tried against it
        assert injector.hit_count("shard-dml") == loaded_hits
    finally:
        cluster.close()


def test_failing_dml_is_never_retried() -> None:
    cluster, injector = _faulty_cluster(shard_retries=5)
    try:
        injector.arm("shard-dml", error=OSError("disk full"), repeat=True)
        before = injector.hit_count("shard-dml")
        key = _key_owned_by(1)
        with pytest.raises(OSError):
            cluster.execute(
                f"INSERT INTO patients VALUES ({key}, 'z', 'flu', 1, '1')"
            )
        # exactly one hit: DML is not idempotent, so no backoff loop
        assert injector.hit_count("shard-dml") == before + 1
        assert cluster.cluster_health()["shards"][1]["state"] == SUSPECT
    finally:
        cluster.close()


# ----------------------------------------------------------------------
# journal slice failures feed the audit policy


def test_shard_journal_failure_fail_open_records_gap(tmp_path) -> None:
    injector = FaultInjector()
    cluster = ClusterDatabase(
        shards=3, clock=_CLOCK, shard_fault_injectors={1: injector},
        audit_policy="fail_open",
    )
    cluster.attach_journal(tmp_path / "j")
    _load(cluster)
    cluster.execute(TRIGGER)
    try:
        injector.arm("shard-journal", error=OSError("io"), repeat=True)
        cluster.execute(ARMED)  # armed query journals intents per shard
        gaps = [g for g in cluster.cluster_gaps
                if g["site"] == "shard-journal"]
        assert gaps and gaps[0]["shard"] == 1
    finally:
        cluster.close()


def test_shard_journal_failure_fail_closed_refuses(tmp_path) -> None:
    injector = FaultInjector()
    cluster = ClusterDatabase(
        shards=3, clock=_CLOCK, shard_fault_injectors={1: injector},
        audit_policy="fail_closed",
    )
    cluster.attach_journal(tmp_path / "j")
    _load(cluster)
    cluster.execute(TRIGGER)
    try:
        injector.arm("shard-journal", error=OSError("io"), repeat=True)
        with pytest.raises(AuditUnavailableError):
            cluster.execute(ARMED)
    finally:
        cluster.close()


# ----------------------------------------------------------------------
# rejoin: replica repair + journal replay with original attribution


def test_rejoin_repairs_replicas_and_restores_parity(tmp_path) -> None:
    single = Database(clock=_CLOCK)
    _load(single)
    single.execute(TRIGGER)
    cluster, injector = _faulty_cluster(audit_policy="fail_open")
    cluster.attach_journal(tmp_path / "j")
    cluster.execute(TRIGGER)
    try:
        # kill shard 1, then keep working degraded
        injector.arm("shard-scatter", error=CrashError("died"))
        single.execute("SELECT COUNT(*) FROM patients")
        cluster.execute("SELECT COUNT(*) FROM patients")
        assert cluster.cluster_health()["quarantined"] == [1]
        # replicated DML while down: replicas diverge, cluster stays up
        single.execute("INSERT INTO visits VALUES (900, 0, 5)")
        cluster.execute("INSERT INTO visits VALUES (900, 0, 5)")
        assert "visits" in cluster.cluster_health()["stale_replicas"]
        # an armed query under a different user, while degraded
        single.session.user_id = "carol"
        cluster.session.user_id = "carol"
        single.execute(ARMED)
        cluster.execute(ARMED)
        single.session.user_id = "admin"
        cluster.session.user_id = "admin"

        report = cluster.rejoin_shard(1)
        health = cluster.cluster_health()
        assert health["quarantined"] == []
        assert health["stale_replicas"] == []
        assert report is not None
        # rejoined replica matches a live one
        sizes = {len(list(shard.catalog.table("visits").rows()))
                 for shard in cluster.shards}
        assert len(sizes) == 1
        # replay added no duplicate firings: attribution matches single
        lhs = sorted(single.execute(
            "SELECT uid, pid FROM audit_log"
        ).rows_list())
        rhs = sorted(cluster.execute(
            "SELECT uid, pid FROM audit_log"
        ).rows_list())
        # degraded-read firings on the dead shard are lost (they are the
        # recorded gap) — everything attributed must be a subset with
        # the same users, and post-rejoin queries fully match
        assert set(rhs) <= set(lhs)
        post_single = single.execute(ARMED)
        post_cluster = cluster.execute(ARMED)
        assert post_single.rows_list() == post_cluster.rows_list()
        assert post_single.accessed == post_cluster.accessed
    finally:
        cluster.close()
        single.close()


def test_rejoin_replays_uncommitted_intent_with_original_user(
    tmp_path
) -> None:
    cluster = ClusterDatabase(shards=3, clock=_CLOCK)
    cluster.attach_journal(tmp_path / "j")
    _load(cluster)
    cluster.execute(TRIGGER)
    try:
        shard = cluster.shard(1)
        ids = frozenset(
            row[0] for row in shard.catalog.table("patients").rows()
            if row[2] == "flu"
        )
        assert ids
        # a journalled intent that never committed (simulated crash
        # between intent and firing), attributed to carol
        original = shard.session.user_id
        shard.session.user_id = "carol"
        try:
            shard._journal_intent({"sick": ids})
        finally:
            shard.session.user_id = original
        cluster.quarantine_shard(1, "crash before commit")
        report = cluster.rejoin_shard(1)
        assert report.replayed >= 1
        rows = cluster.execute(
            "SELECT uid, pid FROM audit_log WHERE uid = 'carol'"
        ).rows_list()
        assert sorted(row[1] for row in rows) == sorted(ids)
    finally:
        cluster.close()


def test_rejoin_never_repairs_from_stale_source() -> None:
    """Committed replicated DML survives a double quarantine.

    Shard 1 misses an INSERT while down; with shard 0 then also down,
    rejoining 1 first must NOT treat its lagging copy as authoritative:
    it is readmitted visibly stale, and rejoining 0 repairs 0 → 1 (the
    fresh direction) — the committed row ends up on every shard.
    """
    cluster = ClusterDatabase(shards=2, clock=_CLOCK)
    _load(cluster)
    try:
        cluster.quarantine_shard(1)
        cluster.execute("INSERT INTO visits VALUES (900, 0, 5)")
        assert cluster.cluster_health()["stale_replicas"] == ["visits"]
        cluster.quarantine_shard(0)
        cluster.rejoin_shard(1)
        # no fresh source is live: shard 1 comes back loudly stale, not
        # silently "repaired" from nothing
        health = cluster.cluster_health()
        assert health["quarantined"] == [0]
        assert health["stale_replicas"] == ["visits"]
        assert health["stale_replicas_by_shard"] == {1: ["visits"]}
        cluster.rejoin_shard(0)
        assert cluster.cluster_health()["stale_replicas"] == []
        # shard 0 carried the only fresh copy; every replica has the row
        for shard in cluster.shards:
            rows = [r for r in shard.catalog.table("visits").rows()
                    if r[0] == 900]
            assert len(rows) == 1
        assert cluster.execute(
            "SELECT COUNT(*) FROM visits WHERE vid = 900"
        ).rows_list() == [(1,)]
    finally:
        cluster.close()


def test_split_brain_replicas_stay_loud_and_block_reshard() -> None:
    """Divergence both ways is recorded per shard, never resolved by
    guessing a direction, and reshard() refuses to seed new shards from
    a stale copy (it would silently drop one side's committed rows)."""
    cluster = ClusterDatabase(shards=2, clock=_CLOCK)
    _load(cluster)
    try:
        cluster.quarantine_shard(1)
        cluster.execute("INSERT INTO visits VALUES (902, 0, 5)")
        cluster.quarantine_shard(0)
        cluster.rejoin_shard(1)  # readmitted stale — no fresh source
        # this INSERT lands only on shard 1: each replica now has a
        # committed row the other missed
        cluster.execute("INSERT INTO visits VALUES (904, 1, 6)")
        cluster.rejoin_shard(0)
        health = cluster.cluster_health()
        assert health["quarantined"] == []
        assert health["stale_replicas"] == ["visits"]
        assert health["stale_replicas_by_shard"] == {
            0: ["visits"], 1: ["visits"],
        }
        with pytest.raises(ClusterDegradedError):
            cluster.reshard(3)
    finally:
        cluster.close()


def test_replicated_dml_with_no_live_replica_refuses_unmarked() -> None:
    """With every shard down, replicated DML refuses — and since no
    replica applied anything, nothing diverged and nothing is marked
    stale (a spurious mark would misdirect the next rejoin's repair)."""
    cluster = ClusterDatabase(shards=2, clock=_CLOCK)
    _load(cluster)
    try:
        cluster.quarantine_shard(0)
        cluster.quarantine_shard(1)
        with pytest.raises(ClusterDegradedError):
            cluster.execute("INSERT INTO visits VALUES (903, 0, 5)")
        with pytest.raises(ClusterDegradedError):
            cluster.execute("DELETE FROM visits WHERE vid = 100")
        health = cluster.cluster_health()
        assert health["stale_replicas"] == []
        assert health["stale_replicas_by_shard"] == {}
    finally:
        cluster.close()


def test_inline_scatter_honours_deadline() -> None:
    """The inline path (single shard / trigger firing) has no gather
    thread to time out a future, so the fragment's own DeadlineToken
    must bound an armed latency fault instead of hanging unboundedly."""
    injector = FaultInjector()
    cluster = ClusterDatabase(
        shards=1, clock=_CLOCK, shard_fault_injectors={0: injector},
        shard_deadline=0.2, shard_retries=0, audit_policy="fail_open",
    )
    _load(cluster)
    try:
        injector.arm_latency("shard-scatter", delay_s=5.0, repeat=True)
        started = time.monotonic()
        cluster.execute("SELECT COUNT(*) FROM patients")
        elapsed = time.monotonic() - started
        assert elapsed < 2.5, f"inline deadline did not bound: {elapsed}"
        health = cluster.cluster_health()
        assert health["deadline_timeouts"] >= 1
        assert "ShardTimeoutError" in str(health["shards"][0]["last_error"])
    finally:
        cluster.close()


def test_rejoin_refuses_healthy_shard_and_bad_index() -> None:
    from repro.errors import ClusterError

    cluster = ClusterDatabase(shards=2, clock=_CLOCK)
    _load(cluster)
    try:
        with pytest.raises(ClusterError):
            cluster.rejoin_shard(0)
        with pytest.raises(ValueError):
            cluster.rejoin_shard(7)
    finally:
        cluster.close()


def test_reshard_refused_while_quarantined() -> None:
    cluster = ClusterDatabase(shards=3, clock=_CLOCK)
    _load(cluster)
    try:
        cluster.quarantine_shard(2, "test")
        with pytest.raises(ClusterDegradedError):
            cluster.reshard(5)
    finally:
        cluster.close()


# ----------------------------------------------------------------------
# satellites: retry_after on the wire, retried_batches in health


def test_overload_error_frame_carries_retry_after() -> None:
    frame = protocol.error_frame(
        ServerOverloadedError("busy", retry_after=5.0)
    )
    assert frame["code"] == "ServerOverloadedError"
    assert frame["retry_after"] == 5.0
    with pytest.raises(ServerOverloadedError) as excinfo:
        protocol.raise_error_frame(frame)
    assert excinfo.value.retry_after == 5.0
    # errors without a hint stay hint-free on the wire
    plain = protocol.error_frame(ServerOverloadedError("shutting down"))
    assert "retry_after" not in plain


def test_overload_retry_after_round_trips_over_socket() -> None:
    db = Database(clock=_CLOCK)
    db.execute("CREATE TABLE t (x INT)")
    with db.serve(max_connections=1, admission_queue=0,
                  admission_timeout=0.3) as server:
        with Connection(server.host, server.port, user_id="a"):
            with pytest.raises(ServerOverloadedError) as excinfo:
                Connection(server.host, server.port, user_id="b")
            assert excinfo.value.retry_after == pytest.approx(0.3)


def test_audit_trail_health_reports_retried_batches() -> None:
    db = Database(clock=_CLOCK)
    try:
        health = db.audit_trail_health()
        assert "retried_batches" in health
        assert health["retried_batches"] == 0
    finally:
        db.close()


def test_health_frame_single_node_and_cluster() -> None:
    db = Database(clock=_CLOCK)
    db.execute("CREATE TABLE t (x INT)")
    with db.serve(close_database=False) as server:
        with Connection(server.host, server.port, user_id="u") as conn:
            report = conn.health()
            assert report["cluster"] is None
            assert "audit_gaps" in report["audit_trail"]
    db.close()

    cluster = ClusterDatabase(shards=2, clock=_CLOCK)
    _load(cluster, rows=8)
    with cluster.serve(close_database=False) as server:
        with Connection(server.host, server.port, user_id="u") as conn:
            report = conn.health()
            assert report["cluster"] is not None
            assert len(report["cluster"]["shards"]) == 2
            assert report["cluster"]["quarantined"] == []
            assert "retried_batches" in report["audit_trail"]
    cluster.close()
