"""Unit tests for the SQL parser: statements, expressions, error cases."""

import datetime

import pytest

from repro.datatypes import Interval
from repro.errors import SqlSyntaxError, UnsupportedSqlError
from repro.expr.nodes import (
    Between,
    Binary,
    Case,
    ColumnRef,
    Exists,
    FunctionCall,
    InList,
    InSubquery,
    IntervalLiteral,
    IsNull,
    Like,
    Literal,
    Parameter,
    ScalarSubquery,
    Star,
    Unary,
)
from repro.sql import ast
from repro.sql.parser import parse_expression, parse_statement, parse_statements


class TestExpressions:
    def test_precedence_or_and(self):
        e = parse_expression("a OR b AND c")
        assert isinstance(e, Binary) and e.op == "OR"
        assert isinstance(e.right, Binary) and e.right.op == "AND"

    def test_precedence_arithmetic(self):
        e = parse_expression("1 + 2 * 3")
        assert isinstance(e, Binary) and e.op == "+"
        assert isinstance(e.right, Binary) and e.right.op == "*"

    def test_parenthesized(self):
        e = parse_expression("(1 + 2) * 3")
        assert e.op == "*"
        assert isinstance(e.left, Binary) and e.left.op == "+"

    def test_not_precedence(self):
        e = parse_expression("NOT a = 1 AND b = 2")
        assert isinstance(e, Binary) and e.op == "AND"
        assert isinstance(e.left, Unary) and e.left.op == "NOT"

    def test_comparison_aliases(self):
        assert parse_expression("a != 1").op == "<>"

    def test_qualified_column(self):
        e = parse_expression("p1.zip")
        assert e == ColumnRef("zip", qualifier="p1")

    def test_literals(self):
        assert parse_expression("42") == Literal(42)
        assert parse_expression("3.5") == Literal(3.5)
        assert parse_expression("'hi'") == Literal("hi")
        assert parse_expression("NULL") == Literal(None)
        assert parse_expression("TRUE") == Literal(True)

    def test_date_literal(self):
        assert parse_expression("DATE '1995-03-15'") == Literal(
            datetime.date(1995, 3, 15)
        )

    def test_bad_date_literal(self):
        with pytest.raises(SqlSyntaxError):
            parse_expression("DATE '1995-13-01'")

    def test_date_as_column_name(self):
        # DATE is a soft keyword: bare use is a column reference
        assert parse_expression("date") == ColumnRef("date")

    def test_interval_literal(self):
        e = parse_expression("INTERVAL '3' MONTH")
        assert e == IntervalLiteral(Interval(3, "MONTH"))

    def test_parameter(self):
        assert parse_expression(":seg") == Parameter("seg")

    def test_between(self):
        e = parse_expression("x BETWEEN 1 AND 10")
        assert isinstance(e, Between) and not e.negated

    def test_not_between(self):
        e = parse_expression("x NOT BETWEEN 1 AND 10")
        assert isinstance(e, Between) and e.negated

    def test_like(self):
        e = parse_expression("name LIKE 'A%'")
        assert isinstance(e, Like) and not e.negated

    def test_in_list(self):
        e = parse_expression("x IN (1, 2, 3)")
        assert isinstance(e, InList)
        assert len(e.items) == 3

    def test_not_in_subquery(self):
        e = parse_expression("x NOT IN (SELECT y FROM t)")
        assert isinstance(e, InSubquery) and e.negated

    def test_exists(self):
        e = parse_expression("EXISTS (SELECT 1 FROM t)")
        assert isinstance(e, Exists) and not e.negated

    def test_not_exists(self):
        e = parse_expression("NOT EXISTS (SELECT 1 FROM t)")
        assert isinstance(e, Unary) and e.op == "NOT"
        assert isinstance(e.operand, Exists)

    def test_scalar_subquery(self):
        e = parse_expression("(SELECT MAX(x) FROM t)")
        assert isinstance(e, ScalarSubquery)

    def test_is_null_and_is_not_null(self):
        assert parse_expression("x IS NULL") == IsNull(ColumnRef("x"))
        e = parse_expression("x IS NOT NULL")
        assert isinstance(e, IsNull) and e.negated

    def test_case_searched(self):
        e = parse_expression(
            "CASE WHEN a = 1 THEN 'one' ELSE 'many' END"
        )
        assert isinstance(e, Case)
        assert e.operand is None
        assert e.default == Literal("many")

    def test_case_simple(self):
        e = parse_expression("CASE a WHEN 1 THEN 'one' END")
        assert isinstance(e, Case) and e.operand == ColumnRef("a")

    def test_case_requires_when(self):
        with pytest.raises(SqlSyntaxError):
            parse_expression("CASE ELSE 1 END")

    def test_function_call(self):
        e = parse_expression("substring(phone, 1, 2)")
        assert e == FunctionCall(
            "substring",
            (ColumnRef("phone"), Literal(1), Literal(2)),
        )

    def test_substring_from_for(self):
        e = parse_expression("SUBSTRING(phone FROM 1 FOR 2)")
        assert isinstance(e, FunctionCall) and e.name == "substring"
        assert len(e.args) == 3

    def test_extract(self):
        e = parse_expression("EXTRACT(YEAR FROM shipdate)")
        assert e == FunctionCall("extract_year", (ColumnRef("shipdate"),))

    def test_cast(self):
        e = parse_expression("CAST(x AS INT)")
        assert e == FunctionCall("cast_int", (ColumnRef("x"),))

    def test_count_star(self):
        e = parse_expression("COUNT(*)")
        assert isinstance(e, FunctionCall)
        assert e.args == (Star(),)

    def test_count_distinct(self):
        e = parse_expression("COUNT(DISTINCT patientid)")
        assert isinstance(e, FunctionCall) and e.distinct

    def test_distinct_in_scalar_function_rejected(self):
        with pytest.raises(SqlSyntaxError):
            parse_expression("substring(DISTINCT x)")

    def test_unary_minus(self):
        e = parse_expression("-x")
        assert isinstance(e, Unary) and e.op == "-"

    def test_concat_operator(self):
        e = parse_expression("a || b")
        assert isinstance(e, Binary) and e.op == "||"


class TestSelect:
    def test_basic_shape(self):
        s = parse_statement("SELECT a, b AS bee FROM t WHERE a > 1")
        assert isinstance(s, ast.SelectStatement)
        assert len(s.items) == 2
        assert s.items[1].alias == "bee"
        assert s.where is not None

    def test_alias_without_as(self):
        s = parse_statement("SELECT a + 1 total FROM t")
        assert s.items[0].alias == "total"

    def test_star_and_qualified_star(self):
        s = parse_statement("SELECT *, p.* FROM p")
        assert isinstance(s.items[0].expression, Star)
        assert s.items[1].expression == Star(qualifier="p")

    def test_distinct(self):
        assert parse_statement("SELECT DISTINCT a FROM t").distinct

    def test_group_by_having(self):
        s = parse_statement(
            "SELECT a, COUNT(*) FROM t GROUP BY a HAVING COUNT(*) > 2"
        )
        assert len(s.group_by) == 1
        assert s.having is not None

    def test_order_by_directions(self):
        s = parse_statement("SELECT a FROM t ORDER BY a DESC, b ASC, c")
        assert [item.ascending for item in s.order_by] == [False, True, True]

    def test_limit_and_top(self):
        assert parse_statement("SELECT a FROM t LIMIT 5").limit == 5
        assert parse_statement("SELECT TOP 5 a FROM t").limit == 5

    def test_comma_joins(self):
        s = parse_statement("SELECT 1 FROM a, b, c")
        assert len(s.from_items) == 3

    def test_explicit_join(self):
        s = parse_statement(
            "SELECT 1 FROM a JOIN b ON a.x = b.y LEFT JOIN c ON b.z = c.w"
        )
        join = s.from_items[0]
        assert isinstance(join, ast.JoinRef) and join.kind == "LEFT"
        assert isinstance(join.left, ast.JoinRef)
        assert join.left.kind == "INNER"

    def test_right_join_unsupported(self):
        with pytest.raises(UnsupportedSqlError):
            parse_statement("SELECT 1 FROM a RIGHT JOIN b ON a.x = b.y")

    def test_union_unsupported(self):
        with pytest.raises(UnsupportedSqlError):
            parse_statement("SELECT 1 FROM a UNION SELECT 2 FROM b")

    def test_derived_table(self):
        s = parse_statement("SELECT d.x FROM (SELECT x FROM t) d")
        assert isinstance(s.from_items[0], ast.SubqueryRef)
        assert s.from_items[0].alias == "d"

    def test_from_less_select(self):
        s = parse_statement("SELECT 1")
        assert s.from_items == ()

    def test_table_alias_with_as(self):
        s = parse_statement("SELECT 1 FROM customers AS c")
        ref = s.from_items[0]
        assert ref.name == "customers" and ref.alias == "c"

    def test_trailing_garbage_rejected(self):
        with pytest.raises(SqlSyntaxError):
            parse_statement("SELECT 1 FROM t garbage garbage")


class TestDml:
    def test_insert_values(self):
        s = parse_statement("INSERT INTO t VALUES (1, 'a'), (2, 'b')")
        assert isinstance(s, ast.InsertStatement)
        assert len(s.rows) == 2

    def test_insert_with_columns(self):
        s = parse_statement("INSERT INTO t (a, b) VALUES (1, 2)")
        assert s.columns == ("a", "b")

    def test_insert_select(self):
        s = parse_statement("INSERT INTO t SELECT a FROM u")
        assert s.select is not None

    def test_update(self):
        s = parse_statement("UPDATE t SET a = 1, b = b + 1 WHERE id = 3")
        assert isinstance(s, ast.UpdateStatement)
        assert len(s.assignments) == 2
        assert s.where is not None

    def test_delete(self):
        s = parse_statement("DELETE FROM t WHERE a < 0")
        assert isinstance(s, ast.DeleteStatement)

    def test_delete_without_where(self):
        assert parse_statement("DELETE FROM t").where is None


class TestDdl:
    def test_create_table_inline_pk(self):
        s = parse_statement(
            "CREATE TABLE t (id INT PRIMARY KEY, name VARCHAR(25) NOT NULL)"
        )
        assert s.primary_key == ("id",)
        assert s.columns[1].not_null

    def test_create_table_composite_pk(self):
        s = parse_statement(
            "CREATE TABLE t (a INT, b INT, PRIMARY KEY (a, b))"
        )
        assert s.primary_key == ("a", "b")

    def test_duplicate_pk_specification_rejected(self):
        with pytest.raises(SqlSyntaxError):
            parse_statement(
                "CREATE TABLE t (a INT PRIMARY KEY, PRIMARY KEY (a))"
            )

    def test_foreign_key(self):
        s = parse_statement(
            "CREATE TABLE t (a INT, FOREIGN KEY (a) REFERENCES u (x))"
        )
        assert s.foreign_keys == ((("a",), "u", ("x",)),)

    def test_create_index(self):
        s = parse_statement("CREATE UNIQUE INDEX i ON t (a, b)")
        assert isinstance(s, ast.CreateIndexStatement)
        assert s.unique and s.columns == ("a", "b")

    def test_drop_table(self):
        s = parse_statement("DROP TABLE t")
        assert isinstance(s, ast.DropTableStatement)

    def test_analyze(self):
        assert parse_statement("ANALYZE").table is None
        assert parse_statement("ANALYZE t").table == "t"


class TestAuditDdl:
    def test_create_audit_expression(self):
        s = parse_statement(
            "CREATE AUDIT EXPRESSION audit_alice AS "
            "SELECT * FROM patients WHERE name = 'Alice' "
            "FOR SENSITIVE TABLE patients, PARTITION BY patientid"
        )
        assert isinstance(s, ast.CreateAuditExpressionStatement)
        assert s.name == "audit_alice"
        assert s.sensitive_table == "patients"
        assert s.partition_by == "patientid"

    def test_create_select_trigger(self):
        s = parse_statement(
            "CREATE TRIGGER log_it ON ACCESS TO audit_alice AS "
            "INSERT INTO log SELECT patientid FROM accessed"
        )
        assert isinstance(s, ast.CreateSelectTriggerStatement)
        assert s.audit_expression == "audit_alice"
        assert len(s.body) == 1

    def test_create_dml_trigger(self):
        s = parse_statement(
            "CREATE TRIGGER notify ON log AFTER INSERT AS "
            "IF (1 = 1) SEND EMAIL 'alert'"
        )
        assert isinstance(s, ast.CreateDmlTriggerStatement)
        assert s.event == "INSERT"
        assert isinstance(s.body[0], ast.IfStatement)

    def test_trigger_body_begin_end(self):
        s = parse_statement(
            "CREATE TRIGGER t1 ON ACCESS TO a AS BEGIN "
            "INSERT INTO log SELECT x FROM accessed; "
            "SEND EMAIL 'hi'; END"
        )
        assert len(s.body) == 2

    def test_bad_trigger_event(self):
        with pytest.raises(SqlSyntaxError):
            parse_statement("CREATE TRIGGER t ON x AFTER TRUNCATE AS NOTIFY")

    def test_drop_audit_expression(self):
        s = parse_statement("DROP AUDIT EXPRESSION a")
        assert isinstance(s, ast.DropAuditExpressionStatement)

    def test_drop_trigger(self):
        s = parse_statement("DROP TRIGGER t")
        assert isinstance(s, ast.DropTriggerStatement)


class TestScripts:
    def test_multiple_statements(self):
        statements = parse_statements(
            "CREATE TABLE t (a INT); INSERT INTO t VALUES (1); "
            "SELECT * FROM t;"
        )
        assert len(statements) == 3

    def test_empty_script(self):
        assert parse_statements("") == []
