"""Tests for BEFORE-timing SELECT triggers and DENY (§II future-work
variant: warn or block before results are returned)."""

import pytest

from repro.errors import AccessDeniedError, TriggerError


@pytest.fixture
def guarded_db(patients_db):
    patients_db.execute(
        "CREATE AUDIT EXPRESSION audit_alice AS SELECT * FROM patients "
        "WHERE name = 'Alice' FOR SENSITIVE TABLE patients, "
        "PARTITION BY patientid"
    )
    return patients_db


class TestBeforeTiming:
    def test_before_trigger_warns_without_blocking(self, guarded_db):
        guarded_db.execute(
            "CREATE TRIGGER warn ON ACCESS TO audit_alice BEFORE AS "
            "NOTIFY 'you are reading sensitive data'"
        )
        result = guarded_db.execute(
            "SELECT name FROM patients WHERE name = 'Alice'"
        )
        assert result.rows == [("Alice",)]
        assert guarded_db.notifications == [
            "you are reading sensitive data"
        ]

    def test_deny_blocks_results(self, guarded_db):
        guarded_db.execute(
            "CREATE TRIGGER gate ON ACCESS TO audit_alice BEFORE AS "
            "DENY 'records of Alice are restricted'"
        )
        with pytest.raises(AccessDeniedError, match="restricted"):
            guarded_db.execute("SELECT * FROM patients WHERE name = 'Alice'")

    def test_deny_spares_clean_queries(self, guarded_db):
        guarded_db.execute(
            "CREATE TRIGGER gate ON ACCESS TO audit_alice BEFORE AS DENY"
        )
        result = guarded_db.execute(
            "SELECT name FROM patients WHERE name = 'Bob'"
        )
        assert result.rows == [("Bob",)]

    def test_after_trigger_logs_even_when_denied(self, guarded_db):
        """The access is still recorded: DENY withholds rows, not evidence."""
        guarded_db.execute(
            "CREATE TRIGGER gate ON ACCESS TO audit_alice BEFORE AS DENY"
        )
        guarded_db.execute(
            "CREATE TRIGGER record ON ACCESS TO audit_alice AS "
            "INSERT INTO log SELECT cast_varchar(now()), user_id(), "
            "sql_text(), patientid FROM accessed"
        )
        with pytest.raises(AccessDeniedError):
            guarded_db.execute(
                "SELECT zip FROM patients WHERE name = 'Alice'"
            )
        log = guarded_db.execute("SELECT patientid FROM log")
        assert log.rows == [(1,)]

    def test_conditional_deny(self, guarded_db):
        """Deny only when too many sensitive rows flow at once."""
        guarded_db.execute(
            "CREATE AUDIT EXPRESSION audit_all AS SELECT * FROM patients "
            "FOR SENSITIVE TABLE patients, PARTITION BY patientid"
        )
        guarded_db.execute(
            "CREATE TRIGGER bulk_gate ON ACCESS TO audit_all BEFORE AS "
            "IF ((SELECT COUNT(*) FROM accessed) > 3) "
            "DENY 'bulk export blocked'"
        )
        # three rows: fine
        assert len(guarded_db.execute(
            "SELECT * FROM patients WHERE patientid <= 3"
        )) == 3
        # five rows: blocked
        with pytest.raises(AccessDeniedError, match="bulk export"):
            guarded_db.execute("SELECT * FROM patients")

    def test_deny_in_after_trigger_is_rejected(self, guarded_db):
        guarded_db.execute(
            "CREATE TRIGGER bad ON ACCESS TO audit_alice AS DENY"
        )
        with pytest.raises(TriggerError, match="only valid in BEFORE"):
            guarded_db.execute(
                "SELECT * FROM patients WHERE name = 'Alice'"
            )

    def test_explicit_after_keyword(self, guarded_db):
        guarded_db.execute(
            "CREATE TRIGGER explicit ON ACCESS TO audit_alice AFTER AS "
            "NOTIFY 'after'"
        )
        guarded_db.execute("SELECT * FROM patients WHERE name = 'Alice'")
        assert guarded_db.notifications == ["after"]

    def test_timing_parsed(self):
        from repro.sql.parser import parse_statement

        statement = parse_statement(
            "CREATE TRIGGER g ON ACCESS TO a BEFORE AS DENY 'no'"
        )
        assert statement.timing == "before"
        statement = parse_statement(
            "CREATE TRIGGER g ON ACCESS TO a AS NOTIFY"
        )
        assert statement.timing == "after"
