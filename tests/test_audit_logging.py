"""Tests for the turn-key audit-log helper."""

import pytest

from repro import install_audit_log
from repro.errors import AuditError


@pytest.fixture
def logged(patients_db):
    patients_db.execute(
        "CREATE AUDIT EXPRESSION audit_all AS SELECT * FROM patients "
        "FOR SENSITIVE TABLE patients, PARTITION BY patientid"
    )
    return install_audit_log(patients_db, "audit_all", "disclosures")


class TestInstallation:
    def test_creates_table_and_trigger(self, logged):
        db = logged.database
        assert db.catalog.has_table("disclosures")
        assert db.catalog.trigger("log_audit_all_disclosures") is not None

    def test_log_schema_uses_partition_column(self, logged):
        table = logged.database.catalog.table("disclosures")
        assert table.schema.column_names == (
            "ts", "uid", "query", "patientid"
        )

    def test_requires_existing_expression(self, patients_db):
        with pytest.raises(AuditError):
            install_audit_log(patients_db, "ghost")

    def test_reuses_compatible_table(self, logged):
        db = logged.database
        db.execute(
            "CREATE AUDIT EXPRESSION audit_young AS "
            "SELECT * FROM patients WHERE age < 30 "
            "FOR SENSITIVE TABLE patients, PARTITION BY patientid"
        )
        second = install_audit_log(db, "audit_young", "disclosures")
        assert second.table_name == "disclosures"

    def test_rejects_incompatible_table(self, patients_db):
        patients_db.execute("CREATE TABLE weird (a INT)")
        patients_db.execute(
            "CREATE AUDIT EXPRESSION audit_all AS SELECT * FROM patients "
            "FOR SENSITIVE TABLE patients, PARTITION BY patientid"
        )
        with pytest.raises(AuditError):
            install_audit_log(patients_db, "audit_all", "weird")


class TestLogQueries:
    def test_entries_recorded(self, logged):
        db = logged.database
        db.execute("SELECT name FROM patients WHERE age > 40")
        entries = logged.entries()
        assert len(entries) == 2  # Dave and Erin
        assert {row[3] for row in entries} == {4, 5}

    def test_disclosures_of_individual(self, logged):
        db = logged.database
        db.session.user_id = "dr_a"
        db.execute("SELECT name FROM patients WHERE patientid = 1")
        db.session.user_id = "dr_b"
        db.execute("SELECT zip FROM patients WHERE patientid = 1")
        db.execute("SELECT zip FROM patients WHERE patientid = 2")
        report = logged.disclosures_of(1)
        assert {row[0] for row in report} == {"dr_a", "dr_b"}

    def test_access_counts_by_user(self, logged):
        db = logged.database
        db.session.user_id = "curious"
        db.execute("SELECT * FROM patients")
        counts = logged.access_counts_by_user()
        assert counts.rows == [("curious", 5)]

    def test_clear(self, logged):
        db = logged.database
        db.execute("SELECT * FROM patients")
        logged.clear()
        assert len(logged.entries()) == 0
