"""Tests for SELECT triggers: ACCESSED state, actions, cascading (§II-C)."""

import pytest

from repro import Database
from repro.errors import ExecutionError, TriggerError


@pytest.fixture
def logged_db(patients_db):
    patients_db.execute(
        "CREATE AUDIT EXPRESSION audit_alice AS SELECT * FROM patients "
        "WHERE name = 'Alice' FOR SENSITIVE TABLE patients, "
        "PARTITION BY patientid"
    )
    patients_db.execute(
        "CREATE TRIGGER log_alice ON ACCESS TO audit_alice AS "
        "INSERT INTO log SELECT cast_varchar(now()), user_id(), "
        "sql_text(), patientid FROM accessed"
    )
    return patients_db


class TestBasicFiring:
    def test_access_fires_trigger_and_logs(self, logged_db):
        query = "SELECT patientid, name FROM patients WHERE name = 'Alice'"
        logged_db.execute(query)
        log = logged_db.execute("SELECT uid, query, patientid FROM log")
        assert log.rows == [("admin", query, 1)]

    def test_non_access_does_not_fire(self, logged_db):
        logged_db.execute(
            "SELECT patientid FROM patients WHERE name = 'Bob'"
        )
        assert len(logged_db.execute("SELECT * FROM log")) == 0

    def test_subquery_access_fires(self, logged_db):
        """Example 1.2's second query still triggers the audit."""
        logged_db.execute(
            "SELECT 1 FROM disease WHERE EXISTS "
            "(SELECT * FROM patients p, disease d "
            "WHERE p.patientid = d.patientid AND name = 'Alice' "
            "AND disease = 'cancer')"
        )
        log = logged_db.execute("SELECT patientid FROM log")
        assert (1,) in log.rows

    def test_accessed_exposed_on_result(self, logged_db):
        result = logged_db.execute(
            "SELECT * FROM patients WHERE name = 'Alice'"
        )
        assert result.accessed == {"audit_alice": frozenset({1})}

    def test_trigger_requires_existing_expression(self, patients_db):
        from repro.errors import AuditError

        with pytest.raises(AuditError):
            patients_db.execute(
                "CREATE TRIGGER t ON ACCESS TO ghost AS "
                "INSERT INTO log SELECT patientid FROM accessed"
            )

    def test_drop_trigger_stops_firing(self, logged_db):
        logged_db.execute("DROP TRIGGER log_alice")
        logged_db.execute("SELECT * FROM patients WHERE name = 'Alice'")
        assert len(logged_db.execute("SELECT * FROM log")) == 0

    def test_audit_disabled_suppresses_accessed(self, logged_db):
        logged_db.audit_enabled = False
        result = logged_db.execute(
            "SELECT * FROM patients WHERE name = 'Alice'"
        )
        assert result.accessed == {}
        assert len(logged_db.execute("SELECT * FROM log")) == 0


class TestActionSemantics:
    def test_action_runs_even_when_query_aborts(self, logged_db):
        """§II: the action executes even if the query is aborted."""
        with pytest.raises(ExecutionError):
            # the division fires after rows have flowed past the audit op
            logged_db.execute(
                "SELECT 1 / (age - age) FROM patients WHERE name = 'Alice'"
            )
        log = logged_db.execute("SELECT patientid FROM log")
        assert log.rows == [(1,)]

    def test_action_sql_text_is_the_reading_query(self, logged_db):
        query = "SELECT zip FROM patients WHERE name = 'Alice'"
        logged_db.execute(query)
        assert logged_db.execute("SELECT query FROM log").rows == [(query,)]

    def test_action_join_with_other_tables(self, patients_db):
        """The paper's Log_Cancer_Dept_Accesses pattern (§II-C)."""
        patients_db.execute(
            "CREATE TABLE departments (patientid INT, deptid INT)"
        )
        patients_db.execute(
            "INSERT INTO departments VALUES (1, 100), (5, 200), (5, 100)"
        )
        patients_db.execute(
            "CREATE TABLE deptlog (uid VARCHAR, deptid INT)"
        )
        patients_db.execute(
            "CREATE AUDIT EXPRESSION audit_cancer AS "
            "SELECT p.* FROM patients p, disease d "
            "WHERE p.patientid = d.patientid AND disease = 'cancer' "
            "FOR SENSITIVE TABLE patients, PARTITION BY patientid"
        )
        patients_db.execute(
            "CREATE TRIGGER log_depts ON ACCESS TO audit_cancer AS "
            "INSERT INTO deptlog SELECT DISTINCT user_id(), d.deptid "
            "FROM accessed a, departments d WHERE a.patientid = d.patientid"
        )
        patients_db.execute("SELECT patientid FROM patients")
        rows = patients_db.execute(
            "SELECT deptid FROM deptlog ORDER BY deptid"
        ).rows
        assert rows == [(100,), (200,)]

    def test_multiple_triggers_on_same_expression(self, logged_db):
        logged_db.execute("CREATE TABLE log2 (patientid INT)")
        logged_db.execute(
            "CREATE TRIGGER log_alice2 ON ACCESS TO audit_alice AS "
            "INSERT INTO log2 SELECT patientid FROM accessed"
        )
        logged_db.execute("SELECT * FROM patients WHERE name = 'Alice'")
        assert len(logged_db.execute("SELECT * FROM log")) == 1
        assert len(logged_db.execute("SELECT * FROM log2")) == 1

    def test_notify_action(self, logged_db):
        logged_db.execute(
            "CREATE TRIGGER shout ON ACCESS TO audit_alice AS "
            "SEND EMAIL 'alice record accessed'"
        )
        logged_db.execute("SELECT * FROM patients WHERE name = 'Alice'")
        assert logged_db.notifications == ["alice record accessed"]

    def test_trigger_body_with_begin_end(self, logged_db):
        logged_db.execute("CREATE TABLE log3 (patientid INT)")
        logged_db.execute(
            "CREATE TRIGGER multi ON ACCESS TO audit_alice AS BEGIN "
            "INSERT INTO log3 SELECT patientid FROM accessed; "
            "NOTIFY 'two actions'; END"
        )
        logged_db.execute("SELECT * FROM patients WHERE name = 'Alice'")
        assert len(logged_db.execute("SELECT * FROM log3")) == 1
        assert "two actions" in logged_db.notifications


class TestCascading:
    def test_select_trigger_cascades_to_insert_trigger(self, logged_db):
        """The paper's Notify example: SELECT trigger -> AFTER INSERT."""
        logged_db.execute(
            "CREATE TRIGGER notify_many ON log AFTER INSERT AS "
            "IF (1 <= (SELECT COUNT(DISTINCT patientid) FROM log "
            "WHERE uid = new.uid)) SEND EMAIL 'threshold reached'"
        )
        logged_db.execute("SELECT * FROM patients WHERE name = 'Alice'")
        assert logged_db.notifications == ["threshold reached"]

    def test_cascade_depth_limit(self, db):
        db.execute("CREATE TABLE ping (n INT)")
        db.execute("CREATE TABLE pong (n INT)")
        db.execute(
            "CREATE TRIGGER t_ping ON ping AFTER INSERT AS "
            "INSERT INTO pong VALUES (1)"
        )
        db.execute(
            "CREATE TRIGGER t_pong ON pong AFTER INSERT AS "
            "INSERT INTO ping VALUES (1)"
        )
        with pytest.raises(TriggerError):
            db.execute("INSERT INTO ping VALUES (0)")

    def test_reserved_accessed_name(self, logged_db):
        logged_db.execute("CREATE TABLE accessed (x INT)")
        with pytest.raises(TriggerError):
            logged_db.execute(
                "SELECT * FROM patients WHERE name = 'Alice'"
            )


class TestRealtimeScenarios:
    def test_user_access_counting(self, patients_db):
        """Intro scenario 1: users reading many sensitive records."""
        patients_db.execute(
            "CREATE AUDIT EXPRESSION audit_flu AS "
            "SELECT p.* FROM patients p, disease d "
            "WHERE p.patientid = d.patientid AND disease = 'flu' "
            "FOR SENSITIVE TABLE patients, PARTITION BY patientid"
        )
        patients_db.execute(
            "CREATE TRIGGER count_flu ON ACCESS TO audit_flu AS "
            "INSERT INTO log SELECT cast_varchar(now()), user_id(), "
            "sql_text(), patientid FROM accessed"
        )
        patients_db.execute("SELECT * FROM patients")
        counts = patients_db.execute(
            "SELECT uid, COUNT(DISTINCT patientid) FROM log GROUP BY uid"
        )
        assert counts.rows == [("admin", 3)]

    def test_per_user_identity(self, patients_db):
        doctor = Database(user_id="dr_house")
        doctor.execute("CREATE TABLE t (a INT)")
        doctor.execute("INSERT INTO t VALUES (1)")
        doctor.execute("SELECT user_id() FROM t")
        assert doctor.execute("SELECT user_id()").rows == [("dr_house",)]
