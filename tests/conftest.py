"""Shared fixtures: small health-care databases and a TPC-H instance."""

from __future__ import annotations

import pytest

from repro import Database
from repro.tpch import load_tpch


@pytest.fixture
def db() -> Database:
    """An empty database."""
    return Database()


@pytest.fixture
def patients_db() -> Database:
    """The paper's running example: Patients / Disease (+ a log table)."""
    database = Database()
    database.execute(
        "CREATE TABLE patients (patientid INT PRIMARY KEY, "
        "name VARCHAR NOT NULL, age INT, zip VARCHAR)"
    )
    database.execute(
        "CREATE TABLE disease (patientid INT, disease VARCHAR)"
    )
    database.execute(
        "CREATE TABLE log (ts VARCHAR, uid VARCHAR, query VARCHAR, "
        "patientid INT)"
    )
    database.execute(
        "INSERT INTO patients VALUES "
        "(1, 'Alice', 40, '98101'), (2, 'Bob', 25, '98102'), "
        "(3, 'Carol', 33, '98101'), (4, 'Dave', 58, '98103'), "
        "(5, 'Erin', 47, '98102')"
    )
    database.execute(
        "INSERT INTO disease VALUES "
        "(1, 'cancer'), (2, 'flu'), (3, 'flu'), (4, 'diabetes'), "
        "(5, 'cancer'), (5, 'flu')"
    )
    return database


#: tiny scale factor shared by all TPC-H tests (≈300 customers)
TPCH_SCALE = 0.002


@pytest.fixture(scope="session")
def tpch_db() -> Database:
    """A loaded TPC-H database, shared by read-only tests."""
    database = Database()
    load_tpch(database, scale_factor=TPCH_SCALE)
    return database
