"""Sharded-vs-single-node differentials for the cluster coordinator.

The contract under test: ``ClusterDatabase`` is *observationally
equivalent* to ``Database`` — same result multisets (exact lists when
ORDER BY imposes a total order), same ACCESSED sets, same trigger
firings and audit-log attribution, same offline-audit verdicts — while
actually scattering fragments across hash-partitioned shards.  Plus the
cluster-only surfaces: routing rejections, plan-cache topology tags,
resharding, per-shard journals, and single-shard crash recovery.
"""

from __future__ import annotations

import datetime

import pytest

from repro.cluster import ClusterDatabase, Topology, shard_of
from repro.database import Database
from repro.errors import (
    AccessDeniedError,
    ClusterError,
    ClusterRoutingError,
    DurabilityError,
)
from repro.testing import CrashError, FaultInjector

pytestmark = pytest.mark.filterwarnings(
    "ignore::pytest.PytestUnhandledThreadExceptionWarning"
)

_CLOCK = lambda: datetime.datetime(2013, 4, 8, 12, 0, 0)  # noqa: E731

SCHEMA = """
CREATE TABLE patients (pid INT PRIMARY KEY, name VARCHAR, disease VARCHAR,
                       age INT, zip VARCHAR);
CREATE TABLE visits (vid INT PRIMARY KEY, pid INT, cost INT);
CREATE TABLE audit_log (uid VARCHAR, pid INT);
CREATE AUDIT EXPRESSION sick AS SELECT pid FROM patients
    WHERE disease = 'flu' FOR SENSITIVE TABLE patients, PARTITION BY pid;
"""

DISEASES = ("flu", "cold", "flu", "cough")


def _load(db, rows: int = 24) -> None:
    db.execute_script(SCHEMA)
    for i in range(rows):
        db.execute(
            f"INSERT INTO patients VALUES ({i}, 'p{i}', "
            f"'{DISEASES[i % len(DISEASES)]}', {20 + i % 7}, "
            f"'{11111 * (1 + i % 3)}')"
        )
        db.execute(f"INSERT INTO visits VALUES ({100 + i}, {i}, {i * 10})")


def _pair(shards: int = 3, rows: int = 24, **cluster_kwargs):
    single = Database(clock=_CLOCK)
    cluster = ClusterDatabase(shards=shards, clock=_CLOCK, **cluster_kwargs)
    _load(single, rows)
    _load(cluster, rows)
    return single, cluster


def _assert_same(single, cluster, sql: str, ordered: bool = False) -> None:
    lhs = single.execute(sql)
    rhs = cluster.execute(sql)
    if ordered:
        assert lhs.rows_list() == rhs.rows_list(), sql
    else:
        assert sorted(lhs.rows_list(), key=repr) == sorted(
            rhs.rows_list(), key=repr
        ), sql
    assert lhs.accessed == rhs.accessed, sql
    assert lhs.columns == rhs.columns, sql


QUERIES = [
    # SPJ over the partitioned table, armed and unarmed
    ("SELECT name, age FROM patients WHERE disease = 'flu'", False),
    ("SELECT name FROM patients WHERE age > 22 AND zip = '11111'", False),
    ("SELECT p.name, v.cost FROM patients p, visits v "
     "WHERE p.pid = v.pid AND v.cost > 50", False),
    # aggregates: global and grouped, partial/final split
    ("SELECT COUNT(*) FROM patients", False),
    ("SELECT disease, COUNT(*), SUM(age), MIN(age), MAX(age) "
     "FROM patients GROUP BY disease", False),
    ("SELECT zip, COUNT(*) FROM patients WHERE disease = 'flu' "
     "GROUP BY zip HAVING COUNT(*) > 1", False),
    # AVG is not splittable: falls back to gathering input rows
    ("SELECT AVG(age) FROM patients WHERE disease = 'flu'", False),
    ("SELECT COUNT(DISTINCT zip) FROM patients", False),
    # ORDER BY: k-way merged, totally ordered by the pid tiebreak
    ("SELECT pid, name FROM patients ORDER BY age DESC, pid", True),
    ("SELECT pid FROM patients WHERE disease = 'flu' ORDER BY pid", True),
    ("SELECT pid, age FROM patients ORDER BY age, pid LIMIT 5", True),
    # DISTINCT: local dedup + re-distinct at the gather
    ("SELECT DISTINCT disease FROM patients", False),
    ("SELECT DISTINCT zip, disease FROM patients WHERE age > 21", False),
    # replicated-only query (routes to shard 0)
    ("SELECT COUNT(*) FROM visits WHERE cost > 100", False),
]


@pytest.mark.parametrize("mode", ["row", "batch", "columnar"])
def test_select_differential_all_modes(mode: str) -> None:
    single, cluster = _pair()
    single.exec_mode = mode
    cluster.exec_mode = mode
    try:
        for sql, ordered in QUERIES:
            _assert_same(single, cluster, sql, ordered)
    finally:
        single.close()
        cluster.close()


@pytest.mark.parametrize("shards", [1, 2, 4])
def test_shard_count_invariance(shards: int) -> None:
    single, cluster = _pair(shards=shards)
    try:
        for sql, ordered in QUERIES:
            _assert_same(single, cluster, sql, ordered)
    finally:
        single.close()
        cluster.close()


def test_rows_actually_partitioned() -> None:
    _, cluster = _pair(shards=3)
    counts = [
        len(list(shard.catalog.table("patients").rows()))
        for shard in cluster.shards
    ]
    try:
        assert sum(counts) == 24
        assert all(count < 24 for count in counts), counts
        for index, shard in enumerate(cluster.shards):
            for row in shard.catalog.table("patients").rows():
                assert shard_of(row[0], 3) == index
    finally:
        cluster.close()


def test_dml_differential() -> None:
    single, cluster = _pair()
    try:
        for db in (single, cluster):
            db.execute("INSERT INTO patients VALUES "
                       "(50, 'ada', 'flu', 33, '99999')")
            db.execute("INSERT INTO patients (pid, name, disease, age, zip) "
                       "SELECT pid + 100, name, disease, age + 1, zip "
                       "FROM patients WHERE disease = 'cough'")
            db.execute("UPDATE patients SET age = age + 10 "
                       "WHERE zip = '22222'")
            db.execute("DELETE FROM patients WHERE age > 35")
        _assert_same(single, cluster,
                     "SELECT pid, name, disease, age, zip FROM patients")
        _assert_same(single, cluster,
                     "SELECT disease, COUNT(*) FROM patients GROUP BY disease")
    finally:
        single.close()
        cluster.close()


def test_dml_rowcounts_match() -> None:
    single, cluster = _pair()
    try:
        for sql in (
            "UPDATE patients SET age = age + 1 WHERE disease = 'flu'",
            "DELETE FROM patients WHERE zip = '33333'",
            "UPDATE visits SET cost = cost + 5 WHERE cost < 40",
        ):
            assert single.execute(sql).rowcount == \
                cluster.execute(sql).rowcount, sql
    finally:
        single.close()
        cluster.close()


def test_trigger_attribution_differential() -> None:
    single, cluster = _pair()
    try:
        for db in (single, cluster):
            db.execute("CREATE TRIGGER log_access ON ACCESS TO sick AS "
                       "INSERT INTO audit_log SELECT user_id(), pid "
                       "FROM accessed")
        for user, sql in [
            ("alice", "SELECT name FROM patients WHERE age >= 24"),
            ("bob", "SELECT COUNT(*) FROM patients WHERE disease = 'flu'"),
            ("carol", "SELECT name FROM patients WHERE disease = 'cold'"),
            ("dave", "SELECT pid FROM patients ORDER BY pid LIMIT 3"),
        ]:
            for db in (single, cluster):
                db.session.user_id = user
                db.execute(sql)
        _assert_same(single, cluster, "SELECT uid, pid FROM audit_log")
    finally:
        single.close()
        cluster.close()


def test_before_deny_differential() -> None:
    single, cluster = _pair()
    try:
        for db in (single, cluster):
            db.execute("CREATE TRIGGER guard ON ACCESS TO sick BEFORE AS "
                       "IF ((SELECT COUNT(*) FROM accessed) > 2) "
                       "DENY 'too many'")
        armed = "SELECT name FROM patients WHERE disease = 'flu'"
        with pytest.raises(AccessDeniedError):
            single.execute(armed)
        with pytest.raises(AccessDeniedError):
            cluster.execute(armed)
        narrow = "SELECT name FROM patients WHERE pid = 0"
        _assert_same(single, cluster, narrow)
    finally:
        single.close()
        cluster.close()


def test_offline_audit_differential() -> None:
    single, cluster = _pair()
    try:
        for sql in (
            "SELECT name FROM patients WHERE age > 23",
            "SELECT disease, COUNT(*) FROM patients GROUP BY disease",
            "SELECT p.name FROM patients p, visits v "
            "WHERE p.pid = v.pid AND v.cost > 150",
        ):
            assert single.offline_audit(sql, "sick") == \
                cluster.offline_audit(sql, "sick"), sql
    finally:
        single.close()
        cluster.close()


def test_transaction_rollback_spans_shards() -> None:
    _, cluster = _pair()
    try:
        before = cluster.execute("SELECT COUNT(*) FROM patients").scalar()
        with pytest.raises(RuntimeError):
            with cluster.transaction():
                cluster.execute("INSERT INTO patients VALUES "
                                "(70, 'x', 'flu', 1, '1')")
                cluster.execute("INSERT INTO visits VALUES (900, 70, 1)")
                raise RuntimeError("abort")
        assert cluster.execute(
            "SELECT COUNT(*) FROM patients").scalar() == before
        assert cluster.execute(
            "SELECT COUNT(*) FROM visits WHERE vid = 900").scalar() == 0
    finally:
        cluster.close()


# ---------------------------------------------------------------------------
# routing restrictions (documented v1 surface)


def test_routing_rejections() -> None:
    _, cluster = _pair()
    try:
        with pytest.raises(ClusterRoutingError):
            cluster.execute("SELECT name FROM patients WHERE pid IN "
                            "(SELECT pid FROM patients WHERE age > 30)")
        with pytest.raises(ClusterRoutingError):
            cluster.execute("SELECT a.name FROM patients a, patients b "
                            "WHERE a.pid = b.pid")
        with pytest.raises(ClusterRoutingError):
            cluster.execute("UPDATE patients SET pid = pid + 1000")
        with pytest.raises(ClusterRoutingError):
            cluster.execute("DELETE FROM visits WHERE pid IN "
                            "(SELECT pid FROM patients)")
        with pytest.raises(ClusterError):
            cluster.trigger_mode = "async"
    finally:
        cluster.close()


def test_audit_on_second_column_rejected() -> None:
    _, cluster = _pair()
    try:
        with pytest.raises(ClusterRoutingError):
            cluster.execute(
                "CREATE AUDIT EXPRESSION byage AS SELECT age FROM patients "
                "FOR SENSITIVE TABLE patients, PARTITION BY age")
    finally:
        cluster.close()


# ---------------------------------------------------------------------------
# plan cache: topology-versioned tags


def test_plan_cache_hits_and_topology_invalidation() -> None:
    _, cluster = _pair(shards=2)
    sql = "SELECT disease, COUNT(*) FROM patients GROUP BY disease"
    try:
        first = cluster.execute(sql)
        hits_before = cluster.plan_cache.stats()["hits"]
        second = cluster.execute(sql)
        assert cluster.plan_cache.stats()["hits"] == hits_before + 1
        assert sorted(first.rows_list()) == sorted(second.rows_list())

        # resharding bumps the topology version: the cached scatter plan
        # (compiled against 2 shards) must not be reused across 4
        cluster.reshard(4)
        third = cluster.execute(sql)
        assert sorted(third.rows_list()) == sorted(first.rows_list())
        assert cluster.plan_cache.stats()["hits"] == hits_before + 1
    finally:
        cluster.close()


def test_plan_cache_invalidated_when_table_becomes_partitioned() -> None:
    _, cluster = _pair(shards=3)
    sql = "SELECT pid, COUNT(*) FROM visits GROUP BY pid"
    try:
        baseline = sorted(cluster.execute(sql).rows_list())
        version = cluster.topology.version
        # visits becomes partitioned -> single-shard route is stale
        cluster.execute(
            "CREATE AUDIT EXPRESSION costly AS SELECT pid FROM visits "
            "WHERE cost > 0 FOR SENSITIVE TABLE visits, PARTITION BY pid")
        assert cluster.topology.version > version
        assert sorted(cluster.execute(sql).rows_list()) == baseline
    finally:
        cluster.close()


# ---------------------------------------------------------------------------
# repartitioning and resharding


def test_create_audit_repartitions_replicated_table() -> None:
    single = Database(clock=_CLOCK)
    cluster = ClusterDatabase(shards=3, clock=_CLOCK)
    try:
        for db in (single, cluster):
            db.execute("CREATE TABLE t (k INT PRIMARY KEY, v VARCHAR)")
            for i in range(12):
                db.execute(f"INSERT INTO t VALUES ({i}, 'v{i}')")
        assert not cluster.topology.is_partitioned("t")
        # every shard holds a full replica until the audit DDL lands
        assert all(
            len(list(shard.catalog.table("t").rows())) == 12
            for shard in cluster.shards
        )
        for db in (single, cluster):
            db.execute("CREATE AUDIT EXPRESSION tk AS SELECT k FROM t "
                       "FOR SENSITIVE TABLE t, PARTITION BY k")
        assert cluster.topology.is_partitioned("t")
        assert sum(
            len(list(shard.catalog.table("t").rows()))
            for shard in cluster.shards
        ) == 12
        # per-shard ID views materialized over exactly the owned slice
        for index, shard in enumerate(cluster.shards):
            assert shard.audit_manager.view("tk").ids() == frozenset(
                k for k in range(12) if shard_of(k, 3) == index
            )
        _assert_same(single, cluster, "SELECT v FROM t WHERE k > 4")
    finally:
        single.close()
        cluster.close()


def test_reshard_preserves_data_and_audit() -> None:
    single, cluster = _pair(shards=2)
    try:
        expected_ids = single.execute(
            "SELECT name FROM patients WHERE disease = 'flu'"
        ).accessed["sick"]
        for count in (4, 1, 3):
            cluster.reshard(count)
            assert cluster.shard_count == count
            result = cluster.execute(
                "SELECT name FROM patients WHERE disease = 'flu'")
            assert result.accessed["sick"] == expected_ids
            for sql, ordered in QUERIES:
                _assert_same(single, cluster, sql, ordered)
    finally:
        single.close()
        cluster.close()


def test_reshard_refuses_with_journal(tmp_path) -> None:
    cluster = ClusterDatabase(shards=2)
    cluster.attach_journal(tmp_path / "j")
    try:
        with pytest.raises(ClusterError):
            cluster.reshard(4)
    finally:
        cluster.close()


# ---------------------------------------------------------------------------
# per-shard journals, merged recovery


def _journaled_pair(tmp_path, shards: int = 3):
    single = Database(clock=_CLOCK)
    cluster = ClusterDatabase(shards=shards, clock=_CLOCK)
    single.attach_journal(tmp_path / "single")
    cluster.attach_journal(tmp_path / "cluster")
    _load(single)
    _load(cluster)
    for db in (single, cluster):
        db.execute("CREATE TRIGGER log_access ON ACCESS TO sick AS "
                   "INSERT INTO audit_log SELECT user_id(), pid "
                   "FROM accessed")
    return single, cluster


WORKLOAD = [
    ("alice", "SELECT name FROM patients WHERE age >= 24"),
    ("bob", "SELECT pid FROM patients WHERE disease = 'flu' ORDER BY pid"),
    ("carol", "SELECT COUNT(*) FROM patients WHERE zip = '11111'"),
    ("dave", "SELECT name FROM patients WHERE pid <= 6"),
]


def _log_rows(db) -> set:
    return set(db.execute("SELECT uid, pid FROM audit_log").rows_list())


def test_journal_split_covers_all_ids(tmp_path) -> None:
    single, cluster = _journaled_pair(tmp_path)
    try:
        for user, sql in WORKLOAD:
            for db in (single, cluster):
                db.session.user_id = user
                db.execute(sql)
        assert _log_rows(single) == _log_rows(cluster)
        manifest = (tmp_path / "cluster" / "cluster.json").read_text()
        assert '"shards": 3' in manifest
    finally:
        single.close()
        cluster.close()


def test_cluster_recovery_matches_no_crash_run(tmp_path) -> None:
    """Satellite: kill one shard's journal mid-batch, recover, compare."""
    # ground truth: fault-free run
    truth = Database(clock=_CLOCK)
    _load(truth)
    truth.execute("CREATE TRIGGER log_access ON ACCESS TO sick AS "
                  "INSERT INTO audit_log SELECT user_id(), pid "
                  "FROM accessed")
    completed_rows: list[set] = []
    for user, sql in WORKLOAD:
        truth.session.user_id = user
        truth.execute(sql)
        completed_rows.append(_log_rows(truth))
    truth.close()

    # faulted run: shard 1's journal dies on its second append
    injector = FaultInjector()
    cluster = ClusterDatabase(
        shards=3, clock=_CLOCK, shard_fault_injectors={1: injector}
    )
    cluster.attach_journal(tmp_path / "crash")
    _load(cluster)
    cluster.execute("CREATE TRIGGER log_access ON ACCESS TO sick AS "
                    "INSERT INTO audit_log SELECT user_id(), pid "
                    "FROM accessed")
    injector.arm("journal-write", at_hit=2)
    completed = 0
    crashed = False
    for user, sql in WORKLOAD:
        cluster.session.user_id = user
        try:
            cluster.execute(sql)
            completed += 1
        except CrashError:
            crashed = True
            break
    assert crashed, "the armed journal fault must fire inside the workload"
    # the "process" is dead: rebuild a fresh cluster over the same shape
    # and replay the surviving per-shard journals
    fresh = ClusterDatabase(shards=3, clock=_CLOCK)
    _load(fresh)
    fresh.execute("CREATE TRIGGER log_access ON ACCESS TO sick AS "
                  "INSERT INTO audit_log SELECT user_id(), pid "
                  "FROM accessed")
    report = fresh.recover(tmp_path / "crash")
    assert report.intents >= completed
    recovered = _log_rows(fresh)
    # zero lost firings: every completed query's attribution survives
    assert recovered >= completed_rows[completed - 1] if completed else True
    # bounded speculation: at most the mid-flight query's rows are extra
    assert recovered <= completed_rows[min(completed, len(WORKLOAD) - 1)]
    # idempotent: recovering again adds nothing
    again = fresh.recover(tmp_path / "crash")
    assert again.replayed == 0
    assert _log_rows(fresh) == recovered
    fresh.close()
    cluster.close()


def test_recover_rejects_wrong_shard_count(tmp_path) -> None:
    cluster = ClusterDatabase(shards=2)
    cluster.attach_journal(tmp_path / "j")
    cluster.close()
    other = ClusterDatabase(shards=3)
    try:
        with pytest.raises(ClusterError):
            other.recover(tmp_path / "j")
    finally:
        other.close()


def test_double_attach_rejected(tmp_path) -> None:
    cluster = ClusterDatabase(shards=2)
    cluster.attach_journal(tmp_path / "j")
    try:
        with pytest.raises(DurabilityError):
            cluster.attach_journal(tmp_path / "j2")
    finally:
        cluster.close()


# ---------------------------------------------------------------------------
# topology unit behaviour


def test_shard_of_is_stable_and_uniform_enough() -> None:
    assignments = [shard_of(value, 4) for value in range(1000)]
    assert assignments == [shard_of(value, 4) for value in range(1000)]
    counts = [assignments.count(index) for index in range(4)]
    assert all(count > 150 for count in counts), counts
    assert shard_of("texty", 1) == 0


def test_topology_conflicting_partition_column() -> None:
    topology = Topology(2)
    topology.add_partitioned("t", "a", 0)
    topology.add_partitioned("t", "a", 0)  # idempotent
    with pytest.raises(ClusterRoutingError):
        topology.add_partitioned("t", "b", 1)
