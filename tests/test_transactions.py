"""Tests for transactions: statement atomicity, BEGIN/COMMIT/ROLLBACK,
and the §II-C system-transaction semantics of SELECT-trigger actions."""

import pytest

from repro.errors import ConstraintError, TransactionError


@pytest.fixture
def bank(db):
    db.execute(
        "CREATE TABLE accounts (id INT PRIMARY KEY, owner VARCHAR, "
        "balance FLOAT)"
    )
    db.execute(
        "INSERT INTO accounts VALUES (1, 'alice', 100.0), "
        "(2, 'bob', 50.0)"
    )
    return db


def balances(db):
    return dict(
        db.execute("SELECT id, balance FROM accounts ORDER BY id").rows
    )


class TestStatementAtomicity:
    def test_multi_row_insert_rolls_back_on_conflict(self, bank):
        with pytest.raises(ConstraintError):
            bank.execute(
                "INSERT INTO accounts VALUES (3, 'carol', 10.0), "
                "(1, 'dup', 0.0)"
            )
        # the first row of the failing statement must be gone too
        assert bank.execute(
            "SELECT COUNT(*) FROM accounts"
        ).scalar() == 2

    def test_insert_select_rolls_back_on_conflict(self, bank):
        bank.execute("CREATE TABLE feed (id INT, owner VARCHAR, b FLOAT)")
        bank.execute(
            "INSERT INTO feed VALUES (7, 'new', 1.0), (1, 'dup', 2.0)"
        )
        with pytest.raises(ConstraintError):
            bank.execute("INSERT INTO accounts SELECT * FROM feed")
        assert bank.execute("SELECT COUNT(*) FROM accounts").scalar() == 2

    def test_failed_trigger_rolls_back_triggering_statement(self, bank):
        """A cascade failure undoes the whole statement, including the
        rows the triggers themselves wrote."""
        bank.execute("CREATE TABLE sidecar (id INT PRIMARY KEY)")
        bank.execute(
            "CREATE TRIGGER copy ON accounts AFTER INSERT AS "
            "INSERT INTO sidecar VALUES (new.id)"
        )
        bank.execute("INSERT INTO sidecar VALUES (9)")
        with pytest.raises(ConstraintError):
            # the trigger's insert collides with sidecar row 9
            bank.execute("INSERT INTO accounts VALUES (9, 'x', 0.0)")
        assert bank.execute("SELECT COUNT(*) FROM accounts").scalar() == 2
        assert bank.execute("SELECT COUNT(*) FROM sidecar").scalar() == 1

    def test_update_atomicity_under_pk_conflict(self, bank):
        with pytest.raises(ConstraintError):
            # shifting every id by 1 collides midway (2 -> ... exists)
            bank.execute("UPDATE accounts SET id = 2")
        assert balances(bank) == {1: 100.0, 2: 50.0}


class TestExplicitTransactions:
    def test_commit_persists(self, bank):
        bank.execute("BEGIN")
        bank.execute("UPDATE accounts SET balance = balance - 10 "
                     "WHERE id = 1")
        bank.execute("UPDATE accounts SET balance = balance + 10 "
                     "WHERE id = 2")
        bank.execute("COMMIT")
        assert balances(bank) == {1: 90.0, 2: 60.0}

    def test_rollback_reverts_everything(self, bank):
        bank.execute("BEGIN")
        bank.execute("DELETE FROM accounts WHERE id = 2")
        bank.execute("INSERT INTO accounts VALUES (3, 'carol', 7.0)")
        bank.execute("UPDATE accounts SET balance = 0 WHERE id = 1")
        bank.execute("ROLLBACK")
        assert balances(bank) == {1: 100.0, 2: 50.0}
        assert bank.execute(
            "SELECT owner FROM accounts WHERE id = 2"
        ).rows == [("bob",)]

    def test_rollback_restores_indexes(self, bank):
        bank.execute("CREATE INDEX by_owner ON accounts (owner)")
        bank.execute("BEGIN")
        bank.execute("UPDATE accounts SET owner = 'zed' WHERE id = 1")
        bank.execute("ROLLBACK")
        assert bank.execute(
            "SELECT id FROM accounts WHERE owner = 'alice'"
        ).rows == [(1,)]

    def test_rollback_restores_audit_views(self, bank):
        bank.execute(
            "CREATE AUDIT EXPRESSION audit_rich AS "
            "SELECT * FROM accounts WHERE balance > 75 "
            "FOR SENSITIVE TABLE accounts, PARTITION BY id"
        )
        view = bank.audit_manager.view("audit_rich")
        assert view.ids() == frozenset({1})
        bank.execute("BEGIN")
        bank.execute("UPDATE accounts SET balance = 500 WHERE id = 2")
        assert view.ids() == frozenset({1, 2})
        bank.execute("ROLLBACK")
        assert view.ids() == frozenset({1})

    def test_failed_statement_keeps_transaction_open(self, bank):
        bank.execute("BEGIN")
        bank.execute("UPDATE accounts SET balance = 77 WHERE id = 1")
        with pytest.raises(ConstraintError):
            bank.execute("INSERT INTO accounts VALUES (1, 'dup', 0.0)")
        assert bank.in_transaction
        bank.execute("COMMIT")
        assert balances(bank)[1] == 77.0

    def test_nested_begin_rejected(self, bank):
        bank.execute("BEGIN")
        with pytest.raises(TransactionError):
            bank.execute("BEGIN")
        bank.execute("ROLLBACK")

    def test_commit_without_begin_rejected(self, bank):
        with pytest.raises(TransactionError):
            bank.execute("COMMIT")
        with pytest.raises(TransactionError):
            bank.execute("ROLLBACK")

    def test_dml_triggers_roll_back_with_transaction(self, bank):
        bank.execute("CREATE TABLE history (id INT, b FLOAT)")
        bank.execute(
            "CREATE TRIGGER track ON accounts AFTER UPDATE AS "
            "INSERT INTO history VALUES (new.id, new.balance)"
        )
        bank.execute("BEGIN")
        bank.execute("UPDATE accounts SET balance = 1 WHERE id = 1")
        assert bank.execute("SELECT COUNT(*) FROM history").scalar() == 1
        bank.execute("ROLLBACK")
        # the classic trigger's write was part of the user transaction
        assert bank.execute("SELECT COUNT(*) FROM history").scalar() == 0

    def test_rollback_does_not_refire_triggers(self, bank):
        bank.execute("CREATE TABLE events (kind VARCHAR)")
        bank.execute(
            "CREATE TRIGGER on_delete ON accounts AFTER DELETE AS "
            "INSERT INTO events VALUES ('deleted')"
        )
        bank.execute("BEGIN")
        bank.execute("INSERT INTO accounts VALUES (3, 'temp', 0.0)")
        bank.execute("ROLLBACK")  # compensating delete of row 3
        assert bank.execute("SELECT COUNT(*) FROM events").scalar() == 0

    def test_context_manager_commits(self, bank):
        with bank.transaction():
            bank.execute("UPDATE accounts SET balance = 42 WHERE id = 1")
        assert balances(bank)[1] == 42.0
        assert not bank.in_transaction

    def test_context_manager_rolls_back_on_error(self, bank):
        with pytest.raises(RuntimeError):
            with bank.transaction():
                bank.execute(
                    "UPDATE accounts SET balance = 42 WHERE id = 1"
                )
                raise RuntimeError("boom")
        assert balances(bank)[1] == 100.0
        assert not bank.in_transaction


class TestSystemTransactionSemantics:
    """§II-C: 'the action ... is executed as its own system transaction'."""

    @pytest.fixture
    def audited_bank(self, bank):
        bank.execute(
            "CREATE TABLE audit_log (uid VARCHAR, id INT)"
        )
        bank.execute(
            "CREATE AUDIT EXPRESSION audit_accounts AS "
            "SELECT * FROM accounts "
            "FOR SENSITIVE TABLE accounts, PARTITION BY id"
        )
        bank.execute(
            "CREATE TRIGGER log_access ON ACCESS TO audit_accounts AS "
            "INSERT INTO audit_log SELECT user_id(), id FROM accessed"
        )
        return bank

    def test_audit_trail_survives_user_rollback(self, audited_bank):
        audited_bank.execute("BEGIN")
        audited_bank.execute("SELECT * FROM accounts WHERE id = 1")
        audited_bank.execute("ROLLBACK")
        # the user transaction is gone; the audit evidence is not
        assert audited_bank.execute(
            "SELECT COUNT(*) FROM audit_log"
        ).scalar() == 1

    def test_user_changes_do_roll_back(self, audited_bank):
        audited_bank.execute("BEGIN")
        audited_bank.execute(
            "UPDATE accounts SET balance = 0 WHERE id = 1"
        )
        audited_bank.execute("SELECT * FROM accounts WHERE id = 1")
        audited_bank.execute("ROLLBACK")
        # check the log first — reading `accounts` again would append to it
        assert audited_bank.execute(
            "SELECT COUNT(*) FROM audit_log"
        ).scalar() == 1
        assert balances(audited_bank)[1] == 100.0
