"""Crash-recovery differential: inject a crash at every interesting
point of the durability path, recover from the surviving journal, and
compare the rebuilt audit log against the synchronous no-fault ground
truth.

The invariant under test is the paper's no-false-negatives guarantee
extended across process death (DESIGN.md §8):

* **zero lost firings** — every query whose ``execute()`` returned has
  its audit rows in the recovered log (its intent was journaled first);
* **bounded speculation** — the only extra rows recovery may add are
  those of the single query that was mid-flight when the crash hit
  (its intent may or may not have reached the platter);
* **deduplication** — recovering twice never duplicates a row.
"""

from __future__ import annotations

import pytest

from repro.testing import CrashError, FaultInjector

from tests.test_durability import _audited_db, _log_rows

pytestmark = pytest.mark.filterwarnings(
    "ignore::pytest.PytestUnhandledThreadExceptionWarning"
)

#: (user, query) pairs — four audited queries over three patients
WORKLOAD = [
    ("alice", "SELECT * FROM patients WHERE patientid = 1"),
    ("bob", "SELECT * FROM patients WHERE patientid <= 2"),
    ("carol", "SELECT name FROM patients WHERE patientid = 3"),
    ("dave", "SELECT * FROM patients WHERE patientid >= 2"),
]


def _run_workload(db, upto: int = len(WORKLOAD)) -> None:
    for user, sql in WORKLOAD[:upto]:
        db.session.user_id = user
        db.execute(sql)


@pytest.fixture(scope="module")
def ground_truth() -> list[set]:
    """Per-query audit-log rows from a synchronous, fault-free run."""
    db = _audited_db()
    per_query: list[set] = []
    seen: set = set()
    for user, sql in WORKLOAD:
        db.session.user_id = user
        db.execute(sql)
        rows = _log_rows(db)
        per_query.append(rows - seen)
        seen = rows
    db.close()
    assert all(per_query), "every workload query must touch the log"
    return per_query


# ---------------------------------------------------------------------------
# the crash matrix: site × hit × trigger mode — 25 injected crash points


CRASH_POINTS = (
    # sync mode: every site fires on the querying thread, so execute()
    # itself dies — the classic crash-before/after-the-append cases
    [("sync", site, hit)
     for site in ("journal-write", "journal-fsync", "trigger-action")
     for hit in (1, 2, 3, 4)]
    # async mode: journal sites can fire on either thread (intents on the
    # caller, commits on the worker); trigger-action fires on the worker
    + [("async", site, hit)
       for site in ("journal-write", "journal-fsync", "trigger-action")
       for hit in (1, 2, 3)]
    # the worker thread itself dies mid-batch
    + [("async", "pipeline-worker", hit) for hit in (1, 2, 3, 4)]
)


@pytest.mark.parametrize(
    "mode,site,hit", CRASH_POINTS,
    ids=[f"{m}-{s}-hit{h}" for m, s, h in CRASH_POINTS],
)
def test_crash_recovery_differential(tmp_path, ground_truth, mode, site,
                                     hit):
    faults = FaultInjector()
    db = _audited_db(
        journal_path=tmp_path / "j",
        journal_fsync="always",  # every append reaches both fault sites
        fault_injector=faults,
    )
    db.trigger_mode = mode
    faults.arm(site, at_hit=hit, error=CrashError)

    completed = 0
    crashed: int | None = None
    for index, (user, sql) in enumerate(WORKLOAD):
        db.session.user_id = user
        try:
            db.execute(sql)
        except CrashError:
            crashed = index
            break
        completed = index + 1
    # the process is now "dead": no drain, no close — the journal
    # directory is all that survives (a crash on the worker thread never
    # surfaces in execute(); the workload then completes and the damage
    # is a lost in-flight batch, which recovery must also repair)

    fresh = _audited_db()
    report = fresh.recover(tmp_path / "j")
    recovered = _log_rows(fresh)

    must_have: set = set()
    for rows in ground_truth[:completed]:
        must_have |= rows
    may_have = set(must_have)
    if crashed is not None:
        # the mid-flight query's intent may or may not have hit the disk
        may_have |= ground_truth[crashed]
    else:
        may_have = set().union(*ground_truth)

    assert must_have <= recovered <= may_have, (
        f"crash at {site} hit {hit} ({mode}): completed={completed} "
        f"crashed={crashed} recovered={len(recovered)} rows"
    )
    # a fresh process replays every journaled intent
    assert report.replayed == report.intents

    # at-least-once, deduplicated: a second pass changes nothing
    again = fresh.recover(tmp_path / "j")
    assert again.replayed == 0
    assert again.skipped_applied == report.intents
    assert _log_rows(fresh) == recovered
    fresh.close()


# ---------------------------------------------------------------------------
# crashes *during* recovery


class TestMidRecoveryCrash:
    @pytest.mark.parametrize("hit", [1, 2, 3, 4])
    def test_resume_on_same_database_dedups(self, tmp_path, ground_truth,
                                            hit):
        db = _audited_db(journal_path=tmp_path / "j",
                         journal_fsync="always")
        _run_workload(db)
        db.close()

        faults = FaultInjector()
        fresh = _audited_db(fault_injector=faults)
        faults.arm("recovery-replay", at_hit=hit, error=CrashError)
        with pytest.raises(CrashError):
            fresh.recover(tmp_path / "j")
        # the crash fires before the hit-th intent is applied, so exactly
        # hit-1 intents landed; resuming on the same database skips them
        resumed = fresh.recover(tmp_path / "j")
        assert resumed.skipped_applied == hit - 1
        assert resumed.replayed == len(WORKLOAD) - (hit - 1)
        assert _log_rows(fresh) == set().union(*ground_truth)
        fresh.close()

    def test_fresh_process_after_recovery_crash(self, tmp_path,
                                                ground_truth):
        db = _audited_db(journal_path=tmp_path / "j",
                         journal_fsync="always")
        _run_workload(db)
        db.close()

        faults = FaultInjector()
        half = _audited_db(fault_injector=faults)
        faults.arm("recovery-replay", at_hit=2, error=CrashError)
        with pytest.raises(CrashError):
            half.recover(tmp_path / "j")
        # that process dies too; a brand-new one replays everything
        fresh = _audited_db()
        report = fresh.recover(tmp_path / "j")
        assert report.replayed == len(WORKLOAD)
        assert _log_rows(fresh) == set().union(*ground_truth)
        fresh.close()

    def test_recovering_journal_writer_survives_its_own_crash(
            self, tmp_path, ground_truth):
        """Recovery on a database with the journal *attached* journals
        its replay commits; a crash mid-recovery plus a second crash
        right after still converges on the full log."""
        db = _audited_db(journal_path=tmp_path / "j",
                         journal_fsync="always")
        _run_workload(db)
        db.close()

        faults = FaultInjector()
        fresh = _audited_db(journal_path=tmp_path / "j",
                            journal_fsync="always",
                            fault_injector=faults)
        faults.arm("recovery-replay", at_hit=3, error=CrashError)
        with pytest.raises(CrashError):
            fresh.recover()
        fresh.close()  # second "crash" — only the journal survives

        final = _audited_db(journal_path=tmp_path / "j")
        final.recover()
        assert _log_rows(final) == set().union(*ground_truth)
        final.close()
