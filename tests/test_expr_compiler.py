"""Compiled expression closures vs the tree-walking evaluator.

``repro.expr.compiler`` turns bound expression trees into Python closures
once per plan; the closures must agree with ``evaluate`` on every input,
including the SQL three-valued-logic corners (NULL propagation, NULL in
comparisons, short-circuit AND/OR). The battery runs each expression as a
projection over a table of adversarial rows in row mode (evaluator) and
batch mode (compiled) and compares the full result columns.
"""

from __future__ import annotations

import pytest

from repro import Database


def make_db() -> Database:
    db = Database()
    db.execute(
        "CREATE TABLE t (k INT PRIMARY KEY, a INT, b INT, s VARCHAR, "
        "d DATE)"
    )
    rows = [
        "(1, 10, 3, 'alpha', DATE '2020-01-15')",
        "(2, NULL, 5, 'Beta', DATE '2021-06-01')",
        "(3, -7, NULL, NULL, NULL)",
        "(4, 0, 0, '', DATE '2020-12-31')",
        "(5, 42, 6, 'gamma', DATE '2022-02-28')",
    ]
    for row in rows:
        db.execute(f"INSERT INTO t VALUES {row}")
    return db


EXPRESSIONS = [
    "a + b",
    "a - b * 2",
    "a / (b + 1)",
    "a % 7",
    "-a",
    "a + NULL",
    "s || '!' || s",
    "a > b",
    "a = b OR a > 40",
    "a > 0 AND b > 0",
    "NOT (a > 0)",
    "a IS NULL",
    "a IS NOT NULL",
    "a BETWEEN 0 AND 40",
    "s LIKE '%a%'",
    "s LIKE 'B_ta'",
    "a IN (10, 42, NULL)",
    "a NOT IN (10, 42)",
    "CASE WHEN a > 20 THEN 'big' WHEN a > 0 THEN 'small' ELSE 'neg' END",
    "CASE WHEN a IS NULL THEN b ELSE a END",
    "UPPER(s)",
    "LOWER(s)",
    "ABS(a)",
    "LENGTH(s)",
    "COALESCE(a, b, -1)",
    "SUBSTRING(s, 1, 3)",
    "EXTRACT(YEAR FROM d)",
    "d + INTERVAL '1' MONTH",
    "d > DATE '2020-06-01'",
    "(a + b) * (a - b)",
    "a > (SELECT AVG(a) FROM t)",
]


@pytest.mark.parametrize("expression", EXPRESSIONS)
def test_compiled_matches_evaluator(expression):
    db = make_db()
    sql = f"SELECT {expression} FROM t ORDER BY k"
    db.exec_mode = "row"  # ProjectOperator row mode uses the evaluator
    via_evaluator = db.execute(sql).rows
    db.plan_cache.clear()
    db.exec_mode = "batch"  # batch mode uses the compiled projector
    via_compiler = db.execute(sql).rows
    assert via_compiler == via_evaluator


def test_compiled_filter_matches_evaluator():
    db = make_db()
    for predicate in [
        "a > 5", "a + b > 10", "s LIKE '%a'", "a IS NULL OR b IS NULL",
        "a BETWEEN b AND 50", "a IN (SELECT b FROM t)",
    ]:
        sql = f"SELECT k FROM t WHERE {predicate} ORDER BY k"
        db.exec_mode = "row"
        expected = db.execute(sql).rows
        db.plan_cache.clear()
        db.exec_mode = "batch"
        assert db.execute(sql).rows == expected
        db.plan_cache.clear()


def test_parameters_are_read_at_call_time():
    db = make_db()
    sql = "SELECT k FROM t WHERE a > :cutoff ORDER BY k"
    assert db.execute(sql, {"cutoff": 20}).rows == [(5,)]
    # warm plan-cache hit: the compiled closure must re-read the parameter
    assert db.execute(sql, {"cutoff": -100}).rows == [(1,), (3,), (4,), (5,)]
    assert db.plan_cache.hits == 1


def test_unknown_function_rejected_at_bind_in_both_modes():
    """Batch mode must not change when name errors surface (bind time)."""
    from repro.errors import BindError

    for mode in ("row", "batch"):
        db = make_db()
        db.exec_mode = mode
        with pytest.raises(BindError):
            db.execute("SELECT NO_SUCH_FUNCTION(a) FROM t")


def test_projector_slot_fast_path():
    """A pure column-reference projection compiles to tuple indexing."""
    db = make_db()
    db.exec_mode = "batch"
    result = db.execute("SELECT s, a, k FROM t ORDER BY k")
    assert result.rows[0] == ("alpha", 10, 1)
    assert result.rows[2] == (None, -7, 3)
