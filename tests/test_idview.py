"""Tests for audit expressions and materialized sensitive-ID views."""

import pytest

from repro.errors import AuditError


@pytest.fixture
def audited_db(patients_db):
    patients_db.execute(
        "CREATE AUDIT EXPRESSION audit_alice AS SELECT * FROM patients "
        "WHERE name = 'Alice' FOR SENSITIVE TABLE patients, "
        "PARTITION BY patientid"
    )
    return patients_db


class TestExpressionValidation:
    def test_partition_column_must_exist(self, patients_db):
        with pytest.raises(AuditError):
            patients_db.execute(
                "CREATE AUDIT EXPRESSION bad AS SELECT * FROM patients "
                "FOR SENSITIVE TABLE patients, PARTITION BY ssn"
            )

    def test_sensitive_table_must_be_in_from(self, patients_db):
        with pytest.raises(AuditError):
            patients_db.execute(
                "CREATE AUDIT EXPRESSION bad AS SELECT * FROM disease "
                "FOR SENSITIVE TABLE patients, PARTITION BY patientid"
            )

    def test_subqueries_rejected(self, patients_db):
        with pytest.raises(AuditError):
            patients_db.execute(
                "CREATE AUDIT EXPRESSION bad AS SELECT * FROM patients "
                "WHERE patientid IN (SELECT patientid FROM disease) "
                "FOR SENSITIVE TABLE patients, PARTITION BY patientid"
            )

    def test_aggregation_rejected(self, patients_db):
        with pytest.raises(AuditError):
            patients_db.execute(
                "CREATE AUDIT EXPRESSION bad AS SELECT zip FROM patients "
                "GROUP BY zip "
                "FOR SENSITIVE TABLE patients, PARTITION BY patientid"
            )

    def test_duplicate_name_rejected(self, audited_db):
        with pytest.raises(AuditError):
            audited_db.execute(
                "CREATE AUDIT EXPRESSION audit_alice AS "
                "SELECT * FROM patients FOR SENSITIVE TABLE patients, "
                "PARTITION BY patientid"
            )

    def test_drop_expression(self, audited_db):
        audited_db.execute("DROP AUDIT EXPRESSION audit_alice")
        with pytest.raises(AuditError):
            audited_db.audit_manager.view("audit_alice")

    def test_drop_missing_expression(self, patients_db):
        with pytest.raises(AuditError):
            patients_db.execute("DROP AUDIT EXPRESSION ghost")


class TestMaterialization:
    def test_initial_ids(self, audited_db):
        view = audited_db.audit_manager.view("audit_alice")
        assert view.ids() == frozenset({1})
        assert 1 in view and 2 not in view
        assert len(view) == 1

    def test_empty_predicate_covers_all(self, patients_db):
        patients_db.execute(
            "CREATE AUDIT EXPRESSION audit_all AS SELECT * FROM patients "
            "FOR SENSITIVE TABLE patients, PARTITION BY patientid"
        )
        view = patients_db.audit_manager.view("audit_all")
        assert view.ids() == frozenset({1, 2, 3, 4, 5})

    def test_join_expression_materializes(self, patients_db):
        """The paper's Audit_Cancer expression (Example 2.2)."""
        patients_db.execute(
            "CREATE AUDIT EXPRESSION audit_cancer AS "
            "SELECT p.* FROM patients p, disease d "
            "WHERE p.patientid = d.patientid AND disease = 'cancer' "
            "FOR SENSITIVE TABLE patients, PARTITION BY patientid"
        )
        view = patients_db.audit_manager.view("audit_cancer")
        assert view.ids() == frozenset({1, 5})


class TestIncrementalMaintenance:
    def test_insert_matching_row(self, audited_db):
        audited_db.execute(
            "INSERT INTO patients VALUES (6, 'Alice', 50, '98105')"
        )
        view = audited_db.audit_manager.view("audit_alice")
        assert view.ids() == frozenset({1, 6})

    def test_insert_non_matching_row(self, audited_db):
        audited_db.execute(
            "INSERT INTO patients VALUES (6, 'Mallory', 50, '98105')"
        )
        assert audited_db.audit_manager.view("audit_alice").ids() == \
            frozenset({1})

    def test_delete_matching_row(self, audited_db):
        audited_db.execute("DELETE FROM patients WHERE patientid = 1")
        assert audited_db.audit_manager.view("audit_alice").ids() == \
            frozenset()

    def test_update_into_predicate(self, audited_db):
        audited_db.execute(
            "UPDATE patients SET name = 'Alice' WHERE patientid = 2"
        )
        assert audited_db.audit_manager.view("audit_alice").ids() == \
            frozenset({1, 2})

    def test_update_out_of_predicate(self, audited_db):
        audited_db.execute(
            "UPDATE patients SET name = 'Alicia' WHERE patientid = 1"
        )
        assert audited_db.audit_manager.view("audit_alice").ids() == \
            frozenset()

    def test_duplicate_id_not_dropped_while_backed(self, patients_db):
        """Two qualifying rows share an ID (non-PK partition key)."""
        patients_db.execute(
            "CREATE TABLE visits (visitid INT PRIMARY KEY, "
            "patientid INT, site VARCHAR)"
        )
        patients_db.execute(
            "INSERT INTO visits VALUES (1, 7, 'north'), (2, 7, 'north')"
        )
        patients_db.execute(
            "CREATE AUDIT EXPRESSION audit_north AS SELECT * FROM visits "
            "WHERE site = 'north' FOR SENSITIVE TABLE visits, "
            "PARTITION BY patientid"
        )
        patients_db.execute("DELETE FROM visits WHERE visitid = 1")
        view = patients_db.audit_manager.view("audit_north")
        assert view.ids() == frozenset({7})  # still backed by visit 2
        patients_db.execute("DELETE FROM visits WHERE visitid = 2")
        assert view.ids() == frozenset()

    def test_multi_table_expression_refreshes_on_other_table(
        self, patients_db
    ):
        patients_db.execute(
            "CREATE AUDIT EXPRESSION audit_cancer AS "
            "SELECT p.* FROM patients p, disease d "
            "WHERE p.patientid = d.patientid AND disease = 'cancer' "
            "FOR SENSITIVE TABLE patients, PARTITION BY patientid"
        )
        patients_db.execute("INSERT INTO disease VALUES (2, 'cancer')")
        view = patients_db.audit_manager.view("audit_cancer")
        assert view.ids() == frozenset({1, 2, 5})
        patients_db.execute("DELETE FROM disease WHERE patientid = 1")
        assert view.ids() == frozenset({2, 5})

    def test_refresh_matches_incremental_state(self, audited_db):
        audited_db.execute(
            "INSERT INTO patients VALUES (7, 'Alice', 61, '98106')"
        )
        audited_db.execute("DELETE FROM patients WHERE patientid = 1")
        view = audited_db.audit_manager.view("audit_alice")
        incremental = view.ids()
        view.refresh()
        assert view.ids() == incremental == frozenset({7})

    def test_refcounts_track_qualifying_rows(self, patients_db):
        """The O(1) delete path rests on the per-ID qualifying-row counts
        staying exact under mixed DML."""
        patients_db.execute(
            "CREATE TABLE visits (visitid INT PRIMARY KEY, "
            "patientid INT, site VARCHAR)"
        )
        patients_db.execute(
            "INSERT INTO visits VALUES (1, 7, 'north'), (2, 7, 'north'), "
            "(3, 8, 'north'), (4, 7, 'south')"
        )
        patients_db.execute(
            "CREATE AUDIT EXPRESSION audit_north AS SELECT * FROM visits "
            "WHERE site = 'north' FOR SENSITIVE TABLE visits, "
            "PARTITION BY patientid"
        )
        view = patients_db.audit_manager.view("audit_north")
        assert dict(view._id_refcounts) == {7: 2, 8: 1}
        # an UPDATE moving a row into the predicate bumps its ID's count
        patients_db.execute(
            "UPDATE visits SET site = 'north' WHERE visitid = 4"
        )
        assert dict(view._id_refcounts) == {7: 3, 8: 1}
        patients_db.execute("DELETE FROM visits WHERE patientid = 7")
        assert dict(view._id_refcounts) == {8: 1}
        assert view.ids() == frozenset({8})

    def test_refresh_rebuilds_refcounts(self, audited_db):
        view = audited_db.audit_manager.view("audit_alice")
        audited_db.execute(
            "INSERT INTO patients VALUES (9, 'Alice', 33, '98108')"
        )
        before = dict(view._id_refcounts)
        view.refresh()
        assert dict(view._id_refcounts) == before == {1: 1, 9: 1}

    def test_dropped_expression_stops_maintaining(self, audited_db):
        view = audited_db.audit_manager.view("audit_alice")
        audited_db.execute("DROP AUDIT EXPRESSION audit_alice")
        audited_db.execute(
            "INSERT INTO patients VALUES (8, 'Alice', 20, '98107')"
        )
        assert view.ids() == frozenset({1})  # frozen after drop
