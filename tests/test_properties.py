"""Property-based tests (hypothesis) for the paper's formal claims.

* Claim 3.5 / 3.6: leaf-node and hcn placements never produce false
  negatives against the deletion-based ground truth;
* Theorem 3.7: for select-join queries, hcn has zero false positives;
* audit operators are no-ops: instrumented and plain execution agree;
* the optimizer's rewrites preserve results (canonical plan vs optimized);
* ID-view incremental maintenance agrees with full re-materialization.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro import Database, HEURISTIC_HCN, HEURISTIC_LEAF, OfflineAuditor

_SETTINGS = settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

names = st.sampled_from(["Alice", "Bob", "Carol", "Dave", "Eve"])
zips = st.sampled_from(["11111", "22222", "33333"])
ages = st.one_of(st.none(), st.integers(min_value=1, max_value=90))
diseases = st.sampled_from(["flu", "cancer", "diabetes"])

patient_rows = st.lists(
    st.tuples(names, ages, zips), min_size=0, max_size=12
)
disease_rows = st.lists(
    st.tuples(st.integers(min_value=1, max_value=12), diseases),
    min_size=0,
    max_size=15,
)


def build_db(patients, sick) -> Database:
    db = Database()
    db.execute(
        "CREATE TABLE patients (patientid INT PRIMARY KEY, "
        "name VARCHAR, age INT, zip VARCHAR)"
    )
    db.execute("CREATE TABLE disease (patientid INT, disease VARCHAR)")
    for index, (name, age, zip_code) in enumerate(patients, start=1):
        age_sql = "NULL" if age is None else str(age)
        db.execute(
            f"INSERT INTO patients VALUES ({index}, '{name}', {age_sql}, "
            f"'{zip_code}')"
        )
    for patient_id, disease in sick:
        if patient_id <= len(patients):
            db.execute(
                f"INSERT INTO disease VALUES ({patient_id}, '{disease}')"
            )
    db.execute(
        "CREATE AUDIT EXPRESSION audit_all AS SELECT * FROM patients "
        "FOR SENSITIVE TABLE patients, PARTITION BY patientid"
    )
    return db


predicates = st.sampled_from([
    "",
    "age > 30",
    "age <= 50",
    "zip = '11111'",
    "name LIKE 'A%'",
    "age IS NOT NULL",
    "age > 20 AND zip <> '33333'",
])

sj_queries = st.builds(
    lambda pred, join: (
        "SELECT * FROM patients p"
        + (", disease d" if join else "")
        + " WHERE 1 = 1"
        + (" AND p.patientid = d.patientid" if join else "")
        + (f" AND {pred}" if pred else "")
    ),
    predicates,
    st.booleans(),
)

complex_queries = st.sampled_from([
    "SELECT zip, COUNT(*) FROM patients GROUP BY zip",
    "SELECT zip, COUNT(*) FROM patients GROUP BY zip "
    "HAVING COUNT(*) >= 2",
    "SELECT name FROM patients ORDER BY age LIMIT 3",
    "SELECT DISTINCT zip FROM patients",
    "SELECT p.name FROM patients p WHERE EXISTS "
    "(SELECT 1 FROM disease d WHERE d.patientid = p.patientid)",
    "SELECT name FROM patients WHERE patientid IN "
    "(SELECT patientid FROM disease WHERE disease = 'flu')",
    "SELECT d.disease, COUNT(*) FROM patients p, disease d "
    "WHERE p.patientid = d.patientid GROUP BY d.disease "
    "HAVING COUNT(*) >= 2",
    "SELECT name FROM patients WHERE age > "
    "(SELECT AVG(age) FROM patients)",
])


class TestNoFalseNegatives:
    """Claims 3.5 and 3.6 against the deletion-based ground truth."""

    @_SETTINGS
    @given(patients=patient_rows, sick=disease_rows, query=sj_queries)
    def test_sj_queries_hcn(self, patients, sick, query):
        db = build_db(patients, sick)
        truth = OfflineAuditor(db).audit(query, "audit_all")
        online = db.execute(query).accessed.get("audit_all", frozenset())
        assert truth <= online

    @_SETTINGS
    @given(patients=patient_rows, sick=disease_rows, query=complex_queries)
    def test_complex_queries_hcn(self, patients, sick, query):
        db = build_db(patients, sick)
        truth = OfflineAuditor(db).audit(query, "audit_all")
        online = db.execute(query).accessed.get("audit_all", frozenset())
        assert truth <= online

    @_SETTINGS
    @given(patients=patient_rows, sick=disease_rows, query=complex_queries)
    def test_complex_queries_leaf(self, patients, sick, query):
        db = build_db(patients, sick)
        db.audit_manager.heuristic = HEURISTIC_LEAF
        truth = OfflineAuditor(db).audit(query, "audit_all")
        online = db.execute(query).accessed.get("audit_all", frozenset())
        assert truth <= online


class TestSjExactness:
    """Theorem 3.7: zero false positives for select-join queries."""

    @_SETTINGS
    @given(patients=patient_rows, sick=disease_rows, query=sj_queries)
    def test_hcn_equals_offline_for_sj(self, patients, sick, query):
        db = build_db(patients, sick)
        truth = OfflineAuditor(db).audit(query, "audit_all")
        online = db.execute(query).accessed.get("audit_all", frozenset())
        assert online == truth


class TestAuditOperatorIsNoOp:
    @_SETTINGS
    @given(
        patients=patient_rows,
        sick=disease_rows,
        query=st.one_of(sj_queries, complex_queries),
    )
    def test_instrumented_equals_plain(self, patients, sick, query):
        db = build_db(patients, sick)
        instrumented = db.execute(query)
        db.audit_enabled = False
        plain = db.execute(query)
        assert sorted(map(repr, instrumented.rows)) == \
            sorted(map(repr, plain.rows))

    @_SETTINGS
    @given(patients=patient_rows, sick=disease_rows, query=complex_queries)
    def test_hcn_subset_of_leaf(self, patients, sick, query):
        db = build_db(patients, sick)
        hcn = db.execute(query).accessed.get("audit_all", frozenset())
        db.audit_manager.heuristic = HEURISTIC_LEAF
        leaf = db.execute(query).accessed.get("audit_all", frozenset())
        assert hcn <= leaf


class TestRewritePreservesResults:
    @_SETTINGS
    @given(
        patients=patient_rows,
        sick=disease_rows,
        query=st.one_of(sj_queries, complex_queries),
    )
    def test_optimized_equals_canonical(self, patients, sick, query):
        from repro.optimizer.physical import PhysicalPlanner
        from repro.sql.parser import parse_statement

        db = build_db(patients, sick)
        statement = parse_statement(query)
        canonical = db._builder.build_select(statement)
        planner = PhysicalPlanner(
            db.catalog, db.audit_manager.resolve_view
        )
        raw = db.run_physical(planner.compile(canonical)).rows
        optimized = db.run_physical(
            planner.compile(db._optimizer.optimize_logical(canonical))
        ).rows
        assert sorted(map(repr, raw)) == sorted(map(repr, optimized))


class TestPhysicalChoicesPreserveSemantics:
    """Join strategy and join order are pure performance knobs."""

    @_SETTINGS
    @given(
        patients=patient_rows,
        sick=disease_rows,
        query=st.one_of(sj_queries, complex_queries),
        strategy=st.sampled_from(["hash", "index-nl", "auto"]),
    )
    def test_join_strategy_equivalence(self, patients, sick, query, strategy):
        db = build_db(patients, sick)
        db.join_strategy = "hash"
        baseline = db.execute(query)
        db.join_strategy = strategy
        variant = db.execute(query)
        assert sorted(map(repr, baseline.rows)) == \
            sorted(map(repr, variant.rows))
        # audit cardinality is independent of the physical operators (§III)
        assert baseline.accessed == variant.accessed

    @_SETTINGS
    @given(patients=patient_rows, sick=disease_rows, query=sj_queries)
    def test_join_reorder_equivalence(self, patients, sick, query):
        db = build_db(patients, sick)
        with_reorder = db.execute(query)
        db._optimizer.join_reorder = False
        without = db.execute(query)
        assert sorted(map(repr, with_reorder.rows)) == \
            sorted(map(repr, without.rows))
        assert with_reorder.accessed == without.accessed


class TestIdViewMaintenance:
    operations = st.lists(
        st.tuples(
            st.sampled_from(["insert", "delete", "update"]),
            st.integers(min_value=1, max_value=15),
            names,
        ),
        max_size=12,
    )

    @_SETTINGS
    @given(patients=patient_rows, ops=operations)
    def test_incremental_equals_refresh(self, patients, ops):
        db = build_db(patients, [])
        db.execute(
            "CREATE AUDIT EXPRESSION audit_alice AS "
            "SELECT * FROM patients WHERE name = 'Alice' "
            "FOR SENSITIVE TABLE patients, PARTITION BY patientid"
        )
        next_id = len(patients) + 1
        for action, key, name in ops:
            if action == "insert":
                db.execute(
                    f"INSERT INTO patients VALUES ({next_id}, '{name}', "
                    f"30, '11111')"
                )
                next_id += 1
            elif action == "delete":
                db.execute(f"DELETE FROM patients WHERE patientid = {key}")
            else:
                db.execute(
                    f"UPDATE patients SET name = '{name}' "
                    f"WHERE patientid = {key}"
                )
        view = db.audit_manager.view("audit_alice")
        incremental = view.ids()
        view.refresh()
        assert view.ids() == incremental


class TestTransactionRollback:
    operations = st.lists(
        st.tuples(
            st.sampled_from(["insert", "delete", "update"]),
            st.integers(min_value=1, max_value=20),
            ages,
        ),
        max_size=15,
    )

    @_SETTINGS
    @given(patients=patient_rows, ops=operations)
    def test_rollback_restores_exact_state(self, patients, ops):
        """BEGIN + arbitrary DML + ROLLBACK is a no-op on table contents,
        indexes, and materialized audit views."""
        db = build_db(patients, [])
        snapshot = sorted(db.execute("SELECT * FROM patients").rows)
        view = db.audit_manager.view("audit_all")
        view_snapshot = view.ids()
        next_id = 100
        db.execute("BEGIN")
        for action, key, age in ops:
            age_sql = "NULL" if age is None else str(age)
            try:
                if action == "insert":
                    db.execute(
                        f"INSERT INTO patients VALUES ({next_id}, 'Zed', "
                        f"{age_sql}, '99999')"
                    )
                    next_id += 1
                elif action == "delete":
                    db.execute(
                        f"DELETE FROM patients WHERE patientid = {key}"
                    )
                else:
                    db.execute(
                        f"UPDATE patients SET age = {age_sql} "
                        f"WHERE patientid = {key}"
                    )
            except Exception:
                pass  # statement-level rollback already ran
        db.execute("ROLLBACK")
        assert sorted(db.execute("SELECT * FROM patients").rows) == snapshot
        assert view.ids() == view_snapshot
        # the PK index survived: point lookups still work
        if snapshot:
            first_id = snapshot[0][0]
            assert db.execute(
                f"SELECT COUNT(*) FROM patients WHERE patientid = {first_id}"
            ).scalar() == 1


class TestTopK:
    @_SETTINGS
    @given(
        values=st.lists(
            st.one_of(st.none(), st.integers(-50, 50)), max_size=30
        ),
        k=st.integers(min_value=0, max_value=10),
        descending=st.booleans(),
    )
    def test_topk_equals_sorted_prefix(self, values, k, descending):
        db = Database()
        db.execute("CREATE TABLE t (v INT)")
        for value in values:
            db.execute(
                f"INSERT INTO t VALUES "
                f"({'NULL' if value is None else value})"
            )
        direction = "DESC" if descending else "ASC"
        top = db.execute(
            f"SELECT v FROM t ORDER BY v {direction} LIMIT {k}"
        ).rows
        everything = db.execute(
            f"SELECT v FROM t ORDER BY v {direction}"
        ).rows
        assert top == everything[:k]
