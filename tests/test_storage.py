"""Unit tests for heap tables, indexes, constraints, and change observers."""

import pytest

from repro.catalog.schema import Column, TableSchema
from repro.datatypes import INTEGER, VARCHAR
from repro.errors import CatalogError, ConstraintError, StorageError
from repro.storage.index import HashIndex, OrderedIndex
from repro.storage.table import (
    CHANGE_DELETE,
    CHANGE_INSERT,
    CHANGE_UPDATE,
    Table,
)


def make_table() -> Table:
    schema = TableSchema(
        name="t",
        columns=(
            Column("id", INTEGER, nullable=False),
            Column("name", VARCHAR),
            Column("score", INTEGER),
        ),
        primary_key=("id",),
    )
    return Table(schema)


class TestSchema:
    def test_duplicate_column_rejected(self):
        with pytest.raises(CatalogError):
            TableSchema("t", (Column("a", INTEGER), Column("a", INTEGER)))

    def test_missing_pk_column_rejected(self):
        with pytest.raises(CatalogError):
            TableSchema("t", (Column("a", INTEGER),), primary_key=("b",))

    def test_position_lookup_case_insensitive(self):
        schema = make_table().schema
        assert schema.position_of("NAME") == 1

    def test_unknown_column(self):
        with pytest.raises(CatalogError):
            make_table().schema.position_of("nope")

    def test_single_column_pk(self):
        assert make_table().schema.single_column_primary_key() == "id"


class TestTableCrud:
    def test_insert_and_iterate(self):
        table = make_table()
        table.insert((1, "a", 10))
        table.insert((2, "b", 20))
        assert len(table) == 2
        assert sorted(table.rows()) == [(1, "a", 10), (2, "b", 20)]

    def test_duplicate_pk_rejected(self):
        table = make_table()
        table.insert((1, "a", 10))
        with pytest.raises(ConstraintError):
            table.insert((1, "b", 20))

    def test_null_pk_rejected(self):
        table = make_table()
        with pytest.raises(ConstraintError):
            table.insert((None, "a", 10))

    def test_not_null_enforced(self):
        schema = TableSchema(
            "t", (Column("a", INTEGER, nullable=False),)
        )
        table = Table(schema)
        with pytest.raises(ConstraintError):
            table.insert((None,))

    def test_wrong_arity_rejected(self):
        table = make_table()
        with pytest.raises(StorageError):
            table.insert((1, "a"))

    def test_pk_lookup(self):
        table = make_table()
        table.insert((7, "x", 1))
        assert table.lookup_pk((7,)) == (7, "x", 1)
        assert table.lookup_pk((8,)) is None

    def test_delete_by_pk(self):
        table = make_table()
        table.insert((1, "a", 10))
        removed = table.delete_by_pk((1,))
        assert removed == (1, "a", 10)
        assert len(table) == 0
        assert table.delete_by_pk((1,)) is None

    def test_update_moves_pk_index(self):
        table = make_table()
        rid = table.insert((1, "a", 10))
        table.update_rid(rid, (2, "a", 10))
        assert table.lookup_pk((1,)) is None
        assert table.lookup_pk((2,)) == (2, "a", 10)

    def test_update_to_duplicate_pk_rejected(self):
        table = make_table()
        table.insert((1, "a", 10))
        rid = table.insert((2, "b", 20))
        with pytest.raises(ConstraintError):
            table.update_rid(rid, (1, "b", 20))

    def test_version_counter_advances(self):
        table = make_table()
        version = table.version
        rid = table.insert((1, "a", 10))
        assert table.version > version
        version = table.version
        table.update_rid(rid, (1, "a", 11))
        assert table.version > version
        version = table.version
        table.delete_rid(rid)
        assert table.version > version

    def test_truncate_clears_rows_and_indexes(self):
        table = make_table()
        table.create_secondary_index("by_name", ("name",))
        table.insert((1, "a", 10))
        table.truncate()
        assert len(table) == 0
        assert list(table.secondary_index("by_name").seek(("a",))) == []

    def test_bulk_load_skips_observers(self):
        table = make_table()
        changes = []
        table.add_observer(changes.append)
        assert table.bulk_load([(1, "a", 1), (2, "b", 2)]) == 2
        assert changes == []


class TestObservers:
    def test_insert_notification(self):
        table = make_table()
        changes = []
        table.add_observer(changes.append)
        table.insert((1, "a", 10))
        assert len(changes) == 1
        assert changes[0].kind == CHANGE_INSERT
        assert changes[0].new_row == (1, "a", 10)
        assert changes[0].old_row is None

    def test_update_notification_has_both_images(self):
        table = make_table()
        rid = table.insert((1, "a", 10))
        changes = []
        table.add_observer(changes.append)
        table.update_rid(rid, (1, "a", 99))
        assert changes[0].kind == CHANGE_UPDATE
        assert changes[0].old_row == (1, "a", 10)
        assert changes[0].new_row == (1, "a", 99)

    def test_delete_notification(self):
        table = make_table()
        rid = table.insert((1, "a", 10))
        changes = []
        table.add_observer(changes.append)
        table.delete_rid(rid)
        assert changes[0].kind == CHANGE_DELETE
        assert changes[0].old_row == (1, "a", 10)

    def test_remove_observer(self):
        table = make_table()
        changes = []
        table.add_observer(changes.append)
        table.remove_observer(changes.append)
        table.insert((1, "a", 10))
        assert changes == []


class TestSecondaryIndexes:
    def test_hash_index_seek(self):
        index = HashIndex("i", (1,))
        index.insert(0, (1, "a"))
        index.insert(1, (2, "a"))
        index.insert(2, (3, "b"))
        assert sorted(index.seek(("a",))) == [0, 1]
        assert list(index.seek(("c",))) == []
        assert len(index) == 3

    def test_hash_index_delete(self):
        index = HashIndex("i", (0,))
        index.insert(0, (5,))
        index.delete(0, (5,))
        assert list(index.seek((5,))) == []

    def test_null_keys_not_indexed(self):
        index = HashIndex("i", (0,))
        index.insert(0, (None,))
        assert len(index) == 0
        assert list(index.seek((None,))) == []

    def test_ordered_index_range(self):
        index = OrderedIndex("i", (0,))
        for rid, value in enumerate([10, 20, 30, 40, 50]):
            index.insert(rid, (value,))
        assert sorted(index.range_scan((20,), (40,))) == [1, 2, 3]
        assert sorted(index.range_scan((20,), (40,), False, False)) == [2]
        assert sorted(index.range_scan(None, (20,))) == [0, 1]
        assert sorted(index.range_scan((40,), None)) == [3, 4]

    def test_ordered_index_delete_maintains_sorted_keys(self):
        index = OrderedIndex("i", (0,))
        index.insert(0, (10,))
        index.insert(1, (20,))
        index.delete(0, (10,))
        assert sorted(index.range_scan(None, None)) == [1]

    def test_ordered_index_duplicate_keys(self):
        index = OrderedIndex("i", (0,))
        index.insert(0, (10,))
        index.insert(1, (10,))
        assert sorted(index.seek((10,))) == [0, 1]
        index.delete(0, (10,))
        assert sorted(index.seek((10,))) == [1]

    def test_table_index_maintenance_on_dml(self):
        table = make_table()
        table.create_secondary_index("by_score", ("score",))
        rid = table.insert((1, "a", 10))
        table.insert((2, "b", 20))
        index = table.secondary_index("by_score")
        assert sorted(index.seek((10,))) == [rid]
        table.update_rid(rid, (1, "a", 30))
        assert list(index.seek((10,))) == []
        assert sorted(index.seek((30,))) == [rid]
        table.delete_rid(rid)
        assert list(index.seek((30,))) == []

    def test_index_backfills_existing_rows(self):
        table = make_table()
        table.insert((1, "a", 10))
        table.create_secondary_index("by_name", ("name",))
        assert len(table.secondary_index("by_name")) == 1

    def test_duplicate_index_name_rejected(self):
        table = make_table()
        table.create_secondary_index("i", ("name",))
        with pytest.raises(StorageError):
            table.create_secondary_index("i", ("score",))
