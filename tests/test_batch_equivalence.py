"""Row-mode vs batch-mode execution equivalence.

Batch-at-a-time execution with compiled predicates is a pure optimization:
for the same physical plan it must produce the identical row sequence, the
identical ACCESSED sets, and the identical audit probe counts as the
Volcano row loop. The hypothesis property drives random select-join and
SPJA plans (with an audit expression installed) through both pipelines at
adversarial batch sizes, including batch size 1.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro import Database
from repro.exec.operators.base import collect_rows

_SETTINGS = settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

names = st.sampled_from(["Alice", "Bob", "Carol", "Dave", "Eve"])
zips = st.sampled_from(["11111", "22222", "33333"])
ages = st.one_of(st.none(), st.integers(min_value=1, max_value=90))
diseases = st.sampled_from(["flu", "cancer", "diabetes"])

patient_rows = st.lists(
    st.tuples(names, ages, zips), min_size=0, max_size=12
)
disease_rows = st.lists(
    st.tuples(st.integers(min_value=1, max_value=12), diseases),
    min_size=0,
    max_size=15,
)

#: boundary-hunting batch sizes: single-row batches, sizes that leave
#: ragged final batches, and one larger than any test relation
batch_sizes = st.sampled_from([1, 2, 3, 7, 1024])

queries = st.sampled_from([
    "SELECT * FROM patients",
    "SELECT * FROM patients WHERE age > 30",
    "SELECT name, age FROM patients WHERE zip = '11111' OR age IS NULL",
    "SELECT * FROM patients WHERE name LIKE 'A%' AND age BETWEEN 20 AND 60",
    "SELECT * FROM patients p, disease d WHERE p.patientid = d.patientid",
    "SELECT p.name, d.disease FROM patients p, disease d "
    "WHERE p.patientid = d.patientid AND d.disease IN ('flu', 'cancer')",
    "SELECT zip, COUNT(*), AVG(age) FROM patients GROUP BY zip",
    "SELECT zip, COUNT(*) FROM patients GROUP BY zip HAVING COUNT(*) >= 2",
    "SELECT DISTINCT zip FROM patients",
    "SELECT name FROM patients ORDER BY age, name LIMIT 3",
    "SELECT name, CASE WHEN age > 40 THEN 'old' ELSE 'young' END "
    "FROM patients ORDER BY patientid",
    "SELECT name FROM patients WHERE patientid IN "
    "(SELECT patientid FROM disease WHERE disease = 'flu')",
    "SELECT d.disease, COUNT(*) FROM patients p, disease d "
    "WHERE p.patientid = d.patientid GROUP BY d.disease",
])


def build_db(patients, sick) -> Database:
    db = Database()
    db.execute(
        "CREATE TABLE patients (patientid INT PRIMARY KEY, "
        "name VARCHAR, age INT, zip VARCHAR)"
    )
    db.execute("CREATE TABLE disease (patientid INT, disease VARCHAR)")
    for index, (name, age, zip_code) in enumerate(patients, start=1):
        age_sql = "NULL" if age is None else str(age)
        db.execute(
            f"INSERT INTO patients VALUES ({index}, '{name}', {age_sql}, "
            f"'{zip_code}')"
        )
    for patient_id, disease in sick:
        if patient_id <= len(patients):
            db.execute(
                f"INSERT INTO disease VALUES ({patient_id}, '{disease}')"
            )
    db.execute(
        "CREATE AUDIT EXPRESSION audit_all AS SELECT * FROM patients "
        "FOR SENSITIVE TABLE patients, PARTITION BY patientid"
    )
    return db


def compile_select(db: Database, query: str):
    from repro.sql.parser import parse_statement

    logical = db._builder.build_select(parse_statement(query))
    logical = db._optimizer.optimize_logical(
        logical, instrument=db._instrument_hook()
    )
    return db._optimizer.compile(logical)


def run_mode(db: Database, physical, mode: str):
    context = db.make_context()
    rows = collect_rows(physical, context, mode=mode)
    return (
        rows,
        {name: frozenset(ids) for name, ids in context.accessed.items()},
        context.audit_probe_count,
        dict(context.audit_probe_counts),
    )


class TestBatchEquivalence:
    @_SETTINGS
    @given(
        patients=patient_rows,
        sick=disease_rows,
        query=queries,
        batch_size=batch_sizes,
    )
    def test_same_plan_same_artifacts(
        self, patients, sick, query, batch_size
    ):
        db = build_db(patients, sick)
        db.batch_size = batch_size
        physical = compile_select(db, query)
        row_out = run_mode(db, physical, "row")
        batch_out = run_mode(db, physical, "batch")
        # identical row *sequence*, not just identical bags
        assert row_out[0] == batch_out[0]
        assert row_out[1] == batch_out[1]  # ACCESSED sets
        assert row_out[2] == batch_out[2]  # total probe count
        assert row_out[3] == batch_out[3]  # per-expression probe counts

    @_SETTINGS
    @given(patients=patient_rows, sick=disease_rows, query=queries)
    def test_execute_end_to_end(self, patients, sick, query):
        db = build_db(patients, sick)
        db.exec_mode = "row"
        row_result = db.execute(query)
        db.exec_mode = "batch"
        batch_result = db.execute(query)
        assert row_result.rows == batch_result.rows
        assert row_result.accessed == batch_result.accessed
        assert row_result.columns == batch_result.columns


class TestProbeFlushOnAbort:
    """Probe accounting survives a consumer abandoning the iterator."""

    def _db(self) -> Database:
        db = build_db(
            [("Alice", 30, "11111"), ("Bob", 40, "22222"),
             ("Carol", 50, "33333"), ("Dave", 60, "11111")],
            [],
        )
        return db

    @pytest.mark.parametrize("mode", ["row", "batch"])
    def test_partial_consumption_flushes_probes(self, mode):
        db = self._db()
        db.batch_size = 1  # one probe per batch: prefix counts are exact
        physical = compile_select(db, "SELECT * FROM patients")
        context = db.make_context()
        iterator = (
            physical.rows(context)
            if mode == "row"
            else physical.rows_batched(context)
        )
        next(iterator)
        next(iterator)
        iterator.close()  # GeneratorExit mid-stream
        assert context.audit_probe_count >= 2
        assert context.audit_probe_counts.get("audit_all", 0) >= 2

    def test_exception_mid_stream_flushes_probes(self):
        db = self._db()
        physical = compile_select(db, "SELECT * FROM patients")
        context = db.make_context()
        iterator = physical.rows(context)
        next(iterator)
        with pytest.raises(RuntimeError):
            iterator.throw(RuntimeError("consumer died"))
        assert context.audit_probe_count >= 1
        assert context.audit_probe_counts.get("audit_all", 0) >= 1
