"""End-to-end SQL tests through the Database facade."""

import datetime

import pytest

from repro import Database
from repro.errors import (
    BindError,
    CatalogError,
    ConstraintError,
    ExecutionError,
    UnsupportedSqlError,
)


class TestDdl:
    def test_create_and_drop_table(self, db):
        db.execute("CREATE TABLE t (a INT PRIMARY KEY, b VARCHAR)")
        assert db.catalog.has_table("t")
        db.execute("DROP TABLE t")
        assert not db.catalog.has_table("t")

    def test_duplicate_table_rejected(self, db):
        db.execute("CREATE TABLE t (a INT)")
        with pytest.raises(CatalogError):
            db.execute("CREATE TABLE t (a INT)")

    def test_pk_gets_companion_index(self, db):
        db.execute("CREATE TABLE t (a INT PRIMARY KEY, b VARCHAR)")
        table = db.catalog.table("t")
        assert "t_pk" in table.secondary_indexes()

    def test_create_index(self, db):
        db.execute("CREATE TABLE t (a INT, b VARCHAR)")
        db.execute("CREATE INDEX t_b ON t (b)")
        assert db.catalog.indexes_on("t")[0].name != ""


class TestInsert:
    def test_insert_values(self, db):
        db.execute("CREATE TABLE t (a INT PRIMARY KEY, b VARCHAR)")
        result = db.execute("INSERT INTO t VALUES (1, 'x'), (2, 'y')")
        assert result.rowcount == 2
        assert len(db.execute("SELECT * FROM t")) == 2

    def test_insert_with_column_list_fills_nulls(self, db):
        db.execute("CREATE TABLE t (a INT PRIMARY KEY, b VARCHAR, c INT)")
        db.execute("INSERT INTO t (c, a) VALUES (9, 1)")
        assert db.execute("SELECT a, b, c FROM t").rows == [(1, None, 9)]

    def test_insert_select(self, db):
        db.execute("CREATE TABLE src (a INT)")
        db.execute("CREATE TABLE dst (a INT)")
        db.execute("INSERT INTO src VALUES (1), (2), (3)")
        result = db.execute("INSERT INTO dst SELECT a FROM src WHERE a > 1")
        assert result.rowcount == 2

    def test_insert_arity_mismatch(self, db):
        db.execute("CREATE TABLE t (a INT, b INT)")
        with pytest.raises(ExecutionError):
            db.execute("INSERT INTO t VALUES (1)")

    def test_foreign_key_enforced(self, db):
        db.execute("CREATE TABLE parent (id INT PRIMARY KEY)")
        db.execute(
            "CREATE TABLE child (id INT PRIMARY KEY, pid INT, "
            "FOREIGN KEY (pid) REFERENCES parent (id))"
        )
        db.execute("INSERT INTO parent VALUES (1)")
        db.execute("INSERT INTO child VALUES (10, 1)")
        with pytest.raises(ConstraintError):
            db.execute("INSERT INTO child VALUES (11, 99)")

    def test_foreign_key_null_allowed(self, db):
        db.execute("CREATE TABLE parent (id INT PRIMARY KEY)")
        db.execute(
            "CREATE TABLE child (id INT PRIMARY KEY, pid INT, "
            "FOREIGN KEY (pid) REFERENCES parent (id))"
        )
        db.execute("INSERT INTO child VALUES (10, NULL)")  # no error


class TestUpdateDelete:
    def test_update(self, patients_db):
        result = patients_db.execute(
            "UPDATE patients SET age = age + 1 WHERE zip = '98101'"
        )
        assert result.rowcount == 2
        ages = dict(
            patients_db.execute(
                "SELECT patientid, age FROM patients"
            ).rows
        )
        assert ages[1] == 41 and ages[3] == 34
        assert ages[2] == 25  # untouched

    def test_update_pk_value(self, db):
        db.execute("CREATE TABLE t (a INT PRIMARY KEY)")
        db.execute("INSERT INTO t VALUES (1)")
        db.execute("UPDATE t SET a = 2")
        assert db.execute("SELECT a FROM t").rows == [(2,)]

    def test_delete(self, patients_db):
        result = patients_db.execute(
            "DELETE FROM disease WHERE disease = 'flu'"
        )
        assert result.rowcount == 3
        remaining = patients_db.execute("SELECT COUNT(*) FROM disease")
        assert remaining.scalar() == 3

    def test_delete_all(self, db):
        db.execute("CREATE TABLE t (a INT)")
        db.execute("INSERT INTO t VALUES (1), (2)")
        assert db.execute("DELETE FROM t").rowcount == 2


class TestSelect:
    def test_projection_and_alias(self, patients_db):
        result = patients_db.execute(
            "SELECT name, age * 2 AS dbl FROM patients WHERE patientid = 1"
        )
        assert result.columns == ("name", "dbl")
        assert result.rows == [("Alice", 80)]

    def test_star_columns(self, patients_db):
        result = patients_db.execute("SELECT * FROM patients")
        assert result.columns == ("patientid", "name", "age", "zip")

    def test_qualified_star(self, patients_db):
        result = patients_db.execute(
            "SELECT p.* FROM patients p, disease d "
            "WHERE p.patientid = d.patientid AND d.disease = 'cancer'"
        )
        assert result.columns == ("patientid", "name", "age", "zip")
        assert sorted(row[1] for row in result.rows) == ["Alice", "Erin"]

    def test_order_by_alias_and_direction(self, patients_db):
        result = patients_db.execute(
            "SELECT name, age AS years FROM patients ORDER BY years DESC"
        )
        assert result.rows[0][0] == "Dave"

    def test_order_by_hidden_column(self, patients_db):
        result = patients_db.execute(
            "SELECT name FROM patients ORDER BY age"
        )
        assert result.columns == ("name",)
        assert result.rows[0] == ("Bob",)

    def test_order_by_ordinal(self, patients_db):
        result = patients_db.execute(
            "SELECT name, age FROM patients ORDER BY 2 DESC"
        )
        assert result.rows[0][0] == "Dave"

    def test_limit(self, patients_db):
        assert len(patients_db.execute(
            "SELECT * FROM patients ORDER BY patientid LIMIT 2"
        )) == 2

    def test_top(self, patients_db):
        result = patients_db.execute(
            "SELECT TOP 1 name FROM patients ORDER BY age DESC"
        )
        assert result.rows == [("Dave",)]

    def test_distinct(self, patients_db):
        result = patients_db.execute("SELECT DISTINCT zip FROM patients")
        assert sorted(result.rows) == [("98101",), ("98102",), ("98103",)]

    def test_distinct_order_by_requires_selected(self, patients_db):
        with pytest.raises(BindError):
            patients_db.execute(
                "SELECT DISTINCT zip FROM patients ORDER BY age"
            )

    def test_group_by_having(self, patients_db):
        result = patients_db.execute(
            "SELECT disease, COUNT(*) AS c FROM disease "
            "GROUP BY disease HAVING COUNT(*) >= 2 ORDER BY disease"
        )
        assert result.rows == [("cancer", 2), ("flu", 3)]

    def test_global_aggregate_on_empty_input(self, db):
        db.execute("CREATE TABLE t (a INT)")
        result = db.execute("SELECT COUNT(*), SUM(a), MIN(a) FROM t")
        assert result.rows == [(0, None, None)]

    def test_group_by_empty_input_yields_no_groups(self, db):
        db.execute("CREATE TABLE t (a INT, b INT)")
        result = db.execute("SELECT a, COUNT(*) FROM t GROUP BY a")
        assert result.rows == []

    def test_group_by_expression(self, patients_db):
        result = patients_db.execute(
            "SELECT age / 10, COUNT(*) FROM patients GROUP BY age / 10"
        )
        assert len(result.rows) >= 2

    def test_column_not_in_group_by_rejected(self, patients_db):
        with pytest.raises(BindError):
            patients_db.execute(
                "SELECT name, COUNT(*) FROM patients GROUP BY zip"
            )

    def test_having_without_group_rejected(self, patients_db):
        with pytest.raises(BindError):
            patients_db.execute("SELECT name FROM patients HAVING age > 1")

    def test_ambiguous_column_rejected(self, patients_db):
        with pytest.raises(BindError):
            patients_db.execute(
                "SELECT patientid FROM patients, disease"
            )

    def test_unknown_column_rejected(self, patients_db):
        with pytest.raises(BindError):
            patients_db.execute("SELECT nothere FROM patients")

    def test_unknown_table_rejected(self, db):
        with pytest.raises(CatalogError):
            db.execute("SELECT 1 FROM ghosts")

    def test_from_less_select(self, db):
        assert db.execute("SELECT 1 + 1").rows == [(2,)]

    def test_explicit_join(self, patients_db):
        result = patients_db.execute(
            "SELECT p.name FROM patients p JOIN disease d "
            "ON p.patientid = d.patientid WHERE d.disease = 'diabetes'"
        )
        assert result.rows == [("Dave",)]

    def test_left_join_preserves_unmatched(self, db):
        db.execute("CREATE TABLE a (x INT)")
        db.execute("CREATE TABLE b (x INT, y VARCHAR)")
        db.execute("INSERT INTO a VALUES (1), (2)")
        db.execute("INSERT INTO b VALUES (1, 'hit')")
        result = db.execute(
            "SELECT a.x, b.y FROM a LEFT JOIN b ON a.x = b.x ORDER BY a.x"
        )
        assert result.rows == [(1, "hit"), (2, None)]

    def test_derived_table(self, patients_db):
        result = patients_db.execute(
            "SELECT d.name FROM (SELECT name, age FROM patients "
            "WHERE age > 40) d WHERE d.age < 50"
        )
        assert result.rows == [("Erin",)]

    def test_case_in_select(self, patients_db):
        result = patients_db.execute(
            "SELECT name, CASE WHEN age >= 40 THEN 'senior' "
            "ELSE 'junior' END AS bracket FROM patients "
            "WHERE patientid IN (1, 2)"
        )
        assert dict(result.rows) == {"Alice": "senior", "Bob": "junior"}

    def test_parameters(self, patients_db):
        result = patients_db.execute(
            "SELECT name FROM patients WHERE age > :cutoff",
            {"cutoff": 45},
        )
        assert sorted(result.rows) == [("Dave",), ("Erin",)]

    def test_date_parameter_with_interval(self, db):
        db.execute("CREATE TABLE t (d DATE)")
        db.execute("INSERT INTO t VALUES ('1995-06-01'), ('1995-01-05')")
        result = db.execute(
            "SELECT d FROM t WHERE d < :base + INTERVAL '3' MONTH",
            {"base": datetime.date(1995, 1, 1)},
        )
        assert result.rows == [(datetime.date(1995, 1, 5),)]


class TestSubqueries:
    def test_uncorrelated_in(self, patients_db):
        result = patients_db.execute(
            "SELECT name FROM patients WHERE patientid IN "
            "(SELECT patientid FROM disease WHERE disease = 'cancer')"
        )
        assert sorted(result.rows) == [("Alice",), ("Erin",)]

    def test_correlated_exists(self, patients_db):
        result = patients_db.execute(
            "SELECT name FROM patients p WHERE EXISTS "
            "(SELECT 1 FROM disease d WHERE d.patientid = p.patientid "
            "AND d.disease = 'flu')"
        )
        assert sorted(result.rows) == [("Bob",), ("Carol",), ("Erin",)]

    def test_correlated_not_exists(self, patients_db):
        patients_db.execute("INSERT INTO patients VALUES (9, 'Zed', 30, 'z')")
        result = patients_db.execute(
            "SELECT name FROM patients p WHERE NOT EXISTS "
            "(SELECT 1 FROM disease d WHERE d.patientid = p.patientid)"
        )
        assert ("Zed",) in result.rows

    def test_scalar_subquery(self, patients_db):
        result = patients_db.execute(
            "SELECT name FROM patients WHERE age > "
            "(SELECT AVG(age) FROM patients)"
        )
        assert sorted(result.rows) == [("Dave",), ("Erin",)]

    def test_scalar_subquery_empty_is_null(self, patients_db):
        result = patients_db.execute(
            "SELECT (SELECT age FROM patients WHERE patientid = 999)"
        )
        assert result.rows == [(None,)]

    def test_scalar_subquery_multiple_rows_raises(self, patients_db):
        with pytest.raises(ExecutionError):
            patients_db.execute("SELECT (SELECT age FROM patients)")

    def test_paper_example_1_2_inference_query(self, patients_db):
        """Example 1.2: EXISTS probing for Alice having cancer."""
        result = patients_db.execute(
            "SELECT 1 FROM patients WHERE EXISTS "
            "(SELECT * FROM patients p, disease d "
            "WHERE p.patientid = d.patientid AND name = 'Alice' "
            "AND disease = 'cancer')"
        )
        assert len(result.rows) == 5  # one per patient row

    def test_correlated_inequality_subquery(self, patients_db):
        """The paper's self-join subquery (Example 3.8(c) shape)."""
        result = patients_db.execute(
            "SELECT name FROM patients p1 WHERE name IN "
            "(SELECT name FROM patients p2 WHERE p1.zip <> p2.zip)"
        )
        assert result.rows == []  # names are unique across zips

    def test_not_in_subquery_null_semantics(self, db):
        db.execute("CREATE TABLE t (a INT)")
        db.execute("CREATE TABLE s (b INT)")
        db.execute("INSERT INTO t VALUES (1)")
        db.execute("INSERT INTO s VALUES (2), (NULL)")
        # NOT IN with a NULL in the subquery: UNKNOWN, so no rows
        assert db.execute(
            "SELECT a FROM t WHERE a NOT IN (SELECT b FROM s)"
        ).rows == []


class TestMisc:
    def test_execute_script(self, db):
        results = db.execute_script(
            "CREATE TABLE t (a INT); INSERT INTO t VALUES (1); "
            "SELECT * FROM t"
        )
        assert results[-1].rows == [(1,)]

    def test_explain_mentions_operators(self, patients_db):
        text = patients_db.explain(
            "SELECT name FROM patients WHERE age > 30"
        )
        assert "logical" in text and "physical" in text
        assert "Scan" in text

    def test_explain_rejects_dml(self, db):
        db.execute("CREATE TABLE t (a INT)")
        with pytest.raises(UnsupportedSqlError):
            db.explain("DELETE FROM t")

    def test_analyze(self, patients_db):
        patients_db.execute("ANALYZE")
        stats = patients_db.catalog.statistics("patients")
        assert stats.row_count == 5
        assert stats.columns["age"].min_value == 25

    def test_result_helpers(self, patients_db):
        result = patients_db.execute(
            "SELECT patientid FROM patients ORDER BY patientid"
        )
        assert result.scalar() == 1
        assert result.column(0) == [1, 2, 3, 4, 5]
        assert list(iter(result))[0] == (1,)


class TestDropDependencies:
    def test_drop_table_with_audit_expression_refused(self, patients_db):
        patients_db.execute(
            "CREATE AUDIT EXPRESSION a AS SELECT * FROM patients "
            "FOR SENSITIVE TABLE patients, PARTITION BY patientid"
        )
        with pytest.raises(CatalogError, match="audit expression"):
            patients_db.execute("DROP TABLE patients")
        # dropping the expression first unblocks the table
        patients_db.execute("DROP AUDIT EXPRESSION a")
        patients_db.execute("DROP TABLE patients")
        assert not patients_db.catalog.has_table("patients")

    def test_drop_table_with_join_expression_refused(self, patients_db):
        patients_db.execute(
            "CREATE AUDIT EXPRESSION a AS SELECT p.* FROM patients p, "
            "disease d WHERE p.patientid = d.patientid "
            "FOR SENSITIVE TABLE patients, PARTITION BY patientid"
        )
        # disease is only a join partner, but the view depends on it
        with pytest.raises(CatalogError):
            patients_db.execute("DROP TABLE disease")

    def test_drop_table_with_dml_trigger_refused(self, db):
        db.execute("CREATE TABLE t (a INT)")
        db.execute("CREATE TRIGGER trg ON t AFTER INSERT AS NOTIFY 'x'")
        with pytest.raises(CatalogError, match="trigger"):
            db.execute("DROP TABLE t")
        db.execute("DROP TRIGGER trg")
        db.execute("DROP TABLE t")
