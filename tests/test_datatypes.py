"""Unit tests for the type layer: 3VL, LIKE, coercion, intervals."""

import datetime

import pytest

from repro.datatypes import (
    BOOLEAN,
    DATE,
    FLOAT,
    INTEGER,
    DECIMAL,
    VARCHAR,
    NULL_TYPE,
    Interval,
    add_interval,
    coerce_value,
    common_type,
    is_null,
    sql_and,
    sql_compare,
    sql_equals,
    sql_like,
    sql_not,
    sql_or,
    type_from_name,
    value_sort_key,
)
from repro.errors import BindError, ExecutionError


class TestTypes:
    def test_type_from_name_aliases(self):
        assert type_from_name("int") is INTEGER
        assert type_from_name("BIGINT") is INTEGER
        assert type_from_name("numeric") is DECIMAL
        assert type_from_name("Text") is VARCHAR
        assert type_from_name("bool") is BOOLEAN
        assert type_from_name("date") is DATE

    def test_type_from_name_unknown(self):
        with pytest.raises(BindError):
            type_from_name("blob")

    def test_common_type_numeric_widening(self):
        assert common_type(INTEGER, FLOAT) is FLOAT
        assert common_type(FLOAT, INTEGER) is FLOAT
        assert common_type(INTEGER, DECIMAL) is DECIMAL

    def test_common_type_null_unifies(self):
        assert common_type(NULL_TYPE, DATE) is DATE
        assert common_type(VARCHAR, NULL_TYPE) is VARCHAR

    def test_common_type_incompatible(self):
        with pytest.raises(BindError):
            common_type(INTEGER, VARCHAR)


class TestThreeValuedLogic:
    def test_equals_null_is_unknown(self):
        assert sql_equals(None, 1) is None
        assert sql_equals(1, None) is None
        assert sql_equals(None, None) is None

    def test_equals_values(self):
        assert sql_equals(1, 1) is True
        assert sql_equals(1, 2) is False

    def test_compare(self):
        assert sql_compare(1, 2) == -1
        assert sql_compare(2, 1) == 1
        assert sql_compare("a", "a") == 0
        assert sql_compare(None, 1) is None

    def test_kleene_and(self):
        assert sql_and(True, True) is True
        assert sql_and(True, False) is False
        assert sql_and(False, None) is False  # False dominates UNKNOWN
        assert sql_and(None, True) is None
        assert sql_and(None, None) is None

    def test_kleene_or(self):
        assert sql_or(False, False) is False
        assert sql_or(True, None) is True  # True dominates UNKNOWN
        assert sql_or(None, False) is None
        assert sql_or(None, None) is None

    def test_kleene_not(self):
        assert sql_not(True) is False
        assert sql_not(False) is True
        assert sql_not(None) is None

    def test_is_null(self):
        assert is_null(None)
        assert not is_null(0)
        assert not is_null("")


class TestLike:
    def test_percent_wildcard(self):
        assert sql_like("hello world", "hello%") is True
        assert sql_like("hello", "%lo") is True
        assert sql_like("hello", "h%o") is True
        assert sql_like("hello", "x%") is False

    def test_underscore_wildcard(self):
        assert sql_like("cat", "c_t") is True
        assert sql_like("cart", "c_t") is False

    def test_exact_match_required(self):
        assert sql_like("hello", "hell") is False

    def test_regex_metacharacters_are_literal(self):
        assert sql_like("a.b", "a.b") is True
        assert sql_like("axb", "a.b") is False
        assert sql_like("a[1]", "a[1]") is True

    def test_null_propagates(self):
        assert sql_like(None, "%") is None
        assert sql_like("x", None) is None

    def test_non_string_raises(self):
        with pytest.raises(ExecutionError):
            sql_like(5, "%")


class TestCoercion:
    def test_integer(self):
        assert coerce_value(5, INTEGER) == 5
        assert coerce_value(5.7, INTEGER) == 5

    def test_integer_rejects_string(self):
        with pytest.raises(ExecutionError):
            coerce_value("5", INTEGER)

    def test_float_family(self):
        assert coerce_value(5, FLOAT) == 5.0
        assert isinstance(coerce_value(5, DECIMAL), float)

    def test_varchar(self):
        assert coerce_value("abc", VARCHAR) == "abc"
        with pytest.raises(ExecutionError):
            coerce_value(7, VARCHAR)

    def test_date_from_iso_string(self):
        assert coerce_value("2013-04-08", DATE) == datetime.date(2013, 4, 8)

    def test_date_invalid_string(self):
        with pytest.raises(ExecutionError):
            coerce_value("not-a-date", DATE)

    def test_null_passes_through(self):
        assert coerce_value(None, INTEGER) is None
        assert coerce_value(None, DATE) is None

    def test_boolean_strict(self):
        assert coerce_value(True, BOOLEAN) is True
        with pytest.raises(ExecutionError):
            coerce_value(1, BOOLEAN)


class TestSortKey:
    def test_nulls_sort_first(self):
        values = [3, None, 1, None, 2]
        ordered = sorted(values, key=value_sort_key)
        assert ordered == [None, None, 1, 2, 3]

    def test_mixed_with_dates(self):
        d1, d2 = datetime.date(2013, 1, 1), datetime.date(2013, 6, 1)
        assert sorted([d2, None, d1], key=value_sort_key) == [None, d1, d2]


class TestIntervals:
    def test_day_interval(self):
        base = datetime.date(1995, 1, 31)
        assert add_interval(base, Interval(3, "DAY")) == \
            datetime.date(1995, 2, 3)

    def test_month_interval_clamps_to_month_end(self):
        base = datetime.date(1995, 1, 31)
        assert add_interval(base, Interval(1, "MONTH")) == \
            datetime.date(1995, 2, 28)

    def test_month_interval_leap_year(self):
        base = datetime.date(1996, 1, 31)
        assert add_interval(base, Interval(1, "MONTH")) == \
            datetime.date(1996, 2, 29)

    def test_year_interval(self):
        base = datetime.date(1995, 3, 15)
        assert add_interval(base, Interval(1, "YEAR")) == \
            datetime.date(1996, 3, 15)

    def test_negated(self):
        base = datetime.date(1995, 3, 15)
        assert add_interval(base, Interval(3, "MONTH").negated()) == \
            datetime.date(1994, 12, 15)

    def test_null_propagates(self):
        assert add_interval(None, Interval(1, "DAY")) is None

    def test_invalid_unit(self):
        with pytest.raises(ExecutionError):
            Interval(1, "FORTNIGHT")

    def test_non_date_operand(self):
        with pytest.raises(ExecutionError):
            add_interval(42, Interval(1, "DAY"))
