"""Tests for logical rewrites (pushdown, decorrelation) and physical planning."""

import pytest

from repro import Database
from repro.exec.operators import (
    HashJoin,
    IndexRange,
    IndexSeek,
    NestedLoopJoin,
    TableScan,
    TopKOperator,
)
from repro.plan import logical as L


def logical_plan(db: Database, sql: str):
    return db.plan_query(sql)


def physical_plan(db: Database, sql: str):
    return db._optimizer.compile(db.plan_query(sql))


def find_nodes(plan, node_type):
    return [node for node in plan.walk() if isinstance(node, node_type)]


@pytest.fixture
def joined_db(db):
    db.execute("CREATE TABLE a (id INT PRIMARY KEY, x INT, tag VARCHAR)")
    db.execute("CREATE TABLE b (id INT PRIMARY KEY, aid INT, y INT)")
    db.execute("CREATE INDEX b_aid ON b (aid)")
    for index in range(20):
        db.execute(
            f"INSERT INTO a VALUES ({index}, {index * 2}, "
            f"'{'even' if index % 2 == 0 else 'odd'}')"
        )
        db.execute(f"INSERT INTO b VALUES ({100 + index}, {index}, {index})")
    db.execute("ANALYZE")
    return db


class TestPredicatePushdown:
    def test_single_table_predicate_reaches_scan(self, joined_db):
        plan = logical_plan(
            joined_db,
            "SELECT a.x FROM a, b WHERE a.id = b.aid AND a.tag = 'even'",
        )
        scans = find_nodes(plan, L.Scan)
        a_scan = next(s for s in scans if s.table_name == "a")
        assert a_scan.predicate is not None

    def test_cross_conjunct_becomes_join_condition(self, joined_db):
        plan = logical_plan(
            joined_db, "SELECT a.x FROM a, b WHERE a.id = b.aid"
        )
        joins = find_nodes(plan, L.Join)
        assert len(joins) == 1
        assert joins[0].condition is not None
        # no residual filter should remain above the join
        assert not find_nodes(plan, L.Filter)

    def test_both_side_predicates_split(self, joined_db):
        plan = logical_plan(
            joined_db,
            "SELECT a.x FROM a, b WHERE a.id = b.aid AND a.x > 1 AND b.y < 5",
        )
        scans = {s.table_name: s for s in find_nodes(plan, L.Scan)}
        assert scans["a"].predicate is not None
        assert scans["b"].predicate is not None

    def test_filter_pushed_through_left_join_preserved_side_only(
        self, joined_db
    ):
        plan = logical_plan(
            joined_db,
            "SELECT a.x, b.y FROM a LEFT JOIN b ON a.id = b.aid "
            "WHERE a.x > 1 AND b.y > 2",
        )
        scans = {s.table_name: s for s in find_nodes(plan, L.Scan)}
        assert scans["a"].predicate is not None  # preserved side: pushed
        assert scans["b"].predicate is None  # nullable side: stays above
        assert find_nodes(plan, L.Filter)  # residual b.y filter above join

    def test_left_join_on_right_conjunct_pushes_into_right(self, joined_db):
        plan = logical_plan(
            joined_db,
            "SELECT a.x FROM a LEFT JOIN b ON a.id = b.aid AND b.y > 3",
        )
        scans = {s.table_name: s for s in find_nodes(plan, L.Scan)}
        assert scans["b"].predicate is not None

    def test_pushdown_into_subquery_plans(self, joined_db):
        plan = logical_plan(
            joined_db,
            "SELECT x FROM a WHERE EXISTS "
            "(SELECT 1 FROM b WHERE b.aid = a.id AND b.y > 3)",
        )
        # the EXISTS conjunct sinks into the scan's predicate
        a_scan = next(
            s for s in find_nodes(plan, L.Scan) if s.table_name == "a"
        )
        assert a_scan.predicate is not None
        subplan = None
        for node in a_scan.predicate.walk():
            if getattr(node, "plan", None) is not None:
                subplan = node.plan
        assert subplan is not None
        b_scan = find_nodes(subplan, L.Scan)[0]
        assert b_scan.predicate is not None  # correlated conjunct pushed

    def test_group_key_predicate_pushed_below_aggregate(self, joined_db):
        plan = logical_plan(
            joined_db,
            "SELECT t.tag, t.c FROM (SELECT tag, COUNT(*) AS c FROM a "
            "GROUP BY tag) t WHERE t.tag = 'even'",
        )
        scans = find_nodes(plan, L.Scan)
        assert scans[0].predicate is not None

    def test_filter_not_pushed_below_limit(self, joined_db):
        plan = logical_plan(
            joined_db,
            "SELECT t.x FROM (SELECT x FROM a ORDER BY x LIMIT 3) t "
            "WHERE t.x > 0",
        )
        limits = find_nodes(plan, L.Limit)
        assert limits
        # the filter must sit above the limit, not below it
        scan = find_nodes(plan, L.Scan)[0]
        assert scan.predicate is None


class TestDecorrelation:
    def test_uncorrelated_in_becomes_semi_join(self, joined_db):
        plan = logical_plan(
            joined_db,
            "SELECT x FROM a WHERE id IN (SELECT aid FROM b WHERE y > 5)",
        )
        semis = [
            j for j in find_nodes(plan, L.Join) if j.kind == L.JOIN_SEMI
        ]
        assert len(semis) == 1

    def test_uncorrelated_not_exists_becomes_anti_join(self, joined_db):
        plan = logical_plan(
            joined_db,
            "SELECT x FROM a WHERE NOT EXISTS (SELECT 1 FROM b WHERE y > 99)",
        )
        antis = [
            j for j in find_nodes(plan, L.Join) if j.kind == L.JOIN_ANTI
        ]
        assert len(antis) == 1

    def test_correlated_in_stays_expression(self, joined_db):
        plan = logical_plan(
            joined_db,
            "SELECT x FROM a WHERE id IN "
            "(SELECT aid FROM b WHERE b.y = a.x)",
        )
        assert not [
            j for j in find_nodes(plan, L.Join) if j.kind == L.JOIN_SEMI
        ]

    def test_semi_join_results_match_subquery_evaluation(self, joined_db):
        decorrelated = joined_db.execute(
            "SELECT x FROM a WHERE id IN (SELECT aid FROM b WHERE y > 5) "
            "ORDER BY x"
        )
        # correlated variant cannot decorrelate; must agree
        correlated = joined_db.execute(
            "SELECT x FROM a WHERE id IN "
            "(SELECT aid FROM b WHERE y > 5 AND b.aid = a.id) ORDER BY x"
        )
        assert decorrelated.rows == correlated.rows


class TestAccessPaths:
    def test_equality_predicate_uses_index_seek(self, joined_db):
        physical = physical_plan(
            joined_db, "SELECT y FROM b WHERE aid = 7"
        )
        assert find_nodes(physical, IndexSeek)

    def test_selective_range_uses_index_range(self, joined_db):
        physical = physical_plan(
            joined_db, "SELECT y FROM b WHERE aid > 18"
        )
        assert find_nodes(physical, IndexRange)

    def test_wide_range_prefers_table_scan(self, joined_db):
        physical = physical_plan(
            joined_db, "SELECT y FROM b WHERE aid > 0"
        )
        assert not find_nodes(physical, IndexRange)
        assert find_nodes(physical, TableScan)

    def test_no_index_means_table_scan(self, joined_db):
        physical = physical_plan(
            joined_db, "SELECT x FROM a WHERE x = 4"
        )
        assert find_nodes(physical, TableScan)


class TestJoinSelection:
    def test_equi_join_uses_hash_join(self, joined_db):
        physical = physical_plan(
            joined_db, "SELECT a.x FROM a, b WHERE a.id = b.aid"
        )
        assert find_nodes(physical, HashJoin)

    def test_inequality_join_uses_nested_loop(self, joined_db):
        physical = physical_plan(
            joined_db, "SELECT a.x FROM a, b WHERE a.id < b.aid"
        )
        assert find_nodes(physical, NestedLoopJoin)

    def test_cross_join_uses_nested_loop(self, joined_db):
        physical = physical_plan(joined_db, "SELECT a.x FROM a, b")
        assert find_nodes(physical, NestedLoopJoin)

    def test_equi_join_with_residual(self, joined_db):
        physical = physical_plan(
            joined_db,
            "SELECT a.x FROM a, b WHERE a.id = b.aid AND a.x < b.y + 10",
        )
        joins = find_nodes(physical, HashJoin)
        assert joins and joins[0]._residual is not None


class TestTopKFusion:
    def test_order_by_limit_becomes_topk(self, joined_db):
        physical = physical_plan(
            joined_db, "SELECT x FROM a ORDER BY x DESC LIMIT 3"
        )
        assert find_nodes(physical, TopKOperator)

    def test_topk_matches_full_sort(self, joined_db):
        top = joined_db.execute(
            "SELECT x FROM a ORDER BY x DESC LIMIT 3"
        ).rows
        full = joined_db.execute("SELECT x FROM a ORDER BY x DESC").rows[:3]
        assert top == full
