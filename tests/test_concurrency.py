"""Concurrent serving: the RW lock, per-query isolation, and the async
trigger pipeline (thread-safety layer + deferred-firing semantics)."""

from __future__ import annotations

import threading
import time

import pytest

from repro import Database
from repro.concurrency import ReadWriteLock, TriggerBatch, TriggerPipeline
from repro.errors import AccessDeniedError, PipelineClosedError


@pytest.fixture
def audited_db(patients_db) -> Database:
    patients_db.execute(
        "CREATE AUDIT EXPRESSION audit_all AS SELECT * FROM patients "
        "FOR SENSITIVE TABLE patients, PARTITION BY patientid"
    )
    patients_db.execute(
        "CREATE TRIGGER record ON ACCESS TO audit_all AS "
        "INSERT INTO log SELECT cast_varchar(now()), user_id(), "
        "sql_text(), patientid FROM accessed"
    )
    yield patients_db
    patients_db.close()


def _log_count(db: Database) -> int:
    # raw count: no drain, usable while the pipeline worker is blocked
    return db.execute("SELECT COUNT(*) FROM log").rows[0][0]


# ---------------------------------------------------------------------------
# the read-write lock


class TestReadWriteLock:
    def test_readers_share(self):
        lock = ReadWriteLock()
        inside = threading.Barrier(2, timeout=5)

        def reader():
            with lock.read():
                inside.wait()  # both threads inside simultaneously

        threads = [threading.Thread(target=reader) for _ in range(2)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=5)
        assert not any(t.is_alive() for t in threads)

    def test_writer_excludes_readers(self):
        lock = ReadWriteLock()
        order: list[str] = []
        writer_in = threading.Event()

        def writer():
            with lock.write():
                writer_in.set()
                time.sleep(0.05)
                order.append("writer")

        def reader():
            writer_in.wait(timeout=5)
            with lock.read():
                order.append("reader")

        threads = [
            threading.Thread(target=writer),
            threading.Thread(target=reader),
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=5)
        assert order == ["writer", "reader"]

    def test_reentrant_read_and_write(self):
        lock = ReadWriteLock()
        with lock.read(), lock.read():
            assert lock.held_read()
        with lock.write(), lock.write():
            assert lock.held_write()
            with lock.read():  # read under write is allowed
                pass

    def test_read_to_write_upgrade_raises(self):
        lock = ReadWriteLock()
        with lock.read():
            with pytest.raises(RuntimeError, match="upgrade"):
                lock.acquire_write()

    def test_upgrade_raise_leaves_lock_usable(self):
        """A refused upgrade must not corrupt lock state: the reader can
        keep reading, release, and then take the write side normally."""
        lock = ReadWriteLock()
        with lock.read():
            with pytest.raises(RuntimeError, match="upgrade"):
                lock.acquire_write()
            assert lock.held_read()
            with lock.read():  # still reentrant after the refusal
                pass
        assert not lock.held_read()
        with lock.write():
            assert lock.held_write()
        assert not lock.held_write()

    def test_unbalanced_releases_raise(self):
        lock = ReadWriteLock()
        with pytest.raises(RuntimeError, match="release_read"):
            lock.release_read()
        with pytest.raises(RuntimeError, match="release_write"):
            lock.release_write()

    def test_writer_preference_blocks_new_readers(self):
        """Once a writer waits, a *new* reader queues behind it even
        though a reader currently holds the lock (no writer starvation)."""
        lock = ReadWriteLock()
        order: list[str] = []
        reader_in = threading.Event()
        writer_waiting = threading.Event()
        release_first_reader = threading.Event()

        def first_reader():
            with lock.read():
                reader_in.set()
                release_first_reader.wait(timeout=5)
            order.append("reader1-out")

        def writer():
            reader_in.wait(timeout=5)
            writer_waiting.set()
            with lock.write():
                order.append("writer")

        def late_reader():
            writer_waiting.wait(timeout=5)
            time.sleep(0.05)  # let the writer reach its wait loop
            with lock.read():
                order.append("reader2")

        threads = [
            threading.Thread(target=first_reader),
            threading.Thread(target=writer),
            threading.Thread(target=late_reader),
        ]
        for t in threads:
            t.start()
        time.sleep(0.15)  # writer + late reader both queued behind reader1
        assert order == []  # nobody got in while reader1 holds the lock
        release_first_reader.set()
        for t in threads:
            t.join(timeout=5)
        assert not any(t.is_alive() for t in threads)
        # the waiting writer beat the reader that arrived after it
        assert order.index("writer") < order.index("reader2")


# ---------------------------------------------------------------------------
# the pipeline in isolation


class TestTriggerPipeline:
    def test_fifo_and_drain(self):
        fired: list[str] = []
        pipeline = TriggerPipeline(
            lambda batch: fired.append(batch.sql_text)
        )
        for i in range(20):
            pipeline.submit(
                TriggerBatch(accessed={}, sql_text=f"q{i}", user_id="u")
            )
        pipeline.drain()
        assert fired == [f"q{i}" for i in range(20)]
        assert pipeline.stats() == {
            "submitted": 20, "processed": 20, "failed": 0, "pending": 0,
            "retried": 0, "lost": 0, "dead_letter_count": 0,
        }
        pipeline.close()

    def test_error_isolation(self):
        fired: list[str] = []

        def fire(batch: TriggerBatch) -> None:
            if batch.sql_text == "boom":
                raise RuntimeError("bad trigger")
            fired.append(batch.sql_text)

        pipeline = TriggerPipeline(fire)
        for text in ("a", "boom", "b"):
            pipeline.submit(
                TriggerBatch(accessed={}, sql_text=text, user_id="u")
            )
        pipeline.drain()
        assert fired == ["a", "b"]  # the failure did not stop the worker
        stats = pipeline.stats()
        assert stats["failed"] == 1 and stats["processed"] == 3
        (batch, error), = pipeline.errors
        assert batch.sql_text == "boom"
        assert isinstance(error, RuntimeError)
        pipeline.close()

    def test_submit_after_close_raises_typed_error(self):
        pipeline = TriggerPipeline(lambda batch: None)
        pipeline.close()
        with pytest.raises(PipelineClosedError, match="closed"):
            pipeline.submit(
                TriggerBatch(accessed={}, sql_text="q", user_id="u")
            )

    def test_close_is_idempotent(self):
        fired: list[str] = []
        pipeline = TriggerPipeline(lambda batch: fired.append(batch.sql_text))
        pipeline.submit(TriggerBatch(accessed={}, sql_text="q", user_id="u"))
        pipeline.close()
        pipeline.close()  # second close is a no-op, not an error
        assert fired == ["q"]
        with pytest.raises(PipelineClosedError):
            pipeline.submit(
                TriggerBatch(accessed={}, sql_text="late", user_id="u")
            )

    def test_transient_failure_retries_then_succeeds(self):
        attempts: list[str] = []

        def fire(batch: TriggerBatch) -> None:
            attempts.append(batch.sql_text)
            if len(attempts) < 3:
                raise RuntimeError("transient")

        pipeline = TriggerPipeline(fire, retry_limit=3, backoff_base_s=0.001)
        pipeline.submit(TriggerBatch(accessed={}, sql_text="q", user_id="u"))
        pipeline.drain()
        stats = pipeline.stats()
        assert attempts == ["q", "q", "q"]  # 1 try + 2 retries
        assert stats["retried"] == 2
        assert stats["failed"] == 0 and stats["dead_letter_count"] == 0
        assert not pipeline.errors
        pipeline.close()

    def test_permanent_failure_spills_to_dead_letter(self):
        spilled: list[tuple] = []

        def always_fails(batch: TriggerBatch) -> None:
            raise RuntimeError("permanent")

        pipeline = TriggerPipeline(
            always_fails,
            retry_limit=1,
            backoff_base_s=0.001,
            dead_letter=lambda batch, error, reason, attempts: spilled.append(
                (batch.sql_text, reason, attempts)
            ),
        )
        pipeline.submit(TriggerBatch(accessed={}, sql_text="q", user_id="u"))
        pipeline.drain()
        stats = pipeline.stats()
        assert stats["failed"] == 1 and stats["retried"] == 1
        assert stats["dead_letter_count"] == 1
        assert spilled == [("q", "retries-exhausted", 2)]
        pipeline.close()

    def test_error_eviction_never_loses_the_only_copy(self):
        """The bounded error deque may evict old records because every
        permanently-failed batch was already handed to the dead-letter
        sink at failure time (the satellite fix for silent discards)."""
        from repro.concurrency.pipeline import ERROR_HISTORY

        spilled: list[str] = []
        pipeline = TriggerPipeline(
            lambda batch: (_ for _ in ()).throw(RuntimeError("boom")),
            retry_limit=0,
            dead_letter=lambda batch, error, reason, attempts:
                spilled.append(batch.sql_text),
        )
        total = ERROR_HISTORY + 5
        for i in range(total):
            pipeline.submit(
                TriggerBatch(accessed={}, sql_text=f"q{i}", user_id="u")
            )
        pipeline.drain()
        assert len(pipeline.errors) == ERROR_HISTORY  # deque clipped
        assert pipeline.stats()["dead_letter_count"] == total
        assert spilled == [f"q{i}" for i in range(total)]  # nothing lost
        pipeline.close()

    @pytest.mark.filterwarnings(
        "ignore::pytest.PytestUnhandledThreadExceptionWarning"
    )
    def test_drain_survives_worker_crash(self):
        """A worker killed mid-batch must not hang drain(): the in-flight
        batch is accounted lost (and dead-lettered) and a fresh worker
        finishes the backlog."""
        from repro.testing import CrashError, FaultInjector

        fired: list[str] = []
        spilled: list[str] = []
        faults = FaultInjector()
        faults.arm("pipeline-worker", at_hit=2, error=CrashError)
        pipeline = TriggerPipeline(
            lambda batch: fired.append(batch.sql_text),
            dead_letter=lambda batch, error, reason, attempts:
                spilled.append((batch.sql_text, reason)),
            faults=faults,
        )
        for i in range(4):
            pipeline.submit(
                TriggerBatch(accessed={}, sql_text=f"q{i}", user_id="u")
            )
        assert pipeline.drain(timeout=10)
        stats = pipeline.stats()
        assert stats["lost"] == 1 and stats["pending"] == 0
        assert fired == ["q0", "q2", "q3"]  # q1 died with the worker
        assert spilled == [("q1", "worker-crash")]
        pipeline.close()


# ---------------------------------------------------------------------------
# per-query ACCESSED isolation across threads


class TestAccessedIsolation:
    def test_concurrent_queries_keep_separate_accessed(self, audited_db):
        """Two threads interleaving different queries must each see only
        their own query's ACCESSED IDs — never the other thread's."""
        rounds = 30
        barrier = threading.Barrier(2, timeout=10)
        failures: list[str] = []

        cases = {
            "alice": ("SELECT * FROM patients WHERE name = 'Alice'", {1}),
            "zip": ("SELECT * FROM patients WHERE zip = '98102'", {2, 5}),
        }

        def worker(label: str) -> None:
            sql, expected = cases[label]
            barrier.wait()
            for _ in range(rounds):
                accessed = audited_db.execute(sql).accessed.get(
                    "audit_all", frozenset()
                )
                if set(accessed) != expected:
                    failures.append(
                        f"{label}: got {sorted(accessed)}, "
                        f"want {sorted(expected)}"
                    )

        threads = [
            threading.Thread(target=worker, args=(label,))
            for label in cases
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=30)
        assert failures == []


# ---------------------------------------------------------------------------
# async deferral semantics


class TestAsyncTriggerSemantics:
    def test_after_firings_defer_until_drain(self, audited_db):
        """In async mode the AFTER trigger must not have fired when
        ``execute`` returns, and must have fired after ``drain_triggers``.

        Holding the engine read lock keeps the pipeline worker (which
        needs the write side to fire) parked, making the 'not yet fired'
        half deterministic instead of a race.
        """
        audited_db.trigger_mode = "async"
        with audited_db._engine_lock.read():
            audited_db.execute("SELECT * FROM patients WHERE name = 'Alice'")
            assert _log_count(audited_db) == 0  # deferred, worker parked
        stats = audited_db.drain_triggers()
        assert stats["submitted"] == 1 and stats["pending"] == 0
        assert _log_count(audited_db) == 1

    def test_before_deny_stays_synchronous(self, audited_db):
        audited_db.execute(
            "CREATE TRIGGER gate ON ACCESS TO audit_all BEFORE AS "
            "DENY 'restricted'"
        )
        audited_db.trigger_mode = "async"
        with pytest.raises(AccessDeniedError, match="restricted"):
            audited_db.execute("SELECT * FROM patients WHERE name = 'Alice'")
        # the AFTER logging trigger still records the denied access
        audited_db.drain_triggers()
        assert _log_count(audited_db) == 1

    def test_before_and_after_ordering_preserved(self, audited_db):
        audited_db.execute(
            "CREATE TRIGGER warn ON ACCESS TO audit_all BEFORE AS "
            "NOTIFY 'before'"
        )
        audited_db.execute(
            "CREATE TRIGGER done ON ACCESS TO audit_all AFTER AS "
            "NOTIFY 'after'"
        )
        audited_db.trigger_mode = "async"
        audited_db.execute("SELECT * FROM patients WHERE name = 'Bob'")
        # BEFORE fired inline, ahead of execute() returning; the deferred
        # AFTER firing is submitted later, so FIFO keeps it behind
        assert audited_db.notifications[0] == "before"
        audited_db.drain_triggers()
        assert audited_db.notifications == ["before", "after"]

    def test_audit_log_readers_drain_implicitly(self, patients_db):
        from repro.audit.logging import install_audit_log

        patients_db.execute(
            "CREATE AUDIT EXPRESSION audit_all AS SELECT * FROM patients "
            "FOR SENSITIVE TABLE patients, PARTITION BY patientid"
        )
        log = install_audit_log(patients_db, "audit_all")
        patients_db.trigger_mode = "async"
        patients_db.execute("SELECT * FROM patients WHERE patientid <= 3")
        # entries() must flush the pipeline before reading
        assert len(log.entries().rows) == 3
        patients_db.close()

    def test_async_error_is_isolated_and_recorded(self, audited_db):
        audited_db.execute("CREATE TABLE doomed (patientid INT)")
        audited_db.execute(
            "CREATE TRIGGER bad ON ACCESS TO audit_all AS "
            "INSERT INTO doomed SELECT patientid FROM accessed"
        )
        audited_db.execute("DROP TABLE doomed")
        audited_db.trigger_mode = "async"
        audited_db.execute("SELECT * FROM patients WHERE name = 'Alice'")
        stats = audited_db.drain_triggers()
        assert stats["failed"] == 1
        (batch, error), = audited_db.trigger_errors
        assert "Alice" in batch.sql_text
        # the worker survived: the healthy logging trigger of the *same*
        # batch ran before the failure or a later batch still lands
        audited_db.execute("SELECT * FROM patients WHERE name = 'Bob'")
        audited_db.drain_triggers()
        assert _log_count(audited_db) >= 1

    def test_switching_back_to_sync_drains_first(self, audited_db):
        audited_db.trigger_mode = "async"
        audited_db.execute("SELECT * FROM patients WHERE name = 'Alice'")
        audited_db.trigger_mode = "sync"  # must flush pending batches
        assert _log_count(audited_db) == 1

    def test_invalid_mode_rejected(self, audited_db):
        with pytest.raises(ValueError, match="sync"):
            audited_db.trigger_mode = "eventually"


# ---------------------------------------------------------------------------
# shared-structure thread safety


class TestSharedStructures:
    def test_plan_cache_concurrent_hammer(self, audited_db):
        queries = [
            ("SELECT name FROM patients WHERE patientid = :pid", {"pid": 1}),
            ("SELECT zip FROM patients WHERE patientid = :pid", {"pid": 2}),
            ("SELECT age FROM patients WHERE patientid = :pid", {"pid": 3}),
        ]
        barrier = threading.Barrier(4, timeout=10)
        failures: list[BaseException] = []

        def worker(index: int) -> None:
            try:
                barrier.wait()
                for i in range(40):
                    sql, params = queries[(index + i) % len(queries)]
                    audited_db.execute(sql, params)
            except BaseException as error:  # pragma: no cover
                failures.append(error)

        threads = [
            threading.Thread(target=worker, args=(i,)) for i in range(4)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=30)
        assert failures == []
        stats = audited_db.plan_cache.stats()
        assert stats["entries"] <= len(queries) + 1
        assert stats["hits"] > 0

    def test_idview_refcounts_under_concurrent_dml(self, audited_db):
        """Writers inserting and deleting sensitive rows from several
        threads must leave the materialized ID view exactly consistent
        with the table's final contents."""
        barrier = threading.Barrier(3, timeout=10)
        failures: list[BaseException] = []

        def churn(base: int) -> None:
            try:
                barrier.wait()
                for i in range(10):
                    pid = base + i
                    audited_db.execute(
                        "INSERT INTO patients VALUES "
                        f"({pid}, 'p{pid}', 30, '98000')"
                    )
                    if i % 2 == 0:
                        audited_db.execute(
                            "DELETE FROM patients WHERE patientid = :pid",
                            {"pid": pid},
                        )
            except BaseException as error:  # pragma: no cover
                failures.append(error)

        threads = [
            threading.Thread(target=churn, args=(base,))
            for base in (100, 200, 300)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=30)
        assert failures == []
        surviving = {
            row[0]
            for row in audited_db.execute(
                "SELECT patientid FROM patients"
            ).rows
        }
        view = audited_db.audit_manager.view("audit_all")
        assert set(view.ids()) == surviving


# ---------------------------------------------------------------------------
# end-to-end stress parity (small edition of the CI smoke check)


class TestStressParity:
    def test_mixed_traffic_matches_serial_replay(self):
        from repro.bench.concurrency import stress_parity

        report = stress_parity(threads=4, per_thread=8)
        assert report["match"], report
        assert report["trigger_errors"] == 0
        assert report["pipeline"]["pending"] == 0
