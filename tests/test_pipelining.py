"""Protocol-interleaving tests: pipelined statements on one connection.

The wire contract (``repro.server.protocol``): each statement's reply is
zero or more ``rows`` frames terminated by exactly one ``done`` or
``error`` frame, *in statement order*. A client may therefore send N
``execute`` frames before reading any reply — these tests drive that
directly with raw frames, against both front ends: the threaded server
processes frames one at a time from its loop, the asyncio server queues
them through its per-connection consumer. A mid-pipeline failure must
occupy exactly its own reply slot, never corrupting the framing of its
neighbors.
"""

from __future__ import annotations

import socket
import struct
import threading

import pytest

from repro.database import Database
from repro.server import AsyncServer, Connection, Server
from repro.server import protocol
from repro.errors import CatalogError

INIT_SQL = """
CREATE TABLE items (k INT PRIMARY KEY, v VARCHAR);
"""


def make_db() -> Database:
    db = Database(user_id="admin")
    db.execute_script(INIT_SQL)
    for k in range(16):
        db.execute(f"INSERT INTO items VALUES ({k}, 'v{k}')")
    return db


@pytest.fixture(params=["threaded", "async"])
def server(request):
    factory = Server if request.param == "threaded" else AsyncServer
    instance = factory(make_db()).start()
    yield instance
    instance.shutdown()


def raw_session(server) -> socket.socket:
    sock = socket.create_connection((server.host, server.port), timeout=10.0)
    sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
    protocol.send_frame(sock, {
        "type": "hello",
        "protocol": protocol.PROTOCOL_VERSION,
        "user": "pipeliner",
        "password": None,
    })
    frame = protocol.recv_frame(sock)
    assert frame is not None and frame["type"] == "hello_ok"
    return sock


def read_reply(sock) -> dict:
    """Read one statement's reply; returns its terminating frame."""
    rows = []
    while True:
        frame = protocol.recv_frame(sock)
        assert frame is not None
        if frame["type"] == "rows":
            rows.extend(frame["rows"])
            continue
        frame["_rows"] = rows
        return frame


class TestRawInterleaving:
    def test_n_pipelined_sends_yield_n_ordered_replies(self, server) -> None:
        n = 20
        sock = raw_session(server)
        try:
            for k in range(n):
                protocol.send_frame(sock, {
                    "type": "execute",
                    "sql": f"SELECT v FROM items WHERE k = {k % 16}",
                })
            # only now read: n done frames, in statement order
            for k in range(n):
                reply = read_reply(sock)
                assert reply["type"] == "done", reply
                assert reply["_rows"] == [[f"v{k % 16}"]]
        finally:
            sock.close()

    def test_mid_pipeline_error_keeps_framing(self, server) -> None:
        sock = raw_session(server)
        try:
            statements = [
                "SELECT v FROM items WHERE k = 1",
                "SELECT v FROM no_such_table",   # typed failure mid-run
                "SELECT v FROM items WHERE k = 2",
            ]
            for sql in statements:
                protocol.send_frame(sock, {"type": "execute", "sql": sql})
            first = read_reply(sock)
            assert first["type"] == "done"
            assert first["_rows"] == [["v1"]]
            second = read_reply(sock)
            assert second["type"] == "error"
            assert second["code"] == "CatalogError"
            third = read_reply(sock)
            assert third["type"] == "done"
            assert third["_rows"] == [["v2"]]
        finally:
            sock.close()

    def test_control_frame_between_executes_stays_ordered(
        self, server
    ) -> None:
        sock = raw_session(server)
        try:
            protocol.send_frame(sock, {
                "type": "execute", "sql": "SELECT v FROM items WHERE k = 3",
            })
            protocol.send_frame(sock, {"type": "ping"})
            protocol.send_frame(sock, {
                "type": "execute", "sql": "SELECT v FROM items WHERE k = 4",
            })
            assert read_reply(sock)["_rows"] == [["v3"]]
            assert protocol.recv_frame(sock)["type"] == "pong"
            assert read_reply(sock)["_rows"] == [["v4"]]
        finally:
            sock.close()


class TestExecuteMany:
    def test_batch_returns_ordered_results(self, server) -> None:
        with Connection(server.host, server.port) as conn:
            outcomes = conn.execute_many([
                f"SELECT v FROM items WHERE k = {k}" for k in range(8)
            ])
            assert [outcome.rows for outcome in outcomes] == [
                [(f"v{k}",)] for k in range(8)
            ]

    def test_batch_error_slots_and_survival(self, server) -> None:
        with Connection(server.host, server.port) as conn:
            outcomes = conn.execute_many(
                [
                    "SELECT v FROM items WHERE k = 0",
                    "SELECT * FROM missing",
                    "SELECT v FROM items WHERE k = 1",
                ],
                raise_on_error=False,
            )
            assert outcomes[0].rows == [("v0",)]
            assert isinstance(outcomes[1], CatalogError)
            assert outcomes[2].rows == [("v1",)]
            # raise_on_error drains the full stream first, so the
            # connection stays usable afterwards
            with pytest.raises(CatalogError):
                conn.execute_many(["SELECT * FROM missing"])
            assert conn.ping()

    def test_batch_with_parameters(self, server) -> None:
        with Connection(server.host, server.port) as conn:
            outcomes = conn.execute_many([
                ("SELECT v FROM items WHERE k = :k", {"k": 5}),
                ("SELECT v FROM items WHERE k = :k", {"k": 6}),
            ])
            assert outcomes[0].rows == [("v5",)]
            assert outcomes[1].rows == [("v6",)]

    def test_large_batch_with_small_window_stays_ordered(
        self, server
    ) -> None:
        # a batch far larger than the window, with result rows flowing
        # the whole time — exercises the send/drain interleaving on
        # both front ends
        with Connection(server.host, server.port, max_pipeline=4) as conn:
            n = 200
            outcomes = conn.execute_many([
                f"SELECT v FROM items WHERE k = {k % 16}" for k in range(n)
            ])
            assert [outcome.rows for outcome in outcomes] == [
                [(f"v{k % 16}",)] for k in range(n)
            ]


class TestExecuteManyWindow:
    """The in-flight bound itself, against an instrumented fake socket.

    ``execute_many`` must never have more than ``max_pipeline``
    statements sent-but-unanswered: blasting the whole batch before
    reading any reply deadlocks once requests plus unread replies
    exceed the kernel socket buffers (the server blocks — or pauses,
    under the async write high-water mark — writing replies the client
    is not reading, while the client blocks in ``sendall`` the server
    is not reading).
    """

    @staticmethod
    def _count_frames(payload: bytes) -> int:
        count, offset = 0, 0
        while offset < len(payload):
            (length,) = struct.unpack(">I", payload[offset:offset + 4])
            offset += 4 + length
            count += 1
        assert offset == len(payload), "payload tore a frame"
        return count

    def test_inflight_never_exceeds_max_pipeline(self) -> None:
        conn = Connection.__new__(Connection)
        conn._lock = threading.Lock()
        conn._closed = False
        conn.max_pipeline = 4
        inflight = {"now": 0, "max": 0}
        outer = self

        class FakeSock:
            def sendall(self, payload: bytes) -> None:
                inflight["now"] += outer._count_frames(payload)
                inflight["max"] = max(inflight["max"], inflight["now"])

        conn._sock = FakeSock()

        def fake_read_result() -> str:
            assert inflight["now"] > 0, "read with nothing in flight"
            inflight["now"] -= 1
            return "ok"

        conn._read_result = fake_read_result
        outcomes = conn.execute_many(
            [f"SELECT {k}" for k in range(50)], raise_on_error=False
        )
        assert outcomes == ["ok"] * 50
        assert inflight["max"] == 4  # window filled, never exceeded
        assert inflight["now"] == 0  # fully drained
