"""Tests for the Oracle-FGA-style static-analysis baseline (§VI)."""

import pytest

from repro import StaticAnalysisAuditor


@pytest.fixture
def dept_db(db):
    """The Example 6.1 schema."""
    db.execute(
        "CREATE TABLE departmentnames (deptid INT PRIMARY KEY, "
        "deptname VARCHAR)"
    )
    db.execute(
        "INSERT INTO departmentnames VALUES (10, 'Oncology'), "
        "(20, 'Dermatology')"
    )
    db.execute(
        "CREATE AUDIT EXPRESSION audit_derm AS "
        "SELECT * FROM departmentnames WHERE deptname = 'Dermatology' "
        "FOR SENSITIVE TABLE departmentnames, PARTITION BY deptid"
    )
    return db


class TestExample61:
    def test_disjoint_predicate_not_flagged(self, dept_db):
        analyzer = StaticAnalysisAuditor(dept_db)
        assert not analyzer.flags_query(
            "SELECT * FROM departmentnames WHERE deptname = 'Oncology'",
            "audit_derm",
        )

    def test_equivalent_rewrite_is_flagged(self, dept_db):
        """The false positive the paper demonstrates: deptid = 10 is the
        Oncology department, but static analysis cannot know that."""
        analyzer = StaticAnalysisAuditor(dept_db)
        assert analyzer.flags_query(
            "SELECT * FROM departmentnames WHERE deptid = 10",
            "audit_derm",
        )

    def test_audit_operator_avoids_that_false_positive(self, dept_db):
        result = dept_db.execute(
            "SELECT * FROM departmentnames WHERE deptid = 10"
        )
        assert result.accessed.get("audit_derm", frozenset()) == frozenset()

    def test_matching_predicate_flagged(self, dept_db):
        analyzer = StaticAnalysisAuditor(dept_db)
        assert analyzer.flags_query(
            "SELECT * FROM departmentnames WHERE deptname = 'Dermatology'",
            "audit_derm",
        )


class TestConstraintReasoning:
    @pytest.fixture
    def range_db(self, db):
        db.execute(
            "CREATE TABLE people (pid INT PRIMARY KEY, age INT, "
            "name VARCHAR)"
        )
        db.execute(
            "CREATE AUDIT EXPRESSION audit_adults AS "
            "SELECT * FROM people WHERE age >= 18 AND age < 65 "
            "FOR SENSITIVE TABLE people, PARTITION BY pid"
        )
        return db

    def test_overlapping_range_flagged(self, range_db):
        analyzer = StaticAnalysisAuditor(range_db)
        assert analyzer.flags_query(
            "SELECT * FROM people WHERE age > 30", "audit_adults"
        )

    def test_disjoint_range_not_flagged(self, range_db):
        analyzer = StaticAnalysisAuditor(range_db)
        assert not analyzer.flags_query(
            "SELECT * FROM people WHERE age > 70", "audit_adults"
        )

    def test_disjoint_below_not_flagged(self, range_db):
        analyzer = StaticAnalysisAuditor(range_db)
        assert not analyzer.flags_query(
            "SELECT * FROM people WHERE age < 10", "audit_adults"
        )

    def test_boundary_exclusive_bounds(self, range_db):
        analyzer = StaticAnalysisAuditor(range_db)
        # age >= 65 vs audit age < 65: empty intersection
        assert not analyzer.flags_query(
            "SELECT * FROM people WHERE age >= 65", "audit_adults"
        )
        # age >= 64 overlaps
        assert analyzer.flags_query(
            "SELECT * FROM people WHERE age >= 64", "audit_adults"
        )

    def test_contradictory_equalities(self, range_db):
        analyzer = StaticAnalysisAuditor(range_db)
        assert not analyzer.flags_query(
            "SELECT * FROM people WHERE age = 30 AND age = 40",
            "audit_adults",
        )

    def test_in_list_intersection(self, range_db):
        analyzer = StaticAnalysisAuditor(range_db)
        assert analyzer.flags_query(
            "SELECT * FROM people WHERE age IN (5, 30)", "audit_adults"
        )
        assert not analyzer.flags_query(
            "SELECT * FROM people WHERE age IN (5, 95)", "audit_adults"
        )

    def test_not_equals(self, range_db):
        analyzer = StaticAnalysisAuditor(range_db)
        assert analyzer.flags_query(
            "SELECT * FROM people WHERE age <> 30", "audit_adults"
        )

    def test_query_without_sensitive_table_not_flagged(self, range_db):
        range_db.execute("CREATE TABLE other (x INT)")
        analyzer = StaticAnalysisAuditor(range_db)
        assert not analyzer.flags_query(
            "SELECT * FROM other", "audit_adults"
        )

    def test_unanalyzable_predicate_flagged_conservatively(self, range_db):
        analyzer = StaticAnalysisAuditor(range_db)
        assert analyzer.flags_query(
            "SELECT * FROM people WHERE age * 2 = 60", "audit_adults"
        )

    def test_parameterized_predicate_resolved(self, range_db):
        analyzer = StaticAnalysisAuditor(range_db)
        assert not analyzer.flags_query(
            "SELECT * FROM people WHERE age > :cutoff",
            "audit_adults",
            {"cutoff": 90},
        )
        assert analyzer.flags_query(
            "SELECT * FROM people WHERE age > :cutoff",
            "audit_adults",
            {"cutoff": 20},
        )

    def test_between_predicate(self, range_db):
        analyzer = StaticAnalysisAuditor(range_db)
        assert not analyzer.flags_query(
            "SELECT * FROM people WHERE age BETWEEN 70 AND 80",
            "audit_adults",
        )
