"""Integration tests for the figure drivers (tiny scale, fast).

The benchmark suite runs these at full scale; here we pin the *shape*
invariants at SF 0.001 so `pytest tests/` alone exercises every
experiment driver end to end.
"""

import pytest

from repro.bench import figures
from repro.bench.harness import BenchmarkFixture


@pytest.fixture(scope="module")
def fixture():
    return BenchmarkFixture(scale_factor=0.001)


class TestCardinalityFigures:
    def test_fig6_shapes(self, fixture):
        headers, rows = figures.fig6_micro_false_positives(fixture)
        assert headers == figures.FIG6_HEADERS
        assert len(rows) == len(figures.SELECTIVITY_SWEEP)
        leaf_values = {row[3] for row in rows}
        assert len(leaf_values) == 1  # leaf constant
        for __, offline, hcn, leaf in rows:
            assert offline == hcn  # Theorem 3.7 on the SJ micro query
            assert hcn <= leaf

    def test_fig9_shapes(self, fixture):
        headers, rows = figures.fig9_tpch_false_positives(fixture)
        assert {row[0] for row in rows} == {
            "Q3", "Q5", "Q7", "Q8", "Q10", "Q18", "Q22"
        }
        for name, offline, hcn, leaf in rows:
            assert offline <= hcn <= leaf or (offline <= hcn and hcn <= leaf)

    def test_sj_exactness(self, fixture):
        __, rows = figures.sj_exactness(fixture)
        assert all(row[3] == 0 for row in rows)

    def test_static_analysis_table(self, fixture):
        headers, rows = figures.static_analysis_comparison(fixture)
        variant = next(row for row in rows if row[0].startswith("Q3("))
        assert variant[1] == "no"


class TestOverheadFigures:
    def test_fig7_runs(self, fixture):
        headers, rows = figures.fig7_micro_overheads(fixture, repeats=2)
        assert len(rows) == len(figures.SELECTIVITY_SWEEP)
        for row in rows:
            assert row[1] > 0  # baseline time
            assert row[4] >= row[5] * 0 and row[4] > 0  # probes recorded

    def test_fig8_runs(self, fixture):
        headers, rows = figures.fig8_audit_cardinality(fixture, repeats=2)
        cardinalities = [row[0] for row in rows]
        assert cardinalities == sorted(cardinalities)
        assert cardinalities[-1] == fixture.row_counts["customer"]

    def test_fig10_runs(self, fixture):
        headers, rows = figures.fig10_tpch_overheads(fixture, repeats=2)
        assert len(rows) == 7
        assert all(row[1] > 0 for row in rows)


class TestAblations:
    def test_idview_probe(self, fixture):
        __, rows = figures.idview_probe_ablation(fixture, repeats=2)
        timings = {row[0]: row[2] for row in rows}
        assert timings["compiled_id_view"] < timings["full_predicate"]

    def test_offline_cache(self, fixture):
        __, rows = figures.offline_cache_ablation(fixture, repeats=1)
        assert {row[0] for row in rows} == {"micro", "Q10"}

    def test_bloom_probe(self, fixture):
        __, rows = figures.bloom_probe_ablation(fixture)
        by_probe = {row[0]: row for row in rows}
        assert by_probe["bloom"][2] >= by_probe["set"][2]
        assert by_probe["set"][3] == 0

    def test_offline_filtering(self, fixture):
        __, rows = figures.offline_filtering_benefit(
            fixture, workload_size=6
        )
        by_strategy = {row[0]: row for row in rows}
        assert by_strategy["trigger-filtered"][1] < \
            by_strategy["offline-everything"][1]

    def test_concurrency_serving(self):
        headers, rows = figures.concurrency_serving(total_requests=16)
        assert headers == figures.CONCURRENCY_HEADERS
        assert [row[0] for row in rows] == [1, 2, 4, 8]
        for row in rows:
            assert all(value > 0 for value in row[1:])
