"""Tests for the network serving layer (``repro.server``).

Covers the wire protocol codec, authenticated sessions and per-connection
audit attribution, admission control and load shedding, statement
timeouts, idle reaping, audited graceful shutdown (zero uncommitted
intents), ``Database.close()`` signal-path safety, and a kill -9-style
crash of a real server subprocess followed by journal recovery.
"""

from __future__ import annotations

import datetime
import decimal
import os
import signal
import socket
import subprocess
import sys
import threading
import time

import pytest

from repro.concurrency import DrainGate
from repro.database import Database
from repro.durability.recovery import uncommitted_intents
from repro.durability.journal import scan_journal
from repro.errors import (
    AccessDeniedError,
    AuthenticationError,
    ConnectionClosedError,
    ProtocolError,
    ServerOverloadedError,
    SqlSyntaxError,
    StatementTimeoutError,
)
from repro.server import Connection, Server, StaticAuthenticator
from repro.server import protocol

INIT_SQL = """
CREATE TABLE patients (pid INT PRIMARY KEY, name VARCHAR, age INT);
CREATE TABLE log (uid VARCHAR, query VARCHAR, pid INT);
CREATE AUDIT EXPRESSION aud AS SELECT * FROM patients
    FOR SENSITIVE TABLE patients, PARTITION BY pid;
CREATE TRIGGER ins_log ON ACCESS TO aud AS
    INSERT INTO log SELECT user_id(), sql_text(), pid FROM accessed
"""

N_PATIENTS = 24


def make_db(**kwargs) -> Database:
    db = Database(user_id="admin", **kwargs)
    db.execute_script(INIT_SQL)
    rows = ", ".join(
        f"({pid}, 'P{pid}', {20 + pid})" for pid in range(1, N_PATIENTS + 1)
    )
    db.execute(f"INSERT INTO patients VALUES {rows}")
    return db


def log_rows(db: Database) -> list[tuple]:
    db.drain_triggers()
    return sorted(db.execute("SELECT uid, pid FROM log").rows)


# ----------------------------------------------------------------------
# protocol codec


class TestProtocol:
    @pytest.mark.parametrize(
        "value",
        [
            None,
            True,
            42,
            -1.5,
            "text with\nnewline",
            datetime.date(2013, 4, 8),
            datetime.datetime(2013, 4, 8, 12, 30, 15),
            decimal.Decimal("12.34"),
            (1, "a", datetime.date(2000, 1, 2)),
        ],
    )
    def test_value_round_trip(self, value):
        assert protocol.decode_value(protocol.encode_value(value)) == value

    def test_interval_round_trip(self):
        from repro.datatypes.intervals import Interval

        value = Interval(3, "MONTH")
        assert protocol.decode_value(protocol.encode_value(value)) == value

    def test_unencodable_value_is_typed(self):
        with pytest.raises(ProtocolError):
            protocol.encode_value(object())

    def test_error_frame_round_trip(self):
        frame = protocol.error_frame(AccessDeniedError("nope"))
        assert frame["code"] == "AccessDeniedError"
        with pytest.raises(AccessDeniedError, match="nope"):
            protocol.raise_error_frame(frame)

    def test_unknown_engine_error_does_not_leak_type(self):
        frame = protocol.error_frame(KeyError("x"))
        assert frame["code"] == "ExecutionError"

    def test_frames_over_a_socket_pair(self):
        left, right = socket.socketpair()
        try:
            protocol.send_frame(left, {"type": "ping", "n": 7})
            assert protocol.recv_frame(right) == {"type": "ping", "n": 7}
            left.close()
            assert protocol.recv_frame(right) is None  # clean EOF
        finally:
            right.close()

    def test_oversized_length_prefix_rejected(self):
        left, right = socket.socketpair()
        try:
            left.sendall((protocol.MAX_FRAME_BYTES + 1).to_bytes(4, "big"))
            with pytest.raises(ProtocolError):
                protocol.recv_frame(right)
        finally:
            left.close()
            right.close()


# ----------------------------------------------------------------------
# sessions, execution, typed errors


class TestServing:
    def test_execute_rows_accessed_and_columns(self):
        db = make_db()
        with db.serve() as server:
            with Connection(
                server.host, server.port, user_id="dr_house"
            ) as conn:
                result = conn.execute(
                    "SELECT pid, name FROM patients WHERE pid <= 2 "
                    "ORDER BY pid"
                )
        assert result.columns == ("pid", "name")
        assert result.rows == [(1, "P1"), (2, "P2")]
        assert result.accessed == {"aud": frozenset({1, 2})}
        assert result.rowcount == 2

    def test_row_batching_streams_large_results(self):
        db = make_db()
        with db.serve(batch_rows=5) as server:
            with Connection(server.host, server.port, user_id="u") as conn:
                result = conn.execute("SELECT pid FROM patients ORDER BY pid")
        assert result.column(0) == list(range(1, N_PATIENTS + 1))

    def test_parameters_round_trip(self):
        db = make_db()
        with db.serve() as server:
            with Connection(server.host, server.port, user_id="u") as conn:
                result = conn.execute(
                    "SELECT name FROM patients WHERE pid = :pid",
                    {"pid": 3},
                )
        assert result.rows == [("P3",)]

    def test_engine_errors_are_reraised_by_class(self):
        db = make_db()
        with db.serve() as server:
            with Connection(server.host, server.port, user_id="u") as conn:
                with pytest.raises(SqlSyntaxError):
                    conn.execute("SELEKT 1")
                # the connection survives a statement error
                assert conn.execute("SELECT 1").scalar() == 1

    def test_deny_trigger_rejects_over_the_wire(self):
        db = make_db()
        db.execute(
            "CREATE TRIGGER gate ON ACCESS TO aud BEFORE AS "
            "IF ((SELECT COUNT(*) FROM accessed) > 3) "
            "DENY 'bulk export denied'"
        )
        with db.serve(close_database=False) as server:
            with Connection(server.host, server.port, user_id="u") as conn:
                small = conn.execute("SELECT * FROM patients WHERE pid = 1")
                assert len(small.rows) == 1
                with pytest.raises(AccessDeniedError, match="bulk export"):
                    conn.execute("SELECT * FROM patients")
        # denial withheld the rows but not the evidence
        assert len(log_rows(db)) == 1 + N_PATIENTS

    def test_dml_and_ddl_over_the_wire(self):
        db = make_db()
        with db.serve(close_database=False) as server:
            with Connection(server.host, server.port, user_id="writer") as conn:
                conn.execute("CREATE TABLE notes (id INT PRIMARY KEY, t VARCHAR)")
                result = conn.execute(
                    "INSERT INTO notes VALUES (1, 'a'), (2, 'b')"
                )
                assert result.rowcount == 2
        assert db.execute("SELECT COUNT(*) FROM notes").scalar() == 2

    def test_session_user_reported_by_user_id_function(self):
        db = make_db()
        with db.serve(close_database=False) as server:
            with Connection(server.host, server.port, user_id="carol") as conn:
                assert conn.execute("SELECT user_id()").scalar() == "carol"
                conn.set_user("mallory")
                assert conn.execute("SELECT user_id()").scalar() == "mallory"
        # the engine's base identity never changed
        assert db.session.user_id == "admin"

    def test_ping(self):
        db = make_db()
        with db.serve() as server:
            with Connection(server.host, server.port, user_id="u") as conn:
                assert conn.ping() is True


class TestAuthentication:
    def test_static_authenticator_accepts_and_rejects(self):
        db = make_db()
        auth = StaticAuthenticator({"alice": "s3cret"})
        with db.serve(authenticator=auth) as server:
            with Connection(
                server.host, server.port, user_id="alice", password="s3cret"
            ) as conn:
                assert conn.execute("SELECT user_id()").scalar() == "alice"
            with pytest.raises(AuthenticationError):
                Connection(
                    server.host, server.port,
                    user_id="alice", password="wrong",
                )
            with pytest.raises(AuthenticationError):
                Connection(server.host, server.port, user_id="eve")

    def test_set_user_reauthenticates(self):
        db = make_db()
        auth = StaticAuthenticator({"alice": "a", "bob": "b"})
        with db.serve(authenticator=auth) as server:
            with Connection(
                server.host, server.port, user_id="alice", password="a"
            ) as conn:
                with pytest.raises(AuthenticationError):
                    conn.set_user("bob", password="nope")
                assert conn.user_id == "alice"
                conn.set_user("bob", password="b")
                assert conn.execute("SELECT user_id()").scalar() == "bob"

    def test_empty_user_rejected_by_open_authenticator(self):
        db = make_db()
        with db.serve() as server:
            with pytest.raises(AuthenticationError):
                Connection(server.host, server.port, user_id="")


# ----------------------------------------------------------------------
# multi-client attribution (the point of the subsystem)


class TestAttribution:
    def test_concurrent_clients_attribute_per_connection(self):
        """N threads, distinct users: every audit row names the right user."""
        db = make_db()
        users = [f"user{i}" for i in range(8)]
        per_user_pid = {user: i + 1 for i, user in enumerate(users)}
        errors: list = []

        with db.serve(close_database=False) as server:
            def client(user: str) -> None:
                try:
                    with Connection(
                        server.host, server.port, user_id=user
                    ) as conn:
                        pid = per_user_pid[user]
                        for _ in range(5):
                            result = conn.execute(
                                f"SELECT * FROM patients WHERE pid = {pid}"
                            )
                            assert result.accessed["aud"] == frozenset({pid})
                except Exception as error:  # noqa: BLE001 — collected
                    errors.append(error)

            threads = [
                threading.Thread(target=client, args=(user,))
                for user in users
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()

        assert not errors
        rows = log_rows(db)
        assert len(rows) == len(users) * 5
        for user in users:
            mine = [pid for uid, pid in rows if uid == user]
            assert mine == [per_user_pid[user]] * 5

    def test_16_clients_match_serial_replay(self):
        """Acceptance: concurrent audit log == serial in-process replay,
        per-user, order-insensitive."""
        statements = [
            (
                f"user{i % 16}",
                f"SELECT name FROM patients WHERE pid = "
                f"{(i * 7) % N_PATIENTS + 1}",
            )
            for i in range(96)
        ]
        by_user: dict[str, list[str]] = {}
        for user, sql in statements:
            by_user.setdefault(user, []).append(sql)

        db = make_db()
        db.trigger_mode = "async"
        errors: list = []
        with db.serve(max_connections=16, close_database=False) as server:
            def client(user: str, sqls: list[str]) -> None:
                try:
                    with Connection(
                        server.host, server.port, user_id=user
                    ) as conn:
                        for sql in sqls:
                            conn.execute(sql)
                except Exception as error:  # noqa: BLE001 — collected
                    errors.append(error)

            threads = [
                threading.Thread(target=client, args=(user, sqls))
                for user, sqls in by_user.items()
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
        assert not errors
        concurrent_rows = sorted(
            db.execute("SELECT uid, query, pid FROM log").rows
        )

        serial = make_db()
        for user, sql in statements:
            with serial.session.override(sql, user):
                serial.execute(sql)
        serial_rows = sorted(
            serial.execute("SELECT uid, query, pid FROM log").rows
        )
        assert concurrent_rows == serial_rows


# ----------------------------------------------------------------------
# admission control / backpressure


class TestAdmission:
    def test_overloaded_connection_is_shed_with_typed_error(self):
        db = make_db()
        with db.serve(max_connections=1, admission_queue=0) as server:
            with Connection(server.host, server.port, user_id="first"):
                with pytest.raises(ServerOverloadedError):
                    Connection(server.host, server.port, user_id="second")

    def test_queue_wait_timeout_sheds(self):
        db = make_db()
        with db.serve(
            max_connections=1, admission_queue=1, admission_timeout=0.15
        ) as server:
            with Connection(server.host, server.port, user_id="first"):
                started = time.monotonic()
                with pytest.raises(ServerOverloadedError):
                    Connection(server.host, server.port, user_id="second")
                assert time.monotonic() - started >= 0.1

    def test_queued_connection_admitted_when_slot_frees(self):
        db = make_db()
        with db.serve(
            max_connections=1, admission_queue=1, admission_timeout=5.0
        ) as server:
            first = Connection(server.host, server.port, user_id="first")
            timer = threading.Timer(0.1, first.close)
            timer.start()
            try:
                with Connection(
                    server.host, server.port, user_id="second"
                ) as second:
                    assert second.execute("SELECT 1").scalar() == 1
            finally:
                timer.cancel()
        stats = server.stats()
        assert stats["admission"]["admitted_total"] == 2
        assert stats["admission"]["peak_waiting"] == 1


# ----------------------------------------------------------------------
# timeouts and idle reaping


class TestTimeouts:
    def test_statement_timeout_is_typed_and_audit_still_lands(self):
        db = make_db()
        original = db.execute

        def slow_execute(sql, parameters=None):
            if "pid = 5" in sql:
                time.sleep(0.4)
            return original(sql, parameters)

        db.execute = slow_execute
        with db.serve(
            statement_timeout=0.1, close_database=False
        ) as server:
            with Connection(server.host, server.port, user_id="slowpoke") as conn:
                with pytest.raises(StatementTimeoutError):
                    conn.execute("SELECT * FROM patients WHERE pid = 5")
                # the connection survives; fast statements still serve
                assert conn.execute("SELECT 1").scalar() == 1
            # the timed-out statement ran to completion in the
            # background: a timeout withholds results, not evidence
            deadline = time.monotonic() + 5.0
            while time.monotonic() < deadline:
                if ("slowpoke", 5) in log_rows(db):
                    break
                time.sleep(0.02)
        assert ("slowpoke", 5) in log_rows(db)
        assert server.stats()["timeouts_total"] == 1

    def test_idle_connection_is_reaped(self):
        db = make_db()
        with db.serve(
            idle_timeout=0.15, reap_interval=0.05
        ) as server:
            conn = Connection(server.host, server.port, user_id="u")
            assert conn.execute("SELECT 1").scalar() == 1
            deadline = time.monotonic() + 5.0
            while server.stats()["reaped_total"] == 0:
                assert time.monotonic() < deadline, "connection never reaped"
                time.sleep(0.02)
            with pytest.raises(ConnectionClosedError):
                conn.execute("SELECT 1")
                conn.execute("SELECT 1")  # second try if close raced the first

    def test_active_connection_is_not_reaped(self):
        db = make_db()
        with db.serve(idle_timeout=0.3, reap_interval=0.05) as server:
            with Connection(server.host, server.port, user_id="u") as conn:
                for _ in range(10):
                    assert conn.execute("SELECT 1").scalar() == 1
                    time.sleep(0.05)
            assert server.stats()["reaped_total"] == 0


# ----------------------------------------------------------------------
# graceful shutdown (audited)


class TestShutdown:
    def test_shutdown_under_load_loses_no_journaled_intents(self, tmp_path):
        journal_dir = tmp_path / "journal"
        db = make_db(journal_path=str(journal_dir), journal_fsync="always")
        db.trigger_mode = "async"
        server = db.serve(max_connections=8).start()
        stop = threading.Event()
        completed: list[int] = []
        errors: list = []

        def client(index: int) -> None:
            try:
                with Connection(
                    server.host, server.port, user_id=f"u{index}"
                ) as conn:
                    count = 0
                    while not stop.is_set():
                        try:
                            conn.execute(
                                "SELECT * FROM patients WHERE pid = "
                                f"{index + 1}"
                            )
                            count += 1
                        except (ConnectionClosedError, Exception):
                            break
                    completed.append(count)
            except Exception as error:  # noqa: BLE001 — collected
                errors.append(error)

        threads = [
            threading.Thread(target=client, args=(i,)) for i in range(4)
        ]
        for thread in threads:
            thread.start()
        time.sleep(0.3)  # load in flight
        stats = server.shutdown(timeout=30.0)
        stop.set()
        for thread in threads:
            thread.join(timeout=10.0)
        assert stats["drained"]
        # the acceptance criterion: every journaled intent has a commit
        assert uncommitted_intents(journal_dir) == []
        assert sum(completed) > 0

    def test_shutdown_is_idempotent_and_reentrant(self):
        db = make_db()
        server = db.serve().start()
        first = server.shutdown()
        second = server.shutdown()
        assert first["drained"] and second["drained"]

    def test_new_connections_refused_after_shutdown(self):
        db = make_db()
        server = db.serve().start()
        server.shutdown()
        with pytest.raises(ConnectionClosedError):
            Connection(server.host, server.port, user_id="late")


# ----------------------------------------------------------------------
# Database.close(): signal-handler path safety (satellite)


class TestDatabaseClose:
    def test_close_is_idempotent(self):
        db = make_db()
        db.trigger_mode = "async"
        db.execute("SELECT * FROM patients WHERE pid = 1")
        db.close()
        db.close()
        assert db.trigger_errors == []

    def test_concurrent_close_callers_are_safe(self, tmp_path):
        db = make_db(journal_path=str(tmp_path / "j"))
        db.trigger_mode = "async"
        for pid in range(1, 9):
            db.execute(f"SELECT * FROM patients WHERE pid = {pid}")
        errors: list = []

        def closer() -> None:
            try:
                db.close()
            except Exception as error:  # noqa: BLE001 — collected
                errors.append(error)

        threads = [threading.Thread(target=closer) for _ in range(6)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        assert db.journal.closed
        # every journaled intent was committed before the journal closed
        assert uncommitted_intents(tmp_path / "j") == []

    def test_close_orders_pipeline_drain_before_journal_close(self, tmp_path):
        """The shutdown ordering contract, observed via call sequence."""
        db = make_db(journal_path=str(tmp_path / "j"))
        db.trigger_mode = "async"
        db.execute("SELECT * FROM patients WHERE pid = 1")
        order: list[str] = []
        pipeline = db._pipeline()
        original_pipeline_close = pipeline.close
        original_journal_close = db.journal.close

        def pipeline_close():
            order.append("pipeline")
            original_pipeline_close()

        def journal_close():
            order.append("journal")
            original_journal_close()

        pipeline.close = pipeline_close
        db.journal.close = journal_close
        db.close()
        assert order == ["pipeline", "journal"]


class TestDrainGate:
    def test_enter_leave_and_drain(self):
        gate = DrainGate()
        assert gate.try_enter()
        done = []

        def drainer():
            done.append(gate.drain(timeout=5.0))

        thread = threading.Thread(target=drainer)
        thread.start()
        time.sleep(0.05)
        assert not done  # still in flight
        gate.leave()
        thread.join(timeout=5.0)
        assert done == [True]

    def test_closed_gate_refuses_entry(self):
        gate = DrainGate()
        gate.close()
        assert not gate.try_enter()
        assert gate.refused_total == 1
        assert gate.drain(timeout=0.1)

    def test_drain_timeout(self):
        gate = DrainGate()
        gate.try_enter()
        assert gate.drain(timeout=0.05) is False
        gate.leave()


# ----------------------------------------------------------------------
# kill -9 crash of a real server process, then recovery


CRASH_INIT = INIT_SQL + """;
CREATE TABLE heavy (k INT PRIMARY KEY);
INSERT INTO heavy VALUES {heavy_rows};
INSERT INTO patients VALUES {patient_rows};
CREATE TRIGGER slow_burn ON ACCESS TO aud AS
    IF ((SELECT COUNT(*) FROM heavy a, heavy b, heavy c) >= 0)
    NOTIFY 'burned'
"""


@pytest.mark.slow
class TestCrashRecovery:
    def _spawn_server(self, tmp_path, journal_dir):
        # each firing's triple cross join costs ~100ms+ in this engine —
        # far more than a wire round trip — so the async pipeline
        # provably lags the clients and SIGKILL strands firings
        heavy_rows = ", ".join(f"({k})" for k in range(60))
        patient_rows = ", ".join(
            f"({pid}, 'P{pid}', {20 + pid})"
            for pid in range(1, N_PATIENTS + 1)
        )
        init_file = tmp_path / "init.sql"
        init_file.write_text(
            CRASH_INIT.format(
                heavy_rows=heavy_rows, patient_rows=patient_rows
            )
        )
        env = dict(os.environ)
        src = os.path.join(os.path.dirname(__file__), "..", "src")
        env["PYTHONPATH"] = os.path.abspath(src) + (
            os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
        )
        process = subprocess.Popen(
            [
                sys.executable, "-m", "repro.server",
                "--port", "0",
                "--init", str(init_file),
                "--journal", str(journal_dir),
                "--fsync", "always",
                "--trigger-mode", "async",
            ],
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            env=env,
            text=True,
        )
        line = process.stdout.readline()
        assert "listening on" in line, line
        port = int(line.strip().rsplit(":", 1)[1])
        return process, port

    def test_kill9_mid_flight_intents_replay_on_recovery(self, tmp_path):
        journal_dir = tmp_path / "journal"
        process, port = self._spawn_server(tmp_path, journal_dir)
        try:
            # the slow_burn trigger makes each async firing expensive, so
            # the pipeline lags the wire: by the time clients have their
            # results, firings are provably still mid-flight
            completions = 0
            with Connection("127.0.0.1", port, user_id="mallory") as conn:
                for pid in range(1, 13):
                    conn.execute(
                        f"SELECT * FROM patients WHERE pid = {pid}"
                    )
                    completions += 1
        finally:
            process.kill()  # SIGKILL: no drain, no journal close
            process.wait(timeout=10)

        uncommitted = uncommitted_intents(journal_dir)
        scan = scan_journal(journal_dir)
        intents = {
            record.seq: record.data
            for record in scan.records
            if record.kind == "intent"
        }
        # every completed statement journaled its intent *before*
        # returning results over the wire
        assert len(intents) >= completions
        # the pipeline lagged: some firings never committed
        assert uncommitted, "expected mid-flight firings at SIGKILL time"

        # reconstruct (schema + audit config survive as DDL, not state).
        # A fresh process replays *every* intent — committed firings died
        # with the in-memory log table; the commits only verify which
        # firings the crashed process finished.
        recovered = make_db()
        report = recovered.recover(journal_dir)
        assert report.uncommitted == len(uncommitted)
        assert report.replayed == len(intents)
        assert report.skipped_unknown == 0
        # the replayed firings are attributed to the original wire user
        rows = log_rows(recovered)
        expected = sorted(
            ("mallory", data["accessed"]["aud"][0])
            for data in intents.values()
        )
        assert rows == expected
        assert all(data["user"] == "mallory" for data in intents.values())
        # recovery is idempotent
        assert recovered.recover(journal_dir).replayed == 0

    def test_sigterm_drains_before_exit(self, tmp_path):
        journal_dir = tmp_path / "journal"
        process, port = self._spawn_server(tmp_path, journal_dir)
        with Connection("127.0.0.1", port, user_id="alice") as conn:
            for pid in range(1, 5):
                conn.execute(f"SELECT * FROM patients WHERE pid = {pid}")
        process.send_signal(signal.SIGTERM)
        assert process.wait(timeout=60) == 0
        # graceful: every journaled intent committed before exit
        assert uncommitted_intents(journal_dir) == []
