"""Tests for subquery-aware slot rebasing (`repro.plan.rebase`).

The regression of record: a correlated subquery conjunct pushed across a
join boundary must have its *subquery-internal* back-references rebased
too, or they silently read the wrong columns at runtime.
"""

import pytest

from repro.plan.rebase import deep_referenced_slots, remap_slots
from repro.sql.parser import parse_expression
from repro.plan.builder import PlanBuilder, Scope
from repro.plan.logical import PlanColumn


@pytest.fixture
def two_table_db(db):
    db.execute("CREATE TABLE a (x INT, pad1 VARCHAR)")
    db.execute("CREATE TABLE b (pad2 VARCHAR, y INT, z INT)")
    db.execute("CREATE TABLE c (k INT, tag VARCHAR)")
    db.execute("INSERT INTO a VALUES (1, 'a1'), (2, 'a2'), (3, 'a3')")
    db.execute(
        "INSERT INTO b VALUES ('b1', 1, 100), ('b2', 2, 200), "
        "('b3', 3, 300)"
    )
    db.execute("INSERT INTO c VALUES (100, 'hit'), (300, 'hit')")
    return db


def bind_over(db, tables, text):
    builder = PlanBuilder(db.catalog)
    columns = []
    for table_name in tables:
        table = db.catalog.table(table_name)
        for column in table.schema.columns:
            columns.append(
                PlanColumn(column.name, table_name,
                           (table_name, column.name))
            )
    return builder.bind_expression(
        parse_expression(text), Scope(tuple(columns))
    )


class TestDeepReferencedSlots:
    def test_plain_expression(self, two_table_db):
        bound = bind_over(two_table_db, ("a", "b"), "x = y")
        assert deep_referenced_slots(bound) == {0, 3}

    def test_sees_inside_subqueries(self, two_table_db):
        bound = bind_over(
            two_table_db,
            ("a", "b"),
            "EXISTS (SELECT 1 FROM c WHERE c.k = z)",
        )
        # z is slot 4 of the combined (a ++ b) row, referenced only from
        # inside the subquery plan (outer_level 1 there)
        assert deep_referenced_slots(bound) == {4}

    def test_shallow_version_misses_it(self, two_table_db):
        from repro.expr.nodes import referenced_slots

        bound = bind_over(
            two_table_db,
            ("a", "b"),
            "EXISTS (SELECT 1 FROM c WHERE c.k = z)",
        )
        assert referenced_slots(bound) == set()  # the documented gap

    def test_nested_subqueries(self, two_table_db):
        bound = bind_over(
            two_table_db,
            ("a", "b"),
            "EXISTS (SELECT 1 FROM c WHERE EXISTS "
            "(SELECT 1 FROM c c2 WHERE c2.k = z AND c2.k = c.k))",
        )
        assert 4 in deep_referenced_slots(bound)


class TestRemapSlots:
    def test_remaps_inside_subquery_plan(self, two_table_db):
        bound = bind_over(
            two_table_db,
            ("a", "b"),
            "EXISTS (SELECT 1 FROM c WHERE c.k = z)",
        )
        rebased = remap_slots(bound, lambda slot: slot - 2)
        assert deep_referenced_slots(rebased) == {2}

    def test_leaves_subquery_local_refs_alone(self, two_table_db):
        bound = bind_over(
            two_table_db,
            ("a", "b"),
            "EXISTS (SELECT 1 FROM c WHERE c.k = z AND c.tag = 'hit')",
        )
        rebased = remap_slots(bound, lambda slot: slot + 7)
        # only the back-reference moved; re-rebasing back round-trips
        assert remap_slots(rebased, lambda slot: slot - 7) == bound


class TestEndToEndRegression:
    def test_correlated_subquery_pushed_to_right_join_side(
        self, two_table_db
    ):
        """The conjunct references only b (the right side) and contains a
        subquery; pushdown sinks it into b's scan, which requires rebasing
        the subquery-internal reference by the left arity."""
        query = (
            "SELECT a.x, b.z FROM a, b WHERE a.x = b.y "
            "AND EXISTS (SELECT 1 FROM c WHERE c.k = b.z) "
            "ORDER BY a.x"
        )
        result = two_table_db.execute(query)
        assert result.rows == [(1, 100), (3, 300)]

    def test_same_query_without_optimizations(self, two_table_db):
        """Cross-check against the canonical (unrewritten) plan."""
        from repro.optimizer.physical import PhysicalPlanner
        from repro.sql.parser import parse_statement

        query = (
            "SELECT a.x, b.z FROM a, b WHERE a.x = b.y "
            "AND EXISTS (SELECT 1 FROM c WHERE c.k = b.z) "
            "ORDER BY a.x"
        )
        statement = parse_statement(query)
        canonical = two_table_db._builder.build_select(statement)
        planner = PhysicalPlanner(two_table_db.catalog)
        raw = two_table_db.run_physical(planner.compile(canonical)).rows
        optimized = two_table_db.execute(query).rows
        assert raw == optimized

    def test_scalar_subquery_conjunct_on_right_side(self, two_table_db):
        query = (
            "SELECT b.y FROM a, b WHERE a.x = b.y "
            "AND b.z > (SELECT MIN(k) FROM c WHERE c.k = b.z) - 1 "
            "ORDER BY b.y"
        )
        result = two_table_db.execute(query)
        assert result.rows == [(1,), (3,)]
