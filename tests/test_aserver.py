"""Tests for the asyncio serving front end (``repro.server.aserver``).

The contract under test: :class:`AsyncServer` is protocol-equivalent to
the threaded :class:`Server` — the same blocking ``Connection`` works
unchanged, typed errors re-raise, attribution is per-connection — while
changing the concurrency shape: idle connections do not consume threads,
statements run on a bounded worker pool, admission sheds with a
machine-readable ``retry_after``, and graceful shutdown still ends with
zero uncommitted intents.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.database import Database
from repro.durability.journal import scan_journal
from repro.durability.recovery import uncommitted_intents
from repro.errors import (
    AccessDeniedError,
    CatalogError,
    ServerOverloadedError,
    StatementTimeoutError,
)
from repro.server import AsyncServer, Connection

INIT_SQL = """
CREATE TABLE patients (pid INT PRIMARY KEY, name VARCHAR, age INT);
CREATE TABLE log (uid VARCHAR, query VARCHAR, pid INT);
CREATE AUDIT EXPRESSION aud AS SELECT * FROM patients
    FOR SENSITIVE TABLE patients, PARTITION BY pid;
CREATE TRIGGER ins_log ON ACCESS TO aud AS
    INSERT INTO log SELECT user_id(), sql_text(), pid FROM accessed
"""

N_PATIENTS = 24


def make_db(**kwargs) -> Database:
    db = Database(user_id="admin", **kwargs)
    db.execute_script(INIT_SQL)
    rows = ", ".join(
        f"({pid}, 'P{pid}', {20 + pid})" for pid in range(1, N_PATIENTS + 1)
    )
    db.execute(f"INSERT INTO patients VALUES {rows}")
    return db


def log_rows(db: Database) -> list[tuple]:
    db.drain_triggers()
    return sorted(db.execute("SELECT uid, pid FROM log").rows)


class TestRoundTrip:
    def test_select_rows_and_accessed(self) -> None:
        with AsyncServer(make_db()) as server:
            with Connection(server.host, server.port, user_id="alice") as c:
                result = c.execute(
                    "SELECT name FROM patients WHERE pid <= 3 ORDER BY pid"
                )
                assert result.rows == [("P1",), ("P2",), ("P3",)]
                assert result.accessed == {"aud": frozenset({1, 2, 3})}

    def test_typed_errors_reraise(self) -> None:
        with AsyncServer(make_db()) as server:
            with Connection(server.host, server.port) as c:
                with pytest.raises(CatalogError):
                    c.execute("SELECT * FROM missing")
                # the connection survives a failed statement
                assert c.ping()
                assert c.execute("SELECT COUNT(*) FROM patients").rows == [
                    (N_PATIENTS,)
                ]

    def test_attribution_per_connection(self) -> None:
        db = make_db()
        with AsyncServer(db, close_database=False) as server:
            with Connection(server.host, server.port, user_id="alice") as a, \
                    Connection(server.host, server.port, user_id="bob") as b:
                a.execute("SELECT name FROM patients WHERE pid = 1")
                b.execute("SELECT name FROM patients WHERE pid = 2")
        assert log_rows(db) == [("alice", 1), ("bob", 2)]
        db.close()

    def test_set_user_and_health(self) -> None:
        with AsyncServer(make_db()) as server:
            with Connection(server.host, server.port, user_id="alice") as c:
                assert c.set_user("bob") == "bob"
                report = c.health()
                assert report["audit_trail"]["audit_gaps"] == 0
                assert report["cluster"] is None


class TestConcurrencyShape:
    def test_idle_connections_do_not_add_threads(self) -> None:
        with AsyncServer(make_db(), workers=2) as server:
            before = threading.active_count()
            connections = [
                Connection(server.host, server.port) for _ in range(32)
            ]
            try:
                # 32 idle connections: no handler threads appear
                assert threading.active_count() == before
                deadline = time.monotonic() + 5.0
                while server.stats()["connections"] < 32:
                    assert time.monotonic() < deadline
                    time.sleep(0.01)
                for connection in connections[:4]:
                    connection.execute("SELECT COUNT(*) FROM patients")
            finally:
                for connection in connections:
                    connection.close()

    def test_admission_shed_carries_retry_after(self) -> None:
        with AsyncServer(
            make_db(), max_connections=1, admission_queue=0,
            admission_timeout=0.8,
        ) as server:
            with Connection(server.host, server.port):
                with pytest.raises(ServerOverloadedError) as info:
                    Connection(server.host, server.port)
                assert info.value.retry_after == pytest.approx(0.8)

    def test_client_retries_ride_out_overload(self) -> None:
        with AsyncServer(
            make_db(), max_connections=1, admission_queue=0,
            admission_timeout=0.1,
        ) as server:
            first = Connection(server.host, server.port)

            def release_soon() -> None:
                time.sleep(0.3)
                first.close()

            threading.Thread(target=release_soon, daemon=True).start()
            # opts into backoff: retries until the slot frees
            second = Connection(
                server.host, server.port, retries=10, max_backoff=0.2
            )
            assert second.ping()
            second.close()

    def test_statement_timeout_preserves_audit_evidence(self) -> None:
        db = make_db()
        original = db.execute

        def slow_execute(sql, parameters=None):
            if "pid = 5" in sql:
                time.sleep(0.4)
            return original(sql, parameters)

        db.execute = slow_execute
        with AsyncServer(
            db, statement_timeout=0.1, close_database=False
        ) as server:
            with Connection(server.host, server.port, user_id="slowpoke") as c:
                with pytest.raises(StatementTimeoutError):
                    c.execute("SELECT * FROM patients WHERE pid = 5")
                # the connection survives; fast statements still serve
                assert c.execute("SELECT 1").scalar() == 1
            # the timed-out statement ran to completion in the
            # background: a timeout withholds results, not evidence
            deadline = time.monotonic() + 5.0
            while time.monotonic() < deadline:
                if ("slowpoke", 5) in log_rows(db):
                    break
                time.sleep(0.02)
        assert ("slowpoke", 5) in log_rows(db)
        assert server.stats()["timeouts_total"] == 1
        db.close()

    def test_before_deny_refuses_over_the_wire(self) -> None:
        db = make_db()
        db.execute(
            "CREATE TRIGGER guard ON ACCESS TO aud BEFORE AS "
            "IF ((SELECT COUNT(*) FROM accessed) > 2) DENY 'too many'"
        )
        with AsyncServer(db) as server:
            with Connection(server.host, server.port) as c:
                with pytest.raises(AccessDeniedError):
                    c.execute("SELECT * FROM patients")
                ok = c.execute("SELECT name FROM patients WHERE pid = 1")
                assert ok.rows == [("P1",)]


class TestShutdown:
    def test_graceful_shutdown_zero_uncommitted_intents(
        self, tmp_path
    ) -> None:
        db = make_db(journal_path=tmp_path / "journal")
        db.trigger_mode = "async"
        server = AsyncServer(db).start()
        with Connection(server.host, server.port, user_id="alice") as c:
            for pid in range(1, 9):
                c.execute(f"SELECT name FROM patients WHERE pid = {pid}")
        stats = server.shutdown()
        assert stats["drained"]
        result = scan_journal(tmp_path / "journal")
        assert result.records
        assert not uncommitted_intents(tmp_path / "journal")

    def test_shutdown_is_idempotent(self) -> None:
        server = AsyncServer(make_db()).start()
        assert server.shutdown()["drained"]
        assert server.shutdown()["drained"]
