"""Tests for the TPC-H substrate: generator, schema, and query workload."""

import pytest

from repro import Database
from repro.tpch import (
    MICRO_BENCHMARK_QUERY,
    QUERIES,
    QUERY_PARAMETERS,
    TpchGenerator,
    audit_expression_sql,
    load_tpch,
)
from repro.tpch.datagen import MARKET_SEGMENTS
import datetime


class TestGenerator:
    def test_determinism(self):
        first = list(TpchGenerator(0.001, seed=7).customer_rows())
        second = list(TpchGenerator(0.001, seed=7).customer_rows())
        assert first == second

    def test_seed_changes_data(self):
        first = list(TpchGenerator(0.001, seed=7).customer_rows())
        second = list(TpchGenerator(0.001, seed=8).customer_rows())
        assert first != second

    def test_cardinality_ratios(self, tpch_db):
        counts = {
            name: len(tpch_db.catalog.table(name))
            for name in ("customer", "orders", "nation", "region")
        }
        assert counts["nation"] == 25
        assert counts["region"] == 5
        # two thirds of customers have 10 orders each
        assert counts["orders"] == pytest.approx(
            counts["customer"] * 10 * 2 / 3, rel=0.05
        )

    def test_market_segments_roughly_uniform(self, tpch_db):
        result = tpch_db.execute(
            "SELECT c_mktsegment, COUNT(*) FROM customer "
            "GROUP BY c_mktsegment"
        )
        counts = dict(result.rows)
        assert set(counts) == set(MARKET_SEGMENTS)
        total = sum(counts.values())
        for segment, count in counts.items():
            assert count / total == pytest.approx(0.2, abs=0.08)

    def test_foreign_keys_consistent(self, tpch_db):
        orphans = tpch_db.execute(
            "SELECT COUNT(*) FROM orders WHERE o_custkey NOT IN "
            "(SELECT c_custkey FROM customer)"
        )
        assert orphans.scalar() == 0
        orphan_lines = tpch_db.execute(
            "SELECT COUNT(*) FROM lineitem WHERE l_orderkey NOT IN "
            "(SELECT o_orderkey FROM orders)"
        )
        assert orphan_lines.scalar() == 0

    def test_phone_country_code_matches_nation(self, tpch_db):
        mismatches = tpch_db.execute(
            "SELECT COUNT(*) FROM customer WHERE "
            "CAST(SUBSTRING(c_phone FROM 1 FOR 2) AS INT) "
            "<> c_nationkey + 10"
        )
        assert mismatches.scalar() == 0

    def test_lineitem_dates_follow_order_date(self, tpch_db):
        bad = tpch_db.execute(
            "SELECT COUNT(*) FROM lineitem, orders "
            "WHERE l_orderkey = o_orderkey AND l_shipdate <= o_orderdate"
        )
        assert bad.scalar() == 0

    def test_invalid_scale_factor(self):
        with pytest.raises(ValueError):
            TpchGenerator(0)


class TestWorkload:
    def test_micro_benchmark_query_runs(self, tpch_db):
        result = tpch_db.execute(
            MICRO_BENCHMARK_QUERY,
            {"acctbal": 0.0, "orderdate": datetime.date(1995, 6, 1)},
        )
        assert len(result.rows) > 0
        # output = orders ++ customer columns
        assert len(result.columns) == 9 + 8

    @pytest.mark.parametrize("name", sorted(QUERIES))
    def test_query_executes(self, tpch_db, name):
        result = tpch_db.execute(QUERIES[name], QUERY_PARAMETERS[name])
        assert result.rows is not None
        if name in ("Q3", "Q10", "Q18"):
            limit = {"Q3": 10, "Q10": 20, "Q18": 100}[name]
            assert len(result.rows) <= limit

    def test_q3_orders_by_revenue_desc(self, tpch_db):
        result = tpch_db.execute(QUERIES["Q3"], QUERY_PARAMETERS["Q3"])
        revenues = [row[1] for row in result.rows]
        assert revenues == sorted(revenues, reverse=True)

    def test_q22_customers_have_no_orders(self, tpch_db):
        result = tpch_db.execute(QUERIES["Q22"], QUERY_PARAMETERS["Q22"])
        # every country-code group counts only order-less customers; the
        # count must not exceed the number of order-less customers
        orderless = tpch_db.execute(
            "SELECT COUNT(*) FROM customer WHERE NOT EXISTS "
            "(SELECT * FROM orders WHERE o_custkey = c_custkey)"
        ).scalar()
        assert sum(row[1] for row in result.rows) <= orderless

    def test_audit_expression_covers_one_segment(self):
        db = Database()
        load_tpch(db, scale_factor=0.001)
        db.execute(audit_expression_sql(segment="BUILDING"))
        view = db.audit_manager.view("audit_customer")
        expected = db.execute(
            "SELECT COUNT(*) FROM customer WHERE c_mktsegment = 'BUILDING'"
        ).scalar()
        assert len(view) == expected


class TestAuditedWorkload:
    @pytest.fixture(scope="class")
    def audited_tpch(self):
        db = Database()
        load_tpch(db, scale_factor=0.002)
        db.execute(audit_expression_sql())
        return db

    @pytest.mark.parametrize("name", sorted(QUERIES))
    def test_instrumented_results_match_plain(self, audited_tpch, name):
        """The audit operator is a no-op: results must be identical."""
        instrumented = audited_tpch.execute(
            QUERIES[name], QUERY_PARAMETERS[name]
        )
        audited_tpch.audit_enabled = False
        try:
            plain = audited_tpch.execute(
                QUERIES[name], QUERY_PARAMETERS[name]
            )
        finally:
            audited_tpch.audit_enabled = True
        assert instrumented.rows == plain.rows

    @pytest.mark.parametrize("name", sorted(QUERIES))
    def test_no_false_negatives_vs_offline(self, audited_tpch, name):
        """Claim 3.6 on the real workload: hcn never misses an access."""
        from repro import OfflineAuditor

        truth = OfflineAuditor(audited_tpch).audit(
            QUERIES[name], "audit_customer", QUERY_PARAMETERS[name]
        )
        online = audited_tpch.execute(
            QUERIES[name], QUERY_PARAMETERS[name]
        ).accessed.get("audit_customer", frozenset())
        assert truth <= online
