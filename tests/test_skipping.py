"""Data-skipping correctness: zone maps, sensitive-ID sketches, block
lifecycle, and the conservative-skip differential.

The invariant under test is one-sided: a consult may answer "may match"
for a block that matches nothing (false positive — the block is scanned
for nothing), but must never answer "cannot match" for a block holding a
qualifying row (false negative — a missed access would break the paper's
no-false-negatives auditing guarantee). Consequently query results,
ACCESSED sets, and offline-audit verdicts must be identical with the
``skipping`` knob on and off; only probe and block counts may differ.
"""

from __future__ import annotations

import random
import threading

import pytest

from repro import Database
from repro.audit.offline import OfflineAuditor
from repro.catalog.schema import Column, TableSchema
from repro.datatypes import INTEGER, VARCHAR
from repro.storage.blocks import BlockSummary
from repro.storage.table import Table

from tests.test_durability import _audited_db, _log_rows


# ---------------------------------------------------------------------------
# helpers


def make_block_table(capacity: int = 4) -> Table:
    schema = TableSchema(
        name="t",
        columns=(
            Column("id", INTEGER, nullable=False),
            Column("name", VARCHAR),
            Column("score", INTEGER),
        ),
        primary_key=("id",),
    )
    return Table(schema, block_capacity=capacity)


def make_audited_db(block_size: int, rows: int, sensitive_upto: int,
                    skipping: bool = True) -> Database:
    """Patients across many blocks; IDs ``<= sensitive_upto`` sensitive."""
    db = Database()
    db.block_size = block_size
    db.skipping = skipping
    db.execute(
        "CREATE TABLE patients (patientid INT PRIMARY KEY, "
        "name VARCHAR NOT NULL, age INT)"
    )
    # age mirrors patientid (monotone, not indexed) so zone maps over it
    # are tight per block while predicates on it compile to table scans
    values = ", ".join(
        f"({i}, 'p{i}', {i})" for i in range(1, rows + 1)
    )
    db.execute(f"INSERT INTO patients VALUES {values}")
    db.execute(
        "CREATE AUDIT EXPRESSION aud AS SELECT * FROM patients "
        f"WHERE patientid <= {sensitive_upto} "
        "FOR SENSITIVE TABLE patients, PARTITION BY patientid"
    )
    return db


#: query suite the on/off differential runs (mix of sargable predicates,
#: full scans, projections, aggregates, and joins back onto the table)
DIFFERENTIAL_QUERIES = [
    "SELECT * FROM patients",
    "SELECT * FROM patients WHERE patientid = 3",
    "SELECT * FROM patients WHERE patientid <= 5",
    "SELECT * FROM patients WHERE patientid > 90",
    "SELECT * FROM patients WHERE patientid BETWEEN 10 AND 20",
    "SELECT name FROM patients WHERE age < 30",
    "SELECT * FROM patients WHERE patientid < 0",
    "SELECT COUNT(*) FROM patients WHERE patientid >= 50",
    "SELECT p.name FROM patients p, patients q "
    "WHERE p.patientid = q.patientid AND q.patientid <= 4",
]


# ---------------------------------------------------------------------------
# zone-map unit tests


class TestZoneMaps:
    def summary(self, *rows) -> BlockSummary:
        built = BlockSummary(column_count=2, capacity=16)
        for row in rows:
            built.include_row(row)
        return built

    def test_empty_block_matches_nothing(self):
        empty = BlockSummary(column_count=1, capacity=4)
        assert not empty.may_match(0, "=", 1)
        assert not empty.may_match(0, "isnull", None)
        assert not empty.may_contain_any(0, {1}, 1, 1)

    def test_equality_inside_and_outside_zone(self):
        s = self.summary((10, "a"), (20, "b"))
        assert s.may_match(0, "=", 15)  # inside [10, 20]: may match
        assert not s.may_match(0, "=", 9)
        assert not s.may_match(0, "=", 21)

    def test_range_operators(self):
        s = self.summary((10, "a"), (20, "b"))
        assert not s.may_match(0, "<", 10)
        assert s.may_match(0, "<=", 10)
        assert not s.may_match(0, ">", 20)
        assert s.may_match(0, ">=", 20)
        assert s.may_match(0, "<", 11)
        assert s.may_match(0, ">", 19)

    def test_not_equal_skips_only_constant_blocks(self):
        constant = self.summary((5, "a"), (5, "b"))
        varied = self.summary((5, "a"), (6, "b"))
        assert not constant.may_match(0, "<>", 5)
        assert varied.may_match(0, "<>", 5)
        assert constant.may_match(0, "<>", 4)

    def test_null_semantics(self):
        s = self.summary((10, None), (None, "b"))
        assert s.may_match(0, "isnull", None)
        assert s.may_match(1, "isnull", None)
        assert s.may_match(0, "notnull", None)
        # col <op> NULL never evaluates True for any row
        assert not s.may_match(0, "=", None)
        # all-NULL column: no comparison can be satisfied
        all_null = self.summary((None, "a"), (None, "b"))
        assert not all_null.may_match(0, "=", 1)
        assert not all_null.may_match(0, "notnull", None)
        assert all_null.may_match(0, "isnull", None)

    def test_incomparable_values_drop_zone_map_conservatively(self):
        s = BlockSummary(column_count=1, capacity=8)
        s.include_row((3,))
        s.include_row(("oops",))  # int/str mix: zone map abandoned
        assert 0 in s.dropped
        assert s.may_match(0, "=", 99)  # any consult answers "may match"
        assert s.may_match(0, "<", -1)
        assert s.may_contain_any(0, {"anything"}, None, None)
        # later NULLs must not resurrect the all-NULL skip path
        s.include_row((None,))
        assert s.may_match(0, "=", 99)

    def test_incomparable_probe_set_is_conservative(self):
        s = self.summary((10, "a"), (20, "b"))
        assert s.may_contain_any(0, {"x"}, "x", "x") or True  # no raise


# ---------------------------------------------------------------------------
# sketch + zone maintenance under random DML (no-false-negative property)


class TestMaintenanceProperty:
    def assert_conservative(self, table: Table) -> None:
        """Every live value must be admitted by its block's consults."""
        position = table.schema.position_of("id")
        for block in table.blocks():
            summary = table.fresh_summary(block)
            for row in block.rows_snapshot():
                value = row[position]
                assert summary.may_match(position, "=", value)
                assert summary.may_contain_any(
                    position, {value}, value, value
                )

    def test_random_dml_never_produces_false_negatives(self):
        rng = random.Random(1337)
        table = make_block_table(capacity=4)
        table.register_sketch_column("id")
        live: dict[int, int] = {}  # id -> rid
        next_id = 0
        for step in range(400):
            action = rng.random()
            if action < 0.5 or not live:
                next_id += 1
                rid = table.insert((next_id, f"n{next_id}", rng.randrange(100)))
                live[next_id] = rid
            elif action < 0.75:
                key = rng.choice(list(live))
                table.delete_rid(live.pop(key))
            else:
                key = rng.choice(list(live))
                new_key = next_id = next_id + 1
                table.update_rid(
                    live.pop(key), (new_key, f"n{new_key}", rng.randrange(100))
                )
                live[new_key] = table._pk_index[(new_key,)]
            if step % 25 == 0:
                self.assert_conservative(table)
        self.assert_conservative(table)
        assert sum(len(b.rows) for b in table.blocks()) == len(table)

    def test_update_moves_partition_value_across_zone_ranges(self):
        table = make_block_table(capacity=4)
        table.register_sketch_column("id")
        rids = [table.insert((i, f"n{i}", i)) for i in range(1, 13)]
        assert table.block_count == 3
        first, _, third = table.blocks()
        # move 1 (block 0's range) to 100 (beyond block 2's range); the
        # row stays in block 0 — its summary must admit the new value
        table.update_rid(rids[0], (100, "moved", 0))
        stale = first.summary
        assert stale.stale and stale.may_contain_any(0, {100}, 100, 100)
        fresh = table.fresh_summary(first)
        assert not fresh.stale
        assert fresh.may_contain_any(0, {100}, 100, 100)
        assert not fresh.may_contain_any(0, {1}, 1, 1)  # exact again
        # delete shrinks a block; the rebuilt summary tightens
        table.delete_rid(rids[11])
        assert third.summary.stale
        assert not table.fresh_summary(third).may_match(0, "=", 12)

    def test_rebuild_races_readers_safely(self):
        table = make_block_table(capacity=64)
        table.register_sketch_column("id")
        rids = [table.insert((i, f"n{i}", i)) for i in range(64)]
        block = table.blocks()[0]
        stop = threading.Event()
        failures: list[str] = []

        def writer():
            toggle = 0
            while not stop.is_set():
                toggle += 1
                # churn one row in place: marks the summary stale, then
                # the next consult (ours or a reader's) rebuilds it
                table.update_rid(rids[0], (0, f"w{toggle}", toggle))
                table.fresh_summary(block)

        def reader():
            while not stop.is_set():
                summary = table.fresh_summary(block)
                for value in range(64):
                    if not summary.may_contain_any(0, {value}, value, value):
                        failures.append(f"false negative for {value}")
                        return

        threads = [threading.Thread(target=writer)] + [
            threading.Thread(target=reader) for _ in range(3)
        ]
        for thread in threads:
            thread.start()
        timer = threading.Timer(0.5, stop.set)
        timer.start()
        for thread in threads:
            thread.join()
        timer.cancel()
        assert not failures


# ---------------------------------------------------------------------------
# the on/off differential (the headline invariant)


class TestSkippingDifferential:
    @pytest.fixture(scope="class")
    def pair(self):
        on = make_audited_db(8, 100, 5, skipping=True)
        off = make_audited_db(8, 100, 5, skipping=False)
        return on, off

    def test_results_accessed_and_probes(self, pair):
        on, off = pair
        for sql in DIFFERENTIAL_QUERIES:
            result_on = on.execute(sql)
            result_off = off.execute(sql)
            assert sorted(map(repr, result_on.rows)) == sorted(
                map(repr, result_off.rows)
            ), sql
            assert result_on.accessed == result_off.accessed, sql

    def test_offline_verdicts_identical(self, pair):
        on, off = pair
        for sql in DIFFERENTIAL_QUERIES:
            if "COUNT" in sql:
                continue  # aggregate shape varies per offline strategy
            assert OfflineAuditor(on).audit(sql, "aud") == OfflineAuditor(
                off
            ).audit(sql, "aud"), sql

    def test_skipping_reduces_probes_on_selective_audit(self):
        db = make_audited_db(8, 100, 2, skipping=True)
        context = db.make_context()
        plan = db.plan_query("SELECT * FROM patients")
        instrumented = db.audit_manager.instrument(plan, heuristic="leaf-node")
        physical = db._optimizer.compile(instrumented)
        list(physical.rows_batched(context))
        assert context.audit_blocks_skipped > 0
        assert context.audit_probes_skipped > 0
        assert context.audit_probe_count + context.audit_probes_skipped == 100

    def test_zone_maps_skip_blocks_for_selective_scans(self):
        db = make_audited_db(8, 100, 5, skipping=True)
        context = db.make_context()
        physical = db._optimizer.compile(
            db.plan_query("SELECT * FROM patients WHERE age <= 5")
        )
        rows = list(physical.rows(context))
        assert len(rows) == 5
        assert context.blocks_zone_skipped > 0
        assert context.blocks_scanned < 100 // 8

    def test_row_and_batch_modes_agree_under_skipping(self):
        db = make_audited_db(8, 100, 5, skipping=True)
        sql = "SELECT * FROM patients WHERE patientid <= 30"
        db.exec_mode = "row"
        row_mode = db.execute(sql)
        db.exec_mode = "batch"
        batch_mode = db.execute(sql)
        assert sorted(row_mode.rows) == sorted(batch_mode.rows)
        assert row_mode.accessed == batch_mode.accessed


# ---------------------------------------------------------------------------
# recovery replay lands in consistent blocks


class TestRecoveryBlocks:
    def assert_block_invariants(self, table: Table) -> None:
        assert sum(len(b.rows) for b in table.blocks()) == len(table)
        for rid, block in table._rid_block.items():
            assert rid in block.rows
        for position in table.sketch_positions:
            for block in table.blocks():
                summary = table.fresh_summary(block)
                for row in block.rows_snapshot():
                    value = row[position]
                    if value is not None:
                        assert summary.may_contain_any(
                            position, {value}, value, value
                        )

    def test_replayed_rows_land_in_consistent_blocks(self, tmp_path):
        db = _audited_db(journal_path=tmp_path / "j")
        for pid in (1, 2, 3):
            db.execute(f"SELECT * FROM patients WHERE patientid = {pid}")
        expected = _log_rows(db)
        db.close()
        fresh = _audited_db()
        report = fresh.recover(tmp_path / "j")
        assert report.replayed == 3
        assert _log_rows(fresh) == expected
        for name in ("patients", "log"):
            self.assert_block_invariants(fresh.catalog.table(name))
        fresh.close()


# ---------------------------------------------------------------------------
# statistics invalidation on DML


class TestStatsInvalidation:
    def test_bulk_load_invalidates_cached_plans(self, db):
        db.execute("CREATE TABLE t (a INT PRIMARY KEY, b INT)")
        db.execute("INSERT INTO t VALUES (1, 1)")
        sql = "SELECT * FROM t WHERE a = 1"
        db.execute(sql)
        old_tags = db._plan_cache_tags()
        assert db.plan_cache.lookup(sql, old_tags) is not None
        before = db.catalog.stats_version
        values = ", ".join(f"({i}, {i})" for i in range(2, 40))
        db.execute(f"INSERT INTO t VALUES {values}")
        assert db.catalog.refresh_stats_version() > before
        # the 10x-grown table must not be served by the stale-costed plan
        assert db.plan_cache.lookup(sql, db._plan_cache_tags()) is None
        assert db.catalog.statistics("t").row_count == 39

    def test_small_churn_does_not_thrash(self, db):
        db.execute("CREATE TABLE t (a INT PRIMARY KEY, b INT)")
        values = ", ".join(f"({i}, {i})" for i in range(64))
        db.execute(f"INSERT INTO t VALUES {values}")
        version = db.catalog.refresh_stats_version()
        db.execute("INSERT INTO t VALUES (64, 64)")  # 64 -> 65: same bucket
        assert db.catalog.refresh_stats_version() == version


# ---------------------------------------------------------------------------
# costed audit placement


class TestCostedPlacement:
    def test_cost_model_discounts_fused_leaf_placement(self):
        db = make_audited_db(8, 100, 2, skipping=True)
        from repro.optimizer.cost import CostModel

        model = CostModel(db.catalog, db.audit_manager.resolve_view)
        plan = db.plan_query("SELECT * FROM patients")
        leaf = db.audit_manager.instrument(plan, heuristic="leaf-node")
        # sensitive IDs {1, 2} live in the first of ~13 blocks: the
        # sketch-aware estimate must be far below the raw row count
        probes = model.estimate_plan_probes(leaf)
        assert 0 < probes < 100 / 2

    def test_cost_heuristic_preserves_accessed(self):
        db = make_audited_db(8, 100, 5, skipping=True)
        sql = "SELECT name FROM patients WHERE age < 30 AND patientid <= 50"
        baseline = db.execute(sql)
        db.audit_manager.heuristic = "cost"
        costed = db.execute(sql)
        assert sorted(costed.rows) == sorted(baseline.rows)
        assert costed.accessed == baseline.accessed

    def test_unknown_heuristic_still_rejected(self, db):
        db.execute("CREATE TABLE t (a INT PRIMARY KEY)")
        db.execute(
            "CREATE AUDIT EXPRESSION e AS SELECT * FROM t "
            "FOR SENSITIVE TABLE t, PARTITION BY a"
        )
        from repro.errors import AuditError

        with pytest.raises(AuditError):
            db.audit_manager.instrument(
                db.plan_query("SELECT * FROM t"), heuristic="bogus"
            )
