"""Tests for the deletion-based offline auditor (Definitions 2.3/2.5)."""

import pytest

from repro import OfflineAuditor
from repro.errors import AuditError


@pytest.fixture
def audited_db(patients_db):
    patients_db.execute(
        "CREATE AUDIT EXPRESSION audit_all AS SELECT * FROM patients "
        "FOR SENSITIVE TABLE patients, PARTITION BY patientid"
    )
    return patients_db


class TestDeletionSemantics:
    def test_simple_selection(self, audited_db):
        auditor = OfflineAuditor(audited_db)
        accessed = auditor.audit(
            "SELECT name FROM patients WHERE age > 40", "audit_all"
        )
        assert accessed == {4, 5}

    def test_join_access(self, audited_db):
        auditor = OfflineAuditor(audited_db)
        accessed = auditor.audit(
            "SELECT p.name FROM patients p, disease d "
            "WHERE p.patientid = d.patientid AND d.disease = 'flu'",
            "audit_all",
        )
        assert accessed == {2, 3, 5}

    def test_example_2_4_exists_probe(self, audited_db):
        """Example 2.4: Alice influences the EXISTS probe query."""
        accessed = OfflineAuditor(audited_db).audit(
            "SELECT 1 FROM disease WHERE EXISTS "
            "(SELECT * FROM patients p, disease d "
            "WHERE p.patientid = d.patientid AND name = 'Alice' "
            "AND disease = 'cancer')",
            "audit_all",
        )
        assert 1 in accessed

    def test_aggregate_count_counts_all_contributors(self, audited_db):
        accessed = OfflineAuditor(audited_db).audit(
            "SELECT COUNT(*) FROM patients WHERE zip = '98101'",
            "audit_all",
        )
        assert accessed == {1, 3}

    def test_distinct_masks_duplicate_access(self, audited_db):
        """§II-B: duplicate elimination can hide accesses — inherent to SQL."""
        audited_db.execute(
            "INSERT INTO patients VALUES (6, 'Alice', 22, '98101')"
        )
        accessed = OfflineAuditor(audited_db).audit(
            "SELECT DISTINCT name FROM patients WHERE name = 'Alice'",
            "audit_all",
        )
        # removing either Alice alone leaves the DISTINCT result unchanged
        assert accessed == set()

    def test_topk_boundary_tuple_is_accessed(self, audited_db):
        accessed = OfflineAuditor(audited_db).audit(
            "SELECT name FROM patients ORDER BY age LIMIT 2",
            "audit_all",
        )
        # Bob (25) and Carol (33) are the top 2; Alice (40) is the runner-up
        # whose deletion does not change the result
        assert {2, 3} <= accessed
        assert 4 not in accessed  # Dave (58) cannot influence the top-2

    def test_scope_restricted_to_expression(self, audited_db):
        audited_db.execute(
            "CREATE AUDIT EXPRESSION audit_alice AS SELECT * FROM patients "
            "WHERE name = 'Alice' FOR SENSITIVE TABLE patients, "
            "PARTITION BY patientid"
        )
        accessed = OfflineAuditor(audited_db).audit(
            "SELECT name FROM patients", "audit_alice"
        )
        assert accessed == {1}

    def test_query_not_touching_table(self, audited_db):
        accessed = OfflineAuditor(audited_db).audit(
            "SELECT disease FROM disease", "audit_all"
        )
        assert accessed == set()

    def test_requires_primary_key(self, db):
        db.execute("CREATE TABLE nopk (a INT)")
        db.execute(
            "CREATE AUDIT EXPRESSION a AS SELECT * FROM nopk "
            "FOR SENSITIVE TABLE nopk, PARTITION BY a"
        )
        with pytest.raises(AuditError):
            OfflineAuditor(db).audit("SELECT a FROM nopk", "a")

    def test_non_pk_partition_key_tests_each_tuple(self, db):
        db.execute(
            "CREATE TABLE visits (visitid INT PRIMARY KEY, patientid INT)"
        )
        db.execute(
            "INSERT INTO visits VALUES (1, 7), (2, 7), (3, 8)"
        )
        db.execute(
            "CREATE AUDIT EXPRESSION av AS SELECT * FROM visits "
            "FOR SENSITIVE TABLE visits, PARTITION BY patientid"
        )
        accessed = OfflineAuditor(db).audit(
            "SELECT COUNT(*) FROM visits", "av"
        )
        assert accessed == {7, 8}


class TestCandidateRestriction:
    def test_leaf_predicate_prunes_candidates(self, audited_db):
        auditor = OfflineAuditor(audited_db)
        auditor.audit(
            "SELECT name FROM patients WHERE age > 40", "audit_all"
        )
        assert auditor.last_candidate_count == 2  # Dave and Erin only

    def test_no_candidates_short_circuits(self, audited_db):
        auditor = OfflineAuditor(audited_db)
        accessed = auditor.audit(
            "SELECT name FROM patients WHERE age > 200", "audit_all"
        )
        assert accessed == set()
        assert auditor.last_deletion_runs == 0


class TestCaching:
    def test_cache_and_no_cache_agree(self, audited_db):
        query = (
            "SELECT p.name, COUNT(*) FROM patients p, disease d "
            "WHERE p.patientid = d.patientid GROUP BY p.name"
        )
        cached = OfflineAuditor(audited_db, use_cache=True).audit(
            query, "audit_all"
        )
        uncached = OfflineAuditor(audited_db, use_cache=False).audit(
            query, "audit_all"
        )
        assert cached == uncached

    def test_matches_hcn_and_never_misses(self, audited_db):
        queries = [
            "SELECT p.patientid FROM patients p, disease d "
            "WHERE p.patientid = d.patientid AND d.disease = 'cancer'",
            "SELECT zip, COUNT(*) FROM patients GROUP BY zip",
            "SELECT name FROM patients WHERE patientid IN "
            "(SELECT patientid FROM disease WHERE disease = 'flu')",
        ]
        auditor = OfflineAuditor(audited_db)
        for query in queries:
            truth = auditor.audit(query, "audit_all")
            online = audited_db.execute(query).accessed.get(
                "audit_all", frozenset()
            )
            assert truth <= online, query
