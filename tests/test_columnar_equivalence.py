"""Columnar-mode execution equivalence (three-mode differential).

``rows_columnar`` is a pure optimization exactly like batching: for the
same physical plan it must produce the identical row sequence, the
identical ACCESSED sets, and the identical audit probe counts as both
the Volcano row loop and the tuple-batch pipeline. The hypothesis
property drives random SPJ and aggregate statements (with an audit
expression installed) through all three pipelines at adversarial batch
sizes, with data skipping both on and off — the audit operator's fused
columnar path and its plain bulk-probe path are both exercised.
"""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro import Database
from repro.exec.batch import ColumnBatch

from tests.test_batch_equivalence import (
    _SETTINGS,
    batch_sizes,
    build_db,
    compile_select,
    disease_rows,
    patient_rows,
    queries,
    run_mode,
)


class TestColumnarEquivalence:
    @_SETTINGS
    @given(
        patients=patient_rows,
        sick=disease_rows,
        query=queries,
        batch_size=batch_sizes,
        skipping=st.booleans(),
    )
    def test_same_plan_same_artifacts(
        self, patients, sick, query, batch_size, skipping
    ):
        db = build_db(patients, sick)
        db.batch_size = batch_size
        db.skipping = skipping
        physical = compile_select(db, query)
        outputs = {
            mode: run_mode(db, physical, mode)
            for mode in ("row", "batch", "columnar")
        }
        reference = outputs["row"]
        for mode in ("batch", "columnar"):
            # identical row *sequence*, not just identical bags
            assert outputs[mode][0] == reference[0], mode
            assert outputs[mode][1] == reference[1], mode  # ACCESSED
            assert outputs[mode][2] == reference[2], mode  # total probes
            assert outputs[mode][3] == reference[3], mode  # per-expression

    @_SETTINGS
    @given(patients=patient_rows, sick=disease_rows, query=queries)
    def test_execute_end_to_end(self, patients, sick, query):
        db = build_db(patients, sick)
        results = {}
        for mode in ("row", "batch", "columnar"):
            db.exec_mode = mode
            results[mode] = db.execute(query)
        for mode in ("batch", "columnar"):
            assert results[mode].rows == results["row"].rows
            assert results[mode].accessed == results["row"].accessed
            assert results[mode].columns == results["row"].columns

    @_SETTINGS
    @given(patients=patient_rows, sick=disease_rows, query=queries)
    def test_cost_placement_stays_sound(self, patients, sick, query):
        """'cost' placement may shift toward the leaf under the columnar
        probe discount. Query results must not move, and because the
        discount only ever makes the fused leaf cheaper, a shift can only
        move the operator *down* — recording a superset of the accesses
        the pulled-up placement records (leaf sees every scanned row, HCN
        only result contributors)."""
        db = build_db(patients, sick)
        db.audit_manager.heuristic = "cost"
        db.exec_mode = "batch"
        batch_result = db.execute(query)
        db.exec_mode = "columnar"
        columnar_result = db.execute(query)
        assert columnar_result.rows == batch_result.rows
        for name, ids in batch_result.accessed.items():
            assert ids <= columnar_result.accessed.get(name, frozenset())


class TestExecModeKnob:
    def test_rejects_unknown_mode(self):
        db = Database()
        with pytest.raises(ValueError):
            db.exec_mode = "vectorized"

    def test_columnar_plans_cached_apart_from_row_and_batch(self):
        db = build_db([("Alice", 30, "11111")], [])
        sql = "SELECT * FROM patients"
        db.exec_mode = "row"
        db.execute(sql)
        db.exec_mode = "batch"
        db.execute(sql)  # row/batch share one cached plan
        assert db.plan_cache.hits == 1
        db.exec_mode = "columnar"
        db.execute(sql)  # mode-tagged: columnar compiles its own entry
        assert db.plan_cache.hits == 1
        db.execute(sql)
        assert db.plan_cache.hits == 2


class TestColumnBatch:
    def test_round_trip_and_selection(self):
        rows = [(1, "a"), (2, "b"), (3, "c")]
        batch = ColumnBatch.from_rows(rows)
        assert batch.row_count == 3
        assert batch.to_rows() == rows
        narrowed = ColumnBatch(batch.columns, batch.length, [0, 2])
        assert narrowed.row_count == 2
        assert narrowed.to_rows() == [(1, "a"), (3, "c")]
        assert narrowed.column(1) == ["a", "c"]
        assert narrowed.take(1).to_rows() == [(1, "a")]

    def test_zero_arity_rows(self):
        batch = ColumnBatch.from_rows([(), ()])
        assert batch.row_count == 2
        assert batch.to_rows() == [(), ()]

    def test_slots_block_instance_dicts(self):
        batch = ColumnBatch.from_rows([(1,)])
        with pytest.raises(AttributeError):
            batch.extra = 1


class TestColumnarProbeFlushOnAbort:
    """Probe accounting survives a consumer abandoning the iterator."""

    def test_partial_consumption_flushes_probes(self):
        db = build_db(
            [("Alice", 30, "11111"), ("Bob", 40, "22222"),
             ("Carol", 50, "33333"), ("Dave", 60, "11111")],
            [],
        )
        physical = compile_select(db, "SELECT * FROM patients")
        context = db.make_context()
        iterator = physical.rows_columnar(context)
        batch = next(iterator)
        iterator.close()  # GeneratorExit mid-stream
        assert context.audit_probe_count >= batch.row_count
        assert context.audit_probe_counts.get("audit_all", 0) >= 1
