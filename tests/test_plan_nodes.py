"""Mechanics of plan and expression nodes: traversal, rebuild, rendering."""

import pytest

from repro import Database
from repro.errors import PlanError
from repro.expr.nodes import (
    Between,
    Binary,
    Case,
    ColumnRef,
    InList,
    Literal,
    Unary,
    conjoin,
    conjuncts,
    contains_subquery,
    transform,
)
from repro.plan import logical as L
from repro.plan.logical import format_plan, map_expressions
from repro.sql.parser import parse_expression


class TestExpressionNodes:
    def test_walk_preorder(self):
        expression = parse_expression("a + b * c")
        kinds = [type(node).__name__ for node in expression.walk()]
        assert kinds[0] == "Binary"  # the + at the root
        assert kinds.count("ColumnRef") == 3

    def test_walk_does_not_enter_subqueries(self):
        expression = parse_expression("EXISTS (SELECT a FROM t)")
        names = {
            node.name for node in expression.walk()
            if isinstance(node, ColumnRef)
        }
        assert names == set()

    def test_replace_children_identity_when_unchanged(self):
        expression = parse_expression("a + 1")
        rebuilt = transform(expression, lambda node: node)
        assert rebuilt is expression  # no copies when nothing changed

    def test_replace_children_case_roundtrip(self):
        expression = parse_expression(
            "CASE x WHEN 1 THEN 'a' WHEN 2 THEN 'b' ELSE 'c' END"
        )
        assert isinstance(expression, Case)
        rebuilt = expression.replace_children(expression.children())
        assert rebuilt == expression

    def test_case_child_count_mismatch(self):
        expression = parse_expression("CASE WHEN a THEN 1 END")
        with pytest.raises(ValueError):
            expression.replace_children([Literal(1)])

    def test_leaf_replace_children_rejects_extras(self):
        with pytest.raises(ValueError):
            Literal(1).replace_children([Literal(2)])

    def test_between_children(self):
        expression = parse_expression("x BETWEEN 1 AND 2")
        assert isinstance(expression, Between)
        assert len(expression.children()) == 3

    def test_in_list_children(self):
        expression = parse_expression("x IN (1, 2)")
        assert isinstance(expression, InList)
        assert len(expression.children()) == 3

    def test_contains_subquery(self):
        assert contains_subquery(parse_expression("x IN (SELECT a FROM t)"))
        assert not contains_subquery(parse_expression("x IN (1, 2)"))
        assert not contains_subquery(None)

    def test_conjoin_single(self):
        part = parse_expression("a = 1")
        assert conjoin([part]) is part

    def test_conjuncts_of_none(self):
        assert conjuncts(None) == []

    def test_column_ref_display(self):
        assert ColumnRef("x", qualifier="t").display() == "t.x"
        assert ColumnRef("x").display() == "x"

    def test_unary_rebuild(self):
        expression = Unary("NOT", Literal(True))
        rebuilt = expression.replace_children([Literal(False)])
        assert rebuilt == Unary("NOT", Literal(False))


@pytest.fixture
def plan_db():
    db = Database()
    db.execute("CREATE TABLE t (a INT PRIMARY KEY, b VARCHAR)")
    db.execute("CREATE TABLE u (c INT, d VARCHAR)")
    return db


class TestPlanNodes:
    def test_walk_covers_tree(self, plan_db):
        plan = plan_db.plan_query(
            "SELECT t.b FROM t, u WHERE t.a = u.c ORDER BY t.b LIMIT 3"
        )
        kinds = {type(node).__name__ for node in plan.walk()}
        assert {"Scan", "Join", "Project"} <= kinds

    def test_arity_matches_columns(self, plan_db):
        plan = plan_db.plan_query("SELECT a, b FROM t")
        assert plan.arity == 2 == len(plan.columns)

    def test_scan_columns_carry_origin(self, plan_db):
        plan = plan_db.plan_query("SELECT * FROM t")
        scan = next(n for n in plan.walk() if isinstance(n, L.Scan))
        assert scan.columns[0].origin == ("t", "a")

    def test_join_column_concatenation(self, plan_db):
        plan = plan_db.plan_query("SELECT * FROM t, u")
        join = next(n for n in plan.walk() if isinstance(n, L.Join))
        assert [c.name for c in join.columns] == ["a", "b", "c", "d"]

    def test_semi_join_columns_are_left_only(self, plan_db):
        plan = plan_db.plan_query(
            "SELECT a FROM t WHERE a IN (SELECT c FROM u)"
        )
        semi = next(
            n for n in plan.walk()
            if isinstance(n, L.Join) and n.kind == L.JOIN_SEMI
        )
        assert [c.name for c in semi.columns] == ["a", "b"]

    def test_replace_children_arity_checked(self, plan_db):
        plan = plan_db.plan_query("SELECT a FROM t")
        scan = next(n for n in plan.walk() if isinstance(n, L.Scan))
        with pytest.raises(PlanError):
            scan.replace_children([scan])

    def test_format_plan_renders_details(self, plan_db):
        plan_db.execute(
            "CREATE AUDIT EXPRESSION at AS SELECT * FROM t "
            "FOR SENSITIVE TABLE t, PARTITION BY a"
        )
        from repro.audit.placement import instrument_plan

        plan = instrument_plan(
            plan_db.plan_query(
                "SELECT a, COUNT(*) FROM t WHERE b = 'x' GROUP BY a LIMIT 2"
            ),
            plan_db.audit_manager.targets(),
        )
        text = format_plan(plan)
        assert "Scan t AS t [pushed predicate]" in text
        assert "Aggregate" in text and "groups=1" in text
        assert "Limit count=2" in text
        assert "Audit expr=at" in text

    def test_map_expressions_visits_every_holder(self, plan_db):
        plan = plan_db.plan_query(
            "SELECT u.d, COUNT(*) FROM t, u WHERE t.a = u.c AND t.b = 'x' "
            "GROUP BY u.d ORDER BY u.d"
        )
        visited = []

        def spy(expression):
            visited.append(type(expression).__name__)
            return expression

        map_expressions(plan, spy)
        assert len(visited) >= 4  # scan pred, join cond, groups, sort key

    def test_map_expressions_rebuilds(self, plan_db):
        plan = plan_db.plan_query("SELECT a FROM t WHERE a = 1")

        def rewrite(expression):
            def bump(node):
                if isinstance(node, Literal) and node.value == 1:
                    return Literal(2)
                return node

            return transform(expression, bump)

        rebuilt = map_expressions(plan, rewrite)
        scan = next(n for n in rebuilt.walk() if isinstance(n, L.Scan))
        literals = [
            node.value for node in scan.predicate.walk()
            if isinstance(node, Literal)
        ]
        assert literals == [2]
