"""Lineage-based offline auditing: exactness against the deletion oracle.

The lineage auditor must be *exact* with respect to Definition 2.3 — it is
the default offline strategy, so every divergence from the literal
``Q(D) ≠ Q(D − t)`` test is a correctness bug, not an approximation. These
tests pin:

* the instance-dependent aggregate corners of Definition 2.3 (a deleted
  tuple contributing 0 to a SUM, a duplicated MIN/MAX, an AVG unchanged
  by deletion), asserted against both auditors;
* a hypothesis differential: random SPJA workloads through the lineage
  auditor and the deletion-test auditor produce identical accessed-ID
  sets;
* plan certification (which shapes fall back, and why);
* the per-aggregate sensitivity rules in isolation;
* the parallel deletion fallback and the auditor's LRU plan cache.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro import Database, OfflineAuditor
from repro.audit.lineage import (
    Certification,
    aggregate_sensitivity,
    certify_plan,
)
from repro.plan.logical import AggregateSpec

_SETTINGS = settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def make_db(rows):
    """patients(patientid, name, age, zip) with audit_all on patientid."""
    db = Database()
    db.execute(
        "CREATE TABLE patients (patientid INT PRIMARY KEY, "
        "name VARCHAR, age INT, zip VARCHAR)"
    )
    db.execute("CREATE TABLE disease (patientid INT, disease VARCHAR)")
    for index, (name, age, zip_code) in enumerate(rows, start=1):
        age_sql = "NULL" if age is None else str(age)
        db.execute(
            f"INSERT INTO patients VALUES ({index}, '{name}', {age_sql}, "
            f"'{zip_code}')"
        )
    db.execute(
        "CREATE AUDIT EXPRESSION audit_all AS SELECT * FROM patients "
        "FOR SENSITIVE TABLE patients, PARTITION BY patientid"
    )
    return db


def both_auditors(db, query):
    """(lineage answer, deletion answer) with lineage-use asserted."""
    lineage = OfflineAuditor(db, mode="lineage")
    deletion = OfflineAuditor(db, mode="deletion")
    fast = lineage.audit(query, "audit_all")
    truth = deletion.audit(query, "audit_all")
    assert lineage.last_lineage_certified, lineage.last_fallback_reason
    assert lineage.last_deletion_runs == 0
    assert deletion.last_mode == "deletion"
    return fast, truth


class TestAggregateCorners:
    """Instance-dependent deletions of Definition 2.3: whether a tuple is
    accessed depends on the *values* around it, not the plan shape."""

    def test_sum_zero_contribution_is_unaccessed(self):
        # patient 2 contributes age 0: SUM('11111') is identical with or
        # without that tuple, so Definition 2.3 says it was not accessed
        db = make_db([
            ("Alice", 40, "11111"),
            ("Bob", 0, "11111"),
            ("Carol", 25, "22222"),
        ])
        query = "SELECT zip, SUM(age) FROM patients GROUP BY zip"
        fast, truth = both_auditors(db, query)
        assert fast == truth
        assert 2 not in truth
        assert truth == {1, 3}

    def test_duplicated_minimum_masks_deletion(self):
        # two tuples tie the group minimum: deleting either leaves MIN
        # unchanged; the unique minimum of the other group is accessed
        db = make_db([
            ("Alice", 30, "11111"),
            ("Bob", 30, "11111"),
            ("Carol", 55, "11111"),
            ("Dave", 20, "22222"),
            ("Eve", 60, "22222"),
        ])
        query = "SELECT zip, MIN(age) FROM patients GROUP BY zip"
        fast, truth = both_auditors(db, query)
        assert fast == truth
        assert 1 not in truth and 2 not in truth
        assert 4 in truth
        # Carol never moves MIN('11111'); Eve never moves MIN('22222')…
        # but deleting Eve still *vanishes no group* while deleting Dave
        # changes its value — the rule must separate them
        assert 3 not in truth

    def test_duplicated_maximum_masks_deletion(self):
        db = make_db([
            ("Alice", 70, "11111"),
            ("Bob", 70, "11111"),
            ("Carol", 10, "11111"),
        ])
        query = "SELECT MAX(age) FROM patients"
        fast, truth = both_auditors(db, query)
        assert fast == truth == set()

    def test_avg_unchanged_by_deleting_the_mean(self):
        # ages 10, 20, 30: deleting the 20 leaves AVG at exactly 20.0, so
        # the middle tuple is unaccessed even though COUNT/SUM both change
        db = make_db([
            ("Alice", 10, "11111"),
            ("Bob", 20, "11111"),
            ("Carol", 30, "11111"),
        ])
        query = "SELECT AVG(age) FROM patients"
        fast, truth = both_auditors(db, query)
        assert fast == truth
        assert truth == {1, 3}
        assert 2 not in truth

    def test_count_star_touches_every_candidate(self):
        db = make_db([
            ("Alice", 10, "11111"),
            ("Bob", None, "22222"),
        ])
        fast, truth = both_auditors(db, "SELECT COUNT(*) FROM patients")
        assert fast == truth == {1, 2}

    def test_count_column_ignores_null_contributions(self):
        # COUNT(age) never sees Bob's NULL: deleting him changes nothing
        db = make_db([
            ("Alice", 10, "11111"),
            ("Bob", None, "22222"),
        ])
        fast, truth = both_auditors(db, "SELECT COUNT(age) FROM patients")
        assert fast == truth == {1}

    def test_sum_collapsing_to_null_is_accessed(self):
        # Alice holds the only non-NULL age: deleting her turns SUM into
        # NULL even though her removal changes the sum by... her value;
        # the subtle case is a *zero* sole contribution
        db = make_db([
            ("Alice", 0, "11111"),
            ("Bob", None, "11111"),
        ])
        fast, truth = both_auditors(db, "SELECT SUM(age) FROM patients")
        assert fast == truth == {1}

    def test_group_vanishing_is_accessed(self):
        # Carol's group has one row: deleting her removes an output row
        db = make_db([
            ("Alice", 40, "11111"),
            ("Bob", 0, "11111"),
            ("Carol", 25, "22222"),
        ])
        query = "SELECT zip, COUNT(*) FROM patients GROUP BY zip"
        fast, truth = both_auditors(db, query)
        assert fast == truth == {1, 2, 3}


# -- differential property: lineage ≡ deletion over random SPJA workloads

names = st.sampled_from(["Alice", "Bob", "Carol", "Dave", "Eve"])
zips = st.sampled_from(["11111", "22222", "33333"])
ages = st.one_of(st.none(), st.integers(min_value=0, max_value=90))
patient_rows = st.lists(st.tuples(names, ages, zips), max_size=12)
disease_rows = st.lists(
    st.tuples(
        st.integers(min_value=1, max_value=12),
        st.sampled_from(["flu", "cancer", "diabetes"]),
    ),
    max_size=15,
)

spja_queries = st.sampled_from([
    # select-project-join (pure lineage, no tail)
    "SELECT name FROM patients WHERE age > 30",
    "SELECT p.name, d.disease FROM patients p, disease d "
    "WHERE p.patientid = d.patientid",
    "SELECT p1.name, p2.name FROM patients p1, patients p2 "
    "WHERE p1.zip = p2.zip AND p1.patientid < p2.patientid",
    "SELECT DISTINCT zip FROM patients WHERE age IS NOT NULL",
    "SELECT name FROM patients ORDER BY age, name",
    # aggregate tails (incremental group re-derivation)
    "SELECT zip, COUNT(*) FROM patients GROUP BY zip",
    "SELECT zip, SUM(age), MIN(age) FROM patients GROUP BY zip",
    "SELECT zip, AVG(age) FROM patients GROUP BY zip "
    "HAVING COUNT(*) >= 2",
    "SELECT MAX(age) FROM patients",
    "SELECT COUNT(DISTINCT zip) FROM patients",
    "SELECT d.disease, COUNT(*) FROM patients p, disease d "
    "WHERE p.patientid = d.patientid GROUP BY d.disease",
    "SELECT zip, COUNT(*) FROM patients GROUP BY zip "
    "ORDER BY COUNT(*) DESC, zip LIMIT 2",
    # top-k tails (replay over surviving core rows)
    "SELECT name FROM patients ORDER BY age LIMIT 3",
    "SELECT name, age FROM patients WHERE age >= 0 "
    "ORDER BY age DESC LIMIT 4",
])


class TestLineageDeletionDifferential:
    @_SETTINGS
    @given(patients=patient_rows, sick=disease_rows, query=spja_queries)
    def test_identical_accessed_sets(self, patients, sick, query):
        db = Database()
        db.execute(
            "CREATE TABLE patients (patientid INT PRIMARY KEY, "
            "name VARCHAR, age INT, zip VARCHAR)"
        )
        db.execute("CREATE TABLE disease (patientid INT, disease VARCHAR)")
        for index, (name, age, zip_code) in enumerate(patients, start=1):
            age_sql = "NULL" if age is None else str(age)
            db.execute(
                f"INSERT INTO patients VALUES ({index}, '{name}', "
                f"{age_sql}, '{zip_code}')"
            )
        for patient_id, disease in sick:
            if patient_id <= len(patients):
                db.execute(
                    f"INSERT INTO disease VALUES ({patient_id}, "
                    f"'{disease}')"
                )
        db.execute(
            "CREATE AUDIT EXPRESSION audit_all AS SELECT * FROM patients "
            "FOR SENSITIVE TABLE patients, PARTITION BY patientid"
        )
        lineage = OfflineAuditor(db, mode="lineage")
        deletion = OfflineAuditor(db, mode="deletion")
        assert lineage.audit(query, "audit_all") == \
            deletion.audit(query, "audit_all")


class TestCertification:
    """Which plan shapes the lineage engine takes, and why it refuses."""

    def certification(self, db, query):
        return certify_plan(db.plan_query(query), "patients")

    def test_spj_certifies_with_empty_tail(self):
        db = make_db([("Alice", 30, "11111")])
        certification = self.certification(
            db, "SELECT name FROM patients WHERE age > 10"
        )
        assert isinstance(certification, Certification)
        assert certification.tail == ()

    def test_aggregate_certifies_with_tail(self):
        db = make_db([("Alice", 30, "11111")])
        certification = self.certification(
            db, "SELECT zip, COUNT(*) FROM patients GROUP BY zip"
        )
        assert isinstance(certification, Certification)
        assert certification.tail  # aggregate spine above the core

    def test_sensitive_subquery_refused(self):
        db = make_db([("Alice", 30, "11111")])
        refusal = self.certification(
            db,
            "SELECT name FROM patients WHERE age > "
            "(SELECT AVG(age) FROM patients)",
        )
        assert isinstance(refusal, str)
        assert "subquery" in refusal

    def test_insensitive_subquery_certifies(self):
        db = make_db([("Alice", 30, "11111")])
        db.execute("INSERT INTO disease VALUES (1, 'flu')")
        certification = self.certification(
            db,
            "SELECT name FROM patients WHERE patientid IN "
            "(SELECT patientid FROM disease)",
        )
        assert isinstance(certification, Certification)

    def test_uncertified_plan_falls_back_and_still_agrees(self):
        db = make_db([
            ("Alice", 30, "11111"),
            ("Bob", 45, "22222"),
        ])
        query = (
            "SELECT name FROM patients WHERE age > "
            "(SELECT AVG(age) FROM patients)"
        )
        auditor = OfflineAuditor(db)
        accessed = auditor.audit(query, "audit_all")
        assert auditor.last_mode == "deletion"
        assert not auditor.last_lineage_certified
        assert auditor.last_fallback_reason is not None
        assert auditor.last_deletion_runs > 0
        truth = OfflineAuditor(db, mode="deletion").audit(
            query, "audit_all"
        )
        assert accessed == truth


class TestSensitivityRules:
    """aggregate_sensitivity in isolation: True / False / None verdicts."""

    def spec(self, name, distinct=False):
        return AggregateSpec(name, None, distinct)

    def test_count_changes_iff_nonnull_removed(self):
        assert aggregate_sensitivity(self.spec("count"), [1], [1, 1], 3)
        assert not aggregate_sensitivity(
            self.spec("count"), [None], [1], 1
        )

    def test_sum_zero_delta_is_unchanged(self):
        assert not aggregate_sensitivity(self.spec("sum"), [0], [5], 5)
        assert aggregate_sensitivity(self.spec("sum"), [3], [5], 8)

    def test_sum_cancelling_removals_are_unchanged(self):
        # deleting contributions {-1, +1} together leaves the sum alone
        assert not aggregate_sensitivity(
            self.spec("sum"), [-1, 1], [5], 5
        )

    def test_sum_collapsing_to_null_changes(self):
        assert aggregate_sensitivity(self.spec("sum"), [0], [None], 0)

    def test_min_duplicated_extremum_is_unchanged(self):
        assert not aggregate_sensitivity(
            self.spec("min"), [2], [2, 7], 2
        )
        assert aggregate_sensitivity(self.spec("min"), [2], [7], 2)
        assert not aggregate_sensitivity(self.spec("min"), [7], [2], 2)

    def test_avg_is_undecided_by_rule(self):
        assert aggregate_sensitivity(self.spec("avg"), [2], [4], 3) is None

    def test_distinct_is_undecided_by_rule(self):
        assert aggregate_sensitivity(
            self.spec("count", distinct=True), [1], [1], 1
        ) is None


class TestParallelFallback:
    def test_worker_pool_matches_serial(self):
        rows = [
            (name, age, zip_code)
            for index, (name, age, zip_code) in enumerate(
                [("Alice", 30, "11111"), ("Bob", 45, "22222"),
                 ("Carol", 20, "11111"), ("Dave", 60, "33333"),
                 ("Eve", 50, "22222"), ("Frank", 35, "11111")]
            )
        ]
        db = make_db(rows)
        # sensitive subquery: uncertifiable, every candidate gets the
        # deletion test — exactly the path the pool parallelizes
        query = (
            "SELECT name FROM patients WHERE age > "
            "(SELECT AVG(age) FROM patients)"
        )
        serial = OfflineAuditor(db, mode="deletion", workers=1)
        pooled = OfflineAuditor(db, mode="deletion", workers=4)
        assert serial.audit(query, "audit_all") == \
            pooled.audit(query, "audit_all")
        assert serial.last_deletion_runs == pooled.last_deletion_runs
        assert pooled.last_workers == 4
        assert serial.last_workers == 1

    def test_database_knob_reaches_the_pool(self):
        db = make_db([
            ("Alice", 30, "11111"), ("Bob", 45, "22222"),
            ("Carol", 20, "33333"),
        ])
        db.offline_audit_workers = 2
        auditor = OfflineAuditor(db, mode="deletion")
        auditor.audit("SELECT name FROM patients", "audit_all")
        assert auditor.last_workers == 2


class TestModeDispatch:
    def test_auto_prefers_lineage(self):
        db = make_db([("Alice", 30, "11111"), ("Bob", 45, "22222")])
        auditor = OfflineAuditor(db)
        auditor.audit("SELECT name FROM patients", "audit_all")
        assert auditor.last_mode == "lineage"
        assert auditor.last_deletion_runs == 0
        assert auditor.last_deletion_runs_avoided == 2

    def test_deletion_mode_never_uses_lineage(self):
        db = make_db([("Alice", 30, "11111")])
        auditor = OfflineAuditor(db, mode="deletion")
        auditor.audit("SELECT name FROM patients", "audit_all")
        assert auditor.last_mode == "deletion"
        assert not auditor.last_lineage_certified
        assert auditor.last_deletion_runs == 1

    def test_database_mode_knob(self):
        db = make_db([("Alice", 30, "11111")])
        db.offline_audit_mode = "deletion"
        auditor = OfflineAuditor(db)
        auditor.audit("SELECT name FROM patients", "audit_all")
        assert auditor.last_mode == "deletion"

    def test_database_offline_audit_api(self):
        db = make_db([("Alice", 30, "11111"), ("Bob", 45, "22222")])
        accessed = db.offline_audit(
            "SELECT name FROM patients WHERE age > 40", "audit_all"
        )
        assert accessed == {2}
        assert db.offline_auditor.last_mode == "lineage"


class TestAuditorPlanLru:
    def test_hit_renews_entry(self):
        db = make_db([("Alice", 30, "11111")])
        auditor = OfflineAuditor(db)
        first = "SELECT name FROM patients"
        second = "SELECT zip FROM patients"
        auditor.audit(first, "audit_all")
        auditor.audit(second, "audit_all")
        assert list(auditor._plans)[-1][0] == second
        # a hit must move the entry to the MRU end (true LRU, not FIFO)
        auditor.audit(first, "audit_all")
        assert auditor.plan_cache_hits == 1
        assert list(auditor._plans)[-1][0] == first

    def test_capacity_evicts_least_recently_used(self):
        db = make_db([("Alice", 30, "11111")])
        auditor = OfflineAuditor(db)
        hot = "SELECT name FROM patients"
        auditor.audit(hot, "audit_all")
        for index in range(63):
            auditor.audit(
                f"SELECT name FROM patients WHERE age > {index}",
                "audit_all",
            )
        # the hot entry is the oldest *insertion*; renew it, then insert
        # one more — FIFO would evict the hot plan, LRU evicts age > 0
        auditor.audit(hot, "audit_all")
        auditor.audit(
            "SELECT name FROM patients WHERE age > 999", "audit_all"
        )
        assert len(auditor._plans) == 64
        keys = [key[0] for key in auditor._plans]
        assert hot in keys
        assert "SELECT name FROM patients WHERE age > 0" not in keys
