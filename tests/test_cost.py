"""Unit tests for the cardinality/cost model."""

import pytest

from repro import Database
from repro.optimizer.cost import CostModel
from repro.plan import logical as L


@pytest.fixture
def db():
    database = Database()
    database.execute(
        "CREATE TABLE big (id INT PRIMARY KEY, grp INT, val INT)"
    )
    database.execute("CREATE TABLE small (id INT PRIMARY KEY, tag VARCHAR)")
    for index in range(200):
        database.execute(
            f"INSERT INTO big VALUES ({index}, {index % 10}, {index})"
        )
    for index in range(10):
        database.execute(f"INSERT INTO small VALUES ({index}, 't{index}')")
    database.execute("ANALYZE")
    return database


def estimate(db, sql):
    model = CostModel(db.catalog)
    return model.estimate_rows(db.plan_query(sql))


class TestScanEstimates:
    def test_plain_scan_is_row_count(self, db):
        assert estimate(db, "SELECT * FROM big") == pytest.approx(200)

    def test_equality_uses_distinct_count(self, db):
        # grp has 10 distinct values over 200 rows -> ~20 rows
        assert estimate(db, "SELECT * FROM big WHERE grp = 3") == \
            pytest.approx(20, rel=0.2)

    def test_pk_equality_estimates_one_row(self, db):
        assert estimate(db, "SELECT * FROM big WHERE id = 5") == \
            pytest.approx(1, abs=0.5)

    def test_range_uses_minmax_span(self, db):
        # val spans 0..199; val > 149 is ~25% of rows
        assert estimate(db, "SELECT * FROM big WHERE val > 149") == \
            pytest.approx(50, rel=0.3)

    def test_conjunction_multiplies(self, db):
        single = estimate(db, "SELECT * FROM big WHERE grp = 3")
        double = estimate(
            db, "SELECT * FROM big WHERE grp = 3 AND val > 99"
        )
        assert double < single


class TestJoinEstimates:
    def test_equi_join_uses_distinct_counts(self, db):
        # big.grp (10 distinct) = small.id (10 distinct): 200*10/10 = 200
        joined = estimate(
            db, "SELECT * FROM big, small WHERE grp = small.id"
        )
        assert joined == pytest.approx(200, rel=0.3)

    def test_cross_join_is_product(self, db):
        assert estimate(db, "SELECT * FROM big, small") == \
            pytest.approx(2000)

    def test_limit_caps_estimate(self, db):
        assert estimate(db, "SELECT * FROM big LIMIT 7") == 7

    def test_aggregate_reduces(self, db):
        grouped = estimate(db, "SELECT grp, COUNT(*) FROM big GROUP BY grp")
        assert grouped < 200

    def test_global_aggregate_is_one(self, db):
        assert estimate(db, "SELECT COUNT(*) FROM big") == 1


class TestStatistics:
    def test_stats_refresh_on_version_change(self, db):
        before = db.catalog.statistics("small").row_count
        db.execute("INSERT INTO small VALUES (99, 'new')")
        after = db.catalog.statistics("small").row_count
        assert after == before + 1

    def test_column_stats_content(self, db):
        stats = db.catalog.statistics("big")
        grp = stats.columns["grp"]
        assert grp.distinct_count == 10
        assert grp.min_value == 0 and grp.max_value == 9
        assert grp.null_count == 0

    def test_selectivity_helpers(self, db):
        stats = db.catalog.statistics("big").columns["val"]
        assert stats.selectivity_equals(200) == pytest.approx(1 / 200)
        assert 0.0 <= stats.selectivity_range(100, 150) <= 1.0

    def test_null_counting(self, db):
        db.execute("CREATE TABLE holes (x INT)")
        db.execute("INSERT INTO holes VALUES (1), (NULL), (NULL)")
        stats = db.catalog.statistics("holes")
        assert stats.columns["x"].null_count == 2
        assert stats.columns["x"].distinct_count == 1
