"""Tests for the counting Bloom filter and the bloom-probed ID view."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.audit.bloom import CountingBloomFilter
from repro.errors import AuditError


class TestCountingBloomFilter:
    def test_members_always_probe_true(self):
        bloom = CountingBloomFilter(expected_items=100)
        for value in range(100):
            bloom.add(value)
        assert all(value in bloom for value in range(100))

    def test_false_positive_rate_is_bounded(self):
        bloom = CountingBloomFilter(
            expected_items=500, false_positive_rate=0.01
        )
        for value in range(500):
            bloom.add(value)
        false_positives = sum(
            1 for value in range(10_000, 30_000) if value in bloom
        )
        assert false_positives / 20_000 < 0.05  # headroom over 1 % target

    def test_discard_removes_membership(self):
        bloom = CountingBloomFilter(expected_items=50)
        bloom.add("alice")
        bloom.discard("alice")
        assert "alice" not in bloom
        assert len(bloom) == 0

    def test_discard_short_circuits_on_zero_cell(self):
        # a value with any zero cell is provably absent; counters of other
        # members must remain untouched by the early return
        bloom = CountingBloomFilter(expected_items=5000)
        bloom.add("alice")
        for probe in range(200):
            bloom.discard(f"ghost-{probe}")
        assert "alice" in bloom

    def test_shared_cells_survive_one_discard(self):
        bloom = CountingBloomFilter(expected_items=4)
        bloom.add("x")
        bloom.add("x")
        bloom.discard("x")
        assert "x" in bloom  # second insertion still counted

    def test_clear(self):
        bloom = CountingBloomFilter(expected_items=10)
        bloom.add(1)
        bloom.clear()
        assert 1 not in bloom

    def test_invalid_rate(self):
        with pytest.raises(ValueError):
            CountingBloomFilter(10, false_positive_rate=1.5)

    def test_size_scales_with_expectations(self):
        small = CountingBloomFilter(expected_items=10)
        large = CountingBloomFilter(expected_items=10_000)
        assert large.size_bytes > small.size_bytes

    @settings(max_examples=30, deadline=None)
    @given(
        members=st.sets(st.integers(0, 10_000), min_size=1, max_size=200),
        data=st.data(),
    )
    def test_no_false_negatives_property(self, members, data):
        """After adds and contract-respecting discards (only values that
        were added are removed), every remaining member probes true — the
        audit framework's one-sided guarantee."""
        removals = data.draw(
            st.sets(st.sampled_from(sorted(members)), max_size=50)
        )
        bloom = CountingBloomFilter(expected_items=len(members))
        for value in members:
            bloom.add(value)
        for value in removals:
            bloom.discard(value)
        for value in members - removals:
            assert value in bloom


class TestBloomIdView:
    @pytest.fixture
    def bloom_db(self, patients_db):
        patients_db.audit_manager.probe_structure = "bloom"
        patients_db.execute(
            "CREATE AUDIT EXPRESSION audit_alice AS "
            "SELECT * FROM patients WHERE name = 'Alice' "
            "FOR SENSITIVE TABLE patients, PARTITION BY patientid"
        )
        return patients_db

    def test_accesses_still_detected(self, bloom_db):
        result = bloom_db.execute(
            "SELECT * FROM patients WHERE name = 'Alice'"
        )
        assert 1 in result.accessed["audit_alice"]

    def test_exact_ids_still_available(self, bloom_db):
        view = bloom_db.audit_manager.view("audit_alice")
        assert view.ids() == frozenset({1})
        assert view.probe_structure == "bloom"

    def test_maintenance_updates_bloom(self, bloom_db):
        bloom_db.execute(
            "INSERT INTO patients VALUES (9, 'Alice', 33, '98109')"
        )
        result = bloom_db.execute(
            "SELECT * FROM patients WHERE patientid = 9"
        )
        assert 9 in result.accessed["audit_alice"]
        bloom_db.execute("DELETE FROM patients WHERE patientid = 9")
        bloom_db.execute("INSERT INTO patients VALUES (9, 'Zed', 33, 'x')")
        result = bloom_db.execute(
            "SELECT * FROM patients WHERE patientid = 9"
        )
        assert 9 not in result.accessed.get("audit_alice", frozenset())

    def test_refresh_rebuilds_bloom(self, bloom_db):
        view = bloom_db.audit_manager.view("audit_alice")
        view.refresh()
        assert 1 in view.live_id_set

    def test_probe_size_reported(self, bloom_db):
        view = bloom_db.audit_manager.view("audit_alice")
        assert view.probe_size_bytes > 0

    def test_invalid_probe_structure(self, patients_db):
        patients_db.audit_manager.probe_structure = "cuckoo"
        with pytest.raises(AuditError):
            patients_db.execute(
                "CREATE AUDIT EXPRESSION a AS SELECT * FROM patients "
                "FOR SENSITIVE TABLE patients, PARTITION BY patientid"
            )

    def test_no_false_negatives_vs_offline(self, bloom_db):
        from repro import OfflineAuditor

        query = (
            "SELECT p.name FROM patients p, disease d "
            "WHERE p.patientid = d.patientid AND d.disease = 'cancer'"
        )
        truth = OfflineAuditor(bloom_db).audit(query, "audit_alice")
        online = bloom_db.execute(query).accessed.get(
            "audit_alice", frozenset()
        )
        assert truth <= online
