"""Tests for the greedy join-order pass."""

import pytest

from repro.plan import logical as L


@pytest.fixture
def chain_db(db):
    """A 4-table FK chain with very different cardinalities."""
    db.execute("CREATE TABLE tiny (id INT PRIMARY KEY, tag VARCHAR)")
    db.execute(
        "CREATE TABLE mid (id INT PRIMARY KEY, tiny_id INT, v INT)"
    )
    db.execute(
        "CREATE TABLE big (id INT PRIMARY KEY, mid_id INT, w INT)"
    )
    db.execute("CREATE TABLE huge (id INT PRIMARY KEY, big_id INT)")
    for index in range(3):
        db.execute(f"INSERT INTO tiny VALUES ({index}, 't{index}')")
    for index in range(30):
        db.execute(
            f"INSERT INTO mid VALUES ({index}, {index % 3}, {index})"
        )
    for index in range(120):
        db.execute(
            f"INSERT INTO big VALUES ({index}, {index % 30}, {index})"
        )
    for index in range(240):
        db.execute(f"INSERT INTO huge VALUES ({index}, {index % 120})")
    db.execute("ANALYZE")
    return db


def scans_in_order(plan):
    return [
        node.alias for node in plan.walk() if isinstance(node, L.Scan)
    ]


QUERY = (
    "SELECT tiny.tag, huge.id FROM huge, big, mid, tiny "
    "WHERE huge.big_id = big.id AND big.mid_id = mid.id "
    "AND mid.tiny_id = tiny.id AND tiny.tag = 't1'"
)


class TestReordering:
    def test_starts_from_most_selective_table(self, chain_db):
        plan = chain_db.plan_query(QUERY)
        order = scans_in_order(plan)
        # the pre-order walk of a left-deep tree lists the first-joined
        # table first: the filtered tiny table should lead
        assert order[0] == "tiny"

    def test_results_unchanged_by_reordering(self, chain_db):
        enabled = chain_db.execute(QUERY)
        chain_db._optimizer.join_reorder = False
        try:
            disabled = chain_db.execute(QUERY)
        finally:
            chain_db._optimizer.join_reorder = True
        assert sorted(enabled.rows) == sorted(disabled.rows)
        assert enabled.columns == disabled.columns

    def test_column_order_preserved(self, chain_db):
        result = chain_db.execute(
            "SELECT * FROM huge, tiny WHERE huge.big_id = tiny.id"
        )
        # huge columns first, tiny columns after — FROM order, even if
        # execution reordered the join
        assert result.columns == ("id", "big_id", "id", "tag")

    def test_cross_product_falls_back_gracefully(self, chain_db):
        result = chain_db.execute(
            "SELECT COUNT(*) FROM tiny t1, tiny t2, tiny t3"
        )
        assert result.scalar() == 27

    def test_disconnected_clusters(self, chain_db):
        # two independent join pairs in one FROM list
        result = chain_db.execute(
            "SELECT COUNT(*) FROM mid, tiny, big, huge "
            "WHERE mid.tiny_id = tiny.id AND huge.big_id = big.id"
        )
        assert result.scalar() == 30 * 240

    def test_aggregates_above_reordered_joins(self, chain_db):
        result = chain_db.execute(
            "SELECT tiny.tag, COUNT(*) FROM huge, big, mid, tiny "
            "WHERE huge.big_id = big.id AND big.mid_id = mid.id "
            "AND mid.tiny_id = tiny.id GROUP BY tiny.tag ORDER BY tiny.tag"
        )
        assert [row[0] for row in result.rows] == ["t0", "t1", "t2"]
        assert sum(row[1] for row in result.rows) == 240

    def test_correlated_subquery_conjunct_skips_cluster(self, chain_db):
        """Clusters with subquery conjuncts keep their FROM order."""
        query = (
            "SELECT COUNT(*) FROM huge, big, mid "
            "WHERE huge.big_id = big.id AND big.mid_id = mid.id "
            "AND EXISTS (SELECT 1 FROM tiny WHERE tiny.id = mid.tiny_id)"
        )
        chain_db._optimizer.join_reorder = False
        try:
            expected = chain_db.execute(query).scalar()
        finally:
            chain_db._optimizer.join_reorder = True
        assert chain_db.execute(query).scalar() == expected

    def test_audit_placement_survives_reordering(self, chain_db):
        chain_db.execute(
            "CREATE AUDIT EXPRESSION audit_tiny AS SELECT * FROM tiny "
            "FOR SENSITIVE TABLE tiny, PARTITION BY id"
        )
        result = chain_db.execute(QUERY)
        # only tiny rows reachable through the join chain are audited;
        # tag = 't1' selects exactly id 1
        assert result.accessed["audit_tiny"] == frozenset({1})

    def test_tpch_q8_original_from_order(self, tpch_db):
        from repro.tpch import QUERIES, QUERY_PARAMETERS

        result = tpch_db.execute(QUERIES["Q8"], QUERY_PARAMETERS["Q8"])
        tpch_db._optimizer.join_reorder = False
        try:
            expected = tpch_db.execute(
                QUERIES["Q8"], QUERY_PARAMETERS["Q8"]
            )
        finally:
            tpch_db._optimizer.join_reorder = True
        assert result.rows == expected.rows
