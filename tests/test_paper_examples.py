"""Paper conformance: every worked example, reproduced verbatim.

One test (or small group) per numbered example in the paper, each set up
with the paper's own data where it gives any. Overlapping machinery is
exercised elsewhere; this file is the audit trail from paper text to
implementation behaviour.
"""

import pytest

from repro import (
    Database,
    HEURISTIC_HCN,
    HEURISTIC_LEAF,
    OfflineAuditor,
    StaticAnalysisAuditor,
)
from repro.audit.placement import audit_operators, instrument_plan
from repro.plan import logical as L


@pytest.fixture
def paper_db():
    """Patients(PatientID, Name, Age, Zip) and Disease(PatientID, Disease)."""
    db = Database()
    db.execute(
        "CREATE TABLE patients (patientid INT PRIMARY KEY, "
        "name VARCHAR, age INT, zip VARCHAR)"
    )
    db.execute("CREATE TABLE disease (patientid INT, disease VARCHAR)")
    db.execute(
        "INSERT INTO patients VALUES (1, 'Alice', 40, '98101'), "
        "(2, 'Bob', 25, '98102'), (3, 'Carol', 33, '98103')"
    )
    db.execute(
        "INSERT INTO disease VALUES (1, 'cancer'), (2, 'flu'), (3, 'flu')"
    )
    return db


class TestExample12_InferenceQueries:
    """Both Example 1.2 queries reveal whether Alice has cancer; the
    second never outputs her row, only probes it via EXISTS."""

    DIRECT = (
        "SELECT * FROM patients p, disease d "
        "WHERE p.patientid = d.patientid AND name = 'Alice' "
        "AND disease = 'cancer'"
    )
    PROBE = (
        "SELECT 1 FROM patients WHERE EXISTS "
        "(SELECT * FROM patients p, disease d "
        "WHERE p.patientid = d.patientid AND name = 'Alice' "
        "AND disease = 'cancer')"
    )

    def test_both_queries_access_alice(self, paper_db):
        paper_db.execute(
            "CREATE AUDIT EXPRESSION audit_alice AS "
            "SELECT * FROM patients WHERE name = 'Alice' "
            "FOR SENSITIVE TABLE patients, PARTITION BY patientid"
        )
        for query in (self.DIRECT, self.PROBE):
            result = paper_db.execute(query)
            assert 1 in result.accessed["audit_alice"], query

    def test_output_based_triggering_would_miss_the_probe(self, paper_db):
        """The probe query's output is just '1' rows — the paper's point
        that triggering on query output cannot work."""
        result = paper_db.execute(self.PROBE)
        assert all(row == (1,) for row in result.rows)


class TestExamples21_22_AuditExpressions:
    def test_example_2_1_audit_alice(self, paper_db):
        paper_db.execute(
            "CREATE AUDIT EXPRESSION audit_alice AS SELECT * "
            "FROM patients WHERE name = 'Alice' "
            "FOR SENSITIVE TABLE patients, PARTITION BY patientid"
        )
        view = paper_db.audit_manager.view("audit_alice")
        assert view.ids() == frozenset({1})

    def test_example_2_2_audit_cancer(self, paper_db):
        paper_db.execute(
            "CREATE AUDIT EXPRESSION audit_cancer AS SELECT p.* "
            "FROM patients p, disease d "
            "WHERE p.patientid = d.patientid AND disease = 'cancer' "
            "FOR SENSITIVE TABLE patients, PARTITION BY patientid"
        )
        view = paper_db.audit_manager.view("audit_cancer")
        assert view.ids() == frozenset({1})


class TestExample24_DeletionInfluence:
    def test_alice_influences_despite_absent_from_output(self, paper_db):
        paper_db.execute(
            "CREATE AUDIT EXPRESSION audit_alice AS SELECT * "
            "FROM patients WHERE name = 'Alice' "
            "FOR SENSITIVE TABLE patients, PARTITION BY patientid"
        )
        accessed = OfflineAuditor(paper_db).audit(
            TestExample12_InferenceQueries.PROBE, "audit_alice"
        )
        assert accessed == {1}


class TestExample31_PlacementChoices:
    """Two patients named Alice, one with flu (Figure 2)."""

    @pytest.fixture
    def fig2_db(self, paper_db):
        paper_db.execute(
            "INSERT INTO patients VALUES (4, 'Alice', 29, '98104')"
        )
        paper_db.execute("INSERT INTO disease VALUES (4, 'flu')")
        paper_db.execute(
            "CREATE AUDIT EXPRESSION audit_alice AS SELECT * "
            "FROM patients WHERE name = 'Alice' "
            "FOR SENSITIVE TABLE patients, PARTITION BY patientid"
        )
        return paper_db

    QUERY = (
        "SELECT p.patientid, name, age, zip FROM patients p, disease d "
        "WHERE p.patientid = d.patientid AND d.disease = 'flu'"
    )

    def test_scan_level_operator_flags_both_alices(self, fig2_db):
        fig2_db.audit_manager.heuristic = HEURISTIC_LEAF
        accessed = fig2_db.execute(self.QUERY).accessed["audit_alice"]
        assert accessed == frozenset({1, 4})  # patient 1: false positive

    def test_join_output_operator_flags_only_the_flu_alice(self, fig2_db):
        fig2_db.audit_manager.heuristic = HEURISTIC_HCN
        accessed = fig2_db.execute(self.QUERY).accessed["audit_alice"]
        assert accessed == frozenset({4})

    def test_false_positive_count_independent_of_join_algorithm(
        self, fig2_db
    ):
        """§III: 'the number of false positives is independent of the
        physical operators used in the query plan'."""
        counts = set()
        for strategy in ("hash", "index-nl"):
            fig2_db.join_strategy = strategy
            accessed = fig2_db.execute(self.QUERY).accessed["audit_alice"]
            counts.add(accessed)
        assert len(counts) == 1


class TestExample38_PlacementShapes:
    @pytest.fixture
    def audit_all(self, paper_db):
        paper_db.execute(
            "CREATE AUDIT EXPRESSION audit_all AS SELECT * FROM patients "
            "FOR SENSITIVE TABLE patients, PARTITION BY patientid"
        )
        return paper_db

    def test_38a_single_operator_at_plan_top(self, audit_all):
        plan = audit_all.plan_query(TestExample31_PlacementChoices.QUERY)
        instrumented = instrument_plan(
            plan, audit_all.audit_manager.targets(), HEURISTIC_HCN
        )
        assert isinstance(instrumented, L.Audit)
        assert len(audit_operators(instrumented)) == 1

    def test_38b_single_operator_below_group_by(self, audit_all):
        plan = audit_all.plan_query(
            "SELECT age, COUNT(d.disease) FROM patients p, disease d "
            "WHERE p.patientid = d.patientid AND disease = 'flu' "
            "GROUP BY age"
        )
        instrumented = instrument_plan(
            plan, audit_all.audit_manager.targets(), HEURISTIC_HCN
        )
        aggregates = [
            node for node in instrumented.walk()
            if isinstance(node, L.Aggregate)
        ]
        assert isinstance(aggregates[0].child, L.Audit)

    def test_38c_two_operators_one_inside_subquery(self, audit_all):
        plan = audit_all.plan_query(
            "SELECT * FROM patients p1 WHERE name IN "
            "(SELECT name FROM patients p2 WHERE p1.zip <> p2.zip)"
        )
        instrumented = instrument_plan(
            plan, audit_all.audit_manager.targets(), HEURISTIC_HCN
        )
        operators = audit_operators(instrumented)
        assert len(operators) == 2
        # exactly one lives in the instrumented top-level tree; the other
        # is confined to the subquery plan
        top_level = [
            node for node in instrumented.walk()
            if isinstance(node, L.Audit)
        ]
        assert len(top_level) == 1


class TestExamples41_42_OptimizerInterference:
    """SQL Server's rules miscompiled audit predicates (empty-result and
    top-1 simplifications). Audit operators here are opaque plan nodes, so
    the equivalent queries must execute correctly while still auditing."""

    @pytest.fixture
    def guarded(self, paper_db):
        paper_db.execute(
            "CREATE AUDIT EXPRESSION audit_alice AS SELECT * "
            "FROM patients WHERE patientid = 1 "
            "FOR SENSITIVE TABLE patients, PARTITION BY patientid"
        )
        return paper_db

    def test_41_contradiction_not_forced_empty(self, guarded):
        """Querying patient 7777 while auditing 1234-style: the user
        predicate and the audit ID set differ; the optimizer must not
        conclude a contradiction. Patient 2 exists, Alice is audited."""
        result = guarded.execute(
            "SELECT * FROM patients WHERE patientid = 2"
        )
        assert len(result.rows) == 1  # NOT the empty set
        assert result.accessed.get("audit_alice", frozenset()) == frozenset()

    def test_41_audited_row_still_returned(self, guarded):
        result = guarded.execute(
            "SELECT * FROM patients WHERE patientid = 1"
        )
        assert len(result.rows) == 1
        assert result.accessed["audit_alice"] == frozenset({1})

    def test_42_correlated_subquery_not_simplified(self, guarded):
        """The Example 4.2 shape: a correlated self-join subquery under
        audit must keep its semantics (empty here: zips are distinct per
        patient, so no patient shares a name across zips) — SQL Server's
        rules wrongly simplified it to a top-1 query."""
        query = (
            "SELECT * FROM patients p1 WHERE patientid = 1 AND name IN "
            "(SELECT name FROM patients p2 WHERE p1.zip <> p2.zip)"
        )
        result = guarded.execute(query)
        assert result.rows == []
        # and the online verdict agrees exactly with the ground truth:
        # the empty result does not change when Alice's row is deleted,
        # so nothing was accessed (Definition 2.3)
        truth = OfflineAuditor(guarded).audit(query, "audit_alice")
        assert truth == set()
        assert result.accessed.get("audit_alice", frozenset()) == truth


class TestSectionIIC_TriggerExamples:
    def test_log_alice_accesses(self, paper_db):
        """The paper's Log_Alice_Accesses trigger, verbatim modulo
        function spellings."""
        paper_db.execute(
            "CREATE TABLE log (ts VARCHAR, uid VARCHAR, sqltext VARCHAR, "
            "patientid INT)"
        )
        paper_db.execute(
            "CREATE AUDIT EXPRESSION audit_alice AS SELECT * "
            "FROM patients WHERE name = 'Alice' "
            "FOR SENSITIVE TABLE patients, PARTITION BY patientid"
        )
        paper_db.execute(
            "CREATE TRIGGER log_alice_accesses ON ACCESS TO audit_alice AS "
            "INSERT INTO log SELECT cast_varchar(now()), user_id(), "
            "sql_text(), patientid FROM accessed"
        )
        paper_db.execute("SELECT * FROM patients WHERE age >= 40")
        entries = paper_db.execute("SELECT patientid FROM log")
        assert entries.rows == [(1,)]

    def test_log_cancer_dept_accesses(self, paper_db):
        """The Log_Cancer_Dept_Accesses trigger with the Departments
        join and DISTINCT."""
        paper_db.execute(
            "CREATE TABLE departments (patientid INT, deptid INT)"
        )
        paper_db.execute(
            "INSERT INTO departments VALUES (1, 7), (1, 7), (2, 9)"
        )
        paper_db.execute("CREATE TABLE log (uid VARCHAR, deptid INT)")
        paper_db.execute(
            "CREATE AUDIT EXPRESSION audit_cancer AS SELECT p.* "
            "FROM patients p, disease d WHERE p.patientid = d.patientid "
            "AND disease = 'cancer' "
            "FOR SENSITIVE TABLE patients, PARTITION BY patientid"
        )
        paper_db.execute(
            "CREATE TRIGGER log_cancer_dept ON ACCESS TO audit_cancer AS "
            "INSERT INTO log SELECT DISTINCT user_id(), d.deptid "
            "FROM accessed a, departments d "
            "WHERE a.patientid = d.patientid"
        )
        paper_db.execute("SELECT name FROM patients")
        entries = paper_db.execute("SELECT deptid FROM log")
        assert entries.rows == [(7,)]  # DISTINCT collapsed the duplicate

    def test_notify_cascade(self, paper_db):
        """The Notify trigger: SELECT trigger inserts, AFTER INSERT
        trigger counts distinct patients and alerts."""
        paper_db.execute(
            "CREATE TABLE log (day VARCHAR, uid VARCHAR, patientid INT)"
        )
        paper_db.execute(
            "CREATE AUDIT EXPRESSION audit_all AS SELECT * FROM patients "
            "FOR SENSITIVE TABLE patients, PARTITION BY patientid"
        )
        paper_db.execute(
            "CREATE TRIGGER record ON ACCESS TO audit_all AS "
            "INSERT INTO log SELECT 'today', user_id(), patientid "
            "FROM accessed"
        )
        paper_db.execute(
            "CREATE TRIGGER notify ON log AFTER INSERT AS "
            "IF ((SELECT COUNT(DISTINCT patientid) FROM log "
            "WHERE day = new.day AND uid = new.uid) > 2) SEND EMAIL"
        )
        paper_db.execute("SELECT * FROM patients")
        assert paper_db.notifications  # 3 distinct patients > 2


class TestExample61_StaticAnalysis:
    @pytest.fixture
    def dept_db(self, db):
        db.execute(
            "CREATE TABLE departmentnames (deptid INT PRIMARY KEY, "
            "deptname VARCHAR)"
        )
        db.execute(
            "INSERT INTO departmentnames VALUES (10, 'Oncology'), "
            "(20, 'Dermatology')"
        )
        db.execute(
            "CREATE AUDIT EXPRESSION audit_derm AS SELECT * "
            "FROM departmentnames WHERE deptname = 'Dermatology' "
            "FOR SENSITIVE TABLE departmentnames, PARTITION BY deptid"
        )
        return db

    def test_the_equivalent_queries_disagree_under_fga(self, dept_db):
        analyzer = StaticAnalysisAuditor(dept_db)
        by_name = "SELECT * FROM departmentnames WHERE deptname = 'Oncology'"
        by_id = "SELECT * FROM departmentnames WHERE deptid = 10"
        # identical result sets...
        assert dept_db.execute(by_name).rows == dept_db.execute(by_id).rows
        # ...but FGA flags only the rewritten one
        assert not analyzer.flags_query(by_name, "audit_derm")
        assert analyzer.flags_query(by_id, "audit_derm")

    def test_audit_operator_flags_neither(self, dept_db):
        for query in (
            "SELECT * FROM departmentnames WHERE deptname = 'Oncology'",
            "SELECT * FROM departmentnames WHERE deptid = 10",
        ):
            accessed = dept_db.execute(query).accessed
            assert accessed.get("audit_derm", frozenset()) == frozenset()
