"""Unit tests for constant folding."""

import datetime

from repro.expr.nodes import Binary, ColumnRef, Literal
from repro.optimizer.folding import fold_constants
from repro.sql.parser import parse_expression


def fold(text):
    return fold_constants(parse_expression(text))


class TestArithmeticFolding:
    def test_numbers(self):
        assert fold("1 + 2 * 3") == Literal(7)

    def test_dates(self):
        assert fold("DATE '1995-01-01' + INTERVAL '3' MONTH") == \
            Literal(datetime.date(1995, 4, 1))

    def test_comparisons(self):
        assert fold("2 > 1") == Literal(True)
        assert fold("'a' = 'b'") == Literal(False)

    def test_between_and_in(self):
        assert fold("5 BETWEEN 1 AND 10") == Literal(True)
        assert fold("5 IN (1, 2, 3)") == Literal(False)

    def test_like_and_is_null(self):
        assert fold("'abc' LIKE 'a%'") == Literal(True)
        assert fold("NULL IS NULL") == Literal(True)

    def test_division_by_zero_left_in_place(self):
        folded = fold("1 / 0")
        assert isinstance(folded, Binary)  # must fail at runtime instead

    def test_null_propagation(self):
        assert fold("1 + NULL") == Literal(None)


class TestBooleanShortcuts:
    def test_false_and_anything(self):
        folded = fold("FALSE AND x = 1")
        assert folded == Literal(False)

    def test_true_or_anything(self):
        assert fold("TRUE OR x = 1") == Literal(True)

    def test_true_and_reduces_to_operand(self):
        folded = fold("TRUE AND x = 1")
        assert isinstance(folded, Binary) and folded.op == "="

    def test_false_or_reduces_to_operand(self):
        folded = fold("FALSE OR x = 1")
        assert isinstance(folded, Binary) and folded.op == "="

    def test_one_equals_one_conjunct(self):
        # the "1 = 1 AND ..." pattern from generated SQL folds away
        folded = fold("1 = 1 AND x > 2")
        assert isinstance(folded, Binary) and folded.op == ">"


class TestNonConstantsUntouched:
    def test_column_reference_kept(self):
        folded = fold("x + 1")
        assert isinstance(folded, Binary)
        assert folded.left == ColumnRef("x")

    def test_partial_folding(self):
        folded = fold("x + (2 * 3)")
        assert folded == Binary("+", ColumnRef("x"), Literal(6))


class TestEndToEnd:
    def test_constant_false_filter_yields_empty(self, patients_db):
        result = patients_db.execute(
            "SELECT name FROM patients WHERE 1 = 2"
        )
        assert result.rows == []

    def test_constant_true_filter_is_noop(self, patients_db):
        result = patients_db.execute(
            "SELECT COUNT(*) FROM patients WHERE 1 = 1 AND age IS NOT NULL"
        )
        assert result.scalar() == 5
