"""Unit tests for aggregate accumulators."""

import pytest

from repro.errors import ExecutionError
from repro.expr.aggregates import is_aggregate_name, make_accumulator


class TestAccumulators:
    def test_count_ignores_nulls(self):
        acc = make_accumulator("count")
        for value in (1, None, "x", None):
            acc.add(value)
        assert acc.result() == 2

    def test_count_empty_is_zero(self):
        assert make_accumulator("count").result() == 0

    def test_count_distinct(self):
        acc = make_accumulator("count", distinct=True)
        for value in (1, 2, 2, None, 1):
            acc.add(value)
        assert acc.result() == 2

    def test_sum(self):
        acc = make_accumulator("sum")
        for value in (1, 2.5, None):
            acc.add(value)
        assert acc.result() == 3.5

    def test_sum_empty_is_null(self):
        assert make_accumulator("sum").result() is None

    def test_sum_rejects_strings(self):
        acc = make_accumulator("sum")
        with pytest.raises(ExecutionError):
            acc.add("x")

    def test_avg(self):
        acc = make_accumulator("avg")
        for value in (2, 4, None):
            acc.add(value)
        assert acc.result() == 3.0

    def test_avg_empty_is_null(self):
        assert make_accumulator("avg").result() is None

    def test_min_max(self):
        low = make_accumulator("min")
        high = make_accumulator("max")
        for value in (5, None, 2, 8):
            low.add(value)
            high.add(value)
        assert low.result() == 2
        assert high.result() == 8

    def test_min_empty_is_null(self):
        assert make_accumulator("min").result() is None

    def test_sum_distinct(self):
        acc = make_accumulator("sum", distinct=True)
        for value in (3, 3, 4):
            acc.add(value)
        assert acc.result() == 7

    def test_unknown_aggregate(self):
        with pytest.raises(ExecutionError):
            make_accumulator("median")

    def test_is_aggregate_name(self):
        assert is_aggregate_name("COUNT")
        assert is_aggregate_name("sum")
        assert not is_aggregate_name("substring")
