"""Tests for the interactive shell."""

import io

from repro.database import Database
from repro.shell import Shell


def run_script(lines, database=None):
    stdout = io.StringIO()
    shell = Shell(database or Database(user_id="shell"), stdout=stdout)
    shell.run(io.StringIO("\n".join(lines) + "\n"))
    return stdout.getvalue()


class TestStatements:
    def test_create_insert_select(self):
        output = run_script([
            "CREATE TABLE t (a INT, b VARCHAR);",
            "INSERT INTO t VALUES (1, 'x'), (2, 'y');",
            "SELECT * FROM t ORDER BY a;",
        ])
        assert "ok (2 rows affected)" in output
        assert "a | b" in output
        assert "1 | x" in output
        assert "(2 rows)" in output

    def test_multiline_statement(self):
        output = run_script([
            "CREATE TABLE t (a INT);",
            "SELECT *",
            "FROM t;",
        ])
        assert "(0 rows)" in output

    def test_error_reported_not_fatal(self):
        output = run_script([
            "SELECT * FROM missing;",
            "SELECT 1 + 1;",
        ])
        assert "error:" in output
        assert "2" in output

    def test_null_rendering(self):
        output = run_script(["SELECT NULL;"])
        assert "NULL" in output

    def test_accessed_shown(self):
        db = Database(user_id="shell")
        db.execute("CREATE TABLE p (pid INT PRIMARY KEY, n VARCHAR)")
        db.execute("INSERT INTO p VALUES (1, 'Alice')")
        db.execute(
            "CREATE AUDIT EXPRESSION a AS SELECT * FROM p "
            "FOR SENSITIVE TABLE p, PARTITION BY pid"
        )
        output = run_script(["SELECT * FROM p;"], db)
        assert "ACCESSED[a]: 1" in output


class TestDotCommands:
    def test_help(self):
        assert ".tables" in run_script([".help"])

    def test_tables_and_schema(self):
        output = run_script([
            "CREATE TABLE t (a INT PRIMARY KEY, b VARCHAR NOT NULL);",
            ".tables",
            ".schema t",
        ])
        assert "t  (0 rows)" in output
        assert "PRIMARY KEY" in output
        assert "NOT NULL" in output

    def test_schema_unknown_table(self):
        assert "error:" in run_script([".schema nope"])

    def test_audit_summary(self):
        db = Database(user_id="shell")
        db.execute("CREATE TABLE p (pid INT PRIMARY KEY)")
        db.execute(
            "CREATE AUDIT EXPRESSION a AS SELECT * FROM p "
            "FOR SENSITIVE TABLE p, PARTITION BY pid"
        )
        output = run_script([".audit"], db)
        assert "a: table=p partition_by=pid" in output
        assert "heuristic: highest-commutative-node" in output

    def test_audit_summary_empty(self):
        assert "no audit expressions" in run_script([".audit"])

    def test_explain(self):
        output = run_script([
            "CREATE TABLE t (a INT);",
            ".explain SELECT * FROM t",
        ])
        assert "physical" in output

    def test_user_switch(self):
        output = run_script([".user alice", ".user"])
        assert output.count("user: alice") == 2

    def test_heuristic_switch(self):
        output = run_script([".heuristic leaf-node"])
        assert "placement heuristic: leaf-node" in output

    def test_notifications(self):
        db = Database(user_id="shell")
        db.notifications.append("ping")
        output = run_script([".notifications", ".notifications"], db)
        assert "ping" in output
        assert "(0 notifications)" in output  # cleared after first show

    def test_unknown_command(self):
        assert "unknown command" in run_script([".frobnicate"])

    def test_quit_stops_processing(self):
        output = run_script([".quit", "SELECT 1;"])
        assert "(1 rows)" not in output


class TestUserAttribution:
    def _audited_db(self) -> Database:
        db = Database(user_id="shell")
        db.execute("CREATE TABLE p (pid INT PRIMARY KEY, n VARCHAR)")
        db.execute("CREATE TABLE log (uid VARCHAR, pid INT)")
        db.execute("INSERT INTO p VALUES (1, 'Alice')")
        db.execute(
            "CREATE AUDIT EXPRESSION a AS SELECT * FROM p "
            "FOR SENSITIVE TABLE p, PARTITION BY pid"
        )
        db.execute(
            "CREATE TRIGGER t ON ACCESS TO a AS "
            "INSERT INTO log SELECT user_id(), pid FROM accessed"
        )
        return db

    def test_user_switch_does_not_mutate_base_identity(self):
        """.user impersonates via the thread-local override; the engine's
        process-wide base identity must stay untouched (other threads —
        e.g. async trigger batches — would otherwise inherit it)."""
        db = self._audited_db()
        run_script([".user dr_house", "SELECT * FROM p;"], db)
        assert db.session.user_id == "shell"
        db.drain_triggers()
        assert db.execute("SELECT uid FROM log").rows == [("dr_house",)]

    def test_async_firings_attribute_to_shell_user(self):
        db = self._audited_db()
        db.trigger_mode = "async"
        run_script([".user auditor", "SELECT * FROM p;"], db)
        db.drain_triggers()
        assert db.execute("SELECT uid FROM log").rows == [("auditor",)]
        db.close()


class TestRemoteShell:
    def test_remote_statements_and_user_switch(self):
        from repro.server.client import Connection

        db = Database(user_id="server")
        db.execute("CREATE TABLE p (pid INT PRIMARY KEY, n VARCHAR)")
        db.execute("CREATE TABLE log (uid VARCHAR, pid INT)")
        db.execute("INSERT INTO p VALUES (1, 'Alice')")
        db.execute(
            "CREATE AUDIT EXPRESSION a AS SELECT * FROM p "
            "FOR SENSITIVE TABLE p, PARTITION BY pid"
        )
        db.execute(
            "CREATE TRIGGER t ON ACCESS TO a AS "
            "INSERT INTO log SELECT user_id(), pid FROM accessed"
        )
        with db.serve(close_database=False) as server:
            conn = Connection(server.host, server.port, user_id="alice")
            try:
                output = run_script(
                    [
                        "SELECT * FROM p;",
                        ".user bob",
                        "SELECT n FROM p;",
                        ".tables",
                    ],
                    conn,
                )
            finally:
                conn.close()
        assert "ACCESSED[a]: 1" in output
        assert "user: bob" in output
        assert "needs the in-process engine" in output
        db.drain_triggers()
        rows = sorted(db.execute("SELECT uid, pid FROM log").rows)
        assert rows == [("alice", 1), ("bob", 1)]


class TestMain:
    def test_main_with_tpch(self, capsys, monkeypatch):
        import io as _io
        import sys

        from repro import shell as shell_module

        monkeypatch.setattr(
            sys, "stdin", _io.StringIO(".tables\n.quit\n")
        )
        code = shell_module.main(["--tpch", "0.0005"])
        captured = capsys.readouterr()
        assert code == 0
        assert "loaded TPC-H" in captured.out
        assert "customer" in captured.out
