"""Unit tests for the benchmark harness (table rendering, fixtures)."""

import pytest

from repro.bench.harness import (
    BenchmarkFixture,
    measure_median,
    overhead_percent,
    render_table,
)


class TestHelpers:
    def test_overhead_percent(self):
        assert overhead_percent(1.1, 1.0) == pytest.approx(10.0)
        assert overhead_percent(0.9, 1.0) == 0.0  # clamped: noise floor
        assert overhead_percent(1.0, 0.0) == 0.0

    def test_measure_median_returns_positive(self):
        assert measure_median(lambda: sum(range(100)), repeats=3) >= 0.0

    def test_render_table_alignment(self):
        text = render_table(
            "My Title", ("col_a", "b"), [(1, "xx"), (22, "y")]
        )
        lines = text.splitlines()
        assert lines[0] == "My Title"
        assert lines[1] == "=" * len("My Title")
        assert "col_a" in lines[2]
        assert len(lines) == 6

    def test_render_table_formats_floats(self):
        text = render_table("t", ("v",), [(1.23456,)])
        assert "1.23" in text

    def test_render_empty_rows(self):
        text = render_table("t", ("a", "b"), [])
        assert "a" in text


class TestFixture:
    @pytest.fixture(scope="class")
    def tiny(self):
        return BenchmarkFixture(scale_factor=0.001)

    def test_loads_and_installs_expression(self, tiny):
        assert tiny.row_counts["customer"] > 0
        assert len(tiny.audit_view) > 0
        # roughly one market segment
        assert len(tiny.audit_view) == pytest.approx(
            tiny.row_counts["customer"] / 5, rel=0.5
        )

    def test_selectivity_mapping_monotone(self, tiny):
        dates = [
            tiny.orderdate_for_selectivity(fraction)
            for fraction in (0.1, 0.5, 0.9)
        ]
        # higher fraction selected => earlier cutoff date
        assert dates[0] >= dates[1] >= dates[2]

    def test_selectivity_mapping_hits_target(self, tiny):
        cutoff = tiny.orderdate_for_selectivity(0.5)
        selected = tiny.database.execute(
            "SELECT COUNT(*) FROM orders WHERE o_orderdate > :cut",
            {"cut": cutoff},
        ).scalar()
        total = tiny.row_counts["orders"]
        assert selected / total == pytest.approx(0.5, abs=0.1)

    def test_run_with_heuristic_restores_state(self, tiny):
        database = tiny.database
        before = (database.audit_manager.heuristic, database.join_strategy,
                  database.audit_enabled)
        tiny.run_with_heuristic("SELECT COUNT(*) FROM region", None, None)
        tiny.run_with_heuristic(
            "SELECT COUNT(*) FROM region", None, "leaf-node"
        )
        after = (database.audit_manager.heuristic, database.join_strategy,
                 database.audit_enabled)
        assert before == after

    def test_compile_with_heuristic_none_is_uninstrumented(self, tiny):
        from repro.exec.operators import AuditOperator

        physical = tiny.compile_with_heuristic(
            "SELECT * FROM customer", None
        )
        assert not any(
            isinstance(node, AuditOperator) for node in physical.walk()
        )
        instrumented = tiny.compile_with_heuristic(
            "SELECT * FROM customer", "highest-commutative-node"
        )
        assert any(
            isinstance(node, AuditOperator) for node in instrumented.walk()
        )

    def test_execution_time_positive(self, tiny):
        elapsed = tiny.execution_time(
            "SELECT COUNT(*) FROM region", None, None, repeats=2
        )
        assert elapsed > 0.0

    def test_compare_execution_labels(self, tiny):
        timings = tiny.compare_execution(
            "SELECT COUNT(*) FROM region",
            None,
            {"a": (None, None), "b": ("leaf-node", None)},
            repeats=2,
        )
        assert set(timings) == {"a", "b"}
        assert all(value > 0 for value in timings.values())
