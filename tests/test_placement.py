"""Tests for audit operator placement (Algorithm 1) and the paper's examples."""

import pytest

from repro import (
    Database,
    HEURISTIC_HCN,
    HEURISTIC_HIGHEST,
    HEURISTIC_LEAF,
    OfflineAuditor,
)
from repro.audit.placement import audit_operators, instrument_plan
from repro.errors import AuditError
from repro.plan import logical as L


def operators_of(db: Database, sql: str, heuristic: str):
    plan = db.plan_query(sql)
    instrumented = instrument_plan(
        plan, db.audit_manager.targets(), heuristic
    )
    return instrumented, audit_operators(instrumented)


@pytest.fixture
def audited_db(patients_db):
    patients_db.execute(
        "CREATE AUDIT EXPRESSION audit_all AS SELECT * FROM patients "
        "FOR SENSITIVE TABLE patients, PARTITION BY patientid"
    )
    return patients_db


class TestInsertion:
    def test_leaf_heuristic_sits_above_scan(self, audited_db):
        plan, audits = operators_of(
            audited_db,
            "SELECT p.name FROM patients p, disease d "
            "WHERE p.patientid = d.patientid",
            HEURISTIC_LEAF,
        )
        assert len(audits) == 1
        assert isinstance(audits[0].child, L.Scan)
        assert audits[0].child.table_name == "patients"

    def test_audit_above_pushed_scan_predicate(self, audited_db):
        """§III: the leaf audit sits above the single-table predicate."""
        plan, audits = operators_of(
            audited_db,
            "SELECT name FROM patients WHERE age > 30",
            HEURISTIC_LEAF,
        )
        assert isinstance(audits[0].child, L.Scan)
        assert audits[0].child.predicate is not None

    def test_unreferenced_table_gets_no_operator(self, audited_db):
        plan, audits = operators_of(
            audited_db, "SELECT disease FROM disease", HEURISTIC_HCN
        )
        assert audits == []

    def test_self_join_gets_one_operator_per_instance(self, audited_db):
        plan, audits = operators_of(
            audited_db,
            "SELECT p1.name FROM patients p1, patients p2 "
            "WHERE p1.zip = p2.zip AND p1.patientid <> p2.patientid",
            HEURISTIC_LEAF,
        )
        assert len(audits) == 2
        assert {a.scan_alias for a in audits} == {"p1", "p2"}

    def test_unknown_heuristic_rejected(self, audited_db):
        plan = audited_db.plan_query("SELECT name FROM patients")
        with pytest.raises(AuditError):
            instrument_plan(plan, audited_db.audit_manager.targets(), "best")

    def test_no_targets_is_identity(self, audited_db):
        plan = audited_db.plan_query("SELECT name FROM patients")
        assert instrument_plan(plan, [], HEURISTIC_HCN) is plan


class TestHcnPullUp:
    def test_pulled_above_join_for_sj_query(self, audited_db):
        """Fig. 4(a): one audit operator at the top of an SJ plan."""
        plan, audits = operators_of(
            audited_db,
            "SELECT p.patientid, name FROM patients p, disease d "
            "WHERE p.patientid = d.patientid AND d.disease = 'flu'",
            HEURISTIC_HCN,
        )
        assert len(audits) == 1
        # the operator is the root (above the final projection, which
        # keeps patientid visible)
        assert isinstance(plan, L.Audit)

    def test_right_join_input_slot_rebased(self, audited_db):
        """When pulled from the right join input the slot shifts by the
        left arity."""
        plan, audits = operators_of(
            audited_db,
            "SELECT d.patientid FROM disease d, patients p "
            "WHERE p.patientid = d.patientid",
            HEURISTIC_HCN,
        )
        audit = audits[0]
        # disease has 2 columns; patients.patientid is slot 0 of the right
        # side, so the combined slot is 2
        assert audit.id_slot >= 2

    def test_stops_below_aggregate(self, audited_db):
        """Fig. 4(b): audit operator below the group-by."""
        plan, audits = operators_of(
            audited_db,
            "SELECT age, COUNT(*) FROM patients p, disease d "
            "WHERE p.patientid = d.patientid AND disease = 'flu' "
            "GROUP BY age",
            HEURISTIC_HCN,
        )
        assert len(audits) == 1
        aggregates = [n for n in plan.walk() if isinstance(n, L.Aggregate)]
        assert isinstance(aggregates[0].child, L.Audit)

    def test_stops_below_distinct(self, audited_db):
        plan, audits = operators_of(
            audited_db,
            "SELECT DISTINCT zip FROM patients",
            HEURISTIC_HCN,
        )
        distincts = [n for n in plan.walk() if isinstance(n, L.Distinct)]
        assert len(audits) == 1
        # the projection drops patientid, so the operator rests below it
        assert isinstance(distincts[0].child, L.Project)
        assert isinstance(distincts[0].child.child, L.Audit)

    def test_stops_below_topk(self, audited_db):
        plan, audits = operators_of(
            audited_db,
            "SELECT patientid FROM patients ORDER BY age LIMIT 2",
            HEURISTIC_HCN,
        )
        sorts = [n for n in plan.walk() if isinstance(n, L.Sort)]
        assert sorts
        # audit must not sit above the sort (the limit would starve it)
        above_sort = [
            n for n in plan.walk()
            if isinstance(n, (L.Audit,))
        ]
        assert all(
            not isinstance(parent, (L.Limit,))
            for parent in plan.walk()
            if isinstance(parent, L.Audit)
        )
        # precise shape: Sort's subtree contains the audit
        assert any(
            isinstance(node, L.Audit) for node in sorts[0].walk()
        )

    def test_subquery_scope_is_a_barrier(self, audited_db):
        """Example 3.8(c): the inner audit operator stays in the subquery."""
        plan, audits = operators_of(
            audited_db,
            "SELECT name FROM patients p1 WHERE name IN "
            "(SELECT name FROM patients p2 WHERE p1.zip <> p2.zip)",
            HEURISTIC_HCN,
        )
        assert len(audits) == 2  # one per block

    def test_semi_join_probe_side_pulls_up(self, audited_db):
        plan, audits = operators_of(
            audited_db,
            "SELECT patientid FROM patients WHERE patientid IN "
            "(SELECT patientid FROM disease WHERE disease = 'flu')",
            HEURISTIC_HCN,
        )
        # decorrelated to semi join; audit pulls above it to the root
        assert isinstance(plan, L.Audit)


class TestAccessedResults:
    def test_leaf_superset_of_hcn(self, audited_db):
        query = (
            "SELECT p.patientid FROM patients p, disease d "
            "WHERE p.patientid = d.patientid AND d.disease = 'flu'"
        )
        audited_db.audit_manager.heuristic = HEURISTIC_LEAF
        leaf = audited_db.execute(query).accessed["audit_all"]
        audited_db.audit_manager.heuristic = HEURISTIC_HCN
        hcn = audited_db.execute(query).accessed["audit_all"]
        assert hcn <= leaf
        assert leaf == frozenset({1, 2, 3, 4, 5})
        assert hcn == frozenset({2, 3, 5})

    def test_example_3_1_join_false_positive(self, audited_db):
        """Example 3.1: two Alices, one with flu — leaf flags both."""
        audited_db.execute(
            "INSERT INTO patients VALUES (6, 'Alice', 29, '98104')"
        )
        audited_db.execute(
            "CREATE AUDIT EXPRESSION audit_alice AS SELECT * FROM patients "
            "WHERE name = 'Alice' FOR SENSITIVE TABLE patients, "
            "PARTITION BY patientid"
        )
        audited_db.execute("INSERT INTO disease VALUES (6, 'flu')")
        query = (
            "SELECT p.patientid, name, age, zip FROM patients p, disease d "
            "WHERE p.patientid = d.patientid AND d.disease = 'flu'"
        )
        audited_db.audit_manager.heuristic = HEURISTIC_LEAF
        leaf = audited_db.execute(query).accessed["audit_alice"]
        assert leaf == frozenset({1, 6})  # patient 1 is a false positive
        audited_db.audit_manager.heuristic = HEURISTIC_HCN
        hcn = audited_db.execute(query).accessed["audit_alice"]
        assert hcn == frozenset({6})  # join output only

    def test_example_3_2_highest_node_false_negative(self, db):
        """Fig. 3: highest-node misses a top-k-influencing tuple."""
        db.execute(
            "CREATE TABLE patients (patientid INT PRIMARY KEY, "
            "name VARCHAR, age INT)"
        )
        db.execute("CREATE TABLE disease (patientid INT, disease VARCHAR)")
        # Bob is among the two youngest but does NOT have flu
        db.execute(
            "INSERT INTO patients VALUES (1, 'Alice', 40), "
            "(2, 'Bob', 25), (3, 'Carol', 30)"
        )
        db.execute("INSERT INTO disease VALUES (1, 'flu'), (3, 'flu')")
        db.execute(
            "CREATE AUDIT EXPRESSION audit_all AS SELECT * FROM patients "
            "FOR SENSITIVE TABLE patients, PARTITION BY patientid"
        )
        query = (
            "SELECT t.patientid FROM "
            "(SELECT patientid FROM patients ORDER BY age LIMIT 2) t, "
            "disease d WHERE t.patientid = d.patientid "
            "AND d.disease = 'flu'"
        )
        truth = OfflineAuditor(db).audit(query, "audit_all")
        assert 2 in truth  # deleting Bob changes the top-2
        db.audit_manager.heuristic = HEURISTIC_HIGHEST
        highest = db.execute(query).accessed["audit_all"]
        assert 2 not in highest  # the false negative the paper warns about
        db.audit_manager.heuristic = HEURISTIC_HCN
        hcn = db.execute(query).accessed["audit_all"]
        assert truth <= hcn  # hcn never misses

    def test_example_3_9_having_false_positive(self, db):
        """Fig. 5: hcn flags a tuple removed by HAVING."""
        db.execute(
            "CREATE TABLE patients (patientid INT PRIMARY KEY, "
            "name VARCHAR)"
        )
        db.execute("CREATE TABLE disease (patientid INT, disease VARCHAR)")
        db.execute(
            "INSERT INTO patients VALUES (1, 'Alice'), (2, 'Bob'), "
            "(3, 'Carol')"
        )
        db.execute(
            "INSERT INTO disease VALUES (1, 'flu'), (3, 'flu'), "
            "(2, 'measles')"
        )
        db.execute(
            "CREATE AUDIT EXPRESSION audit_all AS SELECT * FROM patients "
            "FOR SENSITIVE TABLE patients, PARTITION BY patientid"
        )
        query = (
            "SELECT d.disease, COUNT(*) FROM patients p, disease d "
            "WHERE p.patientid = d.patientid GROUP BY d.disease "
            "HAVING COUNT(*) >= 2"
        )
        truth = OfflineAuditor(db).audit(query, "audit_all")
        assert truth == {1, 3}  # Bob's measles group is filtered out
        hcn = db.execute(query).accessed["audit_all"]
        assert hcn == frozenset({1, 2, 3})  # Bob is the false positive

    def test_instrumented_plan_returns_original_result(self, audited_db):
        query = (
            "SELECT name, age FROM patients WHERE age > 30 ORDER BY name"
        )
        with_audit = audited_db.execute(query)
        audited_db.audit_enabled = False
        without_audit = audited_db.execute(query)
        audited_db.audit_enabled = True
        assert with_audit.rows == without_audit.rows
        assert with_audit.columns == without_audit.columns

    def test_multiple_audit_expressions_in_one_query(self, audited_db):
        audited_db.execute(
            "CREATE AUDIT EXPRESSION audit_flu_patients AS "
            "SELECT p.* FROM patients p, disease d "
            "WHERE p.patientid = d.patientid AND d.disease = 'flu' "
            "FOR SENSITIVE TABLE patients, PARTITION BY patientid"
        )
        result = audited_db.execute("SELECT patientid FROM patients")
        assert result.accessed["audit_all"] == frozenset({1, 2, 3, 4, 5})
        assert result.accessed["audit_flu_patients"] == frozenset({2, 3, 5})

    def test_self_join_audits_both_instances(self, audited_db):
        result = audited_db.execute(
            "SELECT p1.patientid FROM patients p1, patients p2 "
            "WHERE p1.zip = p2.zip AND p1.patientid < p2.patientid"
        )
        # pairs in shared zips: (1,3) and (2,5)
        assert result.accessed["audit_all"] == frozenset({1, 2, 3, 5})

    def test_update_reverts_to_classic_semantics(self, audited_db):
        """§II-B: UPDATE/DELETE use traditional trigger semantics, so no
        SELECT-trigger ACCESSED state is produced."""
        result = audited_db.execute(
            "UPDATE patients SET age = age + 1 WHERE patientid = 1"
        )
        assert result.accessed == {}
