"""Unit tests for the SQL tokenizer."""

import pytest

from repro.errors import SqlSyntaxError
from repro.sql.lexer import (
    EOF,
    IDENT,
    KEYWORD,
    NUMBER,
    PARAMETER,
    STRING,
    tokenize,
)


def kinds(text):
    return [token.kind for token in tokenize(text)]


def values(text):
    return [token.value for token in tokenize(text)[:-1]]


class TestTokenKinds:
    def test_keywords_uppercase(self):
        tokens = tokenize("select from where")
        assert [t.value for t in tokens[:-1]] == ["SELECT", "FROM", "WHERE"]
        assert all(t.kind == KEYWORD for t in tokens[:-1])

    def test_identifiers_lowercase(self):
        tokens = tokenize("Customers C_Name")
        assert [t.value for t in tokens[:-1]] == ["customers", "c_name"]
        assert all(t.kind == IDENT for t in tokens[:-1])

    def test_eof_always_appended(self):
        assert tokenize("")[-1].kind == EOF
        assert tokenize("select")[-1].kind == EOF

    def test_numbers(self):
        tokens = tokenize("1 2.5 .75 1e6 3.2E-4")
        assert all(t.kind == NUMBER for t in tokens[:-1])
        assert values("1 2.5 .75 1e6 3.2E-4") == \
            ["1", "2.5", ".75", "1e6", "3.2E-4"]

    def test_number_followed_by_dot_operator(self):
        # "1e" is number 1 then identifier e, not an exponent
        tokens = tokenize("1e")
        assert tokens[0].kind == NUMBER
        assert tokens[1].kind == IDENT

    def test_strings_with_escaped_quote(self):
        tokens = tokenize("'it''s'")
        assert tokens[0].kind == STRING
        assert tokens[0].value == "it's"

    def test_unterminated_string(self):
        with pytest.raises(SqlSyntaxError):
            tokenize("'oops")

    def test_parameters(self):
        tokens = tokenize(":seg :p1")
        assert all(t.kind == PARAMETER for t in tokens[:-1])
        assert values(":seg :p1") == ["seg", "p1"]

    def test_empty_parameter_name(self):
        with pytest.raises(SqlSyntaxError):
            tokenize(": x")

    def test_operators_longest_match(self):
        assert values("a <= b <> c != d") == \
            ["a", "<=", "b", "<>", "c", "!=", "d"]

    def test_quoted_identifier(self):
        tokens = tokenize('"Weird Name"')
        assert tokens[0].kind == IDENT
        assert tokens[0].value == "weird name"

    def test_unexpected_character(self):
        with pytest.raises(SqlSyntaxError):
            tokenize("select @")


class TestComments:
    def test_line_comment(self):
        assert values("select -- comment here\n 1") == ["SELECT", "1"]

    def test_line_comment_at_eof(self):
        assert values("select 1 -- done") == ["SELECT", "1"]

    def test_block_comment(self):
        assert values("select /* hi */ 1") == ["SELECT", "1"]

    def test_unterminated_block_comment(self):
        with pytest.raises(SqlSyntaxError):
            tokenize("select /* nope")


class TestPositions:
    def test_error_carries_offset(self):
        try:
            tokenize("select $")
        except SqlSyntaxError as error:
            assert error.position == 7
        else:  # pragma: no cover
            pytest.fail("expected SqlSyntaxError")
