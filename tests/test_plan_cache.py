"""Audit-aware plan cache: hit behavior and invalidation triggers.

The cache must serve warm hits without touching the parser or planner, and
must never serve a plan compiled under a different world: DDL, audit
expression changes, trigger changes, knob flips, and fresh statistics all
invalidate; plain DML does not (plans stay valid, the ID views are
maintained in place).
"""

from __future__ import annotations

import pytest

from repro import Database
from repro.plancache import PlanCache


QUERY = "SELECT * FROM patients WHERE age > 30"


def make_db() -> Database:
    db = Database()
    db.execute(
        "CREATE TABLE patients (patientid INT PRIMARY KEY, "
        "name VARCHAR, age INT, zip VARCHAR)"
    )
    db.execute("INSERT INTO patients VALUES (1, 'Alice', 40, '11111')")
    db.execute("INSERT INTO patients VALUES (2, 'Bob', 20, '22222')")
    return db


class TestWarmHits:
    def test_repeated_query_hits(self):
        db = make_db()
        first = db.execute(QUERY)
        assert db.plan_cache.hits == 0
        second = db.execute(QUERY)
        assert db.plan_cache.hits == 1
        assert first.rows == second.rows
        assert first.columns == second.columns

    def test_warm_hit_skips_the_parser(self, monkeypatch):
        import repro.database as database_module

        db = make_db()
        db.execute(QUERY)

        def refuse(sql):
            raise AssertionError("parser invoked on a warm cache hit")

        monkeypatch.setattr(database_module, "parse_statement", refuse)
        result = db.execute(QUERY)
        assert result.rows == [(1, "Alice", 40, "11111")]
        assert db.plan_cache.hits == 1

    def test_parameters_vary_across_hits(self):
        db = make_db()
        sql = "SELECT name FROM patients WHERE age > :cutoff"
        assert db.execute(sql, {"cutoff": 30}).rows == [("Alice",)]
        assert db.execute(sql, {"cutoff": 10}).rows == [
            ("Alice",), ("Bob",)
        ]
        assert db.plan_cache.hits == 1

    def test_dml_does_not_invalidate(self):
        db = make_db()
        db.execute(QUERY)
        db.execute("INSERT INTO patients VALUES (3, 'Carol', 50, '33333')")
        result = db.execute(QUERY)
        assert db.plan_cache.hits == 1  # cached plan served
        assert ("Carol" in {row[1] for row in result.rows})

    def test_exec_modes_share_the_cache(self):
        db = make_db()
        db.exec_mode = "row"
        row_result = db.execute(QUERY)
        db.exec_mode = "batch"
        batch_result = db.execute(QUERY)
        assert db.plan_cache.hits == 1
        assert row_result.rows == batch_result.rows


class TestInvalidation:
    def _prime(self, db: Database) -> None:
        db.execute(QUERY)
        assert len(db.plan_cache) >= 1

    def test_create_table_invalidates(self):
        db = make_db()
        self._prime(db)
        db.execute("CREATE TABLE other (k INT PRIMARY KEY)")
        db.execute(QUERY)
        assert db.plan_cache.invalidations >= 1
        assert db.plan_cache.hits == 0

    def test_create_index_invalidates(self):
        db = make_db()
        self._prime(db)
        db.execute("CREATE INDEX patients_age ON patients (age)")
        db.execute(QUERY)
        assert db.plan_cache.invalidations >= 1

    def test_create_audit_expression_reinstruments(self):
        db = make_db()
        before = db.execute(QUERY)
        assert before.accessed == {}
        db.execute(
            "CREATE AUDIT EXPRESSION audit_all AS SELECT * FROM patients "
            "FOR SENSITIVE TABLE patients, PARTITION BY patientid"
        )
        after = db.execute(QUERY)
        # a stale uninstrumented plan would record no accesses at all
        assert after.accessed.get("audit_all") == frozenset({1})
        assert db.plan_cache.invalidations >= 1

    def test_drop_audit_expression_deinstruments(self):
        db = make_db()
        db.execute(
            "CREATE AUDIT EXPRESSION audit_all AS SELECT * FROM patients "
            "FOR SENSITIVE TABLE patients, PARTITION BY patientid"
        )
        assert db.execute(QUERY).accessed != {}
        db.execute("DROP AUDIT EXPRESSION audit_all")
        assert db.execute(QUERY).accessed == {}

    def test_trigger_change_invalidates(self):
        db = make_db()
        db.execute(
            "CREATE AUDIT EXPRESSION audit_all AS SELECT * FROM patients "
            "FOR SENSITIVE TABLE patients, PARTITION BY patientid"
        )
        self._prime(db)
        invalidations = db.plan_cache.invalidations
        db.execute(
            "CREATE TRIGGER note ON ACCESS TO audit_all AS NOTIFY 'seen'"
        )
        db.execute(QUERY)
        assert db.plan_cache.invalidations > invalidations
        assert db.notifications  # the new trigger fired

    def test_analyze_clears(self):
        db = make_db()
        self._prime(db)
        db.execute("ANALYZE")
        assert len(db.plan_cache) == 0
        db.execute(QUERY)
        assert db.plan_cache.hits == 0

    def test_audit_enabled_flip_invalidates(self):
        db = make_db()
        db.execute(
            "CREATE AUDIT EXPRESSION audit_all AS SELECT * FROM patients "
            "FOR SENSITIVE TABLE patients, PARTITION BY patientid"
        )
        assert db.execute(QUERY).accessed != {}
        db.audit_enabled = False
        assert db.execute(QUERY).accessed == {}
        db.audit_enabled = True
        assert db.execute(QUERY).accessed != {}


class TestScopeRules:
    def test_trigger_body_selects_are_not_cached(self):
        db = make_db()
        db.execute("CREATE TABLE log (message VARCHAR)")
        db.execute(
            "CREATE AUDIT EXPRESSION audit_all AS SELECT * FROM patients "
            "FOR SENSITIVE TABLE patients, PARTITION BY patientid"
        )
        db.execute(
            "CREATE TRIGGER log_access ON ACCESS TO audit_all AS "
            "INSERT INTO log SELECT sql_text() FROM accessed"
        )
        entries_before = len(db.plan_cache)
        db.execute(QUERY)
        # only the top-level SELECT was cached, not the trigger-body one
        assert len(db.plan_cache) == entries_before + 1
        assert db.execute("SELECT COUNT(*) FROM log").scalar() >= 1


class TestLruBehavior:
    def test_capacity_evicts_oldest(self):
        cache = PlanCache(capacity=2)
        from repro.plancache import CachedPlan

        for index in range(3):
            cache.store(
                CachedPlan(
                    sql=f"q{index}", column_names=(), logical=None,
                    physical=None, tags=(0,),
                )
            )
        assert len(cache) == 2
        assert cache.lookup("q0", (0,)) is None  # evicted
        assert cache.lookup("q2", (0,)) is not None

    def test_stale_tags_drop_the_entry(self):
        cache = PlanCache()
        from repro.plancache import CachedPlan

        cache.store(
            CachedPlan(
                sql="q", column_names=(), logical=None, physical=None,
                tags=(1,),
            )
        )
        assert cache.lookup("q", (2,)) is None
        assert cache.invalidations == 1
        assert len(cache) == 0


class TestOfflineAuditorReuse:
    def test_repeat_audits_reuse_the_compiled_plan(self):
        from repro import OfflineAuditor

        db = make_db()
        db.execute(
            "CREATE AUDIT EXPRESSION audit_all AS SELECT * FROM patients "
            "FOR SENSITIVE TABLE patients, PARTITION BY patientid"
        )
        auditor = OfflineAuditor(db)
        first = auditor.audit(QUERY, "audit_all")
        assert auditor.plan_cache_misses == 1
        second = auditor.audit(QUERY, "audit_all")
        assert auditor.plan_cache_hits == 1
        assert first == second == {1}

    def test_reuse_sees_fresh_data(self):
        from repro import OfflineAuditor

        db = make_db()
        db.execute(
            "CREATE AUDIT EXPRESSION audit_all AS SELECT * FROM patients "
            "FOR SENSITIVE TABLE patients, PARTITION BY patientid"
        )
        auditor = OfflineAuditor(db)
        assert auditor.audit(QUERY, "audit_all") == {1}
        db.execute("INSERT INTO patients VALUES (3, 'Carol', 70, '33333')")
        assert auditor.audit(QUERY, "audit_all") == {1, 3}
        assert auditor.plan_cache_hits == 1

    def test_ddl_recompiles(self):
        from repro import OfflineAuditor

        db = make_db()
        db.execute(
            "CREATE AUDIT EXPRESSION audit_all AS SELECT * FROM patients "
            "FOR SENSITIVE TABLE patients, PARTITION BY patientid"
        )
        auditor = OfflineAuditor(db)
        auditor.audit(QUERY, "audit_all")
        db.execute("CREATE INDEX patients_age ON patients (age)")
        assert auditor.audit(QUERY, "audit_all") == {1}
        assert auditor.plan_cache_misses == 2
