"""Unit tests for the execution context: outer rows, memoization, state."""

import pytest

from repro import Database
from repro.errors import ExecutionError
from repro.exec.context import ExecutionContext, Session


class TestOuterRows:
    def test_stack_discipline(self):
        context = ExecutionContext()
        context.push_outer_row((1,))
        context.push_outer_row((2,))
        assert context.outer_row(1) == (2,)
        assert context.outer_row(2) == (1,)
        context.pop_outer_row()
        assert context.outer_row(1) == (1,)

    def test_base_rows_seed_the_stack(self):
        context = ExecutionContext(base_outer_rows=((9, 9),))
        assert context.outer_row(1) == (9, 9)

    def test_out_of_range_levels(self):
        context = ExecutionContext()
        with pytest.raises(ExecutionError):
            context.outer_row(1)
        context.push_outer_row((1,))
        with pytest.raises(ExecutionError):
            context.outer_row(2)
        with pytest.raises(ExecutionError):
            context.outer_row(0)


class TestSession:
    def test_defaults(self):
        session = Session()
        assert session.user_id == "anonymous"
        assert session.sql_text == ""
        assert session.now() is not None

    def test_custom_clock(self):
        import datetime

        stamp = datetime.datetime(2013, 4, 8)
        session = Session(clock=lambda: stamp)
        assert session.now() == stamp


class TestAccessedState:
    def test_record_access_accumulates(self):
        context = ExecutionContext()
        context.record_access("a", 1)
        context.record_access("a", 2)
        context.record_access("b", 1)
        assert context.accessed == {"a": {1, 2}, "b": {1}}

    def test_tombstone_lookup(self):
        context = ExecutionContext()
        context.tombstones = {"t": {(1,)}}
        assert context.is_tombstoned("t", (1,))
        assert not context.is_tombstoned("t", (2,))
        assert not context.is_tombstoned("u", (1,))


class TestSubqueryMemoization:
    @pytest.fixture
    def db(self):
        db = Database()
        db.execute("CREATE TABLE t (a INT, b INT)")
        db.execute("INSERT INTO t VALUES (1, 10), (2, 20), (1, 30)")
        return db

    def test_uncorrelated_subquery_runs_once(self, db):
        """The memo key of an uncorrelated subquery is empty: one run."""
        plan = db.plan_query("SELECT a FROM t WHERE b > 15")
        context = db.make_context()
        first = context.run_subquery(plan, ())
        second = context.run_subquery(plan, ())
        assert first is second  # same cached list object

    def test_correlated_memo_keyed_by_outer_values(self, db):
        # count subquery executions through a scalar subquery correlated
        # on the outer row: identical outer values reuse the memo
        result = db.execute(
            "SELECT a, (SELECT SUM(t2.b) FROM t t2 WHERE t2.a = t1.a) "
            "FROM t t1 ORDER BY a, 2"
        )
        assert result.rows == [(1, 40), (1, 40), (2, 20)]

    def test_missing_parameter_raises(self):
        context = ExecutionContext()
        with pytest.raises(ExecutionError):
            context.parameter("ghost")

    def test_subquery_without_compiler_raises(self, db):
        plan = db.plan_query("SELECT a FROM t")
        bare = ExecutionContext()
        with pytest.raises(ExecutionError):
            bare.run_subquery(plan, ())

    def test_unbound_subquery_plan_raises(self):
        context = ExecutionContext()
        with pytest.raises(ExecutionError):
            context.run_subquery(None, ())
