"""Unit tests for expression evaluation: NULL semantics, operators, functions."""

import datetime

import pytest

from repro.errors import ExecutionError
from repro.exec.context import ExecutionContext, Session
from repro.expr.evaluator import evaluate
from repro.expr.nodes import (
    Binary,
    ColumnRef,
    conjoin,
    conjuncts,
    Literal,
    referenced_slots,
    transform,
)
from repro.sql.parser import parse_expression


def ev(text: str, row=(), context=None, bind_names=()):
    """Parse, bind positionally by ``bind_names``, and evaluate."""
    expression = parse_expression(text)

    def visit(node):
        if isinstance(node, ColumnRef) and node.name in bind_names:
            return ColumnRef(node.name, index=bind_names.index(node.name))
        return node

    expression = transform(expression, visit)
    return evaluate(expression, row, context or ExecutionContext())


class TestArithmetic:
    def test_basic(self):
        assert ev("1 + 2 * 3") == 7
        assert ev("10 - 4") == 6
        assert ev("2.5 * 4") == 10.0
        assert ev("7 % 3") == 1

    def test_division_is_exact(self):
        assert ev("7 / 2") == 3.5

    def test_division_by_zero(self):
        with pytest.raises(ExecutionError):
            ev("1 / 0")
        with pytest.raises(ExecutionError):
            ev("1 % 0")

    def test_unary_minus(self):
        assert ev("-(3 + 4)") == -7

    def test_null_propagates(self):
        assert ev("1 + NULL") is None
        assert ev("NULL * 3") is None
        assert ev("-x", (None,), bind_names=("x",)) is None

    def test_string_concat(self):
        assert ev("'a' || 'b'") == "ab"
        assert ev("'a' || NULL") is None


class TestDateArithmetic:
    def test_date_plus_interval(self):
        assert ev("DATE '1995-01-01' + INTERVAL '3' MONTH") == \
            datetime.date(1995, 4, 1)

    def test_date_minus_interval(self):
        assert ev("DATE '1995-01-01' - INTERVAL '1' YEAR") == \
            datetime.date(1994, 1, 1)

    def test_interval_plus_date_commutes(self):
        assert ev("INTERVAL '7' DAY + DATE '1995-01-01'") == \
            datetime.date(1995, 1, 8)

    def test_date_difference_in_days(self):
        assert ev("DATE '1995-01-08' - DATE '1995-01-01'") == 7

    def test_date_comparison(self):
        assert ev("DATE '1995-01-01' < DATE '1996-01-01'") is True


class TestComparisons:
    def test_all_operators(self):
        assert ev("1 < 2") is True
        assert ev("2 <= 2") is True
        assert ev("3 > 2") is True
        assert ev("3 >= 4") is False
        assert ev("1 = 1") is True
        assert ev("1 <> 1") is False

    def test_null_comparison_unknown(self):
        assert ev("NULL = NULL") is None
        assert ev("1 < NULL") is None

    def test_string_comparison(self):
        assert ev("'apple' < 'banana'") is True


class TestLogic:
    def test_short_circuit_and_false(self):
        # right side would divide by zero; AND must not evaluate it
        assert ev("1 = 2 AND 1 / 0 = 1") is False

    def test_short_circuit_or_true(self):
        assert ev("1 = 1 OR 1 / 0 = 1") is True

    def test_kleene_tables(self):
        assert ev("NULL AND TRUE") is None
        assert ev("NULL AND FALSE") is False
        assert ev("NULL OR TRUE") is True
        assert ev("NULL OR FALSE") is None
        assert ev("NOT NULL") is None


class TestPredicates:
    def test_between(self):
        assert ev("5 BETWEEN 1 AND 10") is True
        assert ev("0 BETWEEN 1 AND 10") is False
        assert ev("5 NOT BETWEEN 1 AND 10") is False
        assert ev("NULL BETWEEN 1 AND 10") is None

    def test_between_partial_null_bounds(self):
        assert ev("5 BETWEEN NULL AND 10") is None
        assert ev("11 BETWEEN NULL AND 10") is False  # upper bound decides

    def test_in_list(self):
        assert ev("2 IN (1, 2, 3)") is True
        assert ev("5 IN (1, 2, 3)") is False
        assert ev("5 NOT IN (1, 2, 3)") is True

    def test_in_list_null_semantics(self):
        assert ev("NULL IN (1, 2)") is None
        assert ev("5 IN (1, NULL)") is None  # no match but NULL present
        assert ev("1 IN (1, NULL)") is True  # match wins
        assert ev("5 NOT IN (1, NULL)") is None

    def test_is_null(self):
        assert ev("NULL IS NULL") is True
        assert ev("1 IS NULL") is False
        assert ev("1 IS NOT NULL") is True

    def test_like(self):
        assert ev("'hello' LIKE 'h%'") is True
        assert ev("'hello' NOT LIKE 'h%'") is False


class TestCase:
    def test_searched_case(self):
        assert ev("CASE WHEN 1 = 2 THEN 'a' WHEN 1 = 1 THEN 'b' END") == "b"

    def test_searched_case_default(self):
        assert ev("CASE WHEN 1 = 2 THEN 'a' ELSE 'z' END") == "z"

    def test_searched_case_no_match_no_default(self):
        assert ev("CASE WHEN 1 = 2 THEN 'a' END") is None

    def test_simple_case(self):
        assert ev("CASE 2 WHEN 1 THEN 'one' WHEN 2 THEN 'two' END") == "two"

    def test_unknown_condition_skipped(self):
        assert ev("CASE WHEN NULL THEN 'a' ELSE 'b' END") == "b"


class TestFunctions:
    def test_substring(self):
        assert ev("substring('13-555', 1, 2)") == "13"
        assert ev("SUBSTRING('13-555' FROM 4)") == "555"
        assert ev("substring(NULL, 1, 2)") is None

    def test_upper_lower_length(self):
        assert ev("upper('ab')") == "AB"
        assert ev("lower('AB')") == "ab"
        assert ev("length('abc')") == 3

    def test_abs(self):
        assert ev("abs(-4)") == 4

    def test_coalesce(self):
        assert ev("coalesce(NULL, NULL, 3, 4)") == 3
        assert ev("coalesce(NULL, NULL)") is None

    def test_extract(self):
        assert ev("EXTRACT(YEAR FROM DATE '1995-06-17')") == 1995
        assert ev("EXTRACT(MONTH FROM DATE '1995-06-17')") == 6
        assert ev("EXTRACT(DAY FROM DATE '1995-06-17')") == 17

    def test_casts(self):
        assert ev("CAST('12' AS INT)") == 12
        assert ev("CAST(3 AS FLOAT)") == 3.0
        assert ev("CAST(DATE '1995-01-01' AS VARCHAR)") == "1995-01-01"
        assert ev("CAST('1995-01-01' AS DATE)") == datetime.date(1995, 1, 1)

    def test_bad_cast(self):
        with pytest.raises(ExecutionError):
            ev("CAST('abc' AS INT)")

    def test_session_functions(self):
        clock = lambda: datetime.datetime(2013, 4, 8, 12, 0, 0)
        session = Session(user_id="dr_house", clock=clock)
        session.sql_text = "SELECT 1"
        context = ExecutionContext(session=session)
        assert ev("user_id()", context=context) == "dr_house"
        assert ev("sql_text()", context=context) == "SELECT 1"
        assert ev("now()", context=context) == datetime.datetime(
            2013, 4, 8, 12, 0, 0
        )

    def test_unknown_function(self):
        with pytest.raises(ExecutionError):
            ev("frobnicate(1)")


class TestColumnsAndParameters:
    def test_bound_column(self):
        assert ev("x + 1", row=(41,), bind_names=("x",)) == 42

    def test_unbound_column_raises(self):
        with pytest.raises(ExecutionError):
            ev("mystery")

    def test_parameter(self):
        context = ExecutionContext(parameters={"p": 7})
        assert ev(":p * 2", context=context) == 14

    def test_missing_parameter(self):
        with pytest.raises(ExecutionError):
            ev(":missing")


class TestConjunctHelpers:
    def test_conjuncts_flattens_nested_ands(self):
        e = parse_expression("a = 1 AND b = 2 AND c = 3")
        parts = conjuncts(e)
        assert len(parts) == 3

    def test_conjoin_roundtrip(self):
        e = parse_expression("a = 1 AND b = 2")
        assert conjuncts(conjoin(conjuncts(e))) == conjuncts(e)

    def test_conjoin_empty_is_none(self):
        assert conjoin([]) is None

    def test_or_is_single_conjunct(self):
        e = parse_expression("a = 1 OR b = 2")
        assert conjuncts(e) == [e]

    def test_referenced_slots(self):
        e = Binary("=", ColumnRef("a", index=3), Literal(1))
        assert referenced_slots(e) == {3}
