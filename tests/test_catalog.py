"""Unit tests for the catalog registry and UNIQUE index enforcement."""

import pytest

from repro.catalog.catalog import Catalog, IndexDefinition
from repro.catalog.schema import Column, TableSchema
from repro.datatypes import INTEGER, VARCHAR
from repro.errors import CatalogError, ConstraintError
from repro.storage.table import Table


def make_table(name="t"):
    return Table(TableSchema(
        name,
        (Column("id", INTEGER), Column("v", VARCHAR)),
        primary_key=("id",),
    ))


class TestCatalogRegistry:
    def test_add_and_lookup_case_insensitive(self):
        catalog = Catalog()
        catalog.add_table(make_table("orders"))
        assert catalog.table("ORDERS") is catalog.table("orders")
        assert catalog.has_table("Orders")

    def test_duplicate_table(self):
        catalog = Catalog()
        catalog.add_table(make_table())
        with pytest.raises(CatalogError):
            catalog.add_table(make_table())

    def test_drop_table_removes_indexes_and_stats(self):
        catalog = Catalog()
        catalog.add_table(make_table())
        catalog.add_index(IndexDefinition("i", "t", ("v",)))
        catalog.statistics("t")
        catalog.drop_table("t")
        assert not catalog.has_table("t")
        assert catalog.indexes_on("t") == []

    def test_drop_missing_table(self):
        with pytest.raises(CatalogError):
            Catalog().drop_table("ghost")

    def test_index_requires_table(self):
        catalog = Catalog()
        with pytest.raises(CatalogError):
            catalog.add_index(IndexDefinition("i", "ghost", ("v",)))

    def test_duplicate_index(self):
        catalog = Catalog()
        catalog.add_table(make_table())
        catalog.add_index(IndexDefinition("i", "t", ("v",)))
        with pytest.raises(CatalogError):
            catalog.add_index(IndexDefinition("i", "t", ("id",)))

    def test_trigger_registry(self):
        catalog = Catalog()
        marker = object()
        catalog.add_trigger("trig", marker)
        assert catalog.trigger("TRIG") is marker
        with pytest.raises(CatalogError):
            catalog.add_trigger("trig", object())
        catalog.drop_trigger("trig")
        with pytest.raises(CatalogError):
            catalog.trigger("trig")

    def test_audit_expression_registry(self):
        catalog = Catalog()
        marker = object()
        catalog.add_audit_expression("a", marker)
        assert catalog.audit_expression("A") is marker
        assert list(catalog.audit_expressions()) == [marker]
        catalog.drop_audit_expression("a")
        with pytest.raises(CatalogError):
            catalog.audit_expression("a")

    def test_statistics_cached_until_table_changes(self):
        catalog = Catalog()
        table = make_table()
        catalog.add_table(table)
        first = catalog.statistics("t")
        assert catalog.statistics("t") is first  # cached
        table.insert((1, "x"))
        assert catalog.statistics("t") is not first


class TestUniqueIndexes:
    def test_insert_conflict_rejected(self, db):
        db.execute("CREATE TABLE t (a INT, email VARCHAR)")
        db.execute("CREATE UNIQUE INDEX t_email ON t (email)")
        db.execute("INSERT INTO t VALUES (1, 'x@example.com')")
        with pytest.raises(ConstraintError):
            db.execute("INSERT INTO t VALUES (2, 'x@example.com')")

    def test_update_conflict_rejected(self, db):
        db.execute("CREATE TABLE t (a INT PRIMARY KEY, email VARCHAR)")
        db.execute("CREATE UNIQUE INDEX t_email ON t (email)")
        db.execute("INSERT INTO t VALUES (1, 'x@x'), (2, 'y@y')")
        with pytest.raises(ConstraintError):
            db.execute("UPDATE t SET email = 'x@x' WHERE a = 2")

    def test_update_to_same_row_allowed(self, db):
        db.execute("CREATE TABLE t (a INT PRIMARY KEY, email VARCHAR)")
        db.execute("CREATE UNIQUE INDEX t_email ON t (email)")
        db.execute("INSERT INTO t VALUES (1, 'x@x')")
        db.execute("UPDATE t SET a = 1 WHERE a = 1")  # self-identity ok

    def test_null_keys_never_conflict(self, db):
        db.execute("CREATE TABLE t (a INT, email VARCHAR)")
        db.execute("CREATE UNIQUE INDEX t_email ON t (email)")
        db.execute("INSERT INTO t VALUES (1, NULL), (2, NULL)")
        assert db.execute("SELECT COUNT(*) FROM t").scalar() == 2

    def test_creation_over_duplicates_rejected(self, db):
        db.execute("CREATE TABLE t (a INT, email VARCHAR)")
        db.execute("INSERT INTO t VALUES (1, 'x@x'), (2, 'x@x')")
        with pytest.raises(ConstraintError):
            db.execute("CREATE UNIQUE INDEX t_email ON t (email)")

    def test_delete_frees_the_key(self, db):
        db.execute("CREATE TABLE t (a INT PRIMARY KEY, email VARCHAR)")
        db.execute("CREATE UNIQUE INDEX t_email ON t (email)")
        db.execute("INSERT INTO t VALUES (1, 'x@x')")
        db.execute("DELETE FROM t WHERE a = 1")
        db.execute("INSERT INTO t VALUES (2, 'x@x')")  # no error

    def test_unique_violation_rolls_back_statement(self, db):
        db.execute("CREATE TABLE t (a INT PRIMARY KEY, email VARCHAR)")
        db.execute("CREATE UNIQUE INDEX t_email ON t (email)")
        with pytest.raises(ConstraintError):
            db.execute(
                "INSERT INTO t VALUES (1, 'a@a'), (2, 'a@a')"
            )
        assert db.execute("SELECT COUNT(*) FROM t").scalar() == 0
