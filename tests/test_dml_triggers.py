"""Tests for classical row-level AFTER INSERT/UPDATE/DELETE triggers."""

import pytest

from repro.errors import TriggerError


@pytest.fixture
def history_db(db):
    """A salary table with a history log — the paper's intro scenarios."""
    db.execute(
        "CREATE TABLE employees (empid INT PRIMARY KEY, name VARCHAR, "
        "salary FLOAT)"
    )
    db.execute(
        "CREATE TABLE salary_history (empid INT, old_salary FLOAT, "
        "new_salary FLOAT)"
    )
    db.execute("INSERT INTO employees VALUES (1, 'Ann', 100000.0)")
    db.execute("INSERT INTO employees VALUES (2, 'Ben', 80000.0)")
    return db


class TestInsertTriggers:
    def test_after_insert_sees_new_row(self, db):
        db.execute("CREATE TABLE t (a INT, b VARCHAR)")
        db.execute("CREATE TABLE echo (a INT, b VARCHAR)")
        db.execute(
            "CREATE TRIGGER copy_in ON t AFTER INSERT AS "
            "INSERT INTO echo VALUES (new.a, new.b)"
        )
        db.execute("INSERT INTO t VALUES (7, 'x')")
        assert db.execute("SELECT * FROM echo").rows == [(7, "x")]

    def test_fires_once_per_row(self, db):
        db.execute("CREATE TABLE t (a INT)")
        db.execute("CREATE TABLE echo (a INT)")
        db.execute(
            "CREATE TRIGGER copy_in ON t AFTER INSERT AS "
            "INSERT INTO echo VALUES (new.a)"
        )
        db.execute("INSERT INTO t VALUES (1), (2), (3)")
        assert len(db.execute("SELECT * FROM echo")) == 3

    def test_bulk_load_bypasses_triggers(self, db):
        db.execute("CREATE TABLE t (a INT)")
        db.execute("CREATE TABLE echo (a INT)")
        db.execute(
            "CREATE TRIGGER copy_in ON t AFTER INSERT AS "
            "INSERT INTO echo VALUES (new.a)"
        )
        db.catalog.table("t").bulk_load([(1,), (2,)])
        assert len(db.execute("SELECT * FROM echo")) == 0


class TestUpdateTriggers:
    def test_history_tracking_old_and_new(self, history_db):
        """Intro scenario 2: maintain a history of salary changes."""
        history_db.execute(
            "CREATE TRIGGER track ON employees AFTER UPDATE AS "
            "INSERT INTO salary_history VALUES "
            "(new.empid, old.salary, new.salary)"
        )
        history_db.execute(
            "UPDATE employees SET salary = 120000.0 WHERE empid = 1"
        )
        assert history_db.execute(
            "SELECT * FROM salary_history"
        ).rows == [(1, 100000.0, 120000.0)]

    def test_large_raise_detection(self, history_db):
        """Intro scenario 1: flag raises above 50%."""
        history_db.execute(
            "CREATE TRIGGER raise_check ON employees AFTER UPDATE AS "
            "IF (new.salary > old.salary * 1.5) SEND EMAIL 'big raise'"
        )
        history_db.execute(
            "UPDATE employees SET salary = salary * 1.2 WHERE empid = 1"
        )
        assert history_db.notifications == []
        history_db.execute(
            "UPDATE employees SET salary = salary * 2 WHERE empid = 2"
        )
        assert history_db.notifications == ["big raise"]


class TestDeleteTriggers:
    def test_after_delete_sees_old_row(self, db):
        db.execute("CREATE TABLE t (a INT)")
        db.execute("CREATE TABLE tomb (a INT)")
        db.execute(
            "CREATE TRIGGER necro ON t AFTER DELETE AS "
            "INSERT INTO tomb VALUES (old.a)"
        )
        db.execute("INSERT INTO t VALUES (5), (6)")
        db.execute("DELETE FROM t WHERE a = 5")
        assert db.execute("SELECT * FROM tomb").rows == [(5,)]

    def test_new_is_null_on_delete(self, db):
        db.execute("CREATE TABLE t (a INT)")
        db.execute("CREATE TABLE echo (a INT)")
        db.execute(
            "CREATE TRIGGER check_null ON t AFTER DELETE AS "
            "IF (new.a IS NULL) INSERT INTO echo VALUES (old.a)"
        )
        db.execute("INSERT INTO t VALUES (1)")
        db.execute("DELETE FROM t")
        assert db.execute("SELECT * FROM echo").rows == [(1,)]


class TestTriggerManagement:
    def test_event_filtering(self, db):
        db.execute("CREATE TABLE t (a INT)")
        db.execute("CREATE TABLE echo (a INT)")
        db.execute(
            "CREATE TRIGGER only_delete ON t AFTER DELETE AS "
            "INSERT INTO echo VALUES (old.a)"
        )
        db.execute("INSERT INTO t VALUES (1)")
        db.execute("UPDATE t SET a = 2")
        assert len(db.execute("SELECT * FROM echo")) == 0

    def test_duplicate_trigger_name_rejected(self, db):
        from repro.errors import CatalogError

        db.execute("CREATE TABLE t (a INT)")
        db.execute(
            "CREATE TRIGGER t1 ON t AFTER INSERT AS NOTIFY 'a'"
        )
        with pytest.raises(CatalogError):
            db.execute("CREATE TRIGGER t1 ON t AFTER INSERT AS NOTIFY 'b'")

    def test_drop_missing_trigger(self, db):
        with pytest.raises(TriggerError):
            db.execute("DROP TRIGGER ghost")

    def test_trigger_on_missing_table(self, db):
        from repro.errors import CatalogError

        with pytest.raises(CatalogError):
            db.execute("CREATE TRIGGER t ON ghost AFTER INSERT AS NOTIFY")

    def test_correlated_subquery_against_new(self, db):
        """The paper's Notify trigger references NEW inside a subquery."""
        db.execute("CREATE TABLE log (day VARCHAR, uid VARCHAR, pid INT)")
        db.execute(
            "CREATE TRIGGER notify_10 ON log AFTER INSERT AS "
            "IF ((SELECT COUNT(DISTINCT pid) FROM log "
            "WHERE day = new.day AND uid = new.uid) > 2) "
            "SEND EMAIL 'too many accesses'"
        )
        for pid in (1, 2):
            db.execute(
                f"INSERT INTO log VALUES ('mon', 'eve', {pid})"
            )
        assert db.notifications == []
        db.execute("INSERT INTO log VALUES ('mon', 'eve', 3)")
        assert db.notifications == ["too many accesses"]
