"""Tests for statement-shipping replication (``repro.replication``).

Layers under test, bottom-up: statement journaling on the primary
(commit-time flush, rollback drops, DDL immediacy, trigger-depth
exclusion), the incremental :class:`JournalCursor` (rotation, torn-tail
stalls), WAL-style full reconstruction
(``recover(apply_statements=True)``), replica convergence over both
tailers, the audit invariant (BEFORE guards fire on the replica, AFTER
intents forward to the primary under original attribution and loop
back), degraded modes, and the differential: a primary plus replicas
produce *exactly* the audit log a single node produces for the same
statement stream — including when a replica dies mid-stream.
"""

from __future__ import annotations

import random
import time

import pytest

from repro.database import Database
from repro.durability.journal import AuditJournal, JournalCursor, scan_journal
from repro.errors import (
    AccessDeniedError,
    AuditUnavailableError,
    JournalCorruptionError,
    ReadOnlyReplicaError,
    ReplicationError,
)
from repro.replication import JournalFileTailer, ReplicaDatabase
from repro.server import AsyncServer, Connection

SCHEMA = """
CREATE TABLE patients (pid INT PRIMARY KEY, name VARCHAR, age INT);
CREATE TABLE log (uid VARCHAR, query VARCHAR, pid INT);
CREATE AUDIT EXPRESSION aud AS SELECT pid FROM patients WHERE age >= 30
    FOR SENSITIVE TABLE patients, PARTITION BY pid;
CREATE TRIGGER ins_log ON ACCESS TO aud AS
    INSERT INTO log SELECT user_id(), sql_text(), pid FROM accessed;
"""


def make_primary(tmp_path, **kwargs) -> Database:
    db = Database(
        user_id="admin", journal_path=tmp_path / "journal", **kwargs
    )
    db.replicate_statements = True
    db.execute_script(SCHEMA)
    for pid in range(1, 9):
        db.execute(
            f"INSERT INTO patients VALUES ({pid}, 'P{pid}', {24 + pid})"
        )
    return db


def log_rows(db: Database) -> list[tuple]:
    db.drain_triggers()
    return sorted(db.execute("SELECT uid, pid FROM log").rows)


def wait_until(predicate, timeout: float = 5.0) -> None:
    deadline = time.monotonic() + timeout
    while not predicate():
        assert time.monotonic() < deadline, "condition never became true"
        time.sleep(0.02)


# ----------------------------------------------------------------------
# statement journaling on the primary


class TestStatementJournaling:
    def kinds(self, path) -> list[tuple[int, str]]:
        return [
            (record.seq, record.kind)
            for record in scan_journal(path).records
        ]

    def test_committed_dml_and_ddl_are_journaled(self, tmp_path) -> None:
        db = make_primary(tmp_path)
        statements = [
            record.data["sql"]
            for record in scan_journal(tmp_path / "journal").records
            if record.kind == "statement"
        ]
        # schema DDL and every INSERT, in order
        assert any("CREATE TABLE patients" in sql for sql in statements)
        assert sum("INSERT INTO patients" in sql for sql in statements) == 8
        db.close()

    def test_rolled_back_dml_is_never_journaled(self, tmp_path) -> None:
        db = make_primary(tmp_path)
        db.execute("BEGIN")
        db.execute("INSERT INTO patients VALUES (90, 'ghost', 40)")
        db.execute("ROLLBACK")
        db.execute("BEGIN")
        db.execute("INSERT INTO patients VALUES (91, 'real', 41)")
        db.execute("COMMIT")
        statements = [
            record.data["sql"]
            for record in scan_journal(tmp_path / "journal").records
            if record.kind == "statement"
        ]
        assert not any("ghost" in sql for sql in statements)
        assert any("real" in sql for sql in statements)
        db.close()

    def test_trigger_body_dml_is_not_journaled(self, tmp_path) -> None:
        db = make_primary(tmp_path)
        db.session.user_id = "alice"
        db.execute("SELECT name FROM patients WHERE pid = 8")  # age 32: fires
        db.drain_triggers()
        assert log_rows(db) == [("alice", 8)]
        statements = [
            record.data["sql"]
            for record in scan_journal(tmp_path / "journal").records
            if record.kind == "statement"
        ]
        # the trigger's INSERT INTO log rides the intent record, not a
        # statement record — journaling it too would double-fire
        # replicas (CREATE TRIGGER's DDL text contains the body, hence
        # the startswith)
        assert not any(
            sql.strip().startswith("INSERT INTO log") for sql in statements
        )
        db.close()

    def test_full_reconstruction_from_journal(self, tmp_path) -> None:
        db = make_primary(tmp_path)
        db.session.user_id = "bob"
        db.execute("SELECT name FROM patients WHERE age >= 30")
        db.drain_triggers()
        expected_log = log_rows(db)
        # the age < 30 predicate stays outside the audit expression, so
        # this diagnostic read fires nothing on either database
        quiet = "SELECT pid, name, age FROM patients WHERE age < 30"
        expected_patients = sorted(db.execute(quiet).rows)
        assert len(expected_patients) == 5
        db.close()
        fresh = Database(user_id="admin")
        report = fresh.recover(tmp_path / "journal", apply_statements=True)
        assert report.statements_applied > 0
        assert log_rows(fresh) == expected_log
        assert sorted(fresh.execute(quiet).rows) == expected_patients
        fresh.close()


# ----------------------------------------------------------------------
# the incremental cursor


class TestJournalCursor:
    def test_incremental_poll_follows_appends(self, tmp_path) -> None:
        journal = AuditJournal(tmp_path / "j")
        cursor = JournalCursor(tmp_path / "j")
        journal.append("statement", {"sql": "one"})
        assert [r.data["sql"] for r in cursor.poll()] == ["one"]
        assert cursor.poll() == []
        journal.append("statement", {"sql": "two"})
        journal.append("statement", {"sql": "three"})
        assert [r.data["sql"] for r in cursor.poll()] == ["two", "three"]
        journal.close()

    def test_cursor_follows_segment_rotation(self, tmp_path) -> None:
        journal = AuditJournal(tmp_path / "j", segment_max_bytes=256)
        cursor = JournalCursor(tmp_path / "j")
        for i in range(40):
            journal.append("statement", {"sql": f"statement-{i:04d}"})
        records = []
        while True:
            batch = cursor.poll()
            if not batch:
                break
            records.extend(batch)
        assert [r.seq for r in records] == list(range(40))
        assert len({r.segment for r in records}) > 1  # really rotated
        journal.close()

    def test_torn_tail_stalls_then_resumes(self, tmp_path) -> None:
        journal = AuditJournal(tmp_path / "j")
        journal.append("statement", {"sql": "whole"})
        cursor = JournalCursor(tmp_path / "j")
        assert len(cursor.poll()) == 1
        # simulate an append caught mid-write: no newline yet
        segment = sorted((tmp_path / "j").glob("audit-*.jsonl"))[-1]
        with open(segment, "ab") as handle:
            handle.write(b"deadbeef {\"truncated")
        assert cursor.poll() == []  # stalled, not corrupt
        with open(segment, "ab") as handle:
            handle.write(b"\n")
        # a *completed* bad line on the last segment is still treated as
        # in-progress noise only while trailing; interior damage raises
        journal.close()

    def test_interior_corruption_raises(self, tmp_path) -> None:
        journal = AuditJournal(tmp_path / "j")
        journal.append("statement", {"sql": "one"})
        journal.close()
        segment = sorted((tmp_path / "j").glob("audit-*.jsonl"))[-1]
        with open(segment, "ab") as handle:
            handle.write(b"garbage line\n")
            handle.write(b"more garbage\n")
        # rotate past it so the damage is interior
        with open(segment.with_name("audit-000001.jsonl"), "wb") as handle:
            handle.write(b"")
        cursor = JournalCursor(tmp_path / "j")
        with pytest.raises(JournalCorruptionError):
            while cursor.poll():
                pass

    def test_from_seq_skips_already_applied(self, tmp_path) -> None:
        journal = AuditJournal(tmp_path / "j")
        for i in range(6):
            journal.append("statement", {"sql": f"s{i}"})
        cursor = JournalCursor(tmp_path / "j", from_seq=4)
        assert [r.seq for r in cursor.poll()] == [4, 5]
        journal.close()


# ----------------------------------------------------------------------
# replica over the file tailer (in-process primary)


class TestFileReplica:
    def test_replica_converges_and_serves_reads(self, tmp_path) -> None:
        primary = make_primary(tmp_path)
        replica = ReplicaDatabase.from_journal(
            tmp_path / "journal", primary=primary
        )
        try:
            token = primary.replication_token()
            assert replica.wait_for(token, timeout=5.0)
            result = replica.execute(
                "SELECT name FROM patients WHERE pid = 2", user_id="reader"
            )
            assert result.rows == [("P2",)]
        finally:
            replica.close()
            primary.close()

    def test_replica_rejects_writes(self, tmp_path) -> None:
        primary = make_primary(tmp_path)
        replica = ReplicaDatabase.from_journal(
            tmp_path / "journal", primary=primary
        )
        try:
            assert replica.wait_for(
                primary.replication_token(), timeout=5.0
            )
            with pytest.raises(ReadOnlyReplicaError):
                replica.execute("INSERT INTO patients VALUES (99, 'x', 50)")
            with pytest.raises(ReadOnlyReplicaError):
                replica.execute("DROP TABLE patients")
        finally:
            replica.close()
            primary.close()

    def test_forwarded_intent_lands_on_primary_with_attribution(
        self, tmp_path
    ) -> None:
        primary = make_primary(tmp_path)
        replica = ReplicaDatabase.from_journal(
            tmp_path / "journal", primary=primary
        )
        try:
            assert replica.wait_for(
                primary.replication_token(), timeout=5.0
            )
            # age >= 30 ⇒ pids 6,7,8 are sensitive
            replica.execute(
                "SELECT name FROM patients WHERE age >= 30",
                user_id="dr_remote",
            )
            # fires on the PRIMARY, attributed to the replica's reader
            wait_until(lambda: log_rows(primary) == [
                ("dr_remote", 6), ("dr_remote", 7), ("dr_remote", 8),
            ])
            # ... and loops back into the replica's own audit log
            token = primary.replication_token()
            assert replica.wait_for(token, timeout=5.0)
            wait_until(lambda: sorted(replica.database.execute(
                "SELECT uid, pid FROM log"
            ).rows) == [
                ("dr_remote", 6), ("dr_remote", 7), ("dr_remote", 8),
            ])
        finally:
            replica.close()
            primary.close()

    def test_before_deny_fires_on_the_replica(self, tmp_path) -> None:
        primary = make_primary(tmp_path)
        primary.execute(
            "CREATE TRIGGER guard ON ACCESS TO aud BEFORE AS "
            "IF ((SELECT COUNT(*) FROM accessed) > 2) DENY 'too many'"
        )
        replica = ReplicaDatabase.from_journal(
            tmp_path / "journal", primary=primary
        )
        try:
            assert replica.wait_for(
                primary.replication_token(), timeout=5.0
            )
            with pytest.raises(AccessDeniedError):
                replica.execute(
                    "SELECT name FROM patients WHERE age >= 30",
                    user_id="greedy",
                )
            # §II semantics, same as single-node: the rows are withheld
            # but the *attempted* access is still audited — forwarded to
            # the primary like any other firing
            wait_until(lambda: log_rows(primary) == [
                ("greedy", 6), ("greedy", 7), ("greedy", 8),
            ])
        finally:
            replica.close()
            primary.close()

    def test_fail_closed_withholds_rows_when_forwarding_breaks(
        self, tmp_path
    ) -> None:
        primary = make_primary(tmp_path)

        def broken_sink(accessed, sql, user):
            raise ReplicationError("primary unreachable")

        replica = ReplicaDatabase(
            JournalFileTailer(tmp_path / "journal"),
            broken_sink,
            audit_policy="fail_closed",
        )
        try:
            assert replica.wait_for(
                primary.replication_token(), timeout=5.0
            )
            with pytest.raises(AuditUnavailableError):
                replica.execute(
                    "SELECT name FROM patients WHERE age >= 30",
                    user_id="blocked",
                )
        finally:
            replica.close()
            primary.close()

    def test_fail_open_records_a_gap_instead(self, tmp_path) -> None:
        primary = make_primary(tmp_path)

        def broken_sink(accessed, sql, user):
            raise ReplicationError("primary unreachable")

        replica = ReplicaDatabase(
            JournalFileTailer(tmp_path / "journal"),
            broken_sink,
            audit_policy="fail_open",
        )
        try:
            assert replica.wait_for(
                primary.replication_token(), timeout=5.0
            )
            result = replica.execute(
                "SELECT name FROM patients WHERE age >= 30",
                user_id="lucky",
            )
            assert len(result.rows) == 3  # rows served
            health = replica.database.audit_trail_health()
            assert health["audit_gaps"] == 1  # but the gap is on record
        finally:
            replica.close()
            primary.close()

    def test_lag_is_observable(self, tmp_path) -> None:
        primary = make_primary(tmp_path)
        replica = ReplicaDatabase.from_journal(
            tmp_path / "journal", primary=primary
        )
        try:
            assert replica.wait_for(
                primary.replication_token(), timeout=5.0
            )
            lag = replica.replication_lag()
            assert lag["lag_records"] == 0
            assert not lag["stalled"]
            assert lag["records_applied"] > 0
        finally:
            replica.close()
            primary.close()


# ----------------------------------------------------------------------
# replica over the wire (socket tailer against a live server)


class TestSocketReplica:
    def test_wire_replica_full_loop(self, tmp_path) -> None:
        primary = make_primary(tmp_path)
        with AsyncServer(primary, close_database=False) as server:
            replica = ReplicaDatabase.from_primary(server.host, server.port)
            try:
                with Connection(
                    server.host, server.port, user_id="writer"
                ) as conn:
                    conn.execute(
                        "INSERT INTO patients VALUES (50, 'P50', 45)"
                    )
                    token = conn.last_token
                assert token is not None
                assert replica.wait_for(token, timeout=5.0)
                result = replica.execute(
                    "SELECT name FROM patients WHERE pid = 50",
                    user_id="dr_wire",
                )
                assert result.rows == [("P50",)]
                wait_until(
                    lambda: ("dr_wire", 50) in log_rows(primary)
                )
                # loop-back into the replica's audit log
                assert replica.wait_for(
                    primary.replication_token(), timeout=5.0
                )
                wait_until(lambda: ("dr_wire", 50) in sorted(
                    replica.database.execute(
                        "SELECT uid, pid FROM log"
                    ).rows
                ))
            finally:
                replica.close()
        primary.close()

    def test_dead_stream_stalls_the_replica(self, tmp_path) -> None:
        primary = make_primary(tmp_path)
        server = AsyncServer(primary, close_database=False).start()
        replica = ReplicaDatabase.from_primary(server.host, server.port)
        try:
            assert replica.wait_for(
                primary.replication_token(), timeout=5.0
            )
            server.shutdown()
            wait_until(lambda: replica.stalled)
            with pytest.raises(ReplicationError):
                replica.execute("SELECT name FROM patients WHERE pid = 1")
        finally:
            replica.close()
            primary.close()


# ----------------------------------------------------------------------
# the differential: replicas change nothing about the audit log


class TestAuditDifferential:
    QUERIES = [
        "SELECT name FROM patients WHERE age >= 30",
        "SELECT COUNT(*) FROM patients WHERE age >= 32",
        "SELECT name FROM patients WHERE pid = 7",
        "SELECT pid FROM patients WHERE age >= 30 ORDER BY pid",
        "SELECT name FROM patients WHERE pid = 2",  # not sensitive
    ]
    USERS = ["alice", "bob", "carol"]

    def _workload(self, seed: int, n: int = 24) -> list[tuple[str, str]]:
        rng = random.Random(seed)
        return [
            (rng.choice(self.USERS), rng.choice(self.QUERIES))
            for _ in range(n)
        ]

    def full_log(self, db: Database) -> list[tuple]:
        db.drain_triggers()
        return sorted(db.execute("SELECT uid, query, pid FROM log").rows)

    def test_reads_across_two_replicas_match_single_node(
        self, tmp_path
    ) -> None:
        workload = self._workload(seed=8)
        # ground truth: every query on one single-node database
        single = Database(user_id="admin")
        single.execute_script(SCHEMA)
        for pid in range(1, 9):
            single.execute(
                f"INSERT INTO patients VALUES ({pid}, 'P{pid}', {24 + pid})"
            )
        for user, sql in workload:
            with single.session.override(sql, user):
                single.execute(sql)
        expected = self.full_log(single)
        single.close()

        # same stream, spread across the primary and two replicas
        primary = make_primary(tmp_path)
        replicas = [
            ReplicaDatabase.from_journal(
                tmp_path / "journal", primary=primary, name=f"replica{i}"
            )
            for i in range(2)
        ]
        try:
            token = primary.replication_token()
            for replica in replicas:
                assert replica.wait_for(token, timeout=5.0)
            for index, (user, sql) in enumerate(workload):
                target = index % 3
                if target == 0:
                    with primary.session.override(sql, user):
                        primary.execute(sql)
                else:
                    replicas[target - 1].execute(sql, user_id=user)
            wait_until(lambda: self.full_log(primary) == expected)
            # and each replica's own audit log converges to the same
            token = primary.replication_token()
            for replica in replicas:
                assert replica.wait_for(token, timeout=5.0)
                wait_until(lambda r=replica: sorted(r.database.execute(
                    "SELECT uid, query, pid FROM log"
                ).rows) == expected)
        finally:
            for replica in replicas:
                replica.close()
            primary.close()

    def test_killing_a_replica_loses_zero_firings(self, tmp_path) -> None:
        primary = make_primary(tmp_path)
        replica = ReplicaDatabase.from_journal(
            tmp_path / "journal", primary=primary
        )
        fired: list[tuple[str, str]] = []
        try:
            assert replica.wait_for(
                primary.replication_token(), timeout=5.0
            )
            for index in range(10):
                sql = "SELECT name FROM patients WHERE age >= 30"
                user = f"u{index}"
                replica.execute(sql, user_id=user)
                fired.append((user, sql))
                if index == 4:
                    # kill mid-stream: the applier stops, the engine dies
                    replica.close()
                    # every already-served read either reached the
                    # primary's journal or raised — rerun the rest on a
                    # fresh replica
                    replica = ReplicaDatabase.from_journal(
                        tmp_path / "journal", primary=primary
                    )
                    assert replica.wait_for(
                        primary.replication_token(), timeout=5.0
                    )
            expected = sorted(
                (user, pid) for user, _ in fired for pid in (6, 7, 8)
            )
            wait_until(lambda: log_rows(primary) == expected)
        finally:
            replica.close()
            primary.close()
