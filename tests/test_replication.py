"""Tests for statement-shipping replication (``repro.replication``).

Layers under test, bottom-up: statement journaling on the primary
(commit-time flush, rollback drops, DDL immediacy, trigger-depth
exclusion), the incremental :class:`JournalCursor` (rotation, torn-tail
stalls), WAL-style full reconstruction
(``recover(apply_statements=True)``), replica convergence over both
tailers, the audit invariant (BEFORE guards fire on the replica, AFTER
intents forward to the primary under original attribution and loop
back), degraded modes, and the differential: a primary plus replicas
produce *exactly* the audit log a single node produces for the same
statement stream — including when a replica dies mid-stream.
"""

from __future__ import annotations

import random
import socket
import threading
import time

import pytest

from repro.database import Database
from repro.durability.journal import AuditJournal, JournalCursor, scan_journal
from repro.errors import (
    AccessDeniedError,
    AuditUnavailableError,
    JournalCorruptionError,
    ReadOnlyReplicaError,
    ReplicationError,
)
from repro.replication import JournalFileTailer, ReplicaDatabase
from repro.replication.tailer import JournalSocketTailer
from repro.server import AsyncServer, Connection, Server
from repro.server import protocol

SCHEMA = """
CREATE TABLE patients (pid INT PRIMARY KEY, name VARCHAR, age INT);
CREATE TABLE log (uid VARCHAR, query VARCHAR, pid INT);
CREATE AUDIT EXPRESSION aud AS SELECT pid FROM patients WHERE age >= 30
    FOR SENSITIVE TABLE patients, PARTITION BY pid;
CREATE TRIGGER ins_log ON ACCESS TO aud AS
    INSERT INTO log SELECT user_id(), sql_text(), pid FROM accessed;
"""

#: the same catalog *before* the trigger DDL — what a replica sees in
#: the window between the primary's CREATE TRIGGER and applying it
SCHEMA_NO_TRIGGER = """
CREATE TABLE patients (pid INT PRIMARY KEY, name VARCHAR, age INT);
CREATE TABLE log (uid VARCHAR, query VARCHAR, pid INT);
CREATE AUDIT EXPRESSION aud AS SELECT pid FROM patients WHERE age >= 30
    FOR SENSITIVE TABLE patients, PARTITION BY pid;
"""


def make_primary(tmp_path, **kwargs) -> Database:
    db = Database(
        user_id="admin", journal_path=tmp_path / "journal", **kwargs
    )
    db.replicate_statements = True
    db.execute_script(SCHEMA)
    for pid in range(1, 9):
        db.execute(
            f"INSERT INTO patients VALUES ({pid}, 'P{pid}', {24 + pid})"
        )
    return db


def log_rows(db: Database) -> list[tuple]:
    db.drain_triggers()
    return sorted(db.execute("SELECT uid, pid FROM log").rows)


def wait_until(predicate, timeout: float = 5.0) -> None:
    deadline = time.monotonic() + timeout
    while not predicate():
        assert time.monotonic() < deadline, "condition never became true"
        time.sleep(0.02)


# ----------------------------------------------------------------------
# statement journaling on the primary


class TestStatementJournaling:
    def kinds(self, path) -> list[tuple[int, str]]:
        return [
            (record.seq, record.kind)
            for record in scan_journal(path).records
        ]

    def test_committed_dml_and_ddl_are_journaled(self, tmp_path) -> None:
        db = make_primary(tmp_path)
        statements = [
            record.data["sql"]
            for record in scan_journal(tmp_path / "journal").records
            if record.kind == "statement"
        ]
        # schema DDL and every INSERT, in order
        assert any("CREATE TABLE patients" in sql for sql in statements)
        assert sum("INSERT INTO patients" in sql for sql in statements) == 8
        db.close()

    def test_rolled_back_dml_is_never_journaled(self, tmp_path) -> None:
        db = make_primary(tmp_path)
        db.execute("BEGIN")
        db.execute("INSERT INTO patients VALUES (90, 'ghost', 40)")
        db.execute("ROLLBACK")
        db.execute("BEGIN")
        db.execute("INSERT INTO patients VALUES (91, 'real', 41)")
        db.execute("COMMIT")
        statements = [
            record.data["sql"]
            for record in scan_journal(tmp_path / "journal").records
            if record.kind == "statement"
        ]
        assert not any("ghost" in sql for sql in statements)
        assert any("real" in sql for sql in statements)
        db.close()

    def test_trigger_body_dml_is_not_journaled(self, tmp_path) -> None:
        db = make_primary(tmp_path)
        db.session.user_id = "alice"
        db.execute("SELECT name FROM patients WHERE pid = 8")  # age 32: fires
        db.drain_triggers()
        assert log_rows(db) == [("alice", 8)]
        statements = [
            record.data["sql"]
            for record in scan_journal(tmp_path / "journal").records
            if record.kind == "statement"
        ]
        # the trigger's INSERT INTO log rides the intent record, not a
        # statement record — journaling it too would double-fire
        # replicas (CREATE TRIGGER's DDL text contains the body, hence
        # the startswith)
        assert not any(
            sql.strip().startswith("INSERT INTO log") for sql in statements
        )
        db.close()

    def test_full_reconstruction_from_journal(self, tmp_path) -> None:
        db = make_primary(tmp_path)
        db.session.user_id = "bob"
        db.execute("SELECT name FROM patients WHERE age >= 30")
        db.drain_triggers()
        expected_log = log_rows(db)
        # the age < 30 predicate stays outside the audit expression, so
        # this diagnostic read fires nothing on either database
        quiet = "SELECT pid, name, age FROM patients WHERE age < 30"
        expected_patients = sorted(db.execute(quiet).rows)
        assert len(expected_patients) == 5
        db.close()
        fresh = Database(user_id="admin")
        report = fresh.recover(tmp_path / "journal", apply_statements=True)
        assert report.statements_applied > 0
        assert log_rows(fresh) == expected_log
        assert sorted(fresh.execute(quiet).rows) == expected_patients
        fresh.close()


# ----------------------------------------------------------------------
# the incremental cursor


class TestJournalCursor:
    def test_incremental_poll_follows_appends(self, tmp_path) -> None:
        journal = AuditJournal(tmp_path / "j")
        cursor = JournalCursor(tmp_path / "j")
        journal.append("statement", {"sql": "one"})
        assert [r.data["sql"] for r in cursor.poll()] == ["one"]
        assert cursor.poll() == []
        journal.append("statement", {"sql": "two"})
        journal.append("statement", {"sql": "three"})
        assert [r.data["sql"] for r in cursor.poll()] == ["two", "three"]
        journal.close()

    def test_cursor_follows_segment_rotation(self, tmp_path) -> None:
        journal = AuditJournal(tmp_path / "j", segment_max_bytes=256)
        cursor = JournalCursor(tmp_path / "j")
        for i in range(40):
            journal.append("statement", {"sql": f"statement-{i:04d}"})
        records = []
        while True:
            batch = cursor.poll()
            if not batch:
                break
            records.extend(batch)
        assert [r.seq for r in records] == list(range(40))
        assert len({r.segment for r in records}) > 1  # really rotated
        journal.close()

    def test_torn_tail_stalls_then_resumes(self, tmp_path) -> None:
        journal = AuditJournal(tmp_path / "j")
        journal.append("statement", {"sql": "whole"})
        cursor = JournalCursor(tmp_path / "j")
        assert len(cursor.poll()) == 1
        # simulate an append caught mid-write: no newline yet
        segment = sorted((tmp_path / "j").glob("audit-*.jsonl"))[-1]
        with open(segment, "ab") as handle:
            handle.write(b"deadbeef {\"truncated")
        assert cursor.poll() == []  # stalled, not corrupt
        with open(segment, "ab") as handle:
            handle.write(b"\n")
        # a *completed* bad line on the last segment is still treated as
        # in-progress noise only while trailing; interior damage raises
        journal.close()

    def test_interior_corruption_raises(self, tmp_path) -> None:
        journal = AuditJournal(tmp_path / "j")
        journal.append("statement", {"sql": "one"})
        journal.close()
        segment = sorted((tmp_path / "j").glob("audit-*.jsonl"))[-1]
        with open(segment, "ab") as handle:
            handle.write(b"garbage line\n")
            handle.write(b"more garbage\n")
        # rotate past it so the damage is interior
        with open(segment.with_name("audit-000001.jsonl"), "wb") as handle:
            handle.write(b"")
        cursor = JournalCursor(tmp_path / "j")
        with pytest.raises(JournalCorruptionError):
            while cursor.poll():
                pass

    def test_from_seq_skips_already_applied(self, tmp_path) -> None:
        journal = AuditJournal(tmp_path / "j")
        for i in range(6):
            journal.append("statement", {"sql": f"s{i}"})
        cursor = JournalCursor(tmp_path / "j", from_seq=4)
        assert [r.seq for r in cursor.poll()] == [4, 5]
        journal.close()


# ----------------------------------------------------------------------
# replica over the file tailer (in-process primary)


class TestFileReplica:
    def test_replica_converges_and_serves_reads(self, tmp_path) -> None:
        primary = make_primary(tmp_path)
        replica = ReplicaDatabase.from_journal(
            tmp_path / "journal", primary=primary
        )
        try:
            token = primary.replication_token()
            assert replica.wait_for(token, timeout=5.0)
            result = replica.execute(
                "SELECT name FROM patients WHERE pid = 2", user_id="reader"
            )
            assert result.rows == [("P2",)]
        finally:
            replica.close()
            primary.close()

    def test_replica_rejects_writes(self, tmp_path) -> None:
        primary = make_primary(tmp_path)
        replica = ReplicaDatabase.from_journal(
            tmp_path / "journal", primary=primary
        )
        try:
            assert replica.wait_for(
                primary.replication_token(), timeout=5.0
            )
            with pytest.raises(ReadOnlyReplicaError):
                replica.execute("INSERT INTO patients VALUES (99, 'x', 50)")
            with pytest.raises(ReadOnlyReplicaError):
                replica.execute("DROP TABLE patients")
        finally:
            replica.close()
            primary.close()

    def test_forwarded_intent_lands_on_primary_with_attribution(
        self, tmp_path
    ) -> None:
        primary = make_primary(tmp_path)
        replica = ReplicaDatabase.from_journal(
            tmp_path / "journal", primary=primary
        )
        try:
            assert replica.wait_for(
                primary.replication_token(), timeout=5.0
            )
            # age >= 30 ⇒ pids 6,7,8 are sensitive
            replica.execute(
                "SELECT name FROM patients WHERE age >= 30",
                user_id="dr_remote",
            )
            # fires on the PRIMARY, attributed to the replica's reader
            wait_until(lambda: log_rows(primary) == [
                ("dr_remote", 6), ("dr_remote", 7), ("dr_remote", 8),
            ])
            # ... and loops back into the replica's own audit log
            token = primary.replication_token()
            assert replica.wait_for(token, timeout=5.0)
            wait_until(lambda: sorted(replica.database.execute(
                "SELECT uid, pid FROM log"
            ).rows) == [
                ("dr_remote", 6), ("dr_remote", 7), ("dr_remote", 8),
            ])
        finally:
            replica.close()
            primary.close()

    def test_before_deny_fires_on_the_replica(self, tmp_path) -> None:
        primary = make_primary(tmp_path)
        primary.execute(
            "CREATE TRIGGER guard ON ACCESS TO aud BEFORE AS "
            "IF ((SELECT COUNT(*) FROM accessed) > 2) DENY 'too many'"
        )
        replica = ReplicaDatabase.from_journal(
            tmp_path / "journal", primary=primary
        )
        try:
            assert replica.wait_for(
                primary.replication_token(), timeout=5.0
            )
            with pytest.raises(AccessDeniedError):
                replica.execute(
                    "SELECT name FROM patients WHERE age >= 30",
                    user_id="greedy",
                )
            # §II semantics, same as single-node: the rows are withheld
            # but the *attempted* access is still audited — forwarded to
            # the primary like any other firing
            wait_until(lambda: log_rows(primary) == [
                ("greedy", 6), ("greedy", 7), ("greedy", 8),
            ])
        finally:
            replica.close()
            primary.close()

    def test_fail_closed_withholds_rows_when_forwarding_breaks(
        self, tmp_path
    ) -> None:
        primary = make_primary(tmp_path)

        def broken_sink(accessed, sql, user):
            raise ReplicationError("primary unreachable")

        replica = ReplicaDatabase(
            JournalFileTailer(tmp_path / "journal"),
            broken_sink,
            audit_policy="fail_closed",
        )
        try:
            assert replica.wait_for(
                primary.replication_token(), timeout=5.0
            )
            with pytest.raises(AuditUnavailableError):
                replica.execute(
                    "SELECT name FROM patients WHERE age >= 30",
                    user_id="blocked",
                )
        finally:
            replica.close()
            primary.close()

    def test_fail_open_records_a_gap_instead(self, tmp_path) -> None:
        primary = make_primary(tmp_path)

        def broken_sink(accessed, sql, user):
            raise ReplicationError("primary unreachable")

        replica = ReplicaDatabase(
            JournalFileTailer(tmp_path / "journal"),
            broken_sink,
            audit_policy="fail_open",
        )
        try:
            assert replica.wait_for(
                primary.replication_token(), timeout=5.0
            )
            result = replica.execute(
                "SELECT name FROM patients WHERE age >= 30",
                user_id="lucky",
            )
            assert len(result.rows) == 3  # rows served
            health = replica.database.audit_trail_health()
            assert health["audit_gaps"] == 1  # but the gap is on record
        finally:
            replica.close()
            primary.close()

    def test_lag_is_observable(self, tmp_path) -> None:
        primary = make_primary(tmp_path)
        replica = ReplicaDatabase.from_journal(
            tmp_path / "journal", primary=primary
        )
        try:
            assert replica.wait_for(
                primary.replication_token(), timeout=5.0
            )
            lag = replica.replication_lag()
            assert lag["lag_records"] == 0
            assert not lag["stalled"]
            assert lag["records_applied"] > 0
        finally:
            replica.close()
            primary.close()


# ----------------------------------------------------------------------
# replica over the wire (socket tailer against a live server)


class TestSocketReplica:
    def test_wire_replica_full_loop(self, tmp_path) -> None:
        primary = make_primary(tmp_path)
        with AsyncServer(primary, close_database=False) as server:
            replica = ReplicaDatabase.from_primary(server.host, server.port)
            try:
                with Connection(
                    server.host, server.port, user_id="writer"
                ) as conn:
                    conn.execute(
                        "INSERT INTO patients VALUES (50, 'P50', 45)"
                    )
                    token = conn.last_token
                assert token is not None
                assert replica.wait_for(token, timeout=5.0)
                result = replica.execute(
                    "SELECT name FROM patients WHERE pid = 50",
                    user_id="dr_wire",
                )
                assert result.rows == [("P50",)]
                wait_until(
                    lambda: ("dr_wire", 50) in log_rows(primary)
                )
                # loop-back into the replica's audit log
                assert replica.wait_for(
                    primary.replication_token(), timeout=5.0
                )
                wait_until(lambda: ("dr_wire", 50) in sorted(
                    replica.database.execute(
                        "SELECT uid, pid FROM log"
                    ).rows
                ))
            finally:
                replica.close()
        primary.close()

    def test_dead_stream_stalls_the_replica(self, tmp_path) -> None:
        primary = make_primary(tmp_path)
        server = AsyncServer(primary, close_database=False).start()
        replica = ReplicaDatabase.from_primary(server.host, server.port)
        try:
            assert replica.wait_for(
                primary.replication_token(), timeout=5.0
            )
            server.shutdown()
            wait_until(lambda: replica.stalled)
            with pytest.raises(ReplicationError):
                replica.execute("SELECT name FROM patients WHERE pid = 1")
        finally:
            replica.close()
            primary.close()


# ----------------------------------------------------------------------
# the differential: replicas change nothing about the audit log


class TestAuditDifferential:
    QUERIES = [
        "SELECT name FROM patients WHERE age >= 30",
        "SELECT COUNT(*) FROM patients WHERE age >= 32",
        "SELECT name FROM patients WHERE pid = 7",
        "SELECT pid FROM patients WHERE age >= 30 ORDER BY pid",
        "SELECT name FROM patients WHERE pid = 2",  # not sensitive
    ]
    USERS = ["alice", "bob", "carol"]

    def _workload(self, seed: int, n: int = 24) -> list[tuple[str, str]]:
        rng = random.Random(seed)
        return [
            (rng.choice(self.USERS), rng.choice(self.QUERIES))
            for _ in range(n)
        ]

    def full_log(self, db: Database) -> list[tuple]:
        db.drain_triggers()
        return sorted(db.execute("SELECT uid, query, pid FROM log").rows)

    def test_reads_across_two_replicas_match_single_node(
        self, tmp_path
    ) -> None:
        workload = self._workload(seed=8)
        # ground truth: every query on one single-node database
        single = Database(user_id="admin")
        single.execute_script(SCHEMA)
        for pid in range(1, 9):
            single.execute(
                f"INSERT INTO patients VALUES ({pid}, 'P{pid}', {24 + pid})"
            )
        for user, sql in workload:
            with single.session.override(sql, user):
                single.execute(sql)
        expected = self.full_log(single)
        single.close()

        # same stream, spread across the primary and two replicas
        primary = make_primary(tmp_path)
        replicas = [
            ReplicaDatabase.from_journal(
                tmp_path / "journal", primary=primary, name=f"replica{i}"
            )
            for i in range(2)
        ]
        try:
            token = primary.replication_token()
            for replica in replicas:
                assert replica.wait_for(token, timeout=5.0)
            for index, (user, sql) in enumerate(workload):
                target = index % 3
                if target == 0:
                    with primary.session.override(sql, user):
                        primary.execute(sql)
                else:
                    replicas[target - 1].execute(sql, user_id=user)
            wait_until(lambda: self.full_log(primary) == expected)
            # and each replica's own audit log converges to the same
            token = primary.replication_token()
            for replica in replicas:
                assert replica.wait_for(token, timeout=5.0)
                wait_until(lambda r=replica: sorted(r.database.execute(
                    "SELECT uid, query, pid FROM log"
                ).rows) == expected)
        finally:
            for replica in replicas:
                replica.close()
            primary.close()

    def test_killing_a_replica_loses_zero_firings(self, tmp_path) -> None:
        primary = make_primary(tmp_path)
        replica = ReplicaDatabase.from_journal(
            tmp_path / "journal", primary=primary
        )
        fired: list[tuple[str, str]] = []
        try:
            assert replica.wait_for(
                primary.replication_token(), timeout=5.0
            )
            for index in range(10):
                sql = "SELECT name FROM patients WHERE age >= 30"
                user = f"u{index}"
                replica.execute(sql, user_id=user)
                fired.append((user, sql))
                if index == 4:
                    # kill mid-stream: the applier stops, the engine dies
                    replica.close()
                    # every already-served read either reached the
                    # primary's journal or raised — rerun the rest on a
                    # fresh replica
                    replica = ReplicaDatabase.from_journal(
                        tmp_path / "journal", primary=primary
                    )
                    assert replica.wait_for(
                        primary.replication_token(), timeout=5.0
                    )
            expected = sorted(
                (user, pid) for user, _ in fired for pid in (6, 7, 8)
            )
            wait_until(lambda: log_rows(primary) == expected)
        finally:
            replica.close()
            primary.close()


# ----------------------------------------------------------------------
# stream framing and liveness (regression suite for the review findings)


class TestSocketTailerFraming:
    def _fake_stream_server(self, payload_chunks, pauses):
        """A minimal subscribe endpoint that dribbles bytes on demand.

        Speaks the handshake for real, then writes ``payload_chunks``
        with ``pauses`` seconds of silence between them — longer than
        the tailer's poll interval, so a frame straddles several
        ``poll()`` calls.
        """
        listener = socket.socket()
        listener.bind(("127.0.0.1", 0))
        listener.listen(1)

        def serve() -> None:
            sock, _ = listener.accept()
            try:
                assert protocol.recv_frame(sock)["type"] == "hello"
                protocol.send_frame(sock, {
                    "type": "hello_ok",
                    "server": "fake",
                    "protocol": protocol.PROTOCOL_VERSION,
                    "session": 1,
                })
                assert protocol.recv_frame(sock)["type"] == "subscribe"
                protocol.send_frame(
                    sock, {"type": "subscribe_ok", "next_seq": 5}
                )
                for chunk, pause in zip(payload_chunks, pauses):
                    sock.sendall(chunk)
                    time.sleep(pause)
            finally:
                sock.close()

        thread = threading.Thread(target=serve, daemon=True)
        thread.start()
        return listener, thread

    def test_partial_frame_across_polls_is_not_lost(self) -> None:
        # a journal frame whose bytes straddle idle poll() calls must
        # arrive intact: the old recv-timeout idle signal discarded the
        # partially-read header and desynchronized the stream
        frame = protocol.frame_bytes({
            "type": "journal",
            "records": [
                {"seq": 5, "kind": "statement", "data": {"sql": "X"}}
            ],
            "primary_seq": 6,
        })
        chunks = [frame[:3], frame[3:11], frame[11:]]
        listener, thread = self._fake_stream_server(
            chunks, pauses=[0.15, 0.15, 0.1]
        )
        tailer = JournalSocketTailer(
            "127.0.0.1", listener.getsockname()[1], poll_timeout=0.02
        )
        try:
            records: list = []
            deadline = time.monotonic() + 5.0
            while not records and time.monotonic() < deadline:
                polled, _ = tailer.poll()
                records.extend(polled)
            assert [r.seq for r in records] == [5]
            assert records[0].data == {"sql": "X"}
            assert tailer.primary_seq == 6
        finally:
            tailer.close()
            listener.close()
            thread.join(timeout=5.0)

    def test_quiet_stream_polls_return_empty(self) -> None:
        # idleness is select()-detected: no bytes -> ([], primary_seq),
        # repeatedly, without touching stream position
        listener, thread = self._fake_stream_server([b""], pauses=[0.5])
        tailer = JournalSocketTailer(
            "127.0.0.1", listener.getsockname()[1], poll_timeout=0.02
        )
        try:
            for _ in range(3):
                assert tailer.poll() == ([], 5)
        finally:
            tailer.close()
            listener.close()
            thread.join(timeout=5.0)


class TestStreamLiveness:
    def _subscribe_raw(self, server, from_seq: int) -> socket.socket:
        sock = socket.create_connection(
            (server.host, server.port), timeout=10.0
        )
        protocol.send_frame(sock, {
            "type": "hello",
            "protocol": protocol.PROTOCOL_VERSION,
            "user": "replica",
            "password": None,
        })
        assert protocol.recv_frame(sock)["type"] == "hello_ok"
        protocol.send_frame(
            sock, {"type": "subscribe", "from_seq": from_seq}
        )
        frame = protocol.recv_frame(sock)
        assert frame["type"] == "subscribe_ok"
        return sock

    def test_threaded_server_sends_idle_heartbeats(self, tmp_path) -> None:
        # an idle threaded primary must still refresh primary_seq (the
        # replica's lag metric and liveness signal both ride on it)
        primary = make_primary(tmp_path)
        server = Server(primary, close_database=False).start()
        try:
            head = primary.journal.next_seq
            sock = self._subscribe_raw(server, from_seq=head)
            try:
                sock.settimeout(5.0)
                frame = protocol.recv_frame(sock)
                assert frame["type"] == "journal"
                assert frame["records"] == []
                assert frame["primary_seq"] == head
            finally:
                sock.close()
        finally:
            server.shutdown()
            primary.close()

    def test_async_stream_ends_on_subscriber_half_close(
        self, tmp_path
    ) -> None:
        # a subscriber that SHUT_WRs its side must end the stream task
        # (the old loop condition never consulted closed_event and spun
        # on a half-closed peer forever)
        primary = make_primary(tmp_path)
        server = AsyncServer(primary, close_database=False).start()
        try:
            sock = self._subscribe_raw(
                server, from_seq=primary.journal.next_seq
            )
            try:
                wait_until(lambda: len(server._connections) == 1)
                sock.shutdown(socket.SHUT_WR)
                wait_until(lambda: len(server._connections) == 0)
            finally:
                sock.close()
        finally:
            server.shutdown()
            primary.close()


class TestCatalogLagForwarding:
    def test_lagging_trigger_catalog_still_forwards(self, tmp_path) -> None:
        # DDL-lag window: the replica's catalog predates the primary's
        # CREATE TRIGGER. Forwarding must not be gated on the replica's
        # (stale) view — the primary's triggers still fire and log.
        primary = make_primary(tmp_path)
        lagging = Database(user_id="dr_lag")
        lagging.execute_script(SCHEMA_NO_TRIGGER)
        for pid in range(1, 9):
            lagging.execute(
                f"INSERT INTO patients VALUES ({pid}, 'P{pid}', {24 + pid})"
            )
        lagging.intent_forwarder = primary.apply_forwarded_intent
        try:
            lagging.execute("SELECT name FROM patients WHERE age >= 30")
            wait_until(lambda: log_rows(primary) == [
                ("dr_lag", 6), ("dr_lag", 7), ("dr_lag", 8),
            ])
        finally:
            lagging.close()
            primary.close()

    def test_primary_without_after_trigger_noops_intent(
        self, tmp_path
    ) -> None:
        # the no-AFTER-trigger check lives on the primary (the
        # authoritative catalog): nothing armed -> nothing journaled,
        # nothing fired — exactly what a single-node run would do
        primary = Database(
            user_id="admin", journal_path=tmp_path / "journal"
        )
        primary.execute_script(SCHEMA_NO_TRIGGER)
        head = primary.journal.next_seq
        seq = primary.apply_forwarded_intent(
            {"aud": frozenset({6})}, "SELECT 1", "nobody"
        )
        try:
            assert seq is None
            assert primary.journal.next_seq == head
        finally:
            primary.close()
