"""Direct unit tests for physical operators (no SQL front end involved)."""

import pytest

from repro.catalog.schema import Column, TableSchema
from repro.datatypes import INTEGER
from repro.exec.context import ExecutionContext
from repro.exec.operators import (
    CacheOperator,
    DistinctOperator,
    FilterOperator,
    HashAggregate,
    HashJoin,
    IndexNestedLoopJoin,
    LimitOperator,
    NestedLoopJoin,
    OneRowSource,
    ProjectOperator,
    SortOperator,
    TableScan,
    TopKOperator,
)
from repro.exec.operators.base import PhysicalOperator, format_physical
from repro.expr.nodes import Binary, ColumnRef, Literal
from repro.plan.logical import (
    AggregateSpec,
    JOIN_ANTI,
    JOIN_INNER,
    JOIN_LEFT,
    JOIN_SEMI,
    SortKey,
)
from repro.storage.table import Table


class Rows(PhysicalOperator):
    """Test source: yields a fixed list of rows."""

    def __init__(self, rows):
        self._rows = rows

    def rows(self, context):
        return iter(self._rows)


def run(operator, context=None):
    return list(operator.rows(context or ExecutionContext()))


def slot(index):
    return ColumnRef(f"c{index}", index=index)


def eq(left_slot, right_slot):
    return Binary("=", slot(left_slot), slot(right_slot))


class TestSourcesAndFilters:
    def test_one_row_source(self):
        assert run(OneRowSource()) == [()]

    def test_filter_keeps_only_true(self):
        source = Rows([(1,), (None,), (3,)])
        predicate = Binary(">", slot(0), Literal(1))
        # NULL > 1 is UNKNOWN: dropped
        assert run(FilterOperator(source, predicate)) == [(3,)]

    def test_project_simple_slots_fast_path(self):
        source = Rows([(1, "a"), (2, "b")])
        project = ProjectOperator(source, (slot(1), slot(0)))
        assert run(project) == [("a", 1), ("b", 2)]

    def test_project_computed(self):
        source = Rows([(2,), (3,)])
        project = ProjectOperator(
            source, (Binary("*", slot(0), Literal(10)),)
        )
        assert run(project) == [(20,), (30,)]

    def test_table_scan_respects_tombstones(self):
        schema = TableSchema(
            "t", (Column("id", INTEGER),), primary_key=("id",)
        )
        table = Table(schema)
        table.bulk_load([(1,), (2,), (3,)])
        context = ExecutionContext()
        context.tombstones = {"t": {(2,)}}
        assert sorted(run(TableScan(table), context)) == [(1,), (3,)]


class TestJoins:
    left_rows = [(1, "l1"), (2, "l2"), (3, "l3")]
    right_rows = [(1, "r1"), (1, "r1b"), (3, "r3")]

    def join_pairs(self, operator_class, kind, **kwargs):
        if operator_class is HashJoin:
            return HashJoin(
                Rows(self.left_rows),
                Rows(self.right_rows),
                kind,
                (0,),
                (0,),
                None,
                right_arity=2,
                **kwargs,
            )
        return NestedLoopJoin(
            Rows(self.left_rows),
            Rows(self.right_rows),
            kind,
            eq(0, 2),
            right_arity=2,
        )

    @pytest.mark.parametrize("operator_class", [HashJoin, NestedLoopJoin])
    def test_inner(self, operator_class):
        rows = run(self.join_pairs(operator_class, JOIN_INNER))
        assert sorted(rows) == [
            (1, "l1", 1, "r1"),
            (1, "l1", 1, "r1b"),
            (3, "l3", 3, "r3"),
        ]

    @pytest.mark.parametrize("operator_class", [HashJoin, NestedLoopJoin])
    def test_left_outer(self, operator_class):
        rows = run(self.join_pairs(operator_class, JOIN_LEFT))
        assert (2, "l2", None, None) in rows
        assert len(rows) == 4

    @pytest.mark.parametrize("operator_class", [HashJoin, NestedLoopJoin])
    def test_semi(self, operator_class):
        rows = run(self.join_pairs(operator_class, JOIN_SEMI))
        assert sorted(rows) == [(1, "l1"), (3, "l3")]

    @pytest.mark.parametrize("operator_class", [HashJoin, NestedLoopJoin])
    def test_anti(self, operator_class):
        rows = run(self.join_pairs(operator_class, JOIN_ANTI))
        assert rows == [(2, "l2")]

    def test_hash_join_null_keys_never_match(self):
        join = HashJoin(
            Rows([(None, "l")]),
            Rows([(None, "r")]),
            JOIN_INNER,
            (0,),
            (0,),
            None,
            right_arity=2,
        )
        assert run(join) == []

    def test_hash_join_null_key_left_outer_extends(self):
        join = HashJoin(
            Rows([(None, "l")]),
            Rows([(None, "r")]),
            JOIN_LEFT,
            (0,),
            (0,),
            None,
            right_arity=2,
        )
        assert run(join) == [(None, "l", None, None)]

    def test_hash_join_build_left_matches_build_right(self):
        right_heavy = HashJoin(
            Rows(self.left_rows), Rows(self.right_rows), JOIN_INNER,
            (0,), (0,), None, 2, build_left=False,
        )
        left_heavy = HashJoin(
            Rows(self.left_rows), Rows(self.right_rows), JOIN_INNER,
            (0,), (0,), None, 2, build_left=True,
        )
        assert sorted(run(right_heavy)) == sorted(run(left_heavy))

    def test_hash_join_residual(self):
        join = HashJoin(
            Rows(self.left_rows),
            Rows(self.right_rows),
            JOIN_INNER,
            (0,),
            (0,),
            Binary("=", slot(3), Literal("r1")),
            right_arity=2,
        )
        assert run(join) == [(1, "l1", 1, "r1")]

    def test_nested_loop_cross_product(self):
        join = NestedLoopJoin(
            Rows([(1,), (2,)]), Rows([("a",), ("b",)]),
            JOIN_INNER, None, right_arity=1,
        )
        assert len(run(join)) == 4


class TestIndexNestedLoopJoin:
    def test_reruns_inner_per_outer_row(self):
        class CountingInner(PhysicalOperator):
            def __init__(self):
                self.executions = 0

            def rows(self, context):
                self.executions += 1
                outer = context.outer_row(1)
                yield (outer[0] * 10,)

        inner = CountingInner()
        join = IndexNestedLoopJoin(
            Rows([(1,), (2,)]), inner, JOIN_INNER, None, inner_arity=1
        )
        assert run(join) == [(1, 10), (2, 20)]
        assert inner.executions == 2

    def test_left_outer_null_extension(self):
        class EmptyInner(PhysicalOperator):
            def rows(self, context):
                return iter(())

        join = IndexNestedLoopJoin(
            Rows([(1,)]), EmptyInner(), JOIN_LEFT, None, inner_arity=2
        )
        assert run(join) == [(1, None, None)]


class TestAggregation:
    def test_grouped(self):
        source = Rows([("a", 1), ("b", 2), ("a", 3)])
        aggregate = HashAggregate(
            source,
            (slot(0),),
            (
                AggregateSpec("sum", slot(1)),
                AggregateSpec("count", None),
            ),
        )
        assert sorted(run(aggregate)) == [("a", 4, 2), ("b", 2, 1)]

    def test_global_empty_input(self):
        aggregate = HashAggregate(
            Rows([]),
            (),
            (AggregateSpec("count", None), AggregateSpec("max", slot(0))),
        )
        assert run(aggregate) == [(0, None)]

    def test_null_group_keys_group_together(self):
        source = Rows([(None, 1), (None, 2)])
        aggregate = HashAggregate(
            source, (slot(0),), (AggregateSpec("count", None),)
        )
        assert run(aggregate) == [(None, 2)]


class TestSortLimitDistinct:
    def test_sort_multi_key_stable(self):
        source = Rows([(2, "b"), (1, "z"), (2, "a"), (1, "a")])
        ordered = SortOperator(
            source,
            (SortKey(slot(0), True), SortKey(slot(1), False)),
        )
        assert run(ordered) == [(1, "z"), (1, "a"), (2, "b"), (2, "a")]

    def test_limit_stops_pulling(self):
        pulled = []

        class Tracking(PhysicalOperator):
            def rows(self, context):
                for value in range(100):
                    pulled.append(value)
                    yield (value,)

        assert run(LimitOperator(Tracking(), 3)) == [(0,), (1,), (2,)]
        assert len(pulled) == 3

    def test_limit_zero(self):
        assert run(LimitOperator(Rows([(1,)]), 0)) == []

    def test_topk_ties_keep_first_seen(self):
        source = Rows([(1, "first"), (1, "second"), (0, "zero")])
        top = TopKOperator(source, (SortKey(slot(0), True),), 2)
        assert run(top) == [(0, "zero"), (1, "first")]

    def test_topk_descending_with_nulls(self):
        source = Rows([(None,), (5,), (3,)])
        top = TopKOperator(source, (SortKey(slot(0), False),), 2)
        # descending: NULLs (smallest rank) come last; top-2 is 5, 3
        assert run(top) == [(5,), (3,)]

    def test_distinct(self):
        source = Rows([(1,), (1,), (2,), (1,)])
        assert run(DistinctOperator(source)) == [(1,), (2,)]


class TestCacheOperator:
    def test_child_runs_once(self):
        executions = []

        class Tracking(PhysicalOperator):
            def rows(self, context):
                executions.append(1)
                yield (1,)

        store = {}
        cache = CacheOperator(Tracking(), store, key=42)
        assert run(cache) == [(1,)]
        assert run(cache) == [(1,)]
        assert len(executions) == 1
        assert 42 in store


class TestPlanFormatting:
    def test_format_physical_tree(self):
        plan = LimitOperator(
            FilterOperator(Rows([]), Binary("=", slot(0), Literal(1))), 5
        )
        text = format_physical(plan)
        assert "Limit(5)" in text and "Filter" in text
