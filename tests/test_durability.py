"""Durability subsystem: journal format, dead-letter spill, recovery
semantics, and the fail_open / fail_closed degraded-mode policies."""

from __future__ import annotations

import json
import threading
import zlib

import pytest

from repro import Database
from repro.durability import (
    AuditJournal,
    DeadLetterJournal,
    scan_journal,
)
from repro.durability.journal import (
    decode_id,
    decode_line,
    encode_id,
    encode_record,
    segment_paths,
)
from repro.durability.recovery import uncommitted_intents
from repro.concurrency import TriggerBatch
from repro.errors import (
    AuditTrailIncompleteError,
    AuditTrailWarning,
    AuditUnavailableError,
    DurabilityError,
    JournalCorruptionError,
)
from repro.testing import CrashError, FaultInjector


# ---------------------------------------------------------------------------
# the journal file format


class TestJournalFormat:
    def test_encode_decode_roundtrip(self):
        payload = {"seq": 7, "kind": "intent", "data": {"a": [1, 2]}}
        line = encode_record(payload)
        assert line.endswith(b"\n")
        assert decode_line(line) == payload

    def test_decode_rejects_flipped_bit(self):
        line = bytearray(encode_record({"seq": 0, "kind": "intent"}))
        line[-3] ^= 0x01  # corrupt one JSON byte, keep the CRC
        with pytest.raises(ValueError, match="CRC"):
            decode_line(bytes(line))

    def test_append_scan_roundtrip(self, tmp_path):
        journal = AuditJournal(tmp_path / "j", fsync="always")
        seqs = [journal.append("intent", {"n": i}) for i in range(5)]
        journal.append("commit", {"intent": seqs[0]})
        journal.close()
        scan = scan_journal(tmp_path / "j")
        assert seqs == [0, 1, 2, 3, 4]
        assert [r.kind for r in scan.records] == ["intent"] * 5 + ["commit"]
        assert [r.seq for r in scan.records] == [0, 1, 2, 3, 4, 5]
        assert scan.records[2].data == {"n": 2}
        assert scan.torn_tail == 0 and scan.corrupt == 0

    def test_reopen_continues_sequence(self, tmp_path):
        journal = AuditJournal(tmp_path / "j")
        journal.append("intent", {})
        journal.append("intent", {})
        journal.close()
        journal = AuditJournal(tmp_path / "j")
        assert journal.append("intent", {}) == 2
        journal.close()
        assert [r.seq for r in scan_journal(tmp_path / "j").records] \
            == [0, 1, 2]

    def test_rotation_splits_segments_sequence_stays_global(self, tmp_path):
        journal = AuditJournal(tmp_path / "j", segment_max_bytes=256)
        for i in range(20):
            journal.append("intent", {"n": i})
        journal.close()
        segments = segment_paths(tmp_path / "j")
        assert len(segments) > 1
        scan = scan_journal(tmp_path / "j")
        assert [r.seq for r in scan.records] == list(range(20))
        assert scan.segments == len(segments)

    def test_invalid_fsync_policy_rejected(self, tmp_path):
        with pytest.raises(DurabilityError, match="fsync"):
            AuditJournal(tmp_path / "j", fsync="sometimes")

    def test_append_after_close_raises(self, tmp_path):
        journal = AuditJournal(tmp_path / "j")
        journal.close()
        journal.close()  # idempotent
        with pytest.raises(DurabilityError, match="closed"):
            journal.append("intent", {})

    def test_fsync_policy_counts(self, tmp_path):
        always = AuditJournal(tmp_path / "a", fsync="always")
        for _ in range(4):
            always.append("intent", {})
        always.close()
        assert always.fsyncs == 4

        batch = AuditJournal(tmp_path / "b", fsync="batch", batch_interval=3)
        for _ in range(4):
            batch.append("intent", {})
        assert batch.fsyncs == 1  # one interval crossed
        batch.close()  # close syncs the remainder
        assert batch.fsyncs == 2

        off = AuditJournal(tmp_path / "c", fsync="off")
        for _ in range(4):
            off.append("intent", {})
        off.close()
        assert off.fsyncs == 0

    def test_concurrent_appends_keep_unique_sequence(self, tmp_path):
        journal = AuditJournal(tmp_path / "j", fsync="off")
        seqs: list[int] = []
        lock = threading.Lock()

        def writer():
            for _ in range(50):
                seq = journal.append("intent", {})
                with lock:
                    seqs.append(seq)

        threads = [threading.Thread(target=writer) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        journal.close()
        assert sorted(seqs) == list(range(200))
        scan = scan_journal(tmp_path / "j")
        assert sorted(r.seq for r in scan.records) == list(range(200))


class TestJournalDamage:
    @staticmethod
    def _write_journal(path, n=4):
        journal = AuditJournal(path, fsync="always")
        for i in range(n):
            journal.append("intent", {"n": i})
        journal.close()

    def test_torn_tail_of_last_segment_tolerated(self, tmp_path):
        self._write_journal(tmp_path / "j")
        segment = segment_paths(tmp_path / "j")[-1]
        with open(segment, "ab") as handle:
            handle.write(b'0badc0de {"seq":99,"ki')  # crash mid-append
        scan = scan_journal(tmp_path / "j")  # strict: still no raise
        assert [r.seq for r in scan.records] == [0, 1, 2, 3]
        assert scan.torn_tail == 1

    def test_interior_corruption_raises_strict(self, tmp_path):
        self._write_journal(tmp_path / "j")
        segment = segment_paths(tmp_path / "j")[-1]
        lines = segment.read_bytes().splitlines(keepends=True)
        lines[1] = b"deadbeef not-json\n"  # bad line with good ones after
        segment.write_bytes(b"".join(lines))
        with pytest.raises(JournalCorruptionError):
            scan_journal(tmp_path / "j")

    def test_interior_corruption_skipped_non_strict(self, tmp_path):
        self._write_journal(tmp_path / "j")
        segment = segment_paths(tmp_path / "j")[-1]
        lines = segment.read_bytes().splitlines(keepends=True)
        lines[1] = b"deadbeef not-json\n"
        segment.write_bytes(b"".join(lines))
        scan = scan_journal(tmp_path / "j", strict=False)
        assert [r.seq for r in scan.records] == [0, 2, 3]
        assert scan.corrupt == 1 and scan.torn_tail == 0

    def test_corrupt_earlier_segment_never_counts_as_torn(self, tmp_path):
        journal = AuditJournal(tmp_path / "j", segment_max_bytes=128,
                               fsync="off")
        for i in range(10):
            journal.append("intent", {"n": i})
        journal.close()
        first, *_rest, _last = segment_paths(tmp_path / "j")
        data = first.read_bytes()
        first.write_bytes(data[:-5])  # truncate the FIRST segment's tail
        with pytest.raises(JournalCorruptionError):
            scan_journal(tmp_path / "j")
        scan = scan_journal(tmp_path / "j", strict=False)
        assert scan.corrupt == 1 and scan.torn_tail == 0

    def test_reopen_truncates_torn_tail_before_appending(self, tmp_path):
        """A torn tail must be cut on reopen: appending in 'ab' mode onto
        the partial line would silently lose the first post-restart record
        and corrupt the journal once another followed."""
        self._write_journal(tmp_path / "j", n=3)
        segment = segment_paths(tmp_path / "j")[-1]
        size_before_tear = segment.stat().st_size
        with open(segment, "ab") as handle:
            handle.write(b'0badc0de {"seq":99,"ki')  # crash mid-append
        journal = AuditJournal(tmp_path / "j", fsync="always")
        assert journal.repaired_tail_bytes > 0
        assert segment.stat().st_size == size_before_tear
        assert journal.append("intent", {"n": 3}) == 3
        journal.append("intent", {"n": 4})
        journal.close()
        # strict scan (what Database.recover uses): nothing lost, no raise
        scan = scan_journal(tmp_path / "j")
        assert [r.seq for r in scan.records] == [0, 1, 2, 3, 4]
        assert [r.data["n"] for r in scan.records] == [0, 1, 2, 3, 4]
        assert scan.torn_tail == 0 and scan.corrupt == 0

    def test_reopen_survives_second_crash(self, tmp_path):
        """Tear, reopen, append, tear again, reopen again — each restart
        repairs its own tail and loses nothing durable."""
        self._write_journal(tmp_path / "j", n=2)
        for round_no in range(2):
            segment = segment_paths(tmp_path / "j")[-1]
            with open(segment, "ab") as handle:
                handle.write(b"deadbeef {torn")
            journal = AuditJournal(tmp_path / "j", fsync="always")
            journal.append("intent", {"round": round_no})
            journal.close()
        scan = scan_journal(tmp_path / "j")
        assert [r.seq for r in scan.records] == [0, 1, 2, 3]

    def test_reopen_repairs_record_missing_its_newline(self, tmp_path):
        """A tear exactly at the newline boundary leaves a decodable final
        record: it must be kept (it is durable data), with the newline
        restored so the next append starts a fresh line."""
        self._write_journal(tmp_path / "j", n=2)
        segment = segment_paths(tmp_path / "j")[-1]
        segment.write_bytes(segment.read_bytes()[:-1])  # drop final \n
        journal = AuditJournal(tmp_path / "j", fsync="always")
        assert journal.append("intent", {"n": 2}) == 2
        journal.close()
        scan = scan_journal(tmp_path / "j")
        assert [r.seq for r in scan.records] == [0, 1, 2]
        assert scan.torn_tail == 0 and scan.corrupt == 0

    def test_reopen_keeps_interior_corruption_for_scan(self, tmp_path):
        """Repair only cuts the trailing invalid run; a bad line with a
        good one after it is corruption and still raises under strict."""
        self._write_journal(tmp_path / "j", n=3)
        segment = segment_paths(tmp_path / "j")[-1]
        lines = segment.read_bytes().splitlines(keepends=True)
        lines[1] = b"deadbeef not-json\n"
        segment.write_bytes(b"".join(lines))
        with pytest.raises(JournalCorruptionError):
            AuditJournal(tmp_path / "j")

    def test_crc_catches_payload_swap(self, tmp_path):
        """A record whose JSON was tampered with (valid JSON, stale CRC)
        is corruption, not a torn tail."""
        self._write_journal(tmp_path / "j", n=2)
        segment = segment_paths(tmp_path / "j")[-1]
        lines = segment.read_bytes().splitlines(keepends=True)
        crc_hex, _, data = lines[0].rstrip(b"\n").partition(b" ")
        doctored = json.loads(data)
        doctored["data"]["n"] = 999  # forge the payload, keep the CRC
        forged = json.dumps(doctored, separators=(",", ":"),
                            sort_keys=True).encode()
        assert int(crc_hex, 16) != zlib.crc32(forged)
        lines[0] = crc_hex + b" " + forged + b"\n"
        segment.write_bytes(b"".join(lines))
        scan = scan_journal(tmp_path / "j", strict=False)
        assert [r.data for r in scan.records] == [{"n": 1}]
        assert scan.corrupt == 1


# ---------------------------------------------------------------------------
# the dead-letter journal


class TestDeadLetterJournal:
    def test_spill_entries_roundtrip(self, tmp_path):
        dead = DeadLetterJournal(tmp_path / "dead.jsonl")
        batch = TriggerBatch(
            accessed={"audit_all": frozenset({1, 2})},
            sql_text="SELECT 1", user_id="drevil", journal_seq=7,
        )
        dead.spill(batch, RuntimeError("boom"), reason="retries-exhausted",
                   attempts=3)
        assert dead.count == 1
        (entry,) = dead.entries()
        assert entry["accessed"] == {"audit_all": [1, 2]}
        assert entry["sql"] == "SELECT 1" and entry["user"] == "drevil"
        assert entry["journal_seq"] == 7
        assert entry["reason"] == "retries-exhausted"
        assert entry["attempts"] == 3
        assert "boom" in entry["error"]
        dead.close()

    def test_count_survives_reopen(self, tmp_path):
        dead = DeadLetterJournal(tmp_path / "dead.jsonl")
        batch = TriggerBatch(accessed={}, sql_text="q", user_id="u")
        dead.spill(batch, RuntimeError("x"))
        dead.spill(batch, RuntimeError("y"))
        dead.close()
        reopened = DeadLetterJournal(tmp_path / "dead.jsonl")
        assert reopened.count == 2
        reopened.spill(batch, RuntimeError("z"))
        assert reopened.count == 3
        reopened.close()

    def test_replay_hands_every_entry_in_order(self, tmp_path):
        dead = DeadLetterJournal(tmp_path / "dead.jsonl")
        for i in range(3):
            dead.spill(
                TriggerBatch(accessed={}, sql_text=f"q{i}", user_id="u"),
                RuntimeError("x"),
            )
        seen: list[str] = []
        assert dead.replay(lambda payload: seen.append(payload["sql"])) == 3
        assert seen == ["q0", "q1", "q2"]
        dead.close()

    def test_reopen_truncates_torn_tail_before_appending(self, tmp_path):
        """A crash mid-spill leaves a torn line; reopening must cut it so
        the next spill does not glue onto it and vanish from reads."""
        dead = DeadLetterJournal(tmp_path / "dead.jsonl")
        batch = TriggerBatch(accessed={}, sql_text="q0", user_id="u")
        dead.spill(batch, RuntimeError("x"))
        dead.close()
        with open(tmp_path / "dead.jsonl", "ab") as handle:
            handle.write(b'0badc0de {"kind":"dead-l')  # crash mid-spill
        reopened = DeadLetterJournal(tmp_path / "dead.jsonl")
        assert reopened.repaired_tail_bytes > 0
        assert reopened.count == 1
        reopened.spill(
            TriggerBatch(accessed={}, sql_text="q1", user_id="u"),
            RuntimeError("y"),
        )
        assert reopened.count == 2
        assert [e["sql"] for e in reopened.entries()] == ["q0", "q1"]
        reopened.close()

    def test_interior_corruption_raises_not_hides(self, tmp_path):
        """An undecodable line with good entries after it must raise:
        returning early would silently hide every later dead letter."""
        dead = DeadLetterJournal(tmp_path / "dead.jsonl")
        batch = TriggerBatch(accessed={}, sql_text="q", user_id="u")
        for _ in range(3):
            dead.spill(batch, RuntimeError("x"))
        dead.close()
        path = tmp_path / "dead.jsonl"
        lines = path.read_bytes().splitlines(keepends=True)
        lines[1] = b"deadbeef not-json\n"
        path.write_bytes(b"".join(lines))
        with pytest.raises(JournalCorruptionError):
            DeadLetterJournal(path)

    def test_rich_partition_ids_roundtrip_through_spill(self, tmp_path):
        import datetime

        day = datetime.date(2026, 8, 7)
        dead = DeadLetterJournal(tmp_path / "dead.jsonl")
        dead.spill(
            TriggerBatch(
                accessed={"by_day": frozenset({day})},
                sql_text="q", user_id="u",
            ),
            RuntimeError("x"),
        )
        (entry,) = dead.entries()
        assert entry["accessed"] == {"by_day": [day]}  # date, not repr str
        dead.close()


# ---------------------------------------------------------------------------
# the typed partition-ID codec


class TestPartitionIdCodec:
    def test_json_native_scalars_pass_through(self):
        for value in (None, True, 0, -3, 2.5, "a string"):
            assert encode_id(value) is value or encode_id(value) == value
            assert decode_id(encode_id(value)) == value

    def test_rich_types_roundtrip_exactly(self):
        import datetime
        import decimal

        for value in (
            datetime.date(1995, 1, 1),
            datetime.datetime(2026, 8, 7, 12, 30, 15),
            decimal.Decimal("19.99"),
            (1, datetime.date(2000, 2, 29), "k"),
        ):
            encoded = encode_id(value)
            json.dumps(encoded)  # must be JSON-native
            decoded = decode_id(encoded)
            assert decoded == value and type(decoded) is type(value)

    def test_unsupported_type_fails_loudly(self):
        with pytest.raises(DurabilityError, match="losslessly"):
            encode_id(object())

    def test_encode_record_rejects_non_json_payload(self):
        """No silent default=repr: a payload the codec missed must raise
        (feeding fail_open/fail_closed), not journal a lossy stand-in."""
        with pytest.raises(DurabilityError, match="JSON-serializable"):
            encode_record({"seq": 0, "kind": "intent", "data": object()})

    def test_unknown_tag_is_corruption(self):
        with pytest.raises(JournalCorruptionError, match="tag"):
            decode_id({"$id": "warp-core", "v": "x"})

    def test_unencodable_id_feeds_fail_open_policy(self, tmp_path):
        db = _audited_db(journal_path=tmp_path / "j",
                         audit_policy="fail_open")
        assert db._journal_intent({"audit_all": {object()}}) is None
        (gap,) = db.audit_gaps
        assert gap["site"] == "journal-intent"
        assert "losslessly" in gap["error"]
        db.close()


# ---------------------------------------------------------------------------
# fault injection plumbing


class TestFaultInjector:
    def test_unarmed_sites_never_fire(self):
        faults = FaultInjector()
        for _ in range(3):
            faults.fire("journal-write")
        assert faults.hit_count("journal-write") == 3

    def test_arm_at_hit_fires_once(self):
        faults = FaultInjector()
        faults.arm("trigger-action", at_hit=2, error=RuntimeError("bang"))
        faults.fire("trigger-action")
        with pytest.raises(RuntimeError, match="bang"):
            faults.fire("trigger-action")
        faults.fire("trigger-action")  # consumed: not repeating

    def test_unknown_site_rejected(self):
        faults = FaultInjector()
        with pytest.raises(ValueError, match="unknown fault site"):
            faults.arm("warp-core", error=RuntimeError)

    def test_crash_error_is_not_an_exception(self):
        # CrashError models process death; ordinary `except Exception`
        # error-isolation must never absorb it
        assert issubclass(CrashError, BaseException)
        assert not issubclass(CrashError, Exception)


# ---------------------------------------------------------------------------
# database wiring: intents, commits, recovery


def _audited_db(journal_path=None, **kwargs) -> Database:
    database = Database(journal_path=journal_path, **kwargs)
    database.execute(
        "CREATE TABLE patients (patientid INT PRIMARY KEY, name VARCHAR)"
    )
    database.execute(
        "CREATE TABLE log (ts VARCHAR, uid VARCHAR, query VARCHAR, "
        "patientid INT)"
    )
    database.execute(
        "INSERT INTO patients VALUES (1, 'Alice'), (2, 'Bob'), (3, 'Carol')"
    )
    database.execute(
        "CREATE AUDIT EXPRESSION audit_all AS SELECT * FROM patients "
        "FOR SENSITIVE TABLE patients, PARTITION BY patientid"
    )
    database.execute(
        "CREATE TRIGGER record ON ACCESS TO audit_all AS "
        "INSERT INTO log SELECT cast_varchar(now()), user_id(), "
        "sql_text(), patientid FROM accessed"
    )
    return database


def _log_rows(db: Database) -> set[tuple]:
    return {
        (uid, query, pid)
        for _ts, uid, query, pid in
        db.execute("SELECT * FROM log").rows
    }


class TestDatabaseJournaling:
    def test_intent_before_commit_per_audited_query(self, tmp_path):
        db = _audited_db(journal_path=tmp_path / "j")
        db.execute("SELECT * FROM patients WHERE patientid = 1")
        db.execute("SELECT * FROM patients WHERE patientid <= 2")
        db.close()
        records = scan_journal(tmp_path / "j").records
        kinds = [r.kind for r in records]
        assert kinds == ["intent", "commit", "intent", "commit"]
        first_intent, first_commit = records[0], records[1]
        assert first_intent.data["accessed"] == {"audit_all": [1]}
        assert "patientid = 1" in first_intent.data["sql"]
        assert first_commit.data["intent"] == first_intent.seq
        assert uncommitted_intents(tmp_path / "j") == []

    def test_async_mode_commits_after_drain(self, tmp_path):
        db = _audited_db(journal_path=tmp_path / "j")
        db.trigger_mode = "async"
        db.execute("SELECT * FROM patients WHERE patientid = 1")
        db.drain_triggers()
        db.close()
        kinds = [r.kind for r in scan_journal(tmp_path / "j").records]
        assert kinds == ["intent", "commit"]

    def test_unaudited_queries_not_journaled(self, tmp_path):
        db = _audited_db(journal_path=tmp_path / "j")
        db.execute("SELECT COUNT(*) FROM log")  # not a sensitive table
        db.close()
        assert scan_journal(tmp_path / "j").records == []

    def test_recover_rebuilds_log_on_fresh_database(self, tmp_path):
        db = _audited_db(journal_path=tmp_path / "j")
        db.session.user_id = "mallory"
        db.execute("SELECT * FROM patients WHERE patientid <= 2")
        expected = _log_rows(db)
        db.close()
        # "crash": a brand-new process with the same DDL, no data loss of
        # the journal directory
        fresh = _audited_db()
        fresh.execute("DELETE FROM patients")  # rows are irrelevant
        report = fresh.recover(tmp_path / "j")
        assert report.intents == 1 and report.replayed == 1
        assert report.uncommitted == 0
        assert report.replayed_ids == {"audit_all": {1, 2}}
        assert _log_rows(fresh) == expected
        assert ("mallory",) == tuple(
            {uid for uid, _q, _p in _log_rows(fresh)})
        fresh.close()

    def test_recover_is_idempotent(self, tmp_path):
        db = _audited_db(journal_path=tmp_path / "j")
        db.execute("SELECT * FROM patients WHERE patientid = 1")
        db.close()
        fresh = _audited_db()
        first = fresh.recover(tmp_path / "j")
        again = fresh.recover(tmp_path / "j")
        assert first.replayed == 1
        assert again.replayed == 0 and again.skipped_applied == 1
        assert len(_log_rows(fresh)) == 1
        fresh.close()

    def test_recover_in_place_skips_completed_firings(self, tmp_path):
        """A live database that wrote the journal itself replays nothing:
        every intent's seq is already applied in-process."""
        db = _audited_db(journal_path=tmp_path / "j")
        db.execute("SELECT * FROM patients WHERE patientid = 1")
        report = db.recover()
        assert report.replayed == 0 and report.skipped_applied == 1
        assert len(_log_rows(db)) == 1  # no duplicate
        db.close()

    def test_recover_drops_unknown_expressions(self, tmp_path):
        db = _audited_db(journal_path=tmp_path / "j")
        db.execute("SELECT * FROM patients WHERE patientid = 1")
        db.close()
        fresh = _audited_db()
        fresh.execute("DROP AUDIT EXPRESSION audit_all")
        report = fresh.recover(tmp_path / "j")
        assert report.skipped_unknown == 1 and report.replayed == 0
        assert _log_rows(fresh) == set()
        fresh.close()

    def test_skipped_unknown_counts_intents_not_expressions(self, tmp_path):
        """One intent naming two dropped expressions is ONE skipped
        intent, so reconciliation against report.intents stays sane."""
        def build(journal_path=None):
            db = _audited_db(journal_path=journal_path)
            db.execute(
                "CREATE AUDIT EXPRESSION audit_too AS SELECT * FROM "
                "patients FOR SENSITIVE TABLE patients, "
                "PARTITION BY patientid"
            )
            return db

        db = build(journal_path=tmp_path / "j")
        db.execute("SELECT * FROM patients WHERE patientid = 1")
        db.close()
        records = scan_journal(tmp_path / "j").records
        assert len(records[0].data["accessed"]) == 2  # both exprs fired

        fresh = build()
        fresh.execute("DROP AUDIT EXPRESSION audit_all")
        fresh.execute("DROP AUDIT EXPRESSION audit_too")
        report = fresh.recover(tmp_path / "j")
        assert report.intents == 1
        assert report.skipped_unknown == 1  # not 2
        assert report.skipped_unknown <= report.intents
        fresh.close()

    def test_recover_replays_date_partition_ids_exactly(self, tmp_path):
        """DATE partition IDs journal as typed values and replay as
        datetime.date — not as repr strings that no longer match."""
        import datetime

        def build(journal_path=None):
            db = Database(journal_path=journal_path)
            db.execute(
                "CREATE TABLE visits (day DATE PRIMARY KEY, who VARCHAR)"
            )
            db.execute("CREATE TABLE vlog (uid VARCHAR, day DATE)")
            db.execute(
                "INSERT INTO visits VALUES ('2026-08-07', 'Alice'), "
                "('2026-08-08', 'Bob')"
            )
            db.execute(
                "CREATE AUDIT EXPRESSION by_day AS SELECT * FROM visits "
                "FOR SENSITIVE TABLE visits, PARTITION BY day"
            )
            db.execute(
                "CREATE TRIGGER vrecord ON ACCESS TO by_day AS "
                "INSERT INTO vlog SELECT user_id(), day FROM accessed"
            )
            return db

        db = build(journal_path=tmp_path / "j")
        db.session.user_id = "mallory"
        db.execute("SELECT * FROM visits")
        expected = set(map(tuple, db.execute("SELECT * FROM vlog").rows))
        db.close()

        fresh = build()
        report = fresh.recover(tmp_path / "j")
        assert report.replayed == 1
        assert report.replayed_ids == {
            "by_day": {datetime.date(2026, 8, 7), datetime.date(2026, 8, 8)}
        }
        recovered = set(map(tuple, fresh.execute("SELECT * FROM vlog").rows))
        assert recovered == expected
        assert all(
            isinstance(day, datetime.date) for _uid, day in recovered
        )
        fresh.close()

    @pytest.mark.filterwarnings(
        "ignore::pytest.PytestUnhandledThreadExceptionWarning"
    )
    def test_recovery_commits_recorded_for_verification(self, tmp_path):
        """Recovery on an attached journal journals its own commits, so a
        second crash right after recovery still verifies clean."""
        db = _audited_db(journal_path=tmp_path / "j",
                         fault_injector=FaultInjector())
        db.trigger_mode = "async"
        db.faults.arm("pipeline-worker", error=CrashError)
        db.execute("SELECT * FROM patients WHERE patientid = 1")
        db.drain_triggers()  # batch lost to the crashed worker
        db.close()
        assert uncommitted_intents(tmp_path / "j") == [0]

        fresh = _audited_db(journal_path=tmp_path / "j")
        report = fresh.recover()
        assert report.replayed == 1 and report.uncommitted == 1
        fresh.close()
        assert uncommitted_intents(tmp_path / "j") == []

    def test_attach_journal_twice_rejected(self, tmp_path):
        db = _audited_db(journal_path=tmp_path / "j")
        with pytest.raises(DurabilityError, match="already attached"):
            db.attach_journal(tmp_path / "other")
        db.close()

    def test_recover_without_journal_needs_path(self):
        db = Database()
        with pytest.raises(DurabilityError, match="no journal attached"):
            db.recover()
        db.close()


# ---------------------------------------------------------------------------
# degraded-mode policies


class TestAuditPolicies:
    def test_invalid_policy_rejected(self):
        with pytest.raises(ValueError, match="audit_policy"):
            Database(audit_policy="fail_sometimes")

    def test_fail_closed_raises_when_journal_write_fails(self, tmp_path):
        faults = FaultInjector()
        db = _audited_db(journal_path=tmp_path / "j",
                         audit_policy="fail_closed",
                         fault_injector=faults)
        faults.arm("journal-write", error=OSError("disk full"), repeat=True)
        with pytest.raises(AuditUnavailableError, match="journal-intent"):
            db.execute("SELECT * FROM patients WHERE patientid = 1")
        faults.disarm("journal-write")
        db.close()

    def test_fail_open_serves_and_records_the_gap(self, tmp_path):
        faults = FaultInjector()
        db = _audited_db(journal_path=tmp_path / "j",
                         audit_policy="fail_open",
                         fault_injector=faults)
        faults.arm("journal-write", error=OSError("disk full"), repeat=True)
        result = db.execute("SELECT * FROM patients WHERE patientid = 1")
        assert len(result.rows) == 1  # query served
        faults.disarm("journal-write")
        (gap,) = db.audit_gaps
        assert gap["site"] == "journal-intent"
        assert "disk full" in gap["error"]
        assert "patientid = 1" in gap["sql"]
        assert db.audit_trail_health()["audit_gaps"] == 1
        db.close()

    def test_fail_open_falls_back_to_sync_on_closed_pipeline(self, tmp_path):
        db = _audited_db(journal_path=tmp_path / "j")
        db.trigger_mode = "async"
        db.execute("SELECT * FROM patients WHERE patientid = 1")
        db._pipeline().close()  # simulate shutdown racing a query
        db.execute("SELECT * FROM patients WHERE patientid = 2")
        assert len(_log_rows(db)) == 2  # second firing ran synchronously
        assert any(g["site"] == "pipeline-closed" for g in db.audit_gaps)
        assert uncommitted_intents(tmp_path / "j") == []
        db.close()

    def test_fail_closed_refuses_on_closed_pipeline(self, tmp_path):
        db = _audited_db(journal_path=tmp_path / "j",
                         audit_policy="fail_closed")
        db.trigger_mode = "async"
        db.execute("SELECT * FROM patients WHERE patientid = 1")
        db.drain_triggers()
        db._pipeline().close()
        with pytest.raises(AuditUnavailableError):
            db.execute("SELECT * FROM patients WHERE patientid = 2")
        db.close()


# ---------------------------------------------------------------------------
# the audit log refuses to lie


class TestAuditLogIntegrity:
    @staticmethod
    def _db_with_failed_batch(tmp_path, policy):
        from repro.audit.logging import install_audit_log

        db = _audited_db(journal_path=tmp_path / "j", audit_policy=policy)
        log = install_audit_log(db, "audit_all")
        # a trigger that always fails: insert into a dropped table
        db.execute("CREATE TABLE doomed (patientid INT)")
        db.execute(
            "CREATE TRIGGER bad ON ACCESS TO audit_all AS "
            "INSERT INTO doomed SELECT patientid FROM accessed"
        )
        db.execute("DROP TABLE doomed")
        db.trigger_retry_limit = 0
        db.trigger_mode = "async"
        db.execute("SELECT * FROM patients WHERE patientid = 1")
        db.drain_triggers()
        return db, log

    def test_fail_closed_reader_raises_on_damaged_trail(self, tmp_path):
        db, log = self._db_with_failed_batch(tmp_path, "fail_closed")
        with pytest.raises(AuditTrailIncompleteError, match="incomplete"):
            log.entries()
        with pytest.raises(AuditTrailIncompleteError):
            log.disclosures_of(1)
        db.close()

    def test_fail_open_reader_warns_and_serves(self, tmp_path):
        db, log = self._db_with_failed_batch(tmp_path, "fail_open")
        with pytest.warns(AuditTrailWarning, match="failed_batches=1"):
            entries = log.entries()
        assert entries is not None
        db.close()

    def test_acknowledge_clears_the_condition(self, tmp_path):
        db, log = self._db_with_failed_batch(tmp_path, "fail_closed")
        acknowledged = db.acknowledge_audit_failures()
        assert acknowledged["failed_batches"] == 1
        assert acknowledged["dead_letters"] == 1
        log.entries()  # no raise: damage acknowledged
        assert all(v == 0 for v in db.audit_trail_health().values())
        db.close()

    def test_dead_letter_holds_the_failed_batch(self, tmp_path):
        db, _log = self._db_with_failed_batch(tmp_path, "fail_open")
        (entry,) = db.dead_letter_journal.entries()
        assert entry["reason"] == "retries-exhausted"
        assert entry["accessed"] == {"audit_all": [1]}
        assert entry["journal_seq"] is not None
        db.close()

    def test_healthy_trail_reads_clean(self, tmp_path):
        from repro.audit.logging import install_audit_log
        import warnings

        db = _audited_db(journal_path=tmp_path / "j")
        log = install_audit_log(db, "audit_all")
        db.trigger_mode = "async"
        db.execute("SELECT * FROM patients WHERE patientid <= 2")
        with warnings.catch_warnings():
            warnings.simplefilter("error")  # any warning fails the test
            assert len(log.entries().rows) == 2
        db.close()
