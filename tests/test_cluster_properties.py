"""Property-based sharded-vs-single-node differential (hypothesis).

Drives a random statement mix — SELECTs (armed and unarmed, SPJ /
aggregate / ORDER BY / DISTINCT) interleaved with INSERT / UPDATE /
DELETE — through a ``ClusterDatabase`` and a plain ``Database`` under
every execution mode, and asserts the observable surfaces coincide:

* query results (exact lists under a total ORDER BY, multisets else);
* per-query ACCESSED sets;
* the trigger-written audit log (firings + per-user attribution);
* final table contents.
"""

from __future__ import annotations

import datetime

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.cluster import ClusterDatabase
from repro.database import Database
from repro.errors import ReproError

_SETTINGS = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

_CLOCK = lambda: datetime.datetime(2013, 4, 8, 12, 0, 0)  # noqa: E731

SCHEMA = """
CREATE TABLE patients (pid INT PRIMARY KEY, name VARCHAR, disease VARCHAR,
                       age INT);
CREATE TABLE audit_log (uid VARCHAR, pid INT);
CREATE AUDIT EXPRESSION sick AS SELECT pid FROM patients
    WHERE disease = 'flu' FOR SENSITIVE TABLE patients, PARTITION BY pid;
CREATE TRIGGER log_access ON ACCESS TO sick AS
    INSERT INTO audit_log SELECT user_id(), pid FROM accessed;
"""

diseases = st.sampled_from(["flu", "cold", "cough"])
ages = st.integers(min_value=1, max_value=80)
users = st.sampled_from(["alice", "bob", "carol"])

initial_rows = st.lists(st.tuples(diseases, ages), min_size=0, max_size=10)

selects = st.sampled_from([
    ("SELECT name FROM patients WHERE disease = 'flu'", False),
    ("SELECT pid, age FROM patients WHERE age > 30", False),
    ("SELECT COUNT(*) FROM patients", False),
    ("SELECT disease, COUNT(*), MAX(age) FROM patients GROUP BY disease",
     False),
    ("SELECT AVG(age) FROM patients WHERE disease <> 'cold'", False),
    ("SELECT pid, name FROM patients ORDER BY age DESC, pid", True),
    ("SELECT pid FROM patients WHERE disease = 'flu' ORDER BY pid LIMIT 3",
     True),
    ("SELECT DISTINCT disease FROM patients", False),
])

inserts = st.builds(
    lambda pid, disease, age:
        (f"INSERT INTO patients VALUES ({100 + pid}, 'n{pid}', "
         f"'{disease}', {age})", None),
    st.integers(min_value=0, max_value=30),
    diseases,
    ages,
)
updates = st.builds(
    lambda bound, disease:
        (f"UPDATE patients SET age = age + 1 "
         f"WHERE age < {bound} AND disease = '{disease}'", None),
    st.integers(min_value=5, max_value=60),
    diseases,
)
deletes = st.builds(
    lambda bound: (f"DELETE FROM patients WHERE age > {bound}", None),
    st.integers(min_value=40, max_value=90),
)

statements = st.lists(
    st.tuples(users, st.one_of(selects, inserts, updates, deletes)),
    min_size=1,
    max_size=12,
)


def _build(factory, rows):
    db = factory()
    db.execute_script(SCHEMA)
    for index, (disease, age) in enumerate(rows):
        db.execute(
            f"INSERT INTO patients VALUES ({index}, 'p{index}', "
            f"'{disease}', {age})"
        )
    return db


@pytest.mark.parametrize("mode", ["row", "batch", "columnar"])
@given(rows=initial_rows, mix=statements)
@_SETTINGS
def test_random_mix_differential(mode: str, rows, mix) -> None:
    single = _build(lambda: Database(clock=_CLOCK), rows)
    cluster = _build(
        lambda: ClusterDatabase(shards=3, clock=_CLOCK), rows
    )
    single.exec_mode = mode
    cluster.exec_mode = mode
    try:
        for user, (sql, ordered) in mix:
            single.session.user_id = user
            cluster.session.user_id = user
            lhs = rhs = None
            lhs_error = rhs_error = None
            try:
                lhs = single.execute(sql)
            except ReproError as error:
                lhs_error = error
            try:
                rhs = cluster.execute(sql)
            except ReproError as error:
                rhs_error = error
            # both engines must fail the same way (e.g. duplicate PK)
            assert type(lhs_error) is type(rhs_error), (
                sql, lhs_error, rhs_error
            )
            if lhs is None:
                continue
            if ordered:
                assert lhs.rows_list() == rhs.rows_list(), sql
            else:
                assert sorted(lhs.rows_list(), key=repr) == sorted(
                    rhs.rows_list(), key=repr
                ), sql
            assert lhs.accessed == rhs.accessed, sql
            assert lhs.rowcount == rhs.rowcount, sql
        # merged audit log: same firings, same attribution
        log = "SELECT uid, pid FROM audit_log"
        assert sorted(single.execute(log).rows_list()) == sorted(
            cluster.execute(log).rows_list()
        )
        # final state converged
        state = "SELECT pid, name, disease, age FROM patients"
        assert sorted(single.execute(state).rows_list()) == sorted(
            cluster.execute(state).rows_list()
        )
    finally:
        single.close()
        cluster.close()
