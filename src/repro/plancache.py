"""Audit-aware LRU plan cache.

``Database.execute`` re-parsed and re-optimized identical SQL on every
call — the dominant fixed cost of short queries in a Python engine. The
plan cache maps *SQL text* to a fully compiled entry (column names,
instrumented logical plan, physical operator tree) so a repeated query
skips the lexer, parser, binder, rewriter, audit placement, and physical
planner entirely.

Audit awareness is the point: an instrumented plan bakes in the audit
expressions that existed — and the placement heuristic in force — when it
was compiled. Every entry therefore carries a *tag tuple* of version
counters (catalog DDL version, audit configuration version, plus the knobs
that steer instrumentation and physical planning). A lookup whose current
tags differ from the entry's treats the entry as stale and drops it, so
``CREATE TABLE`` / ``CREATE INDEX`` / ``DROP TABLE``, ``CREATE/DROP AUDIT
EXPRESSION``, trigger changes, and heuristic or join-strategy flips can
never serve a plan instrumented for a previous world. Data changes (DML)
do not invalidate: plans remain semantically valid, and the audit
operators probe the *live* ID-view structures which are maintained in
place.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - cycle guard
    from repro.exec.operators.base import PhysicalOperator
    from repro.plan.logical import LogicalPlan

DEFAULT_PLAN_CACHE_CAPACITY = 128


@dataclass
class CachedPlan:
    """One compiled SELECT, with the tags it was compiled under."""

    sql: str
    column_names: tuple[str, ...]
    logical: "LogicalPlan"
    physical: "PhysicalOperator"
    tags: tuple


class PlanCache:
    """LRU cache of compiled plans keyed by SQL text, tag-validated.

    Thread-safe: the ``OrderedDict`` recency moves (``move_to_end`` /
    ``popitem``) and the hit/miss/invalidation counters are read-modify-
    write sequences, so every operation runs under one reentrant lock.
    Cached entries themselves are immutable after compilation and may be
    executed by any number of threads at once.
    """

    def __init__(self, capacity: int = DEFAULT_PLAN_CACHE_CAPACITY) -> None:
        self.capacity = capacity
        self._entries: "OrderedDict[str, CachedPlan]" = OrderedDict()
        self._lock = threading.RLock()
        self.hits = 0
        self.misses = 0
        self.invalidations = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def lookup(self, sql: str, tags: tuple) -> CachedPlan | None:
        """Return a live entry for ``sql`` or None (and count the miss)."""
        with self._lock:
            entry = self._entries.get(sql)
            if entry is None:
                self.misses += 1
                return None
            if entry.tags != tags:
                del self._entries[sql]
                self.invalidations += 1
                self.misses += 1
                return None
            self._entries.move_to_end(sql)
            self.hits += 1
            return entry

    def store(self, entry: CachedPlan) -> None:
        with self._lock:
            self._entries[entry.sql] = entry
            self._entries.move_to_end(entry.sql)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)

    def evict(self, sql: str) -> None:
        """Drop one entry (benchmarks use this to force a cold compile)."""
        with self._lock:
            self._entries.pop(sql, None)

    def clear(self) -> None:
        with self._lock:
            if self._entries:
                self.invalidations += len(self._entries)
            self._entries.clear()

    def stats(self) -> dict[str, int]:
        """A mutually consistent snapshot of the counters."""
        with self._lock:
            return {
                "entries": len(self._entries),
                "hits": self.hits,
                "misses": self.misses,
                "invalidations": self.invalidations,
            }


__all__ = ["CachedPlan", "PlanCache", "DEFAULT_PLAN_CACHE_CAPACITY"]
