"""The asynchronous audit-trigger pipeline.

The paper's promise is that SELECT-trigger auditing is light-weight *on
the query path*; the audit-log INSERTs themselves need not be. In
``trigger_mode='async'`` the engine captures a :class:`TriggerBatch` —
the query's ACCESSED state plus the metadata its trigger actions read
(``sql_text()``, ``user_id()``) — and hands it to a
:class:`TriggerPipeline`: a bounded queue drained by one daemon worker
that fires the AFTER-timing trigger actions as their own system
transactions, off the caller's critical path.

Guarantees:

* **no lost firings** — ``put`` blocks when the queue is full
  (backpressure slows producers instead of dropping batches), and
  :meth:`drain` returns only after every submitted batch has been fired;
* **error isolation** — a failing trigger action marks its batch failed
  and is recorded in :attr:`errors`; subsequent batches still fire and
  the worker never dies;
* **ordering** — batches fire in submission order (one worker, FIFO
  queue), so the audit log preserves the global submission sequence.
"""

from __future__ import annotations

import queue
import threading
from collections import deque
from dataclasses import dataclass, field
from typing import Callable

#: default bound of the trigger queue; at typical audit-action cost this
#: is a few hundred milliseconds of buffered work before backpressure
DEFAULT_QUEUE_CAPACITY = 256

#: retained error records (older ones are dropped, counts keep growing)
ERROR_HISTORY = 64

_SHUTDOWN = object()


@dataclass(frozen=True)
class TriggerBatch:
    """One query's deferred trigger work: ACCESSED plus query metadata."""

    #: audit expression name -> accessed partition-by IDs
    accessed: dict[str, frozenset] = field(default_factory=dict)
    #: the querying statement's text, as ``sql_text()`` must report it
    sql_text: str = ""
    #: the querying session's user, as ``user_id()`` must report it
    user_id: str = ""


class TriggerPipeline:
    """Bounded FIFO of trigger batches drained by one worker thread."""

    def __init__(
        self,
        fire: Callable[[TriggerBatch], None],
        capacity: int = DEFAULT_QUEUE_CAPACITY,
    ) -> None:
        self._fire = fire
        self._queue: queue.Queue = queue.Queue(maxsize=max(1, capacity))
        self._state_lock = threading.Lock()
        self._worker: threading.Thread | None = None
        self._closed = False
        self.submitted = 0
        self.processed = 0
        self.failed = 0
        #: (batch, exception) records of failed firings, newest last
        self.errors: deque = deque(maxlen=ERROR_HISTORY)

    # ------------------------------------------------------------------
    # producer side

    def submit(self, batch: TriggerBatch) -> None:
        """Enqueue one batch; blocks while the queue is full (backpressure)."""
        with self._state_lock:
            if self._closed:
                raise RuntimeError("trigger pipeline is closed")
            self.submitted += 1
            self._ensure_worker()
        self._queue.put(batch)

    def _ensure_worker(self) -> None:
        if self._worker is not None and self._worker.is_alive():
            return
        self._worker = threading.Thread(
            target=self._run, name="trigger-pipeline", daemon=True
        )
        self._worker.start()

    def is_worker_thread(self) -> bool:
        """True when called from the pipeline's own worker thread."""
        worker = self._worker
        return worker is not None \
            and threading.get_ident() == worker.ident

    # ------------------------------------------------------------------
    # worker side

    def _run(self) -> None:
        while True:
            batch = self._queue.get()
            if batch is _SHUTDOWN:
                self._queue.task_done()
                return
            try:
                self._fire(batch)
            except BaseException as error:  # noqa: BLE001 — isolation
                with self._state_lock:
                    self.failed += 1
                    self.errors.append((batch, error))
            finally:
                with self._state_lock:
                    self.processed += 1
                self._queue.task_done()

    # ------------------------------------------------------------------
    # flush / shutdown

    def drain(self) -> None:
        """Block until every submitted batch has been fired."""
        self._queue.join()

    def close(self) -> None:
        """Drain, then stop the worker. The pipeline rejects new batches."""
        with self._state_lock:
            if self._closed:
                return
            self._closed = True
            worker = self._worker
        if worker is not None and worker.is_alive():
            self._queue.put(_SHUTDOWN)
            worker.join()

    # ------------------------------------------------------------------
    # telemetry

    def stats(self) -> dict[str, int]:
        with self._state_lock:
            return {
                "submitted": self.submitted,
                "processed": self.processed,
                "failed": self.failed,
                "pending": self.submitted - self.processed,
            }


__all__ = [
    "TriggerBatch",
    "TriggerPipeline",
    "DEFAULT_QUEUE_CAPACITY",
    "ERROR_HISTORY",
]
