"""The asynchronous audit-trigger pipeline.

The paper's promise is that SELECT-trigger auditing is light-weight *on
the query path*; the audit-log INSERTs themselves need not be. In
``trigger_mode='async'`` the engine captures a :class:`TriggerBatch` —
the query's ACCESSED state plus the metadata its trigger actions read
(``sql_text()``, ``user_id()``) — and hands it to a
:class:`TriggerPipeline`: a bounded queue drained by one daemon worker
that fires the AFTER-timing trigger actions as their own system
transactions, off the caller's critical path.

Guarantees:

* **no lost firings** — ``put`` blocks when the queue is full
  (backpressure slows producers instead of dropping batches), and
  :meth:`drain` returns only after every submitted batch has been fired
  or durably accounted for — it resurrects a crashed worker rather than
  hanging on its backlog;
* **retry with capped exponential backoff** — a failing firing is
  retried ``retry_limit`` times before it is declared failed, so a
  transient stall (lock contention, a briefly-missing table) does not
  cost an audit record;
* **no silent loss on permanent failure** — a batch that exhausts its
  retries is appended to the bounded in-memory :attr:`errors` history
  *and* handed to the durable dead-letter sink; evicting an old record
  from the bounded deque therefore never discards the only copy;
* **typed lifecycle errors** — :meth:`submit` after :meth:`close` raises
  :class:`~repro.errors.PipelineClosedError` instead of blocking on (or
  leaking into) a queue nobody drains; ``close`` itself is idempotent;
* **ordering** — batches fire in submission order (one worker, FIFO
  queue), so the audit log preserves the global submission sequence.
"""

from __future__ import annotations

import queue
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Callable

from repro.errors import PipelineClosedError
from repro.testing.faults import NO_FAULTS, FaultInjector

#: default bound of the trigger queue; at typical audit-action cost this
#: is a few hundred milliseconds of buffered work before backpressure
DEFAULT_QUEUE_CAPACITY = 256

#: retained error records (older ones are dropped from memory — their
#: batches are already in the dead-letter sink — counts keep growing)
ERROR_HISTORY = 64

#: retries before a batch is declared permanently failed
DEFAULT_RETRY_LIMIT = 2

#: first retry delay; doubles per attempt, capped at BACKOFF_CAP_S
DEFAULT_BACKOFF_BASE_S = 0.01
DEFAULT_BACKOFF_CAP_S = 1.0

_SHUTDOWN = object()

#: spill callback: (batch, error, reason, attempts) -> None
DeadLetterSink = Callable[["TriggerBatch", BaseException, str, int], None]


@dataclass(frozen=True)
class TriggerBatch:
    """One query's deferred trigger work: ACCESSED plus query metadata."""

    #: audit expression name -> accessed partition-by IDs
    accessed: dict[str, frozenset] = field(default_factory=dict)
    #: the querying statement's text, as ``sql_text()`` must report it
    sql_text: str = ""
    #: the querying session's user, as ``user_id()`` must report it
    user_id: str = ""
    #: sequence number of this batch's intent record in the audit
    #: journal (None when no journal is attached)
    journal_seq: int | None = None


class TriggerPipeline:
    """Bounded FIFO of trigger batches drained by one worker thread."""

    def __init__(
        self,
        fire: Callable[[TriggerBatch], None],
        capacity: int = DEFAULT_QUEUE_CAPACITY,
        retry_limit: int = DEFAULT_RETRY_LIMIT,
        backoff_base_s: float = DEFAULT_BACKOFF_BASE_S,
        backoff_cap_s: float = DEFAULT_BACKOFF_CAP_S,
        dead_letter: DeadLetterSink | None = None,
        faults: FaultInjector = NO_FAULTS,
    ) -> None:
        self._fire = fire
        self._queue: queue.Queue = queue.Queue(maxsize=max(1, capacity))
        self._condition = threading.Condition()
        self._worker: threading.Thread | None = None
        self._closed = False
        self._retry_limit = max(0, retry_limit)
        self._backoff_base_s = backoff_base_s
        self._backoff_cap_s = backoff_cap_s
        self._dead_letter = dead_letter
        self._faults = faults
        self.submitted = 0
        self.processed = 0
        self.failed = 0
        self.retried = 0
        #: batches abandoned mid-flight by a crashed worker (dead-lettered)
        self.lost = 0
        #: batches handed to the dead-letter sink (monotonic)
        self.dead_lettered = 0
        #: (batch, exception) records of failed firings, newest last
        self.errors: deque = deque(maxlen=ERROR_HISTORY)

    # ------------------------------------------------------------------
    # producer side

    def submit(self, batch: TriggerBatch) -> None:
        """Enqueue one batch; blocks while the queue is full (backpressure).

        Raises :class:`PipelineClosedError` once :meth:`close` has run —
        including when close happens while this call is waiting for queue
        space — instead of parking the batch where no worker will ever
        fire it.
        """
        with self._condition:
            if self._closed:
                raise PipelineClosedError(
                    "trigger pipeline is closed; the batch was not enqueued"
                )
            self.submitted += 1
            self._ensure_worker()
        while True:
            try:
                self._queue.put(batch, timeout=0.05)
                return
            except queue.Full:
                with self._condition:
                    if self._closed:
                        self.submitted -= 1
                        raise PipelineClosedError(
                            "trigger pipeline closed while waiting for "
                            "queue space; the batch was not enqueued"
                        ) from None
                    self._ensure_worker()

    def _ensure_worker(self) -> None:
        """Start (or resurrect) the worker; caller holds the condition."""
        if self._worker is not None and self._worker.is_alive():
            return
        self._worker = threading.Thread(
            target=self._run, name="trigger-pipeline", daemon=True
        )
        self._worker.start()

    def is_worker_thread(self) -> bool:
        """True when called from the pipeline's own worker thread."""
        worker = self._worker
        return worker is not None \
            and threading.get_ident() == worker.ident

    # ------------------------------------------------------------------
    # worker side

    def _run(self) -> None:
        while True:
            batch = self._queue.get()
            if batch is _SHUTDOWN:
                return
            try:
                self._faults.fire("pipeline-worker")
                # _process absorbs every Exception (retry, then
                # dead-letter); only a BaseException — process death,
                # simulated by CrashError — escapes to the handler below
                self._process(batch)
            except BaseException as error:
                # worker death: account for the in-flight batch (durably,
                # via the dead-letter sink) so drain() can tell "worker
                # crashed" from "still working", then die
                self._spill(batch, error, "worker-crash", 0)
                with self._condition:
                    self.lost += 1
                    self._condition.notify_all()
                raise

    def _process(self, batch: TriggerBatch) -> None:
        delay = self._backoff_base_s
        attempts = 0
        while True:
            try:
                self._fire(batch)
                break
            except Exception as error:  # noqa: BLE001 — isolation
                attempts += 1
                if attempts > self._retry_limit:
                    self._spill(batch, error, "retries-exhausted", attempts)
                    with self._condition:
                        self.failed += 1
                        self.errors.append((batch, error))
                    break
                with self._condition:
                    self.retried += 1
                time.sleep(min(self._backoff_cap_s, delay))
                delay *= 2
        with self._condition:
            self.processed += 1
            self._condition.notify_all()

    def _spill(
        self,
        batch: TriggerBatch,
        error: BaseException,
        reason: str,
        attempts: int,
    ) -> None:
        with self._condition:
            self.dead_lettered += 1
        if self._dead_letter is None:
            return
        try:
            self._dead_letter(batch, error, reason, attempts)
        except Exception:  # noqa: BLE001 — the sink must not kill the worker
            pass

    # ------------------------------------------------------------------
    # flush / shutdown

    def _outstanding(self) -> int:
        """Batches not yet fired or lost; caller holds the condition."""
        return self.submitted - self.processed - self.lost

    def drain(self, timeout: float | None = None) -> bool:
        """Block until every submitted batch is fired or accounted lost.

        Unlike a bare ``queue.join``, drain survives a crashed worker: it
        resurrects the worker for any backlog (the in-flight batch the
        crash abandoned is counted in :attr:`lost` and dead-lettered, so
        the accounting still converges). Returns False only when
        ``timeout`` (seconds) elapses first.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._condition:
            while self._outstanding() > 0:
                if not self._closed:
                    self._ensure_worker()
                remaining = 0.05
                if deadline is not None:
                    remaining = min(remaining, deadline - time.monotonic())
                    if remaining <= 0:
                        return False
                self._condition.wait(remaining)
        return True

    def close(self) -> None:
        """Drain the backlog, then stop the worker.

        Idempotent: later calls (and concurrent ones) return without
        effect. After close, :meth:`submit` raises
        :class:`PipelineClosedError`.
        """
        with self._condition:
            if self._closed:
                return
            self._closed = True
            if self._outstanding() > 0:
                # a dead worker must not strand its backlog on close
                self._ensure_worker()
            worker = self._worker
        if worker is not None and worker.is_alive():
            self._queue.put(_SHUTDOWN)
            worker.join()

    # ------------------------------------------------------------------
    # telemetry

    def stats(self) -> dict[str, int]:
        with self._condition:
            return {
                "submitted": self.submitted,
                "processed": self.processed,
                "failed": self.failed,
                "pending": self._outstanding(),
                "retried": self.retried,
                "lost": self.lost,
                "dead_letter_count": self.dead_lettered,
            }


#: the zeroed shape of :meth:`TriggerPipeline.stats`
EMPTY_STATS = {
    "submitted": 0,
    "processed": 0,
    "failed": 0,
    "pending": 0,
    "retried": 0,
    "lost": 0,
    "dead_letter_count": 0,
}


__all__ = [
    "TriggerBatch",
    "TriggerPipeline",
    "DEFAULT_QUEUE_CAPACITY",
    "DEFAULT_RETRY_LIMIT",
    "ERROR_HISTORY",
    "EMPTY_STATS",
]
