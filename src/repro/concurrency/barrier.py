"""SequenceBarrier: a monotonic high-watermark with blocking waits.

The replication read-your-writes primitive (DESIGN.md §13): the applier
thread advances the barrier to each journal sequence number it finishes
applying, and readers holding a token from the primary
(``Database.replication_token``) block in :meth:`wait_for` until the
replica has caught up to their write. Also the lag metric's applied-side
counter.
"""

from __future__ import annotations

import threading


class SequenceBarrier:
    """Threads wait until a monotonically-advancing value reaches a goal."""

    def __init__(self, initial: int = -1) -> None:
        self._condition = threading.Condition()
        self._value = initial

    @property
    def value(self) -> int:
        with self._condition:
            return self._value

    def advance(self, value: int) -> None:
        """Raise the watermark to ``value`` (lower values are no-ops)."""
        with self._condition:
            if value > self._value:
                self._value = value
                self._condition.notify_all()

    def wait_for(self, value: int, timeout: float | None = None) -> bool:
        """Block until the watermark reaches ``value``; False on timeout."""
        with self._condition:
            return self._condition.wait_for(
                lambda: self._value >= value, timeout
            )


__all__ = ["SequenceBarrier"]
