"""A reentrant, writer-preferring read-write lock.

The engine serializes *mutations* while letting SELECTs run concurrently:
readers share the lock, writers exclude everyone. Statement execution
nests — a trigger body runs statements while its firing already holds the
write side, ``INSERT ... SELECT`` runs a read-side SELECT under a
write-side INSERT — so both sides are reentrant per thread:

* a thread holding either side may re-acquire the read side;
* a thread holding the write side may re-acquire the write side;
* a thread holding *only* the read side must not request the write side
  (a classic upgrade deadlock when two readers try it); the lock raises
  ``RuntimeError`` instead of deadlocking, because in this engine trigger
  actions always fire after the reading query has released its lock.

Writers are preferred: once a writer is waiting, new first-time readers
queue behind it, so a stream of short SELECTs cannot starve DML.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager


class ReadWriteLock:
    """Shared/exclusive lock with per-thread reentrancy."""

    def __init__(self) -> None:
        self._condition = threading.Condition()
        #: thread ident -> read-side nesting depth
        self._readers: dict[int, int] = {}
        self._writer: int | None = None
        self._writer_nesting = 0
        self._writers_waiting = 0

    # ------------------------------------------------------------------
    # read side

    def acquire_read(self) -> None:
        me = threading.get_ident()
        with self._condition:
            if self._writer == me or me in self._readers:
                # reentrant: a nested statement on a thread that already
                # holds either side never blocks (and never deadlocks
                # against itself)
                self._readers[me] = self._readers.get(me, 0) + 1
                return
            while self._writer is not None or self._writers_waiting:
                self._condition.wait()
            self._readers[me] = 1

    def release_read(self) -> None:
        me = threading.get_ident()
        with self._condition:
            nesting = self._readers.get(me)
            if nesting is None:
                raise RuntimeError("release_read without acquire_read")
            if nesting > 1:
                self._readers[me] = nesting - 1
                return
            del self._readers[me]
            self._condition.notify_all()

    # ------------------------------------------------------------------
    # write side

    def acquire_write(self) -> None:
        me = threading.get_ident()
        with self._condition:
            if self._writer == me:
                self._writer_nesting += 1
                return
            if me in self._readers:
                raise RuntimeError(
                    "read-to-write lock upgrade would deadlock; release "
                    "the read side before acquiring the write side"
                )
            self._writers_waiting += 1
            try:
                while self._writer is not None or self._readers:
                    self._condition.wait()
            finally:
                self._writers_waiting -= 1
            self._writer = me
            self._writer_nesting = 1

    def release_write(self) -> None:
        me = threading.get_ident()
        with self._condition:
            if self._writer != me:
                raise RuntimeError("release_write without acquire_write")
            self._writer_nesting -= 1
            if self._writer_nesting == 0:
                self._writer = None
                self._condition.notify_all()

    # ------------------------------------------------------------------
    # context managers and introspection

    @contextmanager
    def read(self):
        self.acquire_read()
        try:
            yield self
        finally:
            self.release_read()

    @contextmanager
    def write(self):
        self.acquire_write()
        try:
            yield self
        finally:
            self.release_write()

    def held_read(self) -> bool:
        """True when the calling thread holds the read side."""
        with self._condition:
            return threading.get_ident() in self._readers

    def held_write(self) -> bool:
        """True when the calling thread holds the write side."""
        with self._condition:
            return self._writer == threading.get_ident()


__all__ = ["ReadWriteLock"]
