"""Cooperative cancellation for long-running plan executions.

Python offers no safe thread preemption, so the engine cannot *kill* a
running fragment — it can only ask it to stop. A
:class:`CancellationToken` is that ask: the cluster coordinator installs
one on each scatter fragment's :class:`~repro.exec.context.
ExecutionContext`, and :func:`~repro.exec.operators.base.collect_rows`
checks it at every batch boundary (every :data:`CHECK_EVERY_ROWS` rows
in row mode). A fragment whose deadline expires therefore unwinds at its
next checkpoint — releasing its shard read lock — instead of running an
abandoned query to completion.

Cancellation raises :class:`~repro.errors.OperationCancelledError` from
inside the execution, which the canceller is expected to absorb (it
asked for it). The partially-recorded ACCESSED state survives on the
context: rows the fragment touched before the checkpoint were disclosed
and must still be audited (§II abort semantics).
"""

from __future__ import annotations

import threading
import time

from repro.errors import OperationCancelledError

#: row-mode executions check the token once per this many rows
CHECK_EVERY_ROWS = 256


class CancellationToken:
    """A one-way latch asking a cooperative execution to stop."""

    __slots__ = ("_event",)

    def __init__(self) -> None:
        self._event = threading.Event()

    def cancel(self) -> None:
        """Request cancellation (idempotent, thread-safe)."""
        self._event.set()

    @property
    def cancelled(self) -> bool:
        return self._event.is_set()

    def raise_if_cancelled(self) -> None:
        if self._event.is_set():
            raise OperationCancelledError(
                "execution cancelled at a cooperative checkpoint"
            )

    def wait(self, timeout: float | None = None) -> bool:
        """Block until cancelled (or ``timeout``); True when cancelled."""
        return self._event.wait(timeout)


class DeadlineToken(CancellationToken):
    """A token that also trips once a ``time.monotonic()`` deadline passes.

    The parallel scatter enforces deadlines from the gather thread: it
    cancels a worker's plain token when ``future.result`` times out.
    Inline execution (trigger firing, single-shard clusters) has no
    second thread to do the cancelling, so the token itself carries the
    budget — every cooperative checkpoint compares the clock, and a
    latency fault or slow scan unwinds at its next check instead of
    running unbounded while the caller holds shard locks.
    """

    __slots__ = ("_deadline",)

    def __init__(self, deadline: float) -> None:
        super().__init__()
        self._deadline = deadline

    @property
    def cancelled(self) -> bool:
        return self._event.is_set() or time.monotonic() >= self._deadline

    def raise_if_cancelled(self) -> None:
        if self.cancelled:
            raise OperationCancelledError(
                "execution cancelled at a cooperative checkpoint"
            )

    def wait(self, timeout: float | None = None) -> bool:
        remaining = self._deadline - time.monotonic()
        if remaining <= 0:
            return True
        if timeout is None or timeout > remaining:
            timeout = remaining
        if self._event.wait(timeout):
            return True
        return time.monotonic() >= self._deadline


def interruptible_sleep(
    seconds: float, token: CancellationToken | None
) -> None:
    """Sleep ``seconds`` unless ``token`` is cancelled first.

    Used for modeled I/O stalls and retry backoff on paths that must
    stay responsive to a deadline's cancellation.
    """
    if seconds <= 0:
        return
    if token is None:
        time.sleep(seconds)
        return
    if token.wait(seconds):
        token.raise_if_cancelled()


__all__ = [
    "CHECK_EVERY_ROWS",
    "CancellationToken",
    "DeadlineToken",
    "interruptible_sleep",
]
