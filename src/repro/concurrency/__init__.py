"""Concurrent serving: locks and the asynchronous audit-trigger pipeline.

The engine's concurrency model (DESIGN.md §7) is two-layered:

* :class:`ReadWriteLock` — a reentrant, writer-preferring read-write lock.
  SELECTs execute under the read side (N concurrent snapshot readers),
  every mutating statement (DML, DDL, trigger actions) takes the write
  side. Nested statements — trigger bodies, ``INSERT ... SELECT`` — are
  reentrant no-ops on a thread that already holds a side.
* :class:`TriggerPipeline` — a bounded queue plus one background worker
  that drains :class:`TriggerBatch` records (the ACCESSED state and query
  metadata captured at SELECT time) and runs the AFTER-timing trigger
  actions off the caller's critical path, with backpressure when full and
  per-batch error isolation.
* :class:`DrainGate` — in-flight work accounting for graceful shutdown:
  the network server admits each statement through the gate, and
  shutdown closes it and drains before the trigger pipeline and the
  audit journal are closed (DESIGN.md §9).
* :class:`SequenceBarrier` — a monotonic high-watermark with blocking
  waits: the replication applier advances it per applied journal record,
  and read-your-writes tokens block on it (DESIGN.md §13).
* :class:`CancellationToken` — cooperative cancellation for long-running
  executions: the cluster coordinator cancels scatter fragments whose
  deadline expired, and ``collect_rows`` checkpoints unwind them at the
  next batch boundary (DESIGN.md §12). :class:`DeadlineToken` is the
  self-cancelling variant for inline (same-thread) execution, where no
  second thread exists to flip the token.
"""

from repro.concurrency.barrier import SequenceBarrier
from repro.concurrency.cancel import (
    CHECK_EVERY_ROWS,
    CancellationToken,
    DeadlineToken,
    interruptible_sleep,
)
from repro.concurrency.gate import DrainGate, GateClosedError
from repro.concurrency.locks import ReadWriteLock
from repro.concurrency.pipeline import (
    DEFAULT_QUEUE_CAPACITY,
    DEFAULT_RETRY_LIMIT,
    EMPTY_STATS,
    TriggerBatch,
    TriggerPipeline,
)

__all__ = [
    "CHECK_EVERY_ROWS",
    "CancellationToken",
    "DeadlineToken",
    "DrainGate",
    "GateClosedError",
    "interruptible_sleep",
    "ReadWriteLock",
    "SequenceBarrier",
    "TriggerBatch",
    "TriggerPipeline",
    "DEFAULT_QUEUE_CAPACITY",
    "DEFAULT_RETRY_LIMIT",
    "EMPTY_STATS",
]
