"""In-flight work accounting for graceful shutdown.

A :class:`DrainGate` counts units of work currently executing (server
statements, recovery replays — anything shutdown must wait for). The
shutdown path closes the gate so new work is refused, then drains it:
``drain`` returns once every admitted unit has left. The gate carries no
policy about *what* the work is; callers map a refused entry to their own
typed error (the server raises
:class:`~repro.errors.ServerShutdownError`).
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager


class GateClosedError(RuntimeError):
    """Raised by :meth:`DrainGate.entered` when the gate has been closed."""


class DrainGate:
    """A closeable counter of in-flight work units.

    * :meth:`try_enter` admits one unit (False once closed);
    * :meth:`leave` retires it;
    * :meth:`close` refuses future entries (idempotent);
    * :meth:`drain` blocks until the in-flight count reaches zero.

    Closing does not interrupt admitted work — that is the point: drain
    waits for it.
    """

    def __init__(self) -> None:
        self._condition = threading.Condition()
        self._active = 0
        self._closed = False
        #: units ever admitted / refused (telemetry)
        self.entered_total = 0
        self.refused_total = 0

    @property
    def active(self) -> int:
        with self._condition:
            return self._active

    @property
    def closed(self) -> bool:
        with self._condition:
            return self._closed

    def try_enter(self) -> bool:
        """Admit one unit of work; False when the gate is closed."""
        with self._condition:
            if self._closed:
                self.refused_total += 1
                return False
            self._active += 1
            self.entered_total += 1
            return True

    def leave(self) -> None:
        with self._condition:
            if self._active <= 0:
                raise RuntimeError("DrainGate.leave() without a matching enter")
            self._active -= 1
            if self._active == 0:
                self._condition.notify_all()

    @contextmanager
    def entered(self):
        """Context manager form; raises :class:`GateClosedError` if closed."""
        if not self.try_enter():
            raise GateClosedError("gate is closed to new work")
        try:
            yield self
        finally:
            self.leave()

    def close(self) -> None:
        """Refuse new entries from now on (idempotent, non-blocking)."""
        with self._condition:
            self._closed = True
            self._condition.notify_all()

    def drain(self, timeout: float | None = None) -> bool:
        """Block until no work is in flight; False if ``timeout`` expires.

        Usually called after :meth:`close`, but draining an open gate is
        legal (it waits for a momentary zero).
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._condition:
            while self._active > 0:
                remaining = None
                if deadline is not None:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        return False
                self._condition.wait(remaining)
        return True


__all__ = ["DrainGate", "GateClosedError"]
