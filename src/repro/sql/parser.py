"""Recursive-descent SQL parser.

Covers the dialect the paper's workload needs: full single-block SELECT
(joins, subqueries — IN/EXISTS/scalar, correlated —, CASE, aggregates,
GROUP BY/HAVING, ORDER BY, LIMIT/TOP), DML, table/index DDL, and the
paper's auditing DDL: ``CREATE AUDIT EXPRESSION`` (§II-A) and ``CREATE
TRIGGER ... ON ACCESS TO`` SELECT triggers plus classical AFTER triggers
(§II-C), including trigger-body ``IF (...)`` and ``SEND EMAIL``/``NOTIFY``.

Operator precedence, lowest to highest::

    OR < AND < NOT < comparison/IN/BETWEEN/LIKE/IS < + - || < * / % < unary
"""

from __future__ import annotations

import datetime

from repro.datatypes import Interval
from repro.errors import SqlSyntaxError, UnsupportedSqlError
from repro.expr.nodes import (
    Between,
    Binary,
    Case,
    ColumnRef,
    Exists,
    Expression,
    FunctionCall,
    InList,
    InSubquery,
    IntervalLiteral,
    IsNull,
    Like,
    Literal,
    Parameter,
    ScalarSubquery,
    Star,
    Unary,
)
from repro.sql import ast
from repro.sql.lexer import (
    EOF,
    IDENT,
    KEYWORD,
    NUMBER,
    OPERATOR,
    PARAMETER,
    SOFT_KEYWORDS,
    STRING,
    Token,
    tokenize,
)

_COMPARISON_OPS = {"=", "<>", "!=", "<", "<=", ">", ">="}
_AGGREGATE_NAMES = {"count", "sum", "avg", "min", "max"}


class _Parser:
    """Token-stream cursor with the grammar methods."""

    def __init__(self, text: str) -> None:
        self._text = text
        self._tokens = tokenize(text)
        self._cursor = 0

    # ------------------------------------------------------------------
    # cursor helpers

    def _peek(self, ahead: int = 0) -> Token:
        index = min(self._cursor + ahead, len(self._tokens) - 1)
        return self._tokens[index]

    def _advance(self) -> Token:
        token = self._tokens[self._cursor]
        if token.kind != EOF:
            self._cursor += 1
        return token

    def _check(self, kind: str, value: str | None = None) -> bool:
        return self._peek().matches(kind, value)

    def _accept(self, kind: str, value: str | None = None) -> Token | None:
        if self._check(kind, value):
            return self._advance()
        return None

    def _expect(self, kind: str, value: str | None = None) -> Token:
        token = self._peek()
        if not token.matches(kind, value):
            wanted = value or kind
            raise SqlSyntaxError(
                f"expected {wanted}, found {token.value or 'end of input'!r}",
                token.position,
            )
        return self._advance()

    def _accept_keyword(self, *words: str) -> bool:
        """Accept a sequence of keywords atomically."""
        for offset, word in enumerate(words):
            if not self._peek(offset).matches(KEYWORD, word):
                return False
        for __ in words:
            self._advance()
        return True

    def _identifier(self) -> str:
        """Accept an identifier; soft keywords double as identifiers."""
        token = self._peek()
        if token.kind == IDENT:
            self._advance()
            return token.value
        if token.kind == KEYWORD and token.value in SOFT_KEYWORDS:
            self._advance()
            return token.value.lower()
        raise SqlSyntaxError(
            f"expected identifier, found {token.value or 'end of input'!r}",
            token.position,
        )

    def at_end(self) -> bool:
        return self._check(EOF)

    # ------------------------------------------------------------------
    # statements

    def statement(self) -> ast.Statement:
        token = self._peek()
        if token.matches(KEYWORD, "SELECT"):
            return self.select_statement()
        if token.matches(KEYWORD, "INSERT"):
            return self._insert_statement()
        if token.matches(KEYWORD, "UPDATE"):
            return self._update_statement()
        if token.matches(KEYWORD, "DELETE"):
            return self._delete_statement()
        if token.matches(KEYWORD, "CREATE"):
            return self._create_statement()
        if token.matches(KEYWORD, "DROP"):
            return self._drop_statement()
        if token.matches(KEYWORD, "ANALYZE"):
            return self._analyze_statement()
        if token.matches(KEYWORD, "IF"):
            return self._if_statement()
        if token.matches(KEYWORD, "SEND") or token.matches(KEYWORD, "NOTIFY"):
            return self._notify_statement()
        if token.matches(KEYWORD, "DENY"):
            return self._deny_statement()
        if token.matches(KEYWORD, "BEGIN"):
            self._advance()
            self._accept(KEYWORD, "TRANSACTION")
            return ast.TransactionStatement("begin")
        if token.matches(KEYWORD, "COMMIT"):
            self._advance()
            self._accept(KEYWORD, "TRANSACTION")
            return ast.TransactionStatement("commit")
        if token.matches(KEYWORD, "ROLLBACK"):
            self._advance()
            self._accept(KEYWORD, "TRANSACTION")
            return ast.TransactionStatement("rollback")
        raise SqlSyntaxError(
            f"unexpected start of statement: {token.value!r}", token.position
        )

    # ------------------------------------------------------------------
    # SELECT

    def select_statement(self) -> ast.SelectStatement:
        self._expect(KEYWORD, "SELECT")
        distinct = bool(self._accept(KEYWORD, "DISTINCT"))
        if not distinct:
            self._accept(KEYWORD, "ALL")
        limit: int | None = None
        if self._accept(KEYWORD, "TOP"):
            limit = self._integer_literal()
        items = self._select_items()
        from_items: tuple[ast.FromItem, ...] = ()
        if self._accept(KEYWORD, "FROM"):
            from_items = self._from_list()
        where = self.expression() if self._accept(KEYWORD, "WHERE") else None
        group_by: tuple[Expression, ...] = ()
        if self._accept_keyword("GROUP", "BY"):
            group_by = tuple(self._expression_list())
        having = self.expression() if self._accept(KEYWORD, "HAVING") else None
        order_by: tuple[ast.OrderItem, ...] = ()
        if self._accept_keyword("ORDER", "BY"):
            order_by = tuple(self._order_items())
        if self._accept(KEYWORD, "LIMIT"):
            limit = self._integer_literal()
        if self._check(KEYWORD, "UNION") or self._check(KEYWORD, "EXCEPT") \
                or self._check(KEYWORD, "INTERSECT"):
            raise UnsupportedSqlError(
                "set operations (UNION/EXCEPT/INTERSECT) are not supported"
            )
        return ast.SelectStatement(
            items=tuple(items),
            from_items=from_items,
            where=where,
            group_by=group_by,
            having=having,
            order_by=tuple(order_by),
            limit=limit,
            distinct=distinct,
        )

    def _select_items(self) -> list[ast.SelectItem]:
        items = [self._select_item()]
        while self._accept(OPERATOR, ","):
            items.append(self._select_item())
        return items

    def _select_item(self) -> ast.SelectItem:
        if self._check(OPERATOR, "*"):
            self._advance()
            return ast.SelectItem(Star())
        # qualified star: ident . *
        if (self._peek().kind == IDENT
                and self._peek(1).matches(OPERATOR, ".")
                and self._peek(2).matches(OPERATOR, "*")):
            qualifier = self._advance().value
            self._advance()
            self._advance()
            return ast.SelectItem(Star(qualifier=qualifier))
        expression = self.expression()
        alias = None
        if self._accept(KEYWORD, "AS"):
            alias = self._identifier()
        elif self._peek().kind == IDENT:
            alias = self._advance().value
        return ast.SelectItem(expression, alias)

    def _order_items(self) -> list[ast.OrderItem]:
        items = []
        while True:
            expression = self.expression()
            ascending = True
            if self._accept(KEYWORD, "DESC"):
                ascending = False
            else:
                self._accept(KEYWORD, "ASC")
            items.append(ast.OrderItem(expression, ascending))
            if not self._accept(OPERATOR, ","):
                return items

    def _expression_list(self) -> list[Expression]:
        expressions = [self.expression()]
        while self._accept(OPERATOR, ","):
            expressions.append(self.expression())
        return expressions

    def _integer_literal(self) -> int:
        token = self._expect(NUMBER)
        try:
            return int(token.value)
        except ValueError:
            raise SqlSyntaxError(
                f"expected integer, found {token.value!r}", token.position
            ) from None

    # ------------------------------------------------------------------
    # FROM clause

    def _from_list(self) -> tuple[ast.FromItem, ...]:
        items = [self._join_chain()]
        while self._accept(OPERATOR, ","):
            items.append(self._join_chain())
        return tuple(items)

    def _join_chain(self) -> ast.FromItem:
        left = self._from_factor()
        while True:
            kind = None
            if self._accept(KEYWORD, "JOIN") or self._accept_keyword(
                "INNER", "JOIN"
            ):
                kind = "INNER"
            elif self._accept_keyword("LEFT", "OUTER", "JOIN") \
                    or self._accept_keyword("LEFT", "JOIN"):
                kind = "LEFT"
            elif self._check(KEYWORD, "RIGHT") or self._check(KEYWORD, "FULL"):
                raise UnsupportedSqlError(
                    "RIGHT/FULL OUTER JOIN is not supported; rewrite as LEFT"
                )
            elif self._accept_keyword("CROSS", "JOIN"):
                right = self._from_factor()
                left = ast.JoinRef(left, right, "INNER", None)
                continue
            if kind is None:
                return left
            right = self._from_factor()
            self._expect(KEYWORD, "ON")
            condition = self.expression()
            left = ast.JoinRef(left, right, kind, condition)

    def _from_factor(self) -> ast.FromItem:
        if self._accept(OPERATOR, "("):
            if self._check(KEYWORD, "SELECT"):
                select = self.select_statement()
                self._expect(OPERATOR, ")")
                self._accept(KEYWORD, "AS")
                alias = self._identifier()
                return ast.SubqueryRef(select, alias)
            item = self._join_chain()
            self._expect(OPERATOR, ")")
            return item
        name = self._identifier()
        alias = None
        if self._accept(KEYWORD, "AS"):
            alias = self._identifier()
        elif self._peek().kind == IDENT:
            alias = self._advance().value
        return ast.TableRef(name, alias)

    # ------------------------------------------------------------------
    # expressions

    def expression(self) -> Expression:
        return self._or_expression()

    def _or_expression(self) -> Expression:
        left = self._and_expression()
        while self._accept(KEYWORD, "OR"):
            right = self._and_expression()
            left = Binary("OR", left, right)
        return left

    def _and_expression(self) -> Expression:
        left = self._not_expression()
        while self._accept(KEYWORD, "AND"):
            right = self._not_expression()
            left = Binary("AND", left, right)
        return left

    def _not_expression(self) -> Expression:
        if self._accept(KEYWORD, "NOT"):
            return Unary("NOT", self._not_expression())
        return self._comparison()

    def _comparison(self) -> Expression:
        left = self._additive()
        while True:
            token = self._peek()
            if token.kind == OPERATOR and token.value in _COMPARISON_OPS:
                self._advance()
                op = "<>" if token.value == "!=" else token.value
                right = self._additive()
                left = Binary(op, left, right)
                continue
            if token.matches(KEYWORD, "IS"):
                self._advance()
                negated = bool(self._accept(KEYWORD, "NOT"))
                self._expect(KEYWORD, "NULL")
                left = IsNull(left, negated=negated)
                continue
            negated = False
            if token.matches(KEYWORD, "NOT"):
                follower = self._peek(1)
                if follower.value in ("BETWEEN", "IN", "LIKE"):
                    self._advance()
                    negated = True
                    token = self._peek()
                else:
                    break
            if token.matches(KEYWORD, "BETWEEN"):
                self._advance()
                low = self._additive()
                self._expect(KEYWORD, "AND")
                high = self._additive()
                left = Between(left, low, high, negated=negated)
                continue
            if token.matches(KEYWORD, "LIKE"):
                self._advance()
                pattern = self._additive()
                left = Like(left, pattern, negated=negated)
                continue
            if token.matches(KEYWORD, "IN"):
                self._advance()
                left = self._in_tail(left, negated)
                continue
            break
        return left

    def _in_tail(self, operand: Expression, negated: bool) -> Expression:
        self._expect(OPERATOR, "(")
        if self._check(KEYWORD, "SELECT"):
            select = self.select_statement()
            self._expect(OPERATOR, ")")
            return InSubquery(select=select, operand=operand, negated=negated)
        items = tuple(self._expression_list())
        self._expect(OPERATOR, ")")
        return InList(operand, items, negated=negated)

    def _additive(self) -> Expression:
        left = self._multiplicative()
        while True:
            token = self._peek()
            if token.kind == OPERATOR and token.value in ("+", "-", "||"):
                self._advance()
                right = self._multiplicative()
                left = Binary(token.value, left, right)
            else:
                return left

    def _multiplicative(self) -> Expression:
        left = self._unary()
        while True:
            token = self._peek()
            if token.kind == OPERATOR and token.value in ("*", "/", "%"):
                self._advance()
                right = self._unary()
                left = Binary(token.value, left, right)
            else:
                return left

    def _unary(self) -> Expression:
        if self._accept(OPERATOR, "-"):
            return Unary("-", self._unary())
        if self._accept(OPERATOR, "+"):
            return self._unary()
        return self._primary()

    def _primary(self) -> Expression:
        token = self._peek()
        if token.kind == NUMBER:
            self._advance()
            text = token.value
            if "." in text or "e" in text or "E" in text:
                return Literal(float(text))
            return Literal(int(text))
        if token.kind == STRING:
            self._advance()
            return Literal(token.value)
        if token.kind == PARAMETER:
            self._advance()
            return Parameter(token.value)
        if token.matches(KEYWORD, "NULL"):
            self._advance()
            return Literal(None)
        if token.matches(KEYWORD, "TRUE"):
            self._advance()
            return Literal(True)
        if token.matches(KEYWORD, "FALSE"):
            self._advance()
            return Literal(False)
        if token.matches(KEYWORD, "DATE") and self._peek(1).kind == STRING:
            self._advance()
            literal = self._advance()
            try:
                return Literal(datetime.date.fromisoformat(literal.value))
            except ValueError:
                raise SqlSyntaxError(
                    f"invalid DATE literal {literal.value!r}", literal.position
                ) from None
        if token.matches(KEYWORD, "INTERVAL"):
            return self._interval_literal()
        if token.matches(KEYWORD, "CASE"):
            return self._case_expression()
        if token.matches(KEYWORD, "CAST"):
            return self._cast_expression()
        if token.matches(KEYWORD, "EXISTS"):
            self._advance()
            self._expect(OPERATOR, "(")
            select = self.select_statement()
            self._expect(OPERATOR, ")")
            return Exists(select=select)
        if token.matches(KEYWORD, "EXTRACT"):
            return self._extract_expression()
        if token.matches(KEYWORD, "SUBSTRING"):
            return self._substring_expression()
        if token.matches(OPERATOR, "("):
            self._advance()
            if self._check(KEYWORD, "SELECT"):
                select = self.select_statement()
                self._expect(OPERATOR, ")")
                return ScalarSubquery(select=select)
            expression = self.expression()
            self._expect(OPERATOR, ")")
            return expression
        if token.kind == IDENT or (
            token.kind == KEYWORD and token.value in SOFT_KEYWORDS
        ):
            return self._identifier_expression()
        raise SqlSyntaxError(
            f"unexpected token {token.value or 'end of input'!r} in expression",
            token.position,
        )

    def _identifier_expression(self) -> Expression:
        name = self._identifier()
        if self._check(OPERATOR, "("):
            return self._function_call(name)
        if self._accept(OPERATOR, "."):
            column = self._identifier()
            return ColumnRef(column, qualifier=name)
        return ColumnRef(name)

    def _function_call(self, name: str) -> Expression:
        self._expect(OPERATOR, "(")
        distinct = False
        args: tuple[Expression, ...] = ()
        if self._check(OPERATOR, "*"):
            self._advance()
            args = (Star(),)
        elif not self._check(OPERATOR, ")"):
            if self._accept(KEYWORD, "DISTINCT"):
                distinct = True
            args = tuple(self._expression_list())
        self._expect(OPERATOR, ")")
        if distinct and name not in _AGGREGATE_NAMES:
            raise SqlSyntaxError(f"DISTINCT is not valid in {name}()")
        return FunctionCall(name, args, distinct=distinct)

    def _interval_literal(self) -> Expression:
        self._expect(KEYWORD, "INTERVAL")
        literal = self._expect(STRING)
        try:
            count = int(literal.value)
        except ValueError:
            raise SqlSyntaxError(
                f"invalid INTERVAL count {literal.value!r}", literal.position
            ) from None
        unit_token = self._peek()
        if unit_token.value in ("YEAR", "MONTH", "DAY"):
            self._advance()
            return IntervalLiteral(Interval(count, unit_token.value))
        raise SqlSyntaxError(
            f"expected YEAR/MONTH/DAY, found {unit_token.value!r}",
            unit_token.position,
        )

    def _case_expression(self) -> Expression:
        self._expect(KEYWORD, "CASE")
        operand = None
        if not self._check(KEYWORD, "WHEN"):
            operand = self.expression()
        whens = []
        while self._accept(KEYWORD, "WHEN"):
            condition = self.expression()
            self._expect(KEYWORD, "THEN")
            result = self.expression()
            whens.append((condition, result))
        if not whens:
            raise SqlSyntaxError("CASE requires at least one WHEN")
        default = None
        if self._accept(KEYWORD, "ELSE"):
            default = self.expression()
        self._expect(KEYWORD, "END")
        return Case(tuple(whens), operand=operand, default=default)

    def _cast_expression(self) -> Expression:
        self._expect(KEYWORD, "CAST")
        self._expect(OPERATOR, "(")
        operand = self.expression()
        self._expect(KEYWORD, "AS")
        type_name = self._type_name()
        self._expect(OPERATOR, ")")
        return FunctionCall("cast_" + type_name.lower(), (operand,))

    def _extract_expression(self) -> Expression:
        self._expect(KEYWORD, "EXTRACT")
        self._expect(OPERATOR, "(")
        field_token = self._peek()
        if field_token.value not in ("YEAR", "MONTH", "DAY"):
            raise SqlSyntaxError(
                f"EXTRACT supports YEAR/MONTH/DAY, found {field_token.value!r}",
                field_token.position,
            )
        self._advance()
        self._expect(KEYWORD, "FROM")
        operand = self.expression()
        self._expect(OPERATOR, ")")
        return FunctionCall("extract_" + field_token.value.lower(), (operand,))

    def _substring_expression(self) -> Expression:
        self._expect(KEYWORD, "SUBSTRING")
        self._expect(OPERATOR, "(")
        operand = self.expression()
        if self._accept(KEYWORD, "FROM"):
            start = self.expression()
            length = None
            if self._accept(KEYWORD, "FOR"):
                length = self.expression()
        else:
            self._expect(OPERATOR, ",")
            start = self.expression()
            length = None
            if self._accept(OPERATOR, ","):
                length = self.expression()
        self._expect(OPERATOR, ")")
        args = [operand, start]
        if length is not None:
            args.append(length)
        return FunctionCall("substring", tuple(args))

    def _type_name(self) -> str:
        token = self._peek()
        if token.kind == IDENT or (
            token.kind == KEYWORD and token.value in SOFT_KEYWORDS
        ):
            name = self._identifier()
        else:
            raise SqlSyntaxError(
                f"expected type name, found {token.value!r}", token.position
            )
        # swallow optional length/precision: VARCHAR(25), DECIMAL(15, 2)
        if self._accept(OPERATOR, "("):
            self._expect(NUMBER)
            if self._accept(OPERATOR, ","):
                self._expect(NUMBER)
            self._expect(OPERATOR, ")")
        return name

    # ------------------------------------------------------------------
    # DML

    def _insert_statement(self) -> ast.InsertStatement:
        self._expect(KEYWORD, "INSERT")
        self._expect(KEYWORD, "INTO")
        table = self._identifier()
        columns: tuple[str, ...] = ()
        if self._check(OPERATOR, "(") and not self._peek(1).matches(
            KEYWORD, "SELECT"
        ):
            self._advance()
            names = [self._identifier()]
            while self._accept(OPERATOR, ","):
                names.append(self._identifier())
            self._expect(OPERATOR, ")")
            columns = tuple(names)
        if self._accept(KEYWORD, "VALUES"):
            rows = [self._value_row()]
            while self._accept(OPERATOR, ","):
                rows.append(self._value_row())
            return ast.InsertStatement(table, columns, rows=tuple(rows))
        if self._check(KEYWORD, "SELECT"):
            select = self.select_statement()
            return ast.InsertStatement(table, columns, select=select)
        if self._accept(OPERATOR, "("):
            select = self.select_statement()
            self._expect(OPERATOR, ")")
            return ast.InsertStatement(table, columns, select=select)
        raise SqlSyntaxError("INSERT requires VALUES or SELECT")

    def _value_row(self) -> tuple[Expression, ...]:
        self._expect(OPERATOR, "(")
        values = tuple(self._expression_list())
        self._expect(OPERATOR, ")")
        return values

    def _update_statement(self) -> ast.UpdateStatement:
        self._expect(KEYWORD, "UPDATE")
        table = self._identifier()
        self._expect(KEYWORD, "SET")
        assignments = [self._assignment()]
        while self._accept(OPERATOR, ","):
            assignments.append(self._assignment())
        where = self.expression() if self._accept(KEYWORD, "WHERE") else None
        return ast.UpdateStatement(table, tuple(assignments), where)

    def _assignment(self) -> tuple[str, Expression]:
        column = self._identifier()
        self._expect(OPERATOR, "=")
        return column, self.expression()

    def _delete_statement(self) -> ast.DeleteStatement:
        self._expect(KEYWORD, "DELETE")
        self._expect(KEYWORD, "FROM")
        table = self._identifier()
        where = self.expression() if self._accept(KEYWORD, "WHERE") else None
        return ast.DeleteStatement(table, where)

    # ------------------------------------------------------------------
    # DDL

    def _create_statement(self) -> ast.Statement:
        self._expect(KEYWORD, "CREATE")
        if self._accept(KEYWORD, "TABLE"):
            return self._create_table()
        unique = bool(self._accept(KEYWORD, "UNIQUE"))
        if self._accept(KEYWORD, "INDEX"):
            return self._create_index(unique)
        if unique:
            raise SqlSyntaxError("expected INDEX after UNIQUE")
        if self._accept_keyword("AUDIT", "EXPRESSION"):
            return self._create_audit_expression()
        if self._accept(KEYWORD, "TRIGGER"):
            return self._create_trigger()
        token = self._peek()
        raise SqlSyntaxError(
            f"unsupported CREATE {token.value!r}", token.position
        )

    def _create_table(self) -> ast.CreateTableStatement:
        name = self._identifier()
        self._expect(OPERATOR, "(")
        columns: list[ast.ColumnDefinition] = []
        primary_key: tuple[str, ...] = ()
        foreign_keys: list[tuple[tuple[str, ...], str, tuple[str, ...]]] = []
        while True:
            if self._accept_keyword("PRIMARY", "KEY"):
                self._expect(OPERATOR, "(")
                names = [self._identifier()]
                while self._accept(OPERATOR, ","):
                    names.append(self._identifier())
                self._expect(OPERATOR, ")")
                primary_key = tuple(names)
            elif self._accept_keyword("FOREIGN", "KEY"):
                self._expect(OPERATOR, "(")
                local = [self._identifier()]
                while self._accept(OPERATOR, ","):
                    local.append(self._identifier())
                self._expect(OPERATOR, ")")
                self._expect(KEYWORD, "REFERENCES")
                ref_table = self._identifier()
                ref_columns: tuple[str, ...] = ()
                if self._accept(OPERATOR, "("):
                    refs = [self._identifier()]
                    while self._accept(OPERATOR, ","):
                        refs.append(self._identifier())
                    self._expect(OPERATOR, ")")
                    ref_columns = tuple(refs)
                foreign_keys.append((tuple(local), ref_table, ref_columns))
            else:
                columns.append(self._column_definition())
            if not self._accept(OPERATOR, ","):
                break
        self._expect(OPERATOR, ")")
        declared_pk = tuple(
            column.name for column in columns if column.primary_key
        )
        if declared_pk and primary_key:
            raise SqlSyntaxError("duplicate PRIMARY KEY specification")
        return ast.CreateTableStatement(
            name=name,
            columns=tuple(columns),
            primary_key=primary_key or declared_pk,
            foreign_keys=tuple(foreign_keys),
        )

    def _column_definition(self) -> ast.ColumnDefinition:
        name = self._identifier()
        type_name = self._type_name()
        not_null = False
        primary_key = False
        while True:
            if self._accept_keyword("NOT", "NULL"):
                not_null = True
            elif self._accept_keyword("PRIMARY", "KEY"):
                primary_key = True
                not_null = True
            else:
                break
        return ast.ColumnDefinition(name, type_name, not_null, primary_key)

    def _create_index(self, unique: bool) -> ast.CreateIndexStatement:
        name = self._identifier()
        self._expect(KEYWORD, "ON")
        table = self._identifier()
        self._expect(OPERATOR, "(")
        columns = [self._identifier()]
        while self._accept(OPERATOR, ","):
            columns.append(self._identifier())
        self._expect(OPERATOR, ")")
        return ast.CreateIndexStatement(name, table, tuple(columns), unique)

    def _create_audit_expression(self) -> ast.CreateAuditExpressionStatement:
        name = self._identifier()
        self._expect(KEYWORD, "AS")
        select = self.select_statement()
        self._expect(KEYWORD, "FOR")
        self._expect(KEYWORD, "SENSITIVE")
        self._expect(KEYWORD, "TABLE")
        sensitive_table = self._identifier()
        self._accept(OPERATOR, ",")
        self._expect(KEYWORD, "PARTITION")
        self._expect(KEYWORD, "BY")
        partition_by = self._identifier()
        return ast.CreateAuditExpressionStatement(
            name, select, sensitive_table, partition_by
        )

    def _create_trigger(self) -> ast.Statement:
        name = self._identifier()
        self._expect(KEYWORD, "ON")
        if self._accept_keyword("ACCESS", "TO"):
            audit_expression = self._identifier()
            timing = "after"
            if self._accept(KEYWORD, "BEFORE"):
                timing = "before"
            else:
                self._accept(KEYWORD, "AFTER")
            self._expect(KEYWORD, "AS")
            body = self._trigger_body()
            return ast.CreateSelectTriggerStatement(
                name, audit_expression, body, timing
            )
        table = self._identifier()
        self._expect(KEYWORD, "AFTER")
        event_token = self._peek()
        if event_token.value not in ("INSERT", "UPDATE", "DELETE"):
            raise SqlSyntaxError(
                f"expected INSERT/UPDATE/DELETE, found {event_token.value!r}",
                event_token.position,
            )
        self._advance()
        self._expect(KEYWORD, "AS")
        body = self._trigger_body()
        return ast.CreateDmlTriggerStatement(
            name, table, event_token.value, body
        )

    def _trigger_body(self) -> tuple[ast.Statement, ...]:
        if self._accept(KEYWORD, "BEGIN"):
            statements = []
            while not self._accept(KEYWORD, "END"):
                statements.append(self.statement())
                self._accept(OPERATOR, ";")
            return tuple(statements)
        return (self.statement(),)

    def _drop_statement(self) -> ast.Statement:
        self._expect(KEYWORD, "DROP")
        if self._accept(KEYWORD, "TABLE"):
            return ast.DropTableStatement(self._identifier())
        if self._accept(KEYWORD, "TRIGGER"):
            return ast.DropTriggerStatement(self._identifier())
        if self._accept_keyword("AUDIT", "EXPRESSION"):
            return ast.DropAuditExpressionStatement(self._identifier())
        token = self._peek()
        raise SqlSyntaxError(f"unsupported DROP {token.value!r}", token.position)

    def _analyze_statement(self) -> ast.AnalyzeStatement:
        self._expect(KEYWORD, "ANALYZE")
        if self._check(EOF) or self._check(OPERATOR, ";"):
            return ast.AnalyzeStatement(None)
        return ast.AnalyzeStatement(self._identifier())

    # ------------------------------------------------------------------
    # trigger-body statements

    def _if_statement(self) -> ast.IfStatement:
        self._expect(KEYWORD, "IF")
        self._expect(OPERATOR, "(")
        condition = self.expression()
        self._expect(OPERATOR, ")")
        then = self.statement()
        return ast.IfStatement(condition, then)

    def _notify_statement(self) -> ast.NotifyStatement:
        if self._accept(KEYWORD, "SEND"):
            self._expect(KEYWORD, "EMAIL")
        else:
            self._expect(KEYWORD, "NOTIFY")
        message = None
        if self._peek().kind == STRING:
            message = Literal(self._advance().value)
        return ast.NotifyStatement(message)

    def _deny_statement(self) -> ast.DenyStatement:
        self._expect(KEYWORD, "DENY")
        message = None
        if self._peek().kind == STRING:
            message = Literal(self._advance().value)
        return ast.DenyStatement(message)


def parse_statement(text: str) -> ast.Statement:
    """Parse exactly one statement (trailing semicolon allowed)."""
    parser = _Parser(text)
    statement = parser.statement()
    parser._accept(OPERATOR, ";")
    if not parser.at_end():
        token = parser._peek()
        raise SqlSyntaxError(
            f"unexpected trailing input {token.value!r}", token.position
        )
    return statement


def parse_statements(text: str) -> list[ast.Statement]:
    """Parse a script of semicolon-separated statements."""
    return [statement for statement, _ in parse_statements_with_text(text)]


def parse_statements_with_text(
    text: str,
) -> list[tuple[ast.Statement, str]]:
    """Parse a script, pairing each statement with its own source text.

    Token positions delimit the spans, so comments and whitespace between
    statements never leak into a neighbor's text. The per-statement text
    is what statement-level replication journals: a replica must replay
    *exactly* the SQL the primary ran, not a pretty-printed stand-in.
    """
    parser = _Parser(text)
    pairs: list[tuple[ast.Statement, str]] = []
    while not parser.at_end():
        start = parser._peek().position
        statement = parser.statement()
        end_token = parser._peek()
        end = (
            len(text)
            if end_token.kind == EOF
            else end_token.position
        )
        pairs.append((statement, text[start:end].strip()))
        if not parser._accept(OPERATOR, ";"):
            break
    if not parser.at_end():
        token = parser._peek()
        raise SqlSyntaxError(
            f"unexpected trailing input {token.value!r}", token.position
        )
    return pairs


def parse_expression(text: str) -> Expression:
    """Parse a standalone scalar expression (used in tests and tools)."""
    parser = _Parser(text)
    expression = parser.expression()
    if not parser.at_end():
        token = parser._peek()
        raise SqlSyntaxError(
            f"unexpected trailing input {token.value!r}", token.position
        )
    return expression
