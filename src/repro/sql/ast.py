"""Statement-level AST produced by the parser.

These nodes are plain data: the binder (``repro.plan.builder``) converts
them into logical plans, and the DDL executor in ``repro.database``
interprets the definition statements directly.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.expr.nodes import Expression


class Statement:
    """Base class for all statements."""


# ---------------------------------------------------------------------------
# FROM clause items


class FromItem:
    """Base class for FROM-clause items."""


@dataclass(frozen=True)
class TableRef(FromItem):
    """A base-table reference with optional alias."""

    name: str
    alias: str | None = None

    @property
    def binding_name(self) -> str:
        return self.alias or self.name


@dataclass(frozen=True)
class SubqueryRef(FromItem):
    """A derived table: ``(SELECT ...) alias``."""

    select: "SelectStatement"
    alias: str


@dataclass(frozen=True)
class JoinRef(FromItem):
    """An explicit ``JOIN`` with kind INNER/LEFT and an ON condition."""

    left: FromItem
    right: FromItem
    kind: str  # "INNER" | "LEFT"
    condition: Expression | None


# ---------------------------------------------------------------------------
# queries


@dataclass(frozen=True)
class SelectItem:
    """One select-list entry: an expression with optional alias, or ``*``."""

    expression: Expression
    alias: str | None = None


@dataclass(frozen=True)
class OrderItem:
    """One ORDER BY key."""

    expression: Expression
    ascending: bool = True


@dataclass(frozen=True)
class SelectStatement(Statement):
    """A full SELECT query block."""

    items: tuple[SelectItem, ...]
    from_items: tuple[FromItem, ...] = ()
    where: Expression | None = None
    group_by: tuple[Expression, ...] = ()
    having: Expression | None = None
    order_by: tuple[OrderItem, ...] = ()
    limit: int | None = None
    distinct: bool = False


# ---------------------------------------------------------------------------
# DML


@dataclass(frozen=True)
class InsertStatement(Statement):
    """``INSERT INTO t [(cols)] VALUES ... | SELECT ...``."""

    table: str
    columns: tuple[str, ...] = ()
    rows: tuple[tuple[Expression, ...], ...] = ()
    select: SelectStatement | None = None


@dataclass(frozen=True)
class UpdateStatement(Statement):
    """``UPDATE t SET col = expr, ... [WHERE ...]``."""

    table: str
    assignments: tuple[tuple[str, Expression], ...]
    where: Expression | None = None


@dataclass(frozen=True)
class DeleteStatement(Statement):
    """``DELETE FROM t [WHERE ...]``."""

    table: str
    where: Expression | None = None


# ---------------------------------------------------------------------------
# DDL


@dataclass(frozen=True)
class ColumnDefinition:
    name: str
    type_name: str
    not_null: bool = False
    primary_key: bool = False


@dataclass(frozen=True)
class CreateTableStatement(Statement):
    name: str
    columns: tuple[ColumnDefinition, ...]
    primary_key: tuple[str, ...] = ()
    foreign_keys: tuple[tuple[tuple[str, ...], str, tuple[str, ...]], ...] = ()


@dataclass(frozen=True)
class CreateIndexStatement(Statement):
    name: str
    table: str
    columns: tuple[str, ...]
    unique: bool = False


@dataclass(frozen=True)
class DropTableStatement(Statement):
    name: str


@dataclass(frozen=True)
class AnalyzeStatement(Statement):
    """Refresh optimizer statistics (no-op argument = all tables)."""

    table: str | None = None


# ---------------------------------------------------------------------------
# audit expressions and triggers (the paper's §II syntax)


@dataclass(frozen=True)
class CreateAuditExpressionStatement(Statement):
    """``CREATE AUDIT EXPRESSION name AS SELECT ... FOR SENSITIVE TABLE t,
    PARTITION BY key``."""

    name: str
    select: SelectStatement
    sensitive_table: str
    partition_by: str


@dataclass(frozen=True)
class DropAuditExpressionStatement(Statement):
    name: str


@dataclass(frozen=True)
class CreateSelectTriggerStatement(Statement):
    """``CREATE TRIGGER name ON ACCESS TO audit_expr [BEFORE] AS <body>``.

    ``timing`` is ``"after"`` (default: the action runs as its own system
    transaction once the query finishes, §II) or ``"before"`` (the paper's
    deferred variant: the action runs before results are returned and may
    DENY them).
    """

    name: str
    audit_expression: str
    body: tuple[Statement, ...]
    timing: str = "after"


@dataclass(frozen=True)
class CreateDmlTriggerStatement(Statement):
    """``CREATE TRIGGER name ON table AFTER INSERT|UPDATE|DELETE AS <body>``."""

    name: str
    table: str
    event: str  # "INSERT" | "UPDATE" | "DELETE"
    body: tuple[Statement, ...]


@dataclass(frozen=True)
class DropTriggerStatement(Statement):
    name: str


# ---------------------------------------------------------------------------
# trigger-body statements


@dataclass(frozen=True)
class IfStatement(Statement):
    """``IF (condition) <statement>`` — used inside trigger bodies."""

    condition: Expression
    then: Statement


@dataclass(frozen=True)
class TransactionStatement(Statement):
    """``BEGIN [TRANSACTION]`` / ``COMMIT`` / ``ROLLBACK``."""

    action: str  # "begin" | "commit" | "rollback"


@dataclass(frozen=True)
class DenyStatement(Statement):
    """``DENY ['message']`` — only valid inside BEFORE SELECT triggers.

    Raises :class:`repro.errors.AccessDeniedError`, withholding the result
    set from the caller (the access is still recorded/logged).
    """

    message: Expression | None = None


@dataclass(frozen=True)
class NotifyStatement(Statement):
    """``SEND EMAIL ['message']`` / ``NOTIFY ['message']``.

    Delivery is a pluggable hook on the database (captured notifications);
    the message may embed expressions via the optional ``message``.
    """

    message: Expression | None = None
