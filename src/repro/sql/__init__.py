"""SQL front end: lexer, parser, and statement AST."""

from repro.sql.parser import parse_statement, parse_statements, parse_expression

__all__ = ["parse_statement", "parse_statements", "parse_expression"]
