"""SQL tokenizer.

Produces a flat list of :class:`Token` objects. Identifiers and keywords are
case-insensitive; identifiers are normalized to lower case and keywords to
upper case. String literals use single quotes with ``''`` escaping. Line
comments (``--``) and block comments (``/* */``) are skipped.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import SqlSyntaxError

# token kinds
KEYWORD = "KEYWORD"
IDENT = "IDENT"
NUMBER = "NUMBER"
STRING = "STRING"
OPERATOR = "OPERATOR"
PARAMETER = "PARAMETER"
EOF = "EOF"

KEYWORDS = frozenset(
    """
    SELECT FROM WHERE GROUP BY HAVING ORDER ASC DESC LIMIT TOP OFFSET
    DISTINCT ALL AS ON USING JOIN INNER LEFT RIGHT FULL OUTER CROSS
    AND OR NOT IN EXISTS BETWEEN LIKE IS NULL TRUE FALSE
    CASE WHEN THEN ELSE END CAST
    INSERT INTO VALUES UPDATE SET DELETE
    CREATE TABLE INDEX UNIQUE PRIMARY KEY FOREIGN REFERENCES DROP
    TRIGGER AFTER BEFORE ACCESS TO FOR SENSITIVE PARTITION AUDIT EXPRESSION
    IF SEND EMAIL NOTIFY DENY BEGIN COMMIT ROLLBACK TRANSACTION
    DATE INTERVAL YEAR MONTH DAY EXTRACT SUBSTRING
    UNION EXCEPT INTERSECT
    ANALYZE
    """.split()
)

#: keywords the parser may also accept as plain identifiers (column names
#: such as ``date`` or ``key`` appear in realistic schemas)
SOFT_KEYWORDS = frozenset(
    "DATE YEAR MONTH DAY ACCESS EMAIL KEY AUDIT EXPRESSION TO "
    "PARTITION SENSITIVE TOP NOTIFY SEND DENY".split()
)

_OPERATORS = (
    "<>", "<=", ">=", "!=", "||",
    "=", "<", ">", "+", "-", "*", "/", "%",
    "(", ")", ",", ".", ";",
)


@dataclass(frozen=True)
class Token:
    """One lexical token: kind, normalized value, source offset."""

    kind: str
    value: str
    position: int

    def matches(self, kind: str, value: str | None = None) -> bool:
        if self.kind != kind:
            return False
        return value is None or self.value == value


def tokenize(text: str) -> list[Token]:
    """Tokenize ``text``; raises :class:`SqlSyntaxError` on bad input."""
    tokens: list[Token] = []
    length = len(text)
    position = 0
    while position < length:
        char = text[position]
        if char.isspace():
            position += 1
            continue
        if text.startswith("--", position):
            end = text.find("\n", position)
            position = length if end < 0 else end + 1
            continue
        if text.startswith("/*", position):
            end = text.find("*/", position + 2)
            if end < 0:
                raise SqlSyntaxError("unterminated block comment", position)
            position = end + 2
            continue
        if char == "'":
            value, position = _read_string(text, position)
            tokens.append(Token(STRING, value, position))
            continue
        if char.isdigit() or (
            char == "." and position + 1 < length
            and text[position + 1].isdigit()
        ):
            value, position = _read_number(text, position)
            tokens.append(Token(NUMBER, value, position))
            continue
        if char.isalpha() or char == "_":
            start = position
            while position < length and (
                text[position].isalnum() or text[position] == "_"
            ):
                position += 1
            word = text[start:position]
            upper = word.upper()
            if upper in KEYWORDS:
                tokens.append(Token(KEYWORD, upper, start))
            else:
                tokens.append(Token(IDENT, word.lower(), start))
            continue
        if char == '"':
            end = text.find('"', position + 1)
            if end < 0:
                raise SqlSyntaxError("unterminated quoted identifier", position)
            tokens.append(Token(IDENT, text[position + 1:end].lower(), position))
            position = end + 1
            continue
        if char == ":":
            start = position
            position += 1
            while position < length and (
                text[position].isalnum() or text[position] == "_"
            ):
                position += 1
            if position == start + 1:
                raise SqlSyntaxError("empty parameter name", start)
            tokens.append(Token(PARAMETER, text[start + 1:position], start))
            continue
        for operator in _OPERATORS:
            if text.startswith(operator, position):
                tokens.append(Token(OPERATOR, operator, position))
                position += len(operator)
                break
        else:
            raise SqlSyntaxError(f"unexpected character {char!r}", position)
    tokens.append(Token(EOF, "", length))
    return tokens


def _read_string(text: str, position: int) -> tuple[str, int]:
    """Read a single-quoted string literal starting at ``position``."""
    parts: list[str] = []
    cursor = position + 1
    length = len(text)
    while cursor < length:
        char = text[cursor]
        if char == "'":
            if cursor + 1 < length and text[cursor + 1] == "'":
                parts.append("'")
                cursor += 2
                continue
            return "".join(parts), cursor + 1
        parts.append(char)
        cursor += 1
    raise SqlSyntaxError("unterminated string literal", position)


def _read_number(text: str, position: int) -> tuple[str, int]:
    """Read a numeric literal (integer or decimal, optional exponent)."""
    start = position
    length = len(text)
    while position < length and text[position].isdigit():
        position += 1
    if position < length and text[position] == ".":
        position += 1
        while position < length and text[position].isdigit():
            position += 1
    if position < length and text[position] in "eE":
        probe = position + 1
        if probe < length and text[probe] in "+-":
            probe += 1
        if probe < length and text[probe].isdigit():
            position = probe
            while position < length and text[position].isdigit():
                position += 1
    return text[start:position], position
