"""Expression trees, binding, evaluation, functions, and predicate analysis."""

from repro.expr import nodes
from repro.expr.nodes import Expression
from repro.expr.evaluator import evaluate
from repro.expr.compiler import (
    compile_expression,
    compile_predicate,
    compile_projector,
)
from repro.expr.aggregates import is_aggregate_name, make_accumulator

__all__ = [
    "nodes",
    "Expression",
    "evaluate",
    "compile_expression",
    "compile_predicate",
    "compile_projector",
    "is_aggregate_name",
    "make_accumulator",
]
