"""Scalar function registry.

Functions are looked up by lower-case name. Session functions — ``now()``,
``user_id()``, ``sql_text()`` — read the execution context; the paper's
trigger actions use them to stamp audit-log entries (§II-C). All functions
propagate NULL inputs to a NULL result unless noted.
"""

from __future__ import annotations

import datetime
from typing import TYPE_CHECKING, Callable

from repro.errors import ExecutionError

if TYPE_CHECKING:  # pragma: no cover - cycle guard
    from repro.exec.context import ExecutionContext

ScalarFunction = Callable[["ExecutionContext", tuple], object]


def _nulls_propagate(function: Callable[..., object]) -> ScalarFunction:
    def wrapper(context: "ExecutionContext", args: tuple) -> object:
        if any(argument is None for argument in args):
            return None
        return function(*args)

    return wrapper


def _substring(value: str, start: int, length: int | None = None) -> str:
    if not isinstance(value, str):
        raise ExecutionError("substring() requires a string")
    begin = max(int(start) - 1, 0)  # SQL substring is 1-based
    if length is None:
        return value[begin:]
    if length < 0:
        raise ExecutionError("substring() length must be non-negative")
    return value[begin:begin + int(length)]


def _extract_part(part: str) -> Callable[..., int]:
    def extract(value: object) -> int:
        if not isinstance(value, datetime.date):
            raise ExecutionError(f"extract_{part}() requires a date")
        return getattr(value, part)

    return extract


def _cast_int(value: object) -> int:
    try:
        return int(value)  # type: ignore[arg-type]
    except (TypeError, ValueError) as exc:
        raise ExecutionError(f"cannot cast {value!r} to INTEGER") from exc


def _cast_float(value: object) -> float:
    try:
        return float(value)  # type: ignore[arg-type]
    except (TypeError, ValueError) as exc:
        raise ExecutionError(f"cannot cast {value!r} to FLOAT") from exc


def _cast_varchar(value: object) -> str:
    if isinstance(value, datetime.date):
        return value.isoformat()
    return str(value)


def _cast_date(value: object) -> datetime.date:
    if isinstance(value, datetime.date):
        return value
    if isinstance(value, str):
        try:
            return datetime.date.fromisoformat(value)
        except ValueError as exc:
            raise ExecutionError(f"cannot cast {value!r} to DATE") from exc
    raise ExecutionError(f"cannot cast {value!r} to DATE")


def _now(context: "ExecutionContext", args: tuple) -> object:
    return context.session.now()


def _user_id(context: "ExecutionContext", args: tuple) -> object:
    return context.session.user_id


def _sql_text(context: "ExecutionContext", args: tuple) -> object:
    return context.session.sql_text


_REGISTRY: dict[str, ScalarFunction] = {
    "substring": _nulls_propagate(_substring),
    "upper": _nulls_propagate(lambda v: str(v).upper()),
    "lower": _nulls_propagate(lambda v: str(v).lower()),
    "abs": _nulls_propagate(abs),
    "length": _nulls_propagate(len),
    "coalesce": lambda context, args: next(
        (argument for argument in args if argument is not None), None
    ),
    "extract_year": _nulls_propagate(_extract_part("year")),
    "extract_month": _nulls_propagate(_extract_part("month")),
    "extract_day": _nulls_propagate(_extract_part("day")),
    "cast_int": _nulls_propagate(_cast_int),
    "cast_integer": _nulls_propagate(_cast_int),
    "cast_bigint": _nulls_propagate(_cast_int),
    "cast_float": _nulls_propagate(_cast_float),
    "cast_decimal": _nulls_propagate(_cast_float),
    "cast_varchar": _nulls_propagate(_cast_varchar),
    "cast_char": _nulls_propagate(_cast_varchar),
    "cast_date": _nulls_propagate(_cast_date),
    "now": _now,
    "current_date": _now,
    "user_id": _user_id,
    "userid": _user_id,
    "sql_text": _sql_text,
    "sql": _sql_text,
}


def lookup_function(name: str) -> ScalarFunction:
    """Resolve a scalar function; raises for unknown names."""
    try:
        return _REGISTRY[name.lower()]
    except KeyError:
        raise ExecutionError(f"unknown function {name!r}") from None


def is_scalar_function(name: str) -> bool:
    return name.lower() in _REGISTRY
