"""Aggregate accumulators: COUNT / COUNT DISTINCT / SUM / AVG / MIN / MAX.

The hash-aggregate operator keeps one accumulator per (group, aggregate)
pair; accumulators follow SQL NULL rules (NULL inputs are ignored; an empty
group yields NULL for everything except COUNT, which yields 0).
"""

from __future__ import annotations

from repro.errors import ExecutionError

_AGGREGATE_NAMES = frozenset({"count", "sum", "avg", "min", "max"})


def is_aggregate_name(name: str) -> bool:
    return name.lower() in _AGGREGATE_NAMES


class Accumulator:
    """Base accumulator interface."""

    def add(self, value: object) -> None:
        raise NotImplementedError

    def result(self) -> object:
        raise NotImplementedError


class CountAccumulator(Accumulator):
    """``COUNT(expr)``: counts non-NULL inputs (``COUNT(*)`` feeds 1s)."""

    def __init__(self) -> None:
        self._count = 0

    def add(self, value: object) -> None:
        if value is not None:
            self._count += 1

    def result(self) -> int:
        return self._count


class CountDistinctAccumulator(Accumulator):
    """``COUNT(DISTINCT expr)``."""

    def __init__(self) -> None:
        self._seen: set = set()

    def add(self, value: object) -> None:
        if value is not None:
            self._seen.add(value)

    def result(self) -> int:
        return len(self._seen)


class SumAccumulator(Accumulator):
    def __init__(self) -> None:
        self._total: float | int | None = None

    def add(self, value: object) -> None:
        if value is None:
            return
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            raise ExecutionError(f"SUM over non-numeric value {value!r}")
        self._total = value if self._total is None else self._total + value

    def result(self) -> object:
        return self._total


class AvgAccumulator(Accumulator):
    def __init__(self) -> None:
        self._total = 0.0
        self._count = 0

    def add(self, value: object) -> None:
        if value is None:
            return
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            raise ExecutionError(f"AVG over non-numeric value {value!r}")
        self._total += value
        self._count += 1

    def result(self) -> object:
        if self._count == 0:
            return None
        return self._total / self._count


class MinAccumulator(Accumulator):
    def __init__(self) -> None:
        self._best: object = None

    def add(self, value: object) -> None:
        if value is None:
            return
        if self._best is None or value < self._best:
            self._best = value

    def result(self) -> object:
        return self._best


class MaxAccumulator(Accumulator):
    def __init__(self) -> None:
        self._best: object = None

    def add(self, value: object) -> None:
        if value is None:
            return
        if self._best is None or value > self._best:
            self._best = value

    def result(self) -> object:
        return self._best


_FACTORIES = {
    ("count", False): CountAccumulator,
    ("count", True): CountDistinctAccumulator,
    ("sum", False): SumAccumulator,
    ("avg", False): AvgAccumulator,
    ("min", False): MinAccumulator,
    ("max", False): MaxAccumulator,
}


def make_accumulator(name: str, distinct: bool = False) -> Accumulator:
    """Create a fresh accumulator for the named aggregate."""
    key = (name.lower(), distinct)
    if key not in _FACTORIES:
        if distinct:
            # SUM/AVG/MIN/MAX DISTINCT: deduplicate then delegate
            return _DistinctWrapper(make_accumulator(name, False))
        raise ExecutionError(f"unknown aggregate {name!r}")
    return _FACTORIES[key]()


class _DistinctWrapper(Accumulator):
    """DISTINCT variant for any aggregate: buffer distinct values."""

    def __init__(self, inner: Accumulator) -> None:
        self._inner = inner
        self._seen: set = set()

    def add(self, value: object) -> None:
        if value is None or value in self._seen:
            return
        self._seen.add(value)
        self._inner.add(value)

    def result(self) -> object:
        return self._inner.result()
