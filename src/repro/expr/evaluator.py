"""Expression evaluation over bound trees.

``evaluate(expression, row, context)`` computes a scalar value with SQL
NULL semantics. ``context`` is an :class:`repro.exec.context.ExecutionContext`
providing query parameters, the outer-row stack for correlated references,
the subquery runner, and session functions.

Subquery expressions are evaluated through ``context.run_subquery`` which
executes the bound logical plan (compiled and memoized by the executor).
"""

from __future__ import annotations

import datetime
from typing import TYPE_CHECKING

from repro.datatypes import (
    Interval,
    add_interval,
    sql_and,
    sql_compare,
    sql_like,
    sql_not,
    sql_or,
)
from repro.errors import ExecutionError
from repro.expr.functions import lookup_function
from repro.expr.nodes import (
    AggregateRef,
    Between,
    Binary,
    Case,
    ColumnRef,
    Exists,
    Expression,
    FunctionCall,
    InList,
    InSubquery,
    IntervalLiteral,
    IsNull,
    Like,
    Literal,
    Parameter,
    ScalarSubquery,
    Star,
    Unary,
)

if TYPE_CHECKING:  # pragma: no cover - cycle guard
    from repro.exec.context import ExecutionContext

_COMPARISONS = {
    "=": lambda c: c == 0,
    "<>": lambda c: c != 0,
    "<": lambda c: c < 0,
    "<=": lambda c: c <= 0,
    ">": lambda c: c > 0,
    ">=": lambda c: c >= 0,
}


def evaluate(
    expression: Expression, row: tuple, context: "ExecutionContext"
) -> object:
    """Evaluate a bound expression against ``row``."""
    if isinstance(expression, Literal):
        return expression.value
    if isinstance(expression, ColumnRef):
        return _column_value(expression, row, context)
    if isinstance(expression, AggregateRef):
        return row[expression.index]
    if isinstance(expression, Parameter):
        return context.parameter(expression.name)
    if isinstance(expression, IntervalLiteral):
        return expression.interval
    if isinstance(expression, Binary):
        return _binary(expression, row, context)
    if isinstance(expression, Unary):
        return _unary(expression, row, context)
    if isinstance(expression, IsNull):
        value = evaluate(expression.operand, row, context)
        answer = value is None
        return not answer if expression.negated else answer
    if isinstance(expression, Between):
        return _between(expression, row, context)
    if isinstance(expression, Like):
        result = sql_like(
            evaluate(expression.operand, row, context),
            evaluate(expression.pattern, row, context),
        )
        return sql_not(result) if expression.negated else result
    if isinstance(expression, InList):
        return _in_list(expression, row, context)
    if isinstance(expression, InSubquery):
        return _in_subquery(expression, row, context)
    if isinstance(expression, Exists):
        rows = context.run_subquery(expression.plan, row)
        answer = bool(rows)
        return not answer if expression.negated else answer
    if isinstance(expression, ScalarSubquery):
        return _scalar_subquery(expression, row, context)
    if isinstance(expression, Case):
        return _case(expression, row, context)
    if isinstance(expression, FunctionCall):
        function = lookup_function(expression.name)
        args = tuple(
            evaluate(argument, row, context) for argument in expression.args
        )
        return function(context, args)
    if isinstance(expression, Star):
        raise ExecutionError("bare * cannot be evaluated as a scalar")
    raise ExecutionError(
        f"cannot evaluate expression node {type(expression).__name__}"
    )


def _column_value(
    ref: ColumnRef, row: tuple, context: "ExecutionContext"
) -> object:
    if ref.index is None:
        raise ExecutionError(f"unbound column reference {ref.display()!r}")
    if ref.outer_level == 0:
        return row[ref.index]
    return context.outer_row(ref.outer_level)[ref.index]


def _binary(
    node: Binary, row: tuple, context: "ExecutionContext"
) -> object:
    op = node.op
    if op == "AND":
        left = evaluate(node.left, row, context)
        if left is False:
            return False
        return sql_and(left, evaluate(node.right, row, context))
    if op == "OR":
        left = evaluate(node.left, row, context)
        if left is True:
            return True
        return sql_or(left, evaluate(node.right, row, context))
    left = evaluate(node.left, row, context)
    right = evaluate(node.right, row, context)
    if op in _COMPARISONS:
        comparison = sql_compare(left, right)
        if comparison is None:
            return None
        return _COMPARISONS[op](comparison)
    return apply_binary_operator(op, left, right)


def apply_binary_operator(op: str, left: object, right: object) -> object:
    """Apply a non-logical, non-comparison binary operator to two values.

    Shared by the tree-walking evaluator and the closure compiler
    (:mod:`repro.expr.compiler`) so both paths have identical semantics.
    """
    if left is None or right is None:
        return None
    if op == "||":
        return str(left) + str(right)
    if isinstance(right, Interval):
        if op == "+":
            return add_interval(left, right)
        if op == "-":
            return add_interval(left, right.negated())
        raise ExecutionError(f"invalid interval operator {op!r}")
    if isinstance(left, Interval):
        if op == "+":
            return add_interval(right, left)
        raise ExecutionError(f"invalid interval operator {op!r}")
    if isinstance(left, datetime.date) and isinstance(right, datetime.date):
        if op == "-":
            return (left - right).days
        raise ExecutionError(f"invalid date operator {op!r}")
    if op == "+":
        return left + right
    if op == "-":
        return left - right
    if op == "*":
        return left * right
    if op == "/":
        if right == 0:
            raise ExecutionError("division by zero")
        if isinstance(left, int) and isinstance(right, int):
            return left / right  # SQL: integer division yields exact value
        return left / right
    if op == "%":
        if right == 0:
            raise ExecutionError("division by zero")
        return left % right
    raise ExecutionError(f"unknown binary operator {op!r}")


def _unary(node: Unary, row: tuple, context: "ExecutionContext") -> object:
    value = evaluate(node.operand, row, context)
    if node.op == "NOT":
        return sql_not(value)
    if node.op == "-":
        if value is None:
            return None
        return -value
    raise ExecutionError(f"unknown unary operator {node.op!r}")


def _between(
    node: Between, row: tuple, context: "ExecutionContext"
) -> object:
    value = evaluate(node.operand, row, context)
    low = evaluate(node.low, row, context)
    high = evaluate(node.high, row, context)
    lower = sql_compare(value, low)
    upper = sql_compare(value, high)
    result = sql_and(
        None if lower is None else lower >= 0,
        None if upper is None else upper <= 0,
    )
    return sql_not(result) if node.negated else result


def _in_list(
    node: InList, row: tuple, context: "ExecutionContext"
) -> object:
    value = evaluate(node.operand, row, context)
    saw_null = value is None
    for item in node.items:
        member = evaluate(item, row, context)
        if member is None or value is None:
            saw_null = True
            continue
        if member == value:
            return False if node.negated else True
    if saw_null:
        return None
    return True if node.negated else False


def _in_subquery(
    node: InSubquery, row: tuple, context: "ExecutionContext"
) -> object:
    value = evaluate(node.operand, row, context)
    rows = context.run_subquery(node.plan, row)
    saw_null = value is None and bool(rows)
    for subrow in rows:
        member = subrow[0]
        if member is None or value is None:
            saw_null = True
            continue
        if member == value:
            return False if node.negated else True
    if saw_null:
        return None
    return True if node.negated else False


def _scalar_subquery(
    node: ScalarSubquery, row: tuple, context: "ExecutionContext"
) -> object:
    rows = context.run_subquery(node.plan, row)
    if not rows:
        return None
    if len(rows) > 1:
        raise ExecutionError("scalar subquery returned more than one row")
    if len(rows[0]) != 1:
        raise ExecutionError("scalar subquery must return one column")
    return rows[0][0]


def _case(node: Case, row: tuple, context: "ExecutionContext") -> object:
    if node.operand is not None:
        subject = evaluate(node.operand, row, context)
        for condition, result in node.whens:
            candidate = evaluate(condition, row, context)
            comparison = sql_compare(subject, candidate)
            if comparison == 0:
                return evaluate(result, row, context)
    else:
        for condition, result in node.whens:
            if evaluate(condition, row, context) is True:
                return evaluate(result, row, context)
    if node.default is not None:
        return evaluate(node.default, row, context)
    return None
