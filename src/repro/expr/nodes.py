"""Expression AST nodes.

The parser produces *unbound* trees (column references are names); the
binder rewrites them into *bound* trees where every :class:`ColumnRef`
carries the ordinal of its slot in the input row (and correlated references
carry the ordinal in the outer row). The same node classes serve both
phases, which keeps rewrites (predicate pushdown, audit instrumentation)
uniform.

Every node implements ``children()`` and ``replace_children()`` so generic
tree walks — used by the binder, the optimizer, and the audit placement
analysis — need no per-node special cases.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Iterator, Sequence

from repro.datatypes import Interval

if TYPE_CHECKING:  # pragma: no cover - cycle guard
    from repro.sql.ast import SelectStatement
    from repro.plan.logical import LogicalPlan


class Expression:
    """Base class for all scalar expression nodes."""

    def children(self) -> tuple["Expression", ...]:
        return ()

    def replace_children(
        self, children: Sequence["Expression"]
    ) -> "Expression":
        if children:
            raise ValueError(f"{type(self).__name__} takes no children")
        return self

    def walk(self) -> Iterator["Expression"]:
        """Pre-order traversal of this subtree (subqueries not entered)."""
        yield self
        for child in self.children():
            yield from child.walk()


@dataclass(frozen=True)
class Literal(Expression):
    """A constant: number, string, date, boolean, or NULL."""

    value: object


@dataclass(frozen=True)
class IntervalLiteral(Expression):
    """``INTERVAL 'n' UNIT`` — participates in date arithmetic."""

    interval: Interval


@dataclass(frozen=True)
class ColumnRef(Expression):
    """A column reference.

    Unbound: ``qualifier`` (optional) and ``name`` as written. Bound: the
    binder fills ``index`` (slot in the input row) or, for correlated
    references inside subqueries, ``outer_level`` > 0 with ``index``
    addressing the outer row at that nesting depth.
    """

    name: str
    qualifier: str | None = None
    index: int | None = None
    outer_level: int = 0

    @property
    def is_bound(self) -> bool:
        return self.index is not None

    def display(self) -> str:
        if self.qualifier:
            return f"{self.qualifier}.{self.name}"
        return self.name


@dataclass(frozen=True)
class Parameter(Expression):
    """A named query parameter, written ``:name`` in SQL text."""

    name: str


@dataclass(frozen=True)
class Star(Expression):
    """``*`` — only valid in ``COUNT(*)`` and select lists."""

    qualifier: str | None = None


@dataclass(frozen=True)
class Unary(Expression):
    """Unary operator: ``-`` or ``NOT``."""

    op: str
    operand: Expression

    def children(self) -> tuple[Expression, ...]:
        return (self.operand,)

    def replace_children(self, children: Sequence[Expression]) -> "Unary":
        (operand,) = children
        return replace(self, operand=operand)


@dataclass(frozen=True)
class Binary(Expression):
    """Binary operator: arithmetic (+ - * /), comparison, AND, OR."""

    op: str
    left: Expression
    right: Expression

    def children(self) -> tuple[Expression, ...]:
        return (self.left, self.right)

    def replace_children(self, children: Sequence[Expression]) -> "Binary":
        left, right = children
        return replace(self, left=left, right=right)


@dataclass(frozen=True)
class IsNull(Expression):
    """``expr IS [NOT] NULL``."""

    operand: Expression
    negated: bool = False

    def children(self) -> tuple[Expression, ...]:
        return (self.operand,)

    def replace_children(self, children: Sequence[Expression]) -> "IsNull":
        (operand,) = children
        return replace(self, operand=operand)


@dataclass(frozen=True)
class Between(Expression):
    """``expr [NOT] BETWEEN low AND high``."""

    operand: Expression
    low: Expression
    high: Expression
    negated: bool = False

    def children(self) -> tuple[Expression, ...]:
        return (self.operand, self.low, self.high)

    def replace_children(self, children: Sequence[Expression]) -> "Between":
        operand, low, high = children
        return replace(self, operand=operand, low=low, high=high)


@dataclass(frozen=True)
class Like(Expression):
    """``expr [NOT] LIKE pattern``."""

    operand: Expression
    pattern: Expression
    negated: bool = False

    def children(self) -> tuple[Expression, ...]:
        return (self.operand, self.pattern)

    def replace_children(self, children: Sequence[Expression]) -> "Like":
        operand, pattern = children
        return replace(self, operand=operand, pattern=pattern)


@dataclass(frozen=True)
class InList(Expression):
    """``expr [NOT] IN (v1, v2, ...)``."""

    operand: Expression
    items: tuple[Expression, ...]
    negated: bool = False

    def children(self) -> tuple[Expression, ...]:
        return (self.operand, *self.items)

    def replace_children(self, children: Sequence[Expression]) -> "InList":
        operand, *items = children
        return replace(self, operand=operand, items=tuple(items))


@dataclass(frozen=True)
class SubqueryExpression(Expression):
    """Base for expressions holding a subquery.

    ``select`` is the parsed AST before binding; the binder replaces it
    with a bound :class:`~repro.plan.logical.LogicalPlan` in ``plan``.
    Subqueries are *not* entered by :meth:`Expression.walk`; analyses that
    must see inside them do so explicitly via ``plan``.
    """

    select: "SelectStatement | None" = None
    plan: "LogicalPlan | None" = field(default=None, compare=False)


@dataclass(frozen=True)
class InSubquery(SubqueryExpression):
    """``expr [NOT] IN (SELECT ...)``."""

    operand: Expression | None = None
    negated: bool = False

    def children(self) -> tuple[Expression, ...]:
        return (self.operand,) if self.operand is not None else ()

    def replace_children(self, children: Sequence[Expression]) -> "InSubquery":
        (operand,) = children
        return replace(self, operand=operand)


@dataclass(frozen=True)
class Exists(SubqueryExpression):
    """``[NOT] EXISTS (SELECT ...)``."""

    negated: bool = False


@dataclass(frozen=True)
class ScalarSubquery(SubqueryExpression):
    """A subquery used as a scalar value (must yield <= 1 row, 1 column)."""


@dataclass(frozen=True)
class Case(Expression):
    """``CASE [operand] WHEN ... THEN ... [ELSE ...] END``."""

    whens: tuple[tuple[Expression, Expression], ...]
    operand: Expression | None = None
    default: Expression | None = None

    def children(self) -> tuple[Expression, ...]:
        parts: list[Expression] = []
        if self.operand is not None:
            parts.append(self.operand)
        for condition, result in self.whens:
            parts.append(condition)
            parts.append(result)
        if self.default is not None:
            parts.append(self.default)
        return tuple(parts)

    def replace_children(self, children: Sequence[Expression]) -> "Case":
        children = list(children)
        operand = children.pop(0) if self.operand is not None else None
        default = children.pop() if self.default is not None else None
        if len(children) != 2 * len(self.whens):
            raise ValueError("CASE child count mismatch")
        whens = tuple(
            (children[i], children[i + 1])
            for i in range(0, len(children), 2)
        )
        return replace(self, whens=whens, operand=operand, default=default)


@dataclass(frozen=True)
class FunctionCall(Expression):
    """A function call; may be scalar (``substring``) or aggregate (``sum``).

    The binder splits aggregates out of expressions; by execution time a
    ``FunctionCall`` is always scalar.
    """

    name: str
    args: tuple[Expression, ...] = ()
    distinct: bool = False

    def children(self) -> tuple[Expression, ...]:
        return self.args

    def replace_children(
        self, children: Sequence[Expression]
    ) -> "FunctionCall":
        return replace(self, args=tuple(children))


@dataclass(frozen=True)
class AggregateRef(Expression):
    """A bound reference to aggregate slot ``index`` of a group-by operator."""

    index: int
    name: str = "agg"


def conjuncts(expression: Expression | None) -> list[Expression]:
    """Flatten nested ANDs into a list of conjuncts (empty for None)."""
    if expression is None:
        return []
    if isinstance(expression, Binary) and expression.op == "AND":
        return conjuncts(expression.left) + conjuncts(expression.right)
    return [expression]


def conjoin(parts: Sequence[Expression]) -> Expression | None:
    """Combine conjuncts back into one AND tree (None for empty input)."""
    result: Expression | None = None
    for part in parts:
        if result is None:
            result = part
        else:
            result = Binary("AND", result, part)
    return result


def transform(expression: Expression, visit) -> Expression:
    """Bottom-up rewrite: apply ``visit`` to every node, children first."""
    children = expression.children()
    if children:
        new_children = [transform(child, visit) for child in children]
        if any(new is not old for new, old in zip(new_children, children)):
            expression = expression.replace_children(new_children)
    return visit(expression)


def referenced_columns(expression: Expression | None) -> list[ColumnRef]:
    """All column references in the tree (excluding inside subqueries)."""
    if expression is None:
        return []
    return [
        node for node in expression.walk() if isinstance(node, ColumnRef)
    ]


def referenced_slots(expression: Expression | None) -> set[int]:
    """Bound slot ordinals referenced at the current level (outer_level 0)."""
    slots: set[int] = set()
    for ref in referenced_columns(expression):
        if ref.outer_level == 0 and ref.index is not None:
            slots.add(ref.index)
    return slots


def contains_subquery(expression: Expression | None) -> bool:
    """True if any node in the tree is a subquery expression."""
    if expression is None:
        return False
    return any(
        isinstance(node, SubqueryExpression) for node in expression.walk()
    )
