"""Expression compilation: bound trees to Python closures.

``evaluate`` walks the expression tree once per row — an isinstance
dispatch per node per row, the dominant CPU cost of predicate evaluation
in a Python engine. ``compile_expression`` walks the tree *once per plan*
and returns a closure ``f(row, context) -> value`` built bottom-up from
per-node closures, so the per-row work is plain attribute-free Python
calls over captured sub-closures.

Semantics are identical to the evaluator by construction: SQL NULL
handling is replicated branch for branch, arithmetic delegates to the
evaluator's shared ``apply_binary_operator``, and any node the compiler
does not specialize (subqueries, unbound references) falls back to a
closure over ``evaluate`` itself. The batched executor compiles filter
predicates, projections, join residuals, sort keys, and aggregate
arguments once at operator-construction time.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable

from repro.datatypes import sql_and, sql_compare, sql_like, sql_not, sql_or
from repro.expr.evaluator import _COMPARISONS, apply_binary_operator, evaluate
from repro.expr.functions import is_scalar_function, lookup_function
from repro.expr.nodes import (
    AggregateRef,
    Between,
    Binary,
    Case,
    ColumnRef,
    Expression,
    FunctionCall,
    InList,
    IntervalLiteral,
    IsNull,
    Like,
    Literal,
    Parameter,
    Unary,
    conjuncts,
    contains_subquery,
    referenced_slots,
)

if TYPE_CHECKING:  # pragma: no cover - cycle guard
    from repro.exec.context import ExecutionContext

#: a compiled expression: row, context -> scalar value
CompiledExpression = Callable[[tuple, "ExecutionContext"], object]


def compile_expression(expression: Expression) -> CompiledExpression:
    """Compile a bound expression tree into a ``(row, context)`` closure."""
    if isinstance(expression, Literal):
        value = expression.value
        return lambda row, context: value
    if isinstance(expression, ColumnRef):
        return _compile_column(expression)
    if isinstance(expression, AggregateRef):
        index = expression.index
        return lambda row, context: row[index]
    if isinstance(expression, Parameter):
        name = expression.name
        return lambda row, context: context.parameter(name)
    if isinstance(expression, IntervalLiteral):
        interval = expression.interval
        return lambda row, context: interval
    if isinstance(expression, Binary):
        return _compile_binary(expression)
    if isinstance(expression, Unary):
        return _compile_unary(expression)
    if isinstance(expression, IsNull):
        return _compile_is_null(expression)
    if isinstance(expression, Between):
        return _compile_between(expression)
    if isinstance(expression, Like):
        return _compile_like(expression)
    if isinstance(expression, InList):
        return _compile_in_list(expression)
    if isinstance(expression, Case):
        return _compile_case(expression)
    if isinstance(expression, FunctionCall):
        return _compile_function(expression)
    # Subqueries, Star, and anything future: the evaluator is the
    # reference semantics — delegate wholesale.
    return lambda row, context: evaluate(expression, row, context)


def compile_predicate(expression: Expression) -> CompiledExpression:
    """Compile a filter predicate (callers test ``is True`` themselves)."""
    return compile_expression(expression)


def compile_projector(
    expressions: tuple[Expression, ...],
) -> Callable[[tuple, "ExecutionContext"], tuple]:
    """Compile a projection list into a single row-to-row closure."""
    if all(
        isinstance(expression, ColumnRef)
        and expression.outer_level == 0
        and expression.index is not None
        for expression in expressions
    ):
        slots = tuple(expression.index for expression in expressions)
        return lambda row, context: tuple(row[slot] for slot in slots)
    compiled = tuple(
        compile_expression(expression) for expression in expressions
    )
    return lambda row, context: tuple(
        part(row, context) for part in compiled
    )


# ---------------------------------------------------------------------------
# per-node compilers


def _compile_column(ref: ColumnRef) -> CompiledExpression:
    if ref.index is None:
        # unbound: the evaluator raises the canonical error
        return lambda row, context: evaluate(ref, row, context)
    index = ref.index
    if ref.outer_level == 0:
        return lambda row, context: row[index]
    level = ref.outer_level
    return lambda row, context: context.outer_row(level)[index]


def _compile_binary(node: Binary) -> CompiledExpression:
    op = node.op
    left = compile_expression(node.left)
    right = compile_expression(node.right)
    if op == "AND":

        def _and(row, context):
            value = left(row, context)
            if value is False:
                return False
            return sql_and(value, right(row, context))

        return _and
    if op == "OR":

        def _or(row, context):
            value = left(row, context)
            if value is True:
                return True
            return sql_or(value, right(row, context))

        return _or
    if op in _COMPARISONS:
        verdict = _COMPARISONS[op]

        def _compare(row, context):
            comparison = sql_compare(left(row, context), right(row, context))
            if comparison is None:
                return None
            return verdict(comparison)

        return _compare
    return lambda row, context: apply_binary_operator(
        op, left(row, context), right(row, context)
    )


def _compile_unary(node: Unary) -> CompiledExpression:
    operand = compile_expression(node.operand)
    if node.op == "NOT":
        return lambda row, context: sql_not(operand(row, context))
    if node.op == "-":

        def _negate(row, context):
            value = operand(row, context)
            if value is None:
                return None
            return -value

        return _negate
    return lambda row, context: evaluate(node, row, context)


def _compile_is_null(node: IsNull) -> CompiledExpression:
    operand = compile_expression(node.operand)
    if node.negated:
        return lambda row, context: operand(row, context) is not None
    return lambda row, context: operand(row, context) is None


def _compile_between(node: Between) -> CompiledExpression:
    operand = compile_expression(node.operand)
    low = compile_expression(node.low)
    high = compile_expression(node.high)
    negated = node.negated

    def _between(row, context):
        value = operand(row, context)
        lower = sql_compare(value, low(row, context))
        upper = sql_compare(value, high(row, context))
        result = sql_and(
            None if lower is None else lower >= 0,
            None if upper is None else upper <= 0,
        )
        return sql_not(result) if negated else result

    return _between


def _compile_like(node: Like) -> CompiledExpression:
    operand = compile_expression(node.operand)
    pattern = compile_expression(node.pattern)
    negated = node.negated

    def _like(row, context):
        result = sql_like(operand(row, context), pattern(row, context))
        return sql_not(result) if negated else result

    return _like


def _compile_in_list(node: InList) -> CompiledExpression:
    operand = compile_expression(node.operand)
    items = tuple(compile_expression(item) for item in node.items)
    negated = node.negated

    def _in_list(row, context):
        value = operand(row, context)
        saw_null = value is None
        for item in items:
            member = item(row, context)
            if member is None or value is None:
                saw_null = True
                continue
            if member == value:
                return False if negated else True
        if saw_null:
            return None
        return True if negated else False

    return _in_list


def _compile_case(node: Case) -> CompiledExpression:
    whens = tuple(
        (compile_expression(condition), compile_expression(result))
        for condition, result in node.whens
    )
    default = (
        compile_expression(node.default) if node.default is not None else None
    )
    if node.operand is not None:
        operand = compile_expression(node.operand)

        def _case_operand(row, context):
            subject = operand(row, context)
            for condition, result in whens:
                if sql_compare(subject, condition(row, context)) == 0:
                    return result(row, context)
            if default is not None:
                return default(row, context)
            return None

        return _case_operand

    def _case_searched(row, context):
        for condition, result in whens:
            if condition(row, context) is True:
                return result(row, context)
        if default is not None:
            return default(row, context)
        return None

    return _case_searched


def _compile_function(node: FunctionCall) -> CompiledExpression:
    if not is_scalar_function(node.name):
        # unknown name: raise at evaluation time, like the evaluator
        return lambda row, context: evaluate(node, row, context)
    function = lookup_function(node.name)
    args = tuple(compile_expression(argument) for argument in node.args)

    def _call(row, context):
        return function(
            context, tuple(argument(row, context) for argument in args)
        )

    return _call


# ---------------------------------------------------------------------------
# columnar compilation (the ``rows_columnar`` execution mode)
#
# A *column sweep* is ``f(columns, indices, context) -> surviving indices``:
# it narrows a selection vector over column-major data without building
# row-tuples. ``compile_column_predicate`` decomposes a predicate into its
# top-level conjuncts and chains one sweep per conjunct — the selection
# shrinks between conjuncts, which is both the vectorized short-circuit
# (later conjuncts never see rows an earlier one dropped, exactly like the
# row closure's AND short-circuit) and the early exit (an empty selection
# stops the chain).
#
# Each specialized sweep replicates the row closure's SQL semantics branch
# for branch: a row survives iff the conjunct is exactly TRUE, NULLs on
# either side exclude it, and comparisons use the same raw ``<``/``>``
# calls as ``sql_compare`` (so incomparable types raise identically).
# Conjuncts the specializer does not recognize fall back to the compiled
# row closure over a pivoted row — never wrong, just not vectorized.

#: a compiled column sweep: columns, selection, context -> new selection
ColumnSweep = Callable[
    [tuple, "Sequence[int]", "ExecutionContext"], "Sequence[int]"
]


def compile_column_predicate(expression: Expression) -> ColumnSweep:
    """Compile a predicate into a selection-narrowing column sweep."""
    sweeps = tuple(
        _compile_conjunct_sweep(conjunct)
        for conjunct in conjuncts(expression)
    )
    if len(sweeps) == 1:
        return sweeps[0]

    def _chain(columns, indices, context):
        for sweep in sweeps:
            if not indices:
                return indices
            indices = sweep(columns, indices, context)
        return indices

    return _chain


def _row_independent(expression: Expression) -> bool:
    """True when the expression is hoistable to once-per-batch evaluation.

    Requires no level-0 column slots, no subqueries, and no function
    calls — session functions (``now()``) are live per call, so hoisting
    them out of the per-row loop would change what each row sees.
    """
    if referenced_slots(expression) or contains_subquery(expression):
        return False
    return not any(
        isinstance(node, FunctionCall) for node in expression.walk()
    )


def _simple_column(expression: Expression) -> int | None:
    """Slot ordinal when the expression is a bound level-0 column ref."""
    if (
        isinstance(expression, ColumnRef)
        and expression.outer_level == 0
        and expression.index is not None
    ):
        return expression.index
    return None


_COLUMN_FLIP = {
    "<": ">", "<=": ">=", ">": "<", ">=": "<=", "=": "=", "<>": "<>"
}


def _compile_conjunct_sweep(conjunct: Expression) -> ColumnSweep:
    if isinstance(conjunct, Binary) and conjunct.op in _COLUMN_FLIP:
        for column, bound, op in (
            (conjunct.left, conjunct.right, conjunct.op),
            (conjunct.right, conjunct.left, _COLUMN_FLIP[conjunct.op]),
        ):
            slot = _simple_column(column)
            if slot is not None and _row_independent(bound):
                return _comparison_sweep(
                    op, slot, compile_expression(bound)
                )
    elif isinstance(conjunct, IsNull):
        slot = _simple_column(conjunct.operand)
        if slot is not None:
            return _is_null_sweep(slot, conjunct.negated)
    elif isinstance(conjunct, Between) and not conjunct.negated:
        slot = _simple_column(conjunct.operand)
        if (
            slot is not None
            and _row_independent(conjunct.low)
            and _row_independent(conjunct.high)
        ):
            return _between_sweep(
                slot,
                compile_expression(conjunct.low),
                compile_expression(conjunct.high),
            )
    elif isinstance(conjunct, Like):
        slot = _simple_column(conjunct.operand)
        if slot is not None and _row_independent(conjunct.pattern):
            return _like_sweep(
                slot, compile_expression(conjunct.pattern), conjunct.negated
            )
    elif isinstance(conjunct, InList):
        sweep = _in_list_sweep(conjunct)
        if sweep is not None:
            return sweep
    return _fallback_sweep(compile_expression(conjunct))


def _fallback_sweep(closure: CompiledExpression) -> ColumnSweep:
    """Pivot each selected row and delegate to the row closure."""

    def _sweep(columns, indices, context):
        rows = getattr(columns, "rows", None)  # LazyColumns backing
        if rows is not None:
            return [
                i for i in indices if closure(rows[i], context) is True
            ]
        return [
            i
            for i in indices
            if closure(
                tuple(column[i] for column in columns), context
            ) is True
        ]

    return _sweep


def _comparison_sweep(
    op: str, slot: int, bound_closure: CompiledExpression
) -> ColumnSweep:
    # Each branch mirrors ``sql_compare`` + the op's verdict: NULL on
    # either side is never TRUE, and ``<=``/``>=`` are the negations of
    # the strict comparisons under the same comparison protocol. Lazy
    # (row-backed) batches are swept straight off the backing rows —
    # one fused pass instead of pivot-the-column-then-compare.
    if op == "=":

        def _sweep(columns, indices, context):
            bound = bound_closure((), context)
            if bound is None:
                return []
            rows = getattr(columns, "rows", None)
            if rows is not None:
                return [
                    i for i in indices
                    if (value := rows[i][slot]) is not None
                    and not (value < bound or value > bound)
                ]
            column = columns[slot]
            return [
                i for i in indices
                if (value := column[i]) is not None
                and not (value < bound or value > bound)
            ]

    elif op == "<>":

        def _sweep(columns, indices, context):
            bound = bound_closure((), context)
            if bound is None:
                return []
            rows = getattr(columns, "rows", None)
            if rows is not None:
                return [
                    i for i in indices
                    if (value := rows[i][slot]) is not None
                    and (value < bound or value > bound)
                ]
            column = columns[slot]
            return [
                i for i in indices
                if (value := column[i]) is not None
                and (value < bound or value > bound)
            ]

    elif op == "<":

        def _sweep(columns, indices, context):
            bound = bound_closure((), context)
            if bound is None:
                return []
            rows = getattr(columns, "rows", None)
            if rows is not None:
                return [
                    i for i in indices
                    if (value := rows[i][slot]) is not None
                    and value < bound
                ]
            column = columns[slot]
            return [
                i for i in indices
                if (value := column[i]) is not None and value < bound
            ]

    elif op == "<=":

        def _sweep(columns, indices, context):
            bound = bound_closure((), context)
            if bound is None:
                return []
            rows = getattr(columns, "rows", None)
            if rows is not None:
                return [
                    i for i in indices
                    if (value := rows[i][slot]) is not None
                    and not value > bound
                ]
            column = columns[slot]
            return [
                i for i in indices
                if (value := column[i]) is not None and not value > bound
            ]

    elif op == ">":

        def _sweep(columns, indices, context):
            bound = bound_closure((), context)
            if bound is None:
                return []
            rows = getattr(columns, "rows", None)
            if rows is not None:
                return [
                    i for i in indices
                    if (value := rows[i][slot]) is not None
                    and value > bound
                ]
            column = columns[slot]
            return [
                i for i in indices
                if (value := column[i]) is not None and value > bound
            ]

    else:  # ">="

        def _sweep(columns, indices, context):
            bound = bound_closure((), context)
            if bound is None:
                return []
            rows = getattr(columns, "rows", None)
            if rows is not None:
                return [
                    i for i in indices
                    if (value := rows[i][slot]) is not None
                    and not value < bound
                ]
            column = columns[slot]
            return [
                i for i in indices
                if (value := column[i]) is not None and not value < bound
            ]

    return _sweep


def _is_null_sweep(slot: int, negated: bool) -> ColumnSweep:
    if negated:

        def _sweep(columns, indices, context):
            column = columns[slot]
            return [i for i in indices if column[i] is not None]

    else:

        def _sweep(columns, indices, context):
            column = columns[slot]
            return [i for i in indices if column[i] is None]

    return _sweep


def _between_sweep(
    slot: int,
    low_closure: CompiledExpression,
    high_closure: CompiledExpression,
) -> ColumnSweep:
    def _sweep(columns, indices, context):
        low = low_closure((), context)
        high = high_closure((), context)
        if low is None or high is None:
            return []
        rows = getattr(columns, "rows", None)
        if rows is not None:
            return [
                i for i in indices
                if (value := rows[i][slot]) is not None
                and not value < low
                and not value > high
            ]
        column = columns[slot]
        return [
            i for i in indices
            if (value := column[i]) is not None
            and not value < low
            and not value > high
        ]

    return _sweep


def _like_sweep(
    slot: int, pattern_closure: CompiledExpression, negated: bool
) -> ColumnSweep:
    verdict = False if negated else True

    def _sweep(columns, indices, context):
        pattern = pattern_closure((), context)
        column = columns[slot]
        return [
            i for i in indices
            if sql_like(column[i], pattern) is verdict
        ]

    return _sweep


def _in_list_sweep(node: InList) -> ColumnSweep | None:
    """Set-membership sweep; None when the list is not a constant set."""
    slot = _simple_column(node.operand)
    if slot is None:
        return None
    members = []
    for item in node.items:
        # only non-NULL literals: a NULL member changes FALSE verdicts to
        # NULL, which the set-membership shortcut cannot express
        if not isinstance(item, Literal) or item.value is None:
            return None
        members.append(item.value)
    try:
        member_set = frozenset(members)
    except TypeError:  # unhashable literal: keep the row closure
        return None
    if node.negated:

        def _sweep(columns, indices, context):
            column = columns[slot]
            return [
                i for i in indices
                if (value := column[i]) is not None
                and value not in member_set
            ]

    else:

        def _sweep(columns, indices, context):
            column = columns[slot]
            return [
                i for i in indices
                if (value := column[i]) is not None and value in member_set
            ]

    return _sweep
