"""Table and column schema objects.

A :class:`TableSchema` is the authoritative description of a stored table:
ordered columns, the primary key, and declared foreign keys. Schemas are
immutable after construction; the storage layer and the binder both hold
references to the same schema object, so mutation would corrupt plans.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.datatypes import DataType
from repro.errors import CatalogError


@dataclass(frozen=True)
class Column:
    """One column of a table.

    Attributes:
        name: lower-case column name (the engine is case-insensitive and
            normalizes identifiers to lower case).
        data_type: declared SQL type.
        nullable: whether NULLs may be stored.
    """

    name: str
    data_type: DataType
    nullable: bool = True


@dataclass(frozen=True)
class ForeignKey:
    """A declared foreign key: ``columns`` reference ``ref_table.ref_columns``."""

    columns: tuple[str, ...]
    ref_table: str
    ref_columns: tuple[str, ...]


@dataclass(frozen=True)
class TableSchema:
    """Immutable description of a stored table."""

    name: str
    columns: tuple[Column, ...]
    primary_key: tuple[str, ...] = ()
    foreign_keys: tuple[ForeignKey, ...] = ()
    _positions: dict[str, int] = field(
        default_factory=dict, repr=False, compare=False
    )

    def __post_init__(self) -> None:
        positions: dict[str, int] = {}
        for index, column in enumerate(self.columns):
            if column.name in positions:
                raise CatalogError(
                    f"duplicate column {column.name!r} in table {self.name!r}"
                )
            positions[column.name] = index
        for key_column in self.primary_key:
            if key_column not in positions:
                raise CatalogError(
                    f"primary key column {key_column!r} not in table {self.name!r}"
                )
        # frozen dataclass: install the lookup dict via object.__setattr__
        object.__setattr__(self, "_positions", positions)

    @property
    def column_names(self) -> tuple[str, ...]:
        return tuple(column.name for column in self.columns)

    def has_column(self, name: str) -> bool:
        return name.lower() in self._positions

    def position_of(self, name: str) -> int:
        """Ordinal of ``name``; raises :class:`CatalogError` if absent."""
        try:
            return self._positions[name.lower()]
        except KeyError:
            raise CatalogError(
                f"table {self.name!r} has no column {name!r}"
            ) from None

    def column(self, name: str) -> Column:
        return self.columns[self.position_of(name)]

    def primary_key_positions(self) -> tuple[int, ...]:
        return tuple(self.position_of(name) for name in self.primary_key)

    def single_column_primary_key(self) -> str | None:
        """The PK column name when the key is a single column, else None."""
        if len(self.primary_key) == 1:
            return self.primary_key[0]
        return None
