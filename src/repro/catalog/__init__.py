"""Catalog: schemas for tables and indexes plus the metadata registry."""

from repro.catalog.schema import Column, TableSchema, ForeignKey
from repro.catalog.catalog import Catalog, IndexDefinition
from repro.catalog.statistics import TableStatistics, ColumnStatistics

__all__ = [
    "Column",
    "TableSchema",
    "ForeignKey",
    "Catalog",
    "IndexDefinition",
    "TableStatistics",
    "ColumnStatistics",
]
