"""Table and column statistics for cardinality estimation.

The optimizer's cost model needs row counts, distinct-value counts, and
min/max bounds to estimate selectivities. Statistics are recomputed on
demand (``ANALYZE``-style) by scanning the table; the engine refreshes them
lazily when a table's modification counter has advanced.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class ColumnStatistics:
    """Summary statistics of a single column."""

    distinct_count: int = 0
    null_count: int = 0
    min_value: object = None
    max_value: object = None

    def selectivity_equals(self, row_count: int) -> float:
        """Estimated selectivity of ``col = constant``."""
        if self.distinct_count <= 0:
            return 0.1 if row_count else 0.0
        return 1.0 / self.distinct_count

    def selectivity_range(self, low: object, high: object) -> float:
        """Estimated selectivity of a range predicate over [low, high].

        Uses a uniform model over the [min, max] span for numeric and date
        columns; falls back to a fixed guess for other types.
        """
        min_value, max_value = self.min_value, self.max_value
        if min_value is None or max_value is None or min_value == max_value:
            return 0.3
        try:
            span = _numeric(max_value) - _numeric(min_value)
            if span <= 0:
                return 0.3
            lo = _numeric(low) if low is not None else _numeric(min_value)
            hi = _numeric(high) if high is not None else _numeric(max_value)
            fraction = (hi - lo) / span
        except TypeError:
            return 0.3
        return min(max(fraction, 0.0), 1.0)


def _numeric(value: object) -> float:
    """Map orderable values onto a numeric axis for range estimation."""
    if isinstance(value, (int, float)):
        return float(value)
    if hasattr(value, "toordinal"):
        return float(value.toordinal())
    raise TypeError(f"non-numeric value {value!r}")


@dataclass
class TableStatistics:
    """Statistics of one table: row count plus per-column summaries."""

    row_count: int = 0
    columns: dict[str, ColumnStatistics] = field(default_factory=dict)
    #: value of the table's modification counter when stats were gathered
    version: int = -1
    #: storage blocks backing the table (block-partitioned heap)
    block_count: int = 0

    @property
    def avg_block_rows(self) -> float:
        """Mean block fill — the unit the data-skipping cost model
        converts block-selectivity fractions back into row estimates
        with."""
        if self.block_count <= 0:
            return float(self.row_count)
        return self.row_count / self.block_count

    @classmethod
    def gather(cls, column_names: tuple[str, ...], rows, version: int,
               block_count: int = 0) -> "TableStatistics":
        """Compute statistics with a single scan over ``rows``."""
        distinct: list[set] = [set() for __ in column_names]
        nulls = [0] * len(column_names)
        mins: list[object] = [None] * len(column_names)
        maxs: list[object] = [None] * len(column_names)
        row_count = 0
        for row in rows:
            row_count += 1
            for index, value in enumerate(row):
                if value is None:
                    nulls[index] += 1
                    continue
                distinct[index].add(value)
                if mins[index] is None or value < mins[index]:
                    mins[index] = value
                if maxs[index] is None or value > maxs[index]:
                    maxs[index] = value
        columns = {
            name: ColumnStatistics(
                distinct_count=len(distinct[index]),
                null_count=nulls[index],
                min_value=mins[index],
                max_value=maxs[index],
            )
            for index, name in enumerate(column_names)
        }
        return cls(row_count=row_count, columns=columns, version=version,
                   block_count=block_count)
