"""The catalog: the registry of all named objects in a database.

The catalog owns tables (storage objects), secondary-index definitions,
triggers, and audit expressions. It is deliberately ignorant of their
implementations — storage and audit modules register concrete objects here —
which keeps the dependency graph acyclic (catalog ← storage ← executor ...).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterator

from repro.catalog.statistics import TableStatistics
from repro.errors import CatalogError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.storage.table import Table


@dataclass(frozen=True)
class IndexDefinition:
    """A secondary index over ``table.columns`` (ordered or hash)."""

    name: str
    table: str
    columns: tuple[str, ...]
    unique: bool = False


class Catalog:
    """Mutable registry of tables, indexes, triggers, and audit expressions."""

    def __init__(self) -> None:
        self._tables: dict[str, "Table"] = {}
        self._indexes: dict[str, IndexDefinition] = {}
        self._statistics: dict[str, TableStatistics] = {}
        # Trigger and audit-expression objects are registered by their
        # subsystems; the catalog only provides named storage + lookup.
        self._triggers: dict[str, object] = {}
        self._audit_expressions: dict[str, object] = {}
        #: monotonic counter bumped by every DDL-level change (tables,
        #: indexes, triggers); plan caches key their entries on it so any
        #: change that could alter a compiled plan invalidates
        self.version = 0
        #: statistics epoch, bumped alongside :attr:`version` whenever any
        #: table's row count crosses a power-of-two bucket since the last
        #: check — DML that materially changes cardinalities invalidates
        #: cached plans costed against the old statistics, while steady
        #: small churn does not thrash the plan cache
        self.stats_version = 0
        self._stats_buckets: dict[str, int] = {}
        # Serializes registry mutation, version bumps, and the lazy
        # statistics cache against concurrent DDL / serving threads.
        self._lock = threading.RLock()

    # ------------------------------------------------------------------
    # tables

    def add_table(self, table: "Table", transient: bool = False) -> None:
        """Register a table.

        ``transient=True`` skips the DDL version bump: the table is a
        short-lived system relation (the trigger manager's ``accessed``)
        that no cached user plan can reference, so registering it must
        not invalidate every compiled plan on each trigger firing.
        """
        with self._lock:
            name = table.schema.name.lower()
            if name in self._tables:
                raise CatalogError(f"table {name!r} already exists")
            self._tables[name] = table
            if not transient:
                self.version += 1

    def drop_table(self, name: str, transient: bool = False) -> None:
        with self._lock:
            key = name.lower()
            if key not in self._tables:
                raise CatalogError(f"table {name!r} does not exist")
            del self._tables[key]
            self._statistics.pop(key, None)
            self._indexes = {
                index_name: definition
                for index_name, definition in self._indexes.items()
                if definition.table != key
            }
            if not transient:
                self.version += 1

    def table(self, name: str) -> "Table":
        try:
            return self._tables[name.lower()]
        except KeyError:
            raise CatalogError(f"table {name!r} does not exist") from None

    def has_table(self, name: str) -> bool:
        return name.lower() in self._tables

    def tables(self) -> Iterator["Table"]:
        return iter(self._tables.values())

    # ------------------------------------------------------------------
    # secondary indexes

    def add_index(self, definition: IndexDefinition) -> None:
        with self._lock:
            key = definition.name.lower()
            if key in self._indexes:
                raise CatalogError(
                    f"index {definition.name!r} already exists"
                )
            if not self.has_table(definition.table):
                raise CatalogError(
                    f"index {definition.name!r} references missing table "
                    f"{definition.table!r}"
                )
            self._indexes[key] = definition
            self.version += 1

    def indexes_on(self, table: str) -> list[IndexDefinition]:
        key = table.lower()
        return [d for d in self._indexes.values() if d.table == key]

    # ------------------------------------------------------------------
    # statistics

    def statistics(self, table_name: str) -> TableStatistics:
        """Return fresh statistics, re-gathering if the table changed."""
        table = self.table(table_name)
        key = table_name.lower()
        with self._lock:
            cached = self._statistics.get(key)
            if cached is not None and cached.version == table.version:
                return cached
            stats = TableStatistics.gather(
                table.schema.column_names, table.rows(), table.version,
                block_count=getattr(table, "block_count", 0),
            )
            self._statistics[key] = stats
            return stats

    def refresh_stats_version(self) -> int:
        """Advance :attr:`stats_version` if any table's cardinality moved.

        DML does not bump the DDL :attr:`version` (that would defeat plan
        caching), but a plan costed when a table was empty should not
        survive a bulk load. Row counts are bucketed by power of two: the
        epoch advances exactly when some table's count crosses a bucket
        boundary, i.e. when cached cost estimates are off by more than
        2x. Cheap enough (one ``len`` per table) to run per statement.
        """
        with self._lock:
            buckets = {
                name: len(table).bit_length()
                for name, table in self._tables.items()
            }
            if buckets != self._stats_buckets:
                self._stats_buckets = buckets
                self.stats_version += 1
            return self.stats_version

    def sketch_block_selectivity(
        self, table_name: str, column_name: str, ids
    ) -> float:
        """Fraction of the table's blocks that may contain any of ``ids``.

        The data-skipping cost input: an audit operator placed directly
        over a scan of ``table_name`` probes only the blocks whose
        sensitive-ID sketch (plus zone range) admits a candidate, so its
        expected probe cardinality is ``row_count x`` this fraction.
        Returns 1.0 (no skipping benefit) whenever the column is not
        sketched or the consult would not be conservative-cheap.
        """
        table = self.table(table_name)
        try:
            position = table.schema.position_of(column_name)
        except Exception:
            return 1.0
        if position not in getattr(table, "sketch_positions", ()):
            return 1.0
        blocks = table.blocks()
        if not blocks:
            return 1.0
        ids = set(ids)
        if not ids:
            return 0.0
        if len(ids) > 2048:
            return 1.0
        try:
            lo, hi = min(ids), max(ids)
        except TypeError:
            lo = hi = None
        admitted = sum(
            1
            for block in blocks
            if table.fresh_summary(block).may_contain_any(
                position, ids, lo, hi
            )
        )
        return admitted / len(blocks)

    # ------------------------------------------------------------------
    # triggers

    def add_trigger(self, name: str, trigger: object) -> None:
        with self._lock:
            key = name.lower()
            if key in self._triggers:
                raise CatalogError(f"trigger {name!r} already exists")
            self._triggers[key] = trigger
            self.version += 1

    def drop_trigger(self, name: str) -> None:
        with self._lock:
            if name.lower() not in self._triggers:
                raise CatalogError(f"trigger {name!r} does not exist")
            del self._triggers[name.lower()]
            self.version += 1

    def trigger(self, name: str) -> object:
        try:
            return self._triggers[name.lower()]
        except KeyError:
            raise CatalogError(f"trigger {name!r} does not exist") from None

    def triggers(self) -> Iterator[object]:
        return iter(self._triggers.values())

    # ------------------------------------------------------------------
    # audit expressions

    def add_audit_expression(self, name: str, expression: object) -> None:
        key = name.lower()
        if key in self._audit_expressions:
            raise CatalogError(f"audit expression {name!r} already exists")
        self._audit_expressions[key] = expression

    def drop_audit_expression(self, name: str) -> None:
        if name.lower() not in self._audit_expressions:
            raise CatalogError(f"audit expression {name!r} does not exist")
        del self._audit_expressions[name.lower()]

    def audit_expression(self, name: str) -> object:
        try:
            return self._audit_expressions[name.lower()]
        except KeyError:
            raise CatalogError(
                f"audit expression {name!r} does not exist"
            ) from None

    def audit_expressions(self) -> Iterator[object]:
        return iter(self._audit_expressions.values())
