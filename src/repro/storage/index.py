"""Secondary index structures: hash (equality) and ordered (range).

Both index kinds map a key — the tuple of indexed column values — to the
set of row identifiers (rids) carrying that key. The ordered index keeps a
sorted key list for range scans, maintained incrementally with ``bisect``.
NULL keys are excluded from indexes, as in most engines: an equality or
range seek can never match NULL.
"""

from __future__ import annotations

import bisect
from typing import Iterable, Iterator

from repro.datatypes import value_sort_key


def _has_null(key: tuple) -> bool:
    return any(part is None for part in key)


class HashIndex:
    """Equality index: key tuple -> set of rids."""

    def __init__(self, name: str, positions: tuple[int, ...]) -> None:
        self.name = name
        self.positions = positions
        self._buckets: dict[tuple, set[int]] = {}

    def key_of(self, row: tuple) -> tuple:
        return tuple(row[position] for position in self.positions)

    def insert(self, rid: int, row: tuple) -> None:
        key = self.key_of(row)
        if _has_null(key):
            return
        self._buckets.setdefault(key, set()).add(rid)

    def delete(self, rid: int, row: tuple) -> None:
        key = self.key_of(row)
        if _has_null(key):
            return
        bucket = self._buckets.get(key)
        if bucket is not None:
            bucket.discard(rid)
            if not bucket:
                del self._buckets[key]

    def seek(self, key: tuple) -> Iterator[int]:
        """Yield rids whose indexed columns equal ``key``."""
        if _has_null(key):
            return iter(())
        return iter(self._buckets.get(key, ()))

    def __len__(self) -> int:
        return sum(len(bucket) for bucket in self._buckets.values())


class OrderedIndex:
    """Ordered index supporting equality and range scans.

    Maintains a sorted list of distinct keys in parallel with the hash map
    so that range scans are a bisect plus a slice walk.
    """

    def __init__(self, name: str, positions: tuple[int, ...]) -> None:
        self.name = name
        self.positions = positions
        self._buckets: dict[tuple, set[int]] = {}
        self._sorted_keys: list[tuple] = []

    def key_of(self, row: tuple) -> tuple:
        return tuple(row[position] for position in self.positions)

    def _sortable(self, key: tuple) -> tuple:
        return tuple(value_sort_key(part) for part in key)

    def insert(self, rid: int, row: tuple) -> None:
        key = self.key_of(row)
        if _has_null(key):
            return
        bucket = self._buckets.get(key)
        if bucket is None:
            self._buckets[key] = {rid}
            sortable = self._sortable(key)
            position = bisect.bisect_left(
                self._sorted_keys, sortable, key=self._sortable
            )
            self._sorted_keys.insert(position, key)
        else:
            bucket.add(rid)

    def delete(self, rid: int, row: tuple) -> None:
        key = self.key_of(row)
        if _has_null(key):
            return
        bucket = self._buckets.get(key)
        if bucket is None:
            return
        bucket.discard(rid)
        if not bucket:
            del self._buckets[key]
            sortable = self._sortable(key)
            position = bisect.bisect_left(
                self._sorted_keys, sortable, key=self._sortable
            )
            if (position < len(self._sorted_keys)
                    and self._sorted_keys[position] == key):
                del self._sorted_keys[position]

    def seek(self, key: tuple) -> Iterator[int]:
        if _has_null(key):
            return iter(())
        return iter(self._buckets.get(key, ()))

    def range_scan(
        self,
        low: tuple | None,
        high: tuple | None,
        low_inclusive: bool = True,
        high_inclusive: bool = True,
    ) -> Iterable[int]:
        """Yield rids with ``low <= key <= high`` (bounds optional).

        Bounds are single-column prefixes compared lexicographically on the
        sortable form; a ``None`` bound means unbounded on that side.
        """
        keys = self._sorted_keys
        if low is None:
            start = 0
        else:
            sortable = self._sortable(low)
            if low_inclusive:
                start = bisect.bisect_left(keys, sortable, key=self._sortable)
            else:
                start = bisect.bisect_right(keys, sortable, key=self._sortable)
        if high is None:
            stop = len(keys)
        else:
            sortable = self._sortable(high)
            if high_inclusive:
                stop = bisect.bisect_right(keys, sortable, key=self._sortable)
            else:
                stop = bisect.bisect_left(keys, sortable, key=self._sortable)
        for key in keys[start:stop]:
            yield from self._buckets[key]

    def __len__(self) -> int:
        return sum(len(bucket) for bucket in self._buckets.values())
