"""Fixed-capacity row blocks with zone maps and sensitive-ID sketches.

A :class:`~repro.storage.table.Table` partitions its heap into blocks of
at most ``capacity`` rows. Each block carries a :class:`BlockSummary`:

* per-column *zone maps* — min/max over the non-NULL values plus a NULL
  count — consulted by scans to skip blocks that provably cannot satisfy
  a sargable predicate conjunct;
* per-column *sensitive-ID sketches* — counting Bloom filters over the
  block's values of registered columns (the audit expressions'
  partition-by columns) — consulted by the audit operator and the offline
  lineage auditor to skip the set-membership pass for blocks provably
  free of sensitive rows (in the spirit of provenance-based data
  skipping).

The maintenance protocol keeps every consult **conservative** at all
times (false positives scan; false negatives are forbidden):

* INSERT widens the summary in place (min/max extend, NULL count and
  sketch grow) — a widened summary is exact if it was exact before;
* UPDATE adds the *new* row's contribution, then marks the summary
  stale — the old values linger as false positives until rebuild;
* DELETE only marks the summary stale — the remaining contents are a
  superset of the block;
* a stale summary is rebuilt lazily on the next consult. Rebuilds
  construct a fresh :class:`BlockSummary` aside and swap the reference
  atomically (one attribute store under the GIL), so readers racing a
  rebuild observe either the conservative stale summary or the exact
  fresh one — never a half-built sketch.
"""

from __future__ import annotations

from typing import Iterable

#: default rows per block (matches the executor's DEFAULT_BATCH_SIZE so a
#: block materializes as one batch)
DEFAULT_BLOCK_CAPACITY = 1024

#: sketch false-positive target per block; blocks are small, so this
#: costs ~10 bits per row of a sketched column
SKETCH_FALSE_POSITIVE_RATE = 0.01


def _make_sketch(capacity: int):
    # Imported lazily: repro.audit.__init__ imports modules that import
    # repro.storage.table, so a module-level import here would cycle.
    from repro.audit.bloom import CountingBloomFilter

    return CountingBloomFilter(
        expected_items=capacity,
        false_positive_rate=SKETCH_FALSE_POSITIVE_RATE,
    )


class BlockSummary:
    """Zone maps + sketches of one block's rows at some point in time."""

    __slots__ = ("mins", "maxs", "null_counts", "sketches", "row_count",
                 "stale", "dropped", "_capacity")

    def __init__(self, column_count: int, capacity: int,
                 sketch_positions: Iterable[int] = ()) -> None:
        self.mins: list[object] = [None] * column_count
        self.maxs: list[object] = [None] * column_count
        self.null_counts: list[int] = [0] * column_count
        #: columns whose zone map was abandoned (incomparable values);
        #: consults on them always answer "may match"
        self.dropped: set[int] = set()
        self.sketches = {
            position: _make_sketch(capacity)
            for position in sketch_positions
        }
        self.row_count = 0
        #: True once the summary may be a strict superset of the block
        #: (after UPDATE/DELETE); consults stay safe, rebuilds restore
        #: exactness
        self.stale = False
        self._capacity = capacity

    @classmethod
    def build(
        cls,
        rows: Iterable[tuple],
        column_count: int,
        capacity: int,
        sketch_positions: Iterable[int],
    ) -> "BlockSummary":
        """Exact summary of ``rows`` (the rebuild path)."""
        summary = cls(column_count, capacity, sketch_positions)
        for row in rows:
            summary.include_row(row)
        return summary

    # ------------------------------------------------------------------
    # maintenance

    def include_row(self, row: tuple) -> None:
        """Widen the summary to cover ``row`` (INSERT / UPDATE new image).

        Widening preserves the conservative invariant unconditionally:
        it can only add coverage, never remove it.
        """
        mins, maxs, nulls = self.mins, self.maxs, self.null_counts
        for position, value in enumerate(row):
            if value is None:
                nulls[position] += 1
                continue
            if position in self.dropped:
                continue
            low = mins[position]
            try:
                if low is None or value < low:
                    mins[position] = value
                if maxs[position] is None or value > maxs[position]:
                    maxs[position] = value
            except TypeError:
                # incomparable mix (should not happen post-coercion):
                # abandon the zone map for this column — every consult
                # on it answers "may match" from now on
                mins[position] = None
                maxs[position] = None
                self.dropped.add(position)
        for position, sketch in self.sketches.items():
            value = row[position]
            if value is not None:
                sketch.add(value)
        self.row_count += 1

    # ------------------------------------------------------------------
    # conservative consults

    def may_match(self, position: int, op: str, value: object) -> bool:
        """Could *some* row of the block satisfy ``col <op> value``?

        Must only return False when provably no row can — rows whose
        column is NULL never satisfy a comparison (three-valued logic),
        so the decision runs over the non-NULL zone [min, max]. Any
        doubt (incomparable types, unknown op) returns True.
        """
        if self.row_count == 0:
            return False
        if position in self.dropped:
            return True
        if op == "isnull":
            return self.null_counts[position] > 0
        low, high = self.mins[position], self.maxs[position]
        if op == "notnull":
            # satisfiable iff some non-NULL value exists in the block
            return low is not None
        if value is None:
            return False  # col <op> NULL is never True
        if low is None:
            return False  # column is all NULL: no row satisfies
        try:
            if op == "=":
                return not (value < low or value > high)
            if op == "<>":
                return not (low == high == value)
            if op == "<":
                return low < value
            if op == "<=":
                return low <= value
            if op == ">":
                return high > value
            if op == ">=":
                return high >= value
        except TypeError:
            return True
        return True

    def may_contain_any(
        self,
        position: int,
        values,
        values_min: object = None,
        values_max: object = None,
    ) -> bool:
        """Could the block hold *any* of ``values`` in ``position``?

        Zone-range shortcut first (two comparisons when the caller
        precomputed the probe set's min/max), then the per-value sketch
        consult. Absent sketch (column registered after this summary was
        built) or any comparison doubt returns True.
        """
        if self.row_count == 0:
            return False
        low, high = self.mins[position], self.maxs[position]
        if position in self.dropped:
            low = None
        if low is not None:
            try:
                if values_max is not None and values_max < low:
                    return False
                if values_min is not None and values_min > high:
                    return False
            except TypeError:
                pass
        elif position not in self.dropped:
            return False  # column is all NULL in this block
        sketch = self.sketches.get(position)
        if sketch is None:
            return True
        # Economics guard: a consult may probe every value, and a hit
        # only saves ``row_count`` downstream probes — once the probe
        # set outnumbers the block's rows the consult costs more than
        # the skip it could buy. "May contain" is always conservative.
        if len(values) > self.row_count:
            return True
        return any(value in sketch for value in values)


class Block:
    """One fixed-capacity partition of a table's heap."""

    __slots__ = ("index", "capacity", "rows", "summary")

    def __init__(self, index: int, capacity: int, column_count: int,
                 sketch_positions: Iterable[int]) -> None:
        self.index = index
        self.capacity = capacity
        #: rid -> row tuple (rid-addressed, like the flat heap it replaces)
        self.rows: dict[int, tuple] = {}
        self.summary = BlockSummary(column_count, capacity, sketch_positions)

    @property
    def is_full(self) -> bool:
        return len(self.rows) >= self.capacity

    def rows_snapshot(self) -> list[tuple]:
        return list(self.rows.values())

    # ------------------------------------------------------------------
    # mutations (called under the owning table's lock)

    def insert(self, rid: int, row: tuple) -> None:
        self.rows[rid] = row
        # widening a stale summary keeps it a superset — always include
        self.summary.include_row(row)

    def remove(self, rid: int) -> None:
        del self.rows[rid]
        self.summary.stale = True

    def replace(self, rid: int, row: tuple) -> None:
        self.rows[rid] = row
        self.summary.include_row(row)
        self.summary.stale = True

    def rebuild_summary(self, column_count: int,
                        sketch_positions: Iterable[int]) -> BlockSummary:
        """Fresh exact summary, swapped in atomically (GIL store)."""
        summary = BlockSummary.build(
            self.rows.values(), column_count, self.capacity,
            sketch_positions,
        )
        self.summary = summary
        return summary
