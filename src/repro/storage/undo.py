"""Undo log for statement- and transaction-level atomicity.

The engine records every row change (via table observers) into the active
:class:`UndoLog`. Rolling back applies the inverse operations in reverse
order, flagged as *compensating* so DML triggers and the recorder itself
ignore them while materialized-view maintenance still sees them.

Savepoints (an index into the entry list) give statement-level atomicity
inside explicit transactions: a failed statement rolls back to its own
savepoint, leaving the transaction open.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.storage.table import (
    CHANGE_DELETE,
    CHANGE_INSERT,
    CHANGE_UPDATE,
    RowChange,
)

if TYPE_CHECKING:  # pragma: no cover - cycle guard
    from repro.catalog.catalog import Catalog


class UndoLog:
    """Recorded row changes, revertible in reverse order."""

    def __init__(self, catalog: "Catalog") -> None:
        self._catalog = catalog
        self._entries: list[RowChange] = []

    def __len__(self) -> int:
        return len(self._entries)

    def record(self, change: RowChange) -> None:
        if change.compensating:
            return  # never undo the undo
        self._entries.append(change)

    def savepoint(self) -> int:
        """Marker for partial rollback (statement atomicity)."""
        return len(self._entries)

    def rollback(self, to_savepoint: int = 0) -> int:
        """Revert entries down to ``to_savepoint``; returns count undone."""
        undone = 0
        while len(self._entries) > to_savepoint:
            change = self._entries.pop()
            self._revert(change)
            undone += 1
        return undone

    def _revert(self, change: RowChange) -> None:
        table = self._catalog.table(change.table)
        if change.kind == CHANGE_INSERT:
            table.delete_rid(change.rid, compensating=True)
        elif change.kind == CHANGE_DELETE:
            # restore under the original rid so earlier entries that
            # reference it remain addressable
            table.insert(
                change.old_row, compensating=True, rid=change.rid
            )
        elif change.kind == CHANGE_UPDATE:
            table.update_rid(
                change.rid, change.old_row, compensating=True
            )
        else:  # pragma: no cover - exhaustive over change kinds
            raise AssertionError(f"unknown change kind {change.kind!r}")
