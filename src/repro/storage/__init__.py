"""In-memory storage engine: heap tables, indexes, and change observers."""

from repro.storage.table import Table, RowChange, CHANGE_INSERT, CHANGE_DELETE, CHANGE_UPDATE
from repro.storage.index import HashIndex, OrderedIndex

__all__ = [
    "Table",
    "RowChange",
    "CHANGE_INSERT",
    "CHANGE_DELETE",
    "CHANGE_UPDATE",
    "HashIndex",
    "OrderedIndex",
]
