"""Heap tables, block-partitioned, with a clustered PK index and change
observation.

A :class:`Table` stores rows as tuples in a rid-addressed heap that is
physically partitioned into fixed-capacity :class:`~repro.storage.blocks.Block`
objects. Each block maintains per-column zone maps plus sensitive-ID
sketches over registered columns (the audit expressions' partition-by
columns), which scans and audit operators consult to skip whole blocks —
see :mod:`repro.storage.blocks` for the conservative-skip invariant.

When the schema declares a primary key, the table maintains a clustered
index (key -> rid) and enforces uniqueness and NOT NULL on the key columns
— mirroring the paper's observation that in SQL Server the partition-by key
of an audit expression usually coincides with the clustered index, so
reading IDs costs no extra I/O (§IV-A.1).

Observers receive a :class:`RowChange` for every mutation. Two subsystems
subscribe: the audit ID-view maintenance (materialized views of sensitive
IDs, §IV-A.1) and the classical trigger manager (AFTER INSERT/UPDATE/DELETE
row triggers).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Callable, Iterator

from repro.catalog.schema import TableSchema
from repro.datatypes import coerce_value
from repro.errors import ConstraintError, StorageError
from repro.storage.blocks import DEFAULT_BLOCK_CAPACITY, Block, BlockSummary
from repro.storage.index import HashIndex, OrderedIndex

CHANGE_INSERT = "insert"
CHANGE_DELETE = "delete"
CHANGE_UPDATE = "update"


@dataclass(frozen=True)
class RowChange:
    """One row-level mutation: ``kind`` plus the old/new row images.

    ``rid`` addresses the affected heap slot (stable for the lifetime of
    the row). ``compensating`` marks changes applied by transaction
    rollback: view maintenance must process them, DML triggers and the
    undo recorder must ignore them.
    """

    table: str
    kind: str
    old_row: tuple | None
    new_row: tuple | None
    rid: int | None = None
    compensating: bool = False


ChangeObserver = Callable[[RowChange], None]


class Table:
    """An in-memory block-partitioned heap table with optional PK index."""

    def __init__(
        self,
        schema: TableSchema,
        block_capacity: int = DEFAULT_BLOCK_CAPACITY,
    ) -> None:
        self.schema = schema
        if block_capacity < 1:
            raise StorageError("block_capacity must be >= 1")
        self.block_capacity = block_capacity
        self._blocks: list[Block] = []
        #: rid -> owning block (rids are stable; blocks never move rows)
        self._rid_block: dict[int, Block] = {}
        #: the block currently accepting inserts (None = allocate fresh)
        self._tail: Block | None = None
        self._row_count = 0
        #: column positions carrying a per-block sensitive-ID sketch
        self._sketch_positions: tuple[int, ...] = ()
        self._next_rid = 0
        #: modification counter; bumped on every mutation (drives lazy stats)
        self.version = 0
        self._pk_positions = schema.primary_key_positions()
        self._pk_index: dict[tuple, int] = {}
        self._secondary: dict[str, HashIndex | OrderedIndex] = {}
        self._unique_indexes: set[str] = set()
        self._observers: list[ChangeObserver] = []
        # Serializes mutations and snapshot copies. Reentrant because
        # observer callbacks (DML triggers) may mutate this same table.
        # The engine-level read-write lock already excludes readers from
        # writers; this lock additionally protects direct Table users.
        self._lock = threading.RLock()

    # ------------------------------------------------------------------
    # observers

    def add_observer(self, observer: ChangeObserver) -> None:
        self._observers.append(observer)

    def remove_observer(self, observer: ChangeObserver) -> None:
        self._observers.remove(observer)

    def _notify(self, change: RowChange) -> None:
        for observer in self._observers:
            observer(change)

    # ------------------------------------------------------------------
    # blocks and data skipping

    @property
    def block_count(self) -> int:
        return len(self._blocks)

    @property
    def sketch_positions(self) -> tuple[int, ...]:
        return self._sketch_positions

    def blocks(self) -> list[Block]:
        """Snapshot of the block list (blocks themselves are live)."""
        with self._lock:
            return list(self._blocks)

    def register_sketch_column(self, column_name: str) -> int:
        """Maintain a per-block sketch of ``column_name``; returns its
        position. Idempotent; existing blocks are re-summarized so the
        sketch covers current contents."""
        position = self.schema.position_of(column_name)
        with self._lock:
            if position in self._sketch_positions:
                return position
            self._sketch_positions = tuple(
                sorted((*self._sketch_positions, position))
            )
            column_count = len(self.schema.columns)
            for block in self._blocks:
                block.rebuild_summary(column_count, self._sketch_positions)
        return position

    def fresh_summary(self, block: Block) -> BlockSummary:
        """The block's summary, rebuilt if stale (double-checked under the
        table lock; the swap itself is atomic, so concurrent readers that
        lose the race keep consulting the conservative stale summary)."""
        summary = block.summary
        if not summary.stale:
            return summary
        with self._lock:
            summary = block.summary
            if summary.stale:
                summary = block.rebuild_summary(
                    len(self.schema.columns), self._sketch_positions
                )
            return summary

    def _place_row(self, rid: int, row: tuple) -> None:
        """Append the row to the tail block, opening a new one when full."""
        block = self._tail
        if block is None or block.is_full:
            block = Block(
                len(self._blocks),
                self.block_capacity,
                len(self.schema.columns),
                self._sketch_positions,
            )
            self._blocks.append(block)
            self._tail = block
        block.insert(rid, row)
        self._rid_block[rid] = block
        self._row_count += 1

    # ------------------------------------------------------------------
    # secondary indexes

    def create_secondary_index(
        self,
        name: str,
        columns: tuple[str, ...],
        ordered: bool = True,
        unique: bool = False,
    ) -> None:
        with self._lock:
            if name in self._secondary:
                raise StorageError(f"index {name!r} already exists on table")
            positions = tuple(self.schema.position_of(c) for c in columns)
            index: HashIndex | OrderedIndex
            if ordered:
                index = OrderedIndex(name, positions)
            else:
                index = HashIndex(name, positions)
            if unique:
                seen: set[tuple] = set()
                for __, row in self._iter_items():
                    key = index.key_of(row)
                    if any(part is None for part in key):
                        continue
                    if key in seen:
                        raise ConstraintError(
                            f"cannot create unique index {name!r}: "
                            f"duplicate key {key!r} in table "
                            f"{self.schema.name!r}"
                        )
                    seen.add(key)
            for rid, row in self._iter_items():
                index.insert(rid, row)
            self._secondary[name] = index
            if unique:
                self._unique_indexes.add(name)

    def _check_unique_indexes(
        self, row: tuple, ignore_rid: int | None = None
    ) -> None:
        for name in self._unique_indexes:
            index = self._secondary[name]
            key = index.key_of(row)
            if any(part is None for part in key):
                continue  # SQL: NULL keys never conflict
            for rid in index.seek(key):
                if rid != ignore_rid:
                    raise ConstraintError(
                        f"unique index {name!r} violation: key {key!r} "
                        f"already exists in table {self.schema.name!r}"
                    )

    def secondary_index(self, name: str) -> HashIndex | OrderedIndex:
        try:
            return self._secondary[name]
        except KeyError:
            raise StorageError(f"no index {name!r} on table") from None

    def secondary_indexes(self) -> dict[str, HashIndex | OrderedIndex]:
        return dict(self._secondary)

    # ------------------------------------------------------------------
    # row access

    def __len__(self) -> int:
        return self._row_count

    def _iter_items(self):
        """(rid, row) pairs in block order; caller holds the lock."""
        for block in self._blocks:
            yield from block.rows.items()

    def rows(self) -> Iterator[tuple]:
        """Iterate row values (snapshot: safe against concurrent mutation)."""
        with self._lock:
            return iter([
                row
                for block in self._blocks
                for row in block.rows.values()
            ])

    def rows_with_rids(self) -> Iterator[tuple[int, tuple]]:
        with self._lock:
            return iter(list(self._iter_items()))

    def row_by_rid(self, rid: int) -> tuple:
        block = self._rid_block.get(rid)
        if block is None:
            raise StorageError(f"rid {rid} not found")
        return block.rows[rid]

    def lookup_pk(self, key: tuple) -> tuple | None:
        """Clustered-index point lookup; None if absent or no PK declared."""
        rid = self._pk_index.get(key)
        if rid is None:
            return None
        return self.row_by_rid(rid)

    # ------------------------------------------------------------------
    # validation

    def _coerce_row(self, values: tuple) -> tuple:
        if len(values) != len(self.schema.columns):
            raise StorageError(
                f"table {self.schema.name!r} expects "
                f"{len(self.schema.columns)} values, got {len(values)}"
            )
        coerced = []
        for value, column in zip(values, self.schema.columns):
            stored = coerce_value(value, column.data_type)
            if stored is None and not column.nullable:
                raise ConstraintError(
                    f"column {column.name!r} of table "
                    f"{self.schema.name!r} is NOT NULL"
                )
            coerced.append(stored)
        return tuple(coerced)

    def _pk_key(self, row: tuple) -> tuple | None:
        if not self._pk_positions:
            return None
        key = tuple(row[position] for position in self._pk_positions)
        if any(part is None for part in key):
            raise ConstraintError(
                f"primary key of {self.schema.name!r} cannot contain NULL"
            )
        return key

    # ------------------------------------------------------------------
    # mutations

    def insert(
        self,
        values: tuple,
        notify: bool = True,
        compensating: bool = False,
        rid: int | None = None,
    ) -> int:
        """Insert one row; returns its rid.

        ``rid`` lets transaction rollback restore a deleted row under its
        original heap slot so earlier undo entries stay addressable. The
        row lands in the current tail block regardless (rid -> block is an
        explicit map, not an address computation).
        """
        with self._lock:
            row = self._coerce_row(values)
            key = self._pk_key(row)
            if key is not None and key in self._pk_index:
                raise ConstraintError(
                    f"duplicate primary key {key!r} in table "
                    f"{self.schema.name!r}"
                )
            self._check_unique_indexes(row)
            if rid is None:
                rid = self._next_rid
                self._next_rid += 1
            elif rid in self._rid_block:
                raise StorageError(f"rid {rid} already occupied")
            else:
                self._next_rid = max(self._next_rid, rid + 1)
            self._place_row(rid, row)
            if key is not None:
                self._pk_index[key] = rid
            for index in self._secondary.values():
                index.insert(rid, row)
            self.version += 1
        if notify:
            self._notify(
                RowChange(
                    self.schema.name, CHANGE_INSERT, None, row,
                    rid=rid, compensating=compensating,
                )
            )
        return rid

    def delete_rid(
        self, rid: int, notify: bool = True, compensating: bool = False
    ) -> tuple:
        """Delete by rid; returns the removed row."""
        with self._lock:
            row = self.row_by_rid(rid)
            block = self._rid_block.pop(rid)
            block.remove(rid)
            self._row_count -= 1
            key = self._pk_key(row)
            if key is not None:
                del self._pk_index[key]
            for index in self._secondary.values():
                index.delete(rid, row)
            self.version += 1
        if notify:
            self._notify(
                RowChange(
                    self.schema.name, CHANGE_DELETE, row, None,
                    rid=rid, compensating=compensating,
                )
            )
        return row

    def update_rid(
        self,
        rid: int,
        values: tuple,
        notify: bool = True,
        compensating: bool = False,
    ) -> tuple[tuple, tuple]:
        """Replace the row at ``rid``; returns ``(old_row, new_row)``."""
        with self._lock:
            old_row = self.row_by_rid(rid)
            new_row = self._coerce_row(values)
            old_key = self._pk_key(old_row)
            new_key = self._pk_key(new_row)
            if new_key != old_key and new_key is not None:
                if new_key in self._pk_index:
                    raise ConstraintError(
                        f"duplicate primary key {new_key!r} in table "
                        f"{self.schema.name!r}"
                    )
            self._check_unique_indexes(new_row, ignore_rid=rid)
            self._rid_block[rid].replace(rid, new_row)
            if old_key is not None:
                del self._pk_index[old_key]
            if new_key is not None:
                self._pk_index[new_key] = rid
            for index in self._secondary.values():
                index.delete(rid, old_row)
                index.insert(rid, new_row)
            self.version += 1
        if notify:
            self._notify(
                RowChange(
                    self.schema.name, CHANGE_UPDATE, old_row, new_row,
                    rid=rid, compensating=compensating,
                )
            )
        return old_row, new_row

    def delete_by_pk(self, key: tuple, notify: bool = True) -> tuple | None:
        """Delete the row with primary key ``key`` if present."""
        rid = self._pk_index.get(key)
        if rid is None:
            return None
        return self.delete_rid(rid, notify=notify)

    def truncate(self) -> None:
        """Remove all rows without firing observers (bulk-load helper)."""
        with self._lock:
            self._blocks.clear()
            self._rid_block.clear()
            self._tail = None
            self._row_count = 0
            self._pk_index.clear()
            for name, index in list(self._secondary.items()):
                fresh: HashIndex | OrderedIndex
                if isinstance(index, OrderedIndex):
                    fresh = OrderedIndex(index.name, index.positions)
                else:
                    fresh = HashIndex(index.name, index.positions)
                self._secondary[name] = fresh
            self.version += 1

    def bulk_load(self, rows) -> int:
        """Insert many rows without observer notifications; returns count."""
        count = 0
        for values in rows:
            self.insert(values, notify=False)
            count += 1
        return count
