"""``python -m repro`` launches the interactive shell."""

from repro.shell import main

raise SystemExit(main())
