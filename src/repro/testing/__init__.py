"""Test-support utilities shipped with the engine.

:mod:`repro.testing.faults` provides the named-site fault injector the
crash-recovery differential tests and the durability benchmark use to
kill the engine at precise points (journal write, fsync, trigger action,
pipeline worker, mid-recovery).
"""

from repro.testing.faults import (
    FAULT_SITES,
    NO_FAULTS,
    CrashError,
    FaultInjector,
)

__all__ = ["FAULT_SITES", "NO_FAULTS", "CrashError", "FaultInjector"]
