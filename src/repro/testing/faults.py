"""Named-site fault injection for crash and degraded-mode testing.

The durability subsystem threads one :class:`FaultInjector` through the
audit journal, the trigger pipeline, trigger firing, and recovery.
Production code calls :meth:`FaultInjector.fire` at each named site; an
unarmed injector (the default :data:`NO_FAULTS`) is a counter-only no-op,
so the hot path pays one attribute load and a dict update.

Two kinds of injected failure are distinguished by exception type:

* :class:`CrashError` derives from ``BaseException`` — it models *process
  death*. Nothing in the engine catches it (error-isolation handlers in
  the pipeline deliberately let it through), so it tears down whatever
  thread it fires on, exactly like a kill signal would.
* Any ``Exception`` subclass (e.g. ``OSError``) models a *component
  failure* the engine is expected to survive according to its
  ``audit_policy`` — retries, dead-lettering, fail-open gaps, or a typed
  ``AuditUnavailableError`` under fail-closed.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass


class CrashError(BaseException):
    """Simulated process death at an injected fault site.

    Derives from ``BaseException`` on purpose: the engine's error
    isolation (pipeline retry loops, gap recording) catches ``Exception``
    and must *not* swallow a simulated crash.
    """


#: the named sites instrumented across the engine
FAULT_SITES = (
    "journal-write",     # AuditJournal.append, before bytes reach the file
    "journal-fsync",     # AuditJournal fsync call
    "trigger-action",    # Database._fire_accessed, before actions run
    "pipeline-worker",   # TriggerPipeline worker, after dequeue — kills
    #                      the worker thread without requeueing the batch
    "recovery-replay",   # per-intent during Database.recover (mid-recovery
    #                      crash)
)


@dataclass
class _Plan:
    at_hit: int
    error: BaseException | type[BaseException]
    repeat: bool


class FaultInjector:
    """Arms exceptions to be raised at named sites on chosen hit counts."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._plans: dict[str, _Plan] = {}
        #: site -> number of times the site has been reached
        self.hits: dict[str, int] = {}

    def arm(
        self,
        site: str,
        at_hit: int = 1,
        error: BaseException | type[BaseException] = CrashError,
        repeat: bool = False,
    ) -> None:
        """Raise ``error`` the ``at_hit``-th time ``site`` is reached.

        ``repeat=True`` keeps raising on every hit from ``at_hit`` on
        (models a persistently-broken component rather than a one-shot
        crash). ``error`` may be an instance or a class; a class is
        instantiated with a message naming the site and hit.
        """
        if site not in FAULT_SITES:
            raise ValueError(
                f"unknown fault site {site!r}; expected one of {FAULT_SITES}"
            )
        with self._lock:
            self._plans[site] = _Plan(at_hit, error, repeat)

    def disarm(self, site: str | None = None) -> None:
        """Remove one site's plan (or all plans); hit counters survive."""
        with self._lock:
            if site is None:
                self._plans.clear()
            else:
                self._plans.pop(site, None)

    def reset(self) -> None:
        with self._lock:
            self._plans.clear()
            self.hits.clear()

    def hit_count(self, site: str) -> int:
        with self._lock:
            return self.hits.get(site, 0)

    def fire(self, site: str) -> None:
        """Record a hit on ``site``; raise if a plan says so."""
        with self._lock:
            count = self.hits.get(site, 0) + 1
            self.hits[site] = count
            plan = self._plans.get(site)
            if plan is None:
                return
            if count < plan.at_hit:
                return
            if count > plan.at_hit and not plan.repeat:
                return
        error = plan.error
        if isinstance(error, type):
            raise error(f"injected fault at {site!r} (hit {count})")
        raise error


class _NullInjector(FaultInjector):
    """The always-disarmed injector production databases default to."""

    def arm(self, *args, **kwargs) -> None:  # pragma: no cover - guard
        raise RuntimeError(
            "NO_FAULTS is shared; create a FaultInjector() to arm faults"
        )

    def fire(self, site: str) -> None:
        return


#: shared no-op injector (never arms, never raises)
NO_FAULTS = _NullInjector()


__all__ = ["FAULT_SITES", "NO_FAULTS", "CrashError", "FaultInjector"]
