"""Named-site fault injection for crash and degraded-mode testing.

The durability subsystem threads one :class:`FaultInjector` through the
audit journal, the trigger pipeline, trigger firing, and recovery.
Production code calls :meth:`FaultInjector.fire` at each named site; an
unarmed injector (the default :data:`NO_FAULTS`) is a counter-only no-op,
so the hot path pays one attribute load and a dict update.

Two kinds of injected failure are distinguished by exception type:

* :class:`CrashError` derives from ``BaseException`` — it models *process
  death*. Nothing in the engine catches it (error-isolation handlers in
  the pipeline deliberately let it through), so it tears down whatever
  thread it fires on, exactly like a kill signal would.
* Any ``Exception`` subclass (e.g. ``OSError``) models a *component
  failure* the engine is expected to survive according to its
  ``audit_policy`` — retries, dead-lettering, fail-open gaps, or a typed
  ``AuditUnavailableError`` under fail-closed.

A third failure mode is *latency*: :meth:`FaultInjector.arm_latency`
makes a site sleep before returning (or before raising, when combined
with an error), modelling a slow or hung component. The sleep is sliced
and checks the optional cancellation token the caller passes to
:meth:`FaultInjector.fire`, so a "hung" shard parks its worker thread
only until the coordinator's deadline cancels it.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass


class CrashError(BaseException):
    """Simulated process death at an injected fault site.

    Derives from ``BaseException`` on purpose: the engine's error
    isolation (pipeline retry loops, gap recording) catches ``Exception``
    and must *not* swallow a simulated crash.
    """


#: the named sites instrumented across the engine
FAULT_SITES = (
    "journal-write",     # AuditJournal.append, before bytes reach the file
    "journal-fsync",     # AuditJournal fsync call
    "trigger-action",    # Database._fire_accessed, before actions run
    "pipeline-worker",   # TriggerPipeline worker, after dequeue — kills
    #                      the worker thread without requeueing the batch
    "recovery-replay",   # per-intent during Database.recover (mid-recovery
    #                      crash)
    "shard-scatter",     # coordinator worker, before a shard's read
    #                      fragment runs — slow/erroring/dead shard on
    #                      the scatter path
    "shard-dml",         # coordinator, before a DML statement is handed
    #                      to a shard — write-path shard failure (never
    #                      retried: DML is not idempotent)
    "shard-journal",     # coordinator, before a shard's slice of an
    #                      intent is journaled — per-shard audit-trail
    #                      failure (fail_open gap / fail_closed refusal)
)


@dataclass
class _Plan:
    at_hit: int
    error: BaseException | type[BaseException] | None
    repeat: bool
    delay_s: float = 0.0


class FaultInjector:
    """Arms exceptions to be raised at named sites on chosen hit counts."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._plans: dict[str, _Plan] = {}
        #: site -> number of times the site has been reached
        self.hits: dict[str, int] = {}

    def arm(
        self,
        site: str,
        at_hit: int = 1,
        error: BaseException | type[BaseException] = CrashError,
        repeat: bool = False,
        delay_s: float = 0.0,
    ) -> None:
        """Raise ``error`` the ``at_hit``-th time ``site`` is reached.

        ``repeat=True`` keeps raising on every hit from ``at_hit`` on
        (models a persistently-broken component rather than a one-shot
        crash). ``error`` may be an instance or a class; a class is
        instantiated with a message naming the site and hit.
        ``delay_s`` sleeps before raising (a slow *and* failing
        component).
        """
        if site not in FAULT_SITES:
            raise ValueError(
                f"unknown fault site {site!r}; expected one of {FAULT_SITES}"
            )
        with self._lock:
            self._plans[site] = _Plan(at_hit, error, repeat, delay_s)

    def arm_latency(
        self,
        site: str,
        delay_s: float,
        at_hit: int = 1,
        repeat: bool = False,
    ) -> None:
        """Sleep ``delay_s`` seconds at ``site`` instead of raising.

        Models a slow (``delay_s`` below a deadline) or hung (above it)
        component. The sleep is sliced: a cancellation token passed to
        :meth:`fire` aborts it early with
        :class:`~repro.errors.OperationCancelledError`, so a cancelled
        "hang" releases its thread promptly.
        """
        if site not in FAULT_SITES:
            raise ValueError(
                f"unknown fault site {site!r}; expected one of {FAULT_SITES}"
            )
        with self._lock:
            self._plans[site] = _Plan(at_hit, None, repeat, delay_s)

    def disarm(self, site: str | None = None) -> None:
        """Remove one site's plan (or all plans); hit counters survive."""
        with self._lock:
            if site is None:
                self._plans.clear()
            else:
                self._plans.pop(site, None)

    def reset(self) -> None:
        with self._lock:
            self._plans.clear()
            self.hits.clear()

    def hit_count(self, site: str) -> int:
        with self._lock:
            return self.hits.get(site, 0)

    def fire(self, site: str, cancel=None) -> None:
        """Record a hit on ``site``; sleep and/or raise if a plan says so.

        ``cancel`` is an optional cancellation token (any object with a
        ``cancelled`` attribute): a latency plan's sleep checks it every
        10 ms and aborts with
        :class:`~repro.errors.OperationCancelledError` once cancelled.
        """
        with self._lock:
            count = self.hits.get(site, 0) + 1
            self.hits[site] = count
            plan = self._plans.get(site)
            if plan is None:
                return
            if count < plan.at_hit:
                return
            if count > plan.at_hit and not plan.repeat:
                return
        if plan.delay_s > 0:
            self._sleep(plan.delay_s, cancel, site)
        error = plan.error
        if error is None:
            return
        if isinstance(error, type):
            raise error(f"injected fault at {site!r} (hit {count})")
        raise error

    @staticmethod
    def _sleep(delay_s: float, cancel, site: str) -> None:
        deadline = time.monotonic() + delay_s
        while True:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                return
            if cancel is not None and getattr(cancel, "cancelled", False):
                from repro.errors import OperationCancelledError

                raise OperationCancelledError(
                    f"injected latency at {site!r} cancelled"
                )
            time.sleep(min(0.01, remaining))


class _NullInjector(FaultInjector):
    """The always-disarmed injector production databases default to."""

    def arm(self, *args, **kwargs) -> None:  # pragma: no cover - guard
        raise RuntimeError(
            "NO_FAULTS is shared; create a FaultInjector() to arm faults"
        )

    arm_latency = arm

    def fire(self, site: str, cancel=None) -> None:
        return


#: shared no-op injector (never arms, never raises)
NO_FAULTS = _NullInjector()


__all__ = ["FAULT_SITES", "NO_FAULTS", "CrashError", "FaultInjector"]
