"""Durability benchmark: audit-journal overhead × fsync policy, plus one
crash/recover/verify cycle.

The write-ahead audit journal (DESIGN.md §8) puts two appends on every
audited query's critical path — the *intent* before ``execute`` returns
and the *commit* after the AFTER-timing actions run. This benchmark
prices that insurance: a serial stream of audited point queries (the
:class:`repro.bench.concurrency.ServingFixture` clinic) is served with no
journal, then with a journal under each fsync policy, and the throughput
ratio to the no-journal baseline is reported per policy.

The acceptance bar mirrors the design intent: ``fsync='batch'`` (the
default — flush every append, fsync every
:data:`~repro.durability.journal.DEFAULT_BATCH_INTERVAL`) must stay
within **2x** of the no-journal baseline; ``'always'`` is the group-0
durability price and may cost whatever the disk charges; ``'off'`` should
be near-free.

:func:`crash_recover_cycle` is the fault-injection smoke: a
:class:`~repro.testing.CrashError` is armed mid-workload at the
trigger-action site, the process "dies", and a fresh database recovers
the journal — the rebuilt audit log must carry exactly the rows of every
journaled intent.

``benchmarks/bench_durability.py`` serializes the output to
``benchmarks/results/BENCH_durability.json``.
"""

from __future__ import annotations

import gc
import tempfile
import time

from repro.bench.concurrency import ServingFixture, request_mix
from repro.testing import CrashError, FaultInjector

#: journal configurations compared; ``None`` is the no-journal baseline
FSYNC_POLICIES = (None, "off", "batch", "always")

DEFAULT_REQUESTS = 240
QUICK_REQUESTS = 80

DEFAULT_ROUNDS = 3
QUICK_ROUNDS = 1

#: acceptance bar: serving with ``fsync='batch'`` must retain at least
#: half the no-journal throughput
BATCH_MAX_OVERHEAD_X = 2.0


def _serve_serial(fixture: ServingFixture, requests: list[str]) -> float:
    """Wall seconds to serve ``requests`` on the caller's thread."""
    from repro.bench.concurrency import SERVE_QUERY

    db = fixture.database
    gc_was_enabled = gc.isenabled()
    gc.disable()
    start = time.perf_counter()
    try:
        for ward in requests:
            db.execute(SERVE_QUERY, {"ward": ward})
    finally:
        if gc_was_enabled:
            gc.enable()
    return time.perf_counter() - start


def _measure_policy(
    policy: str | None, requests: list[str], rounds: int
) -> dict:
    """Best-of-``rounds`` audited throughput under one fsync policy."""
    with tempfile.TemporaryDirectory(prefix="bench-journal-") as tmp:
        fixture = ServingFixture()
        db = fixture.database
        if policy is not None:
            db.attach_journal(tmp, fsync=policy)
        best_wall = None
        for _ in range(rounds):
            fixture.audit_log.clear()
            wall = _serve_serial(fixture, requests)
            if best_wall is None or wall < best_wall:
                best_wall = wall
        logged = fixture.log_rows()
        expected = fixture.expected_rows(requests)
        cell = {
            "qps": len(requests) / best_wall,
            "wall_s": best_wall,
            "zero_lost_firings": logged == expected,
        }
        if policy is not None:
            journal = db.journal
            # intent + commit per audited query, every round
            cell["journal_appends"] = journal.appended
            cell["journal_fsyncs"] = journal.fsyncs
            cell["appends_per_query"] = journal.appended / (
                rounds * len(requests)
            )
            cell["journal_segments"] = journal.scan().segments
        db.close()
        return cell


def crash_recover_cycle(total_requests: int = 48) -> dict:
    """One injected crash mid-workload, then recovery on a fresh database.

    The crash fires at the trigger-action site of the middle request:
    its intent is already journaled, its firing never completes — the
    at-least-once case. Recovery must replay every journaled intent and
    land exactly the analytically expected audit rows.
    """
    requests = request_mix(total_requests)
    crash_at = total_requests // 2
    with tempfile.TemporaryDirectory(prefix="bench-crash-") as tmp:
        fixture = ServingFixture()
        db = fixture.database
        db.faults = FaultInjector()
        db.attach_journal(tmp, fsync="always")
        db.faults.arm("trigger-action", at_hit=crash_at, error=CrashError)

        from repro.bench.concurrency import SERVE_QUERY

        completed = 0
        crashed = None
        for index, ward in enumerate(requests):
            try:
                db.execute(SERVE_QUERY, {"ward": ward})
            except CrashError:
                crashed = index
                break
            completed = index + 1
        # abandoned: no drain, no close — only the journal survives

        survivor = ServingFixture()
        report = survivor.database.recover(tmp)
        recovered_rows = survivor.log_rows()
        # the crashed request's intent was journaled before its firing
        journaled = requests[: completed + (1 if crashed is not None else 0)]
        expected_rows = fixture.expected_rows(journaled)
        result = {
            "requests": total_requests,
            "crashed_at_request": crashed,
            "completed_before_crash": completed,
            "journal_intents": report.intents,
            "replayed": report.replayed,
            "uncommitted_intents": report.uncommitted,
            "recovered_audit_rows": recovered_rows,
            "expected_audit_rows": expected_rows,
            "match": (
                recovered_rows == expected_rows
                and report.replayed == report.intents == len(journaled)
                and crashed is not None
            ),
        }
        survivor.database.close()
        return result


def durability_benchmark(
    total_requests: int = DEFAULT_REQUESTS,
    rounds: int = DEFAULT_ROUNDS,
) -> dict:
    """Full fsync-policy sweep plus the crash/recover cycle."""
    requests = request_mix(total_requests)
    results: dict = {
        "benchmark": "durability",
        "total_requests": total_requests,
        "rounds": rounds,
        "policies": {},
    }
    for policy in FSYNC_POLICIES:
        key = policy or "none"
        results["policies"][key] = _measure_policy(policy, requests, rounds)
    baseline_qps = results["policies"]["none"]["qps"]
    for key, cell in results["policies"].items():
        cell["overhead_x"] = baseline_qps / cell["qps"]
    results["batch_max_overhead_x"] = BATCH_MAX_OVERHEAD_X
    results["batch_within_bound"] = (
        results["policies"]["batch"]["overhead_x"] <= BATCH_MAX_OVERHEAD_X
    )
    results["recovery"] = crash_recover_cycle()
    return results


__all__ = [
    "FSYNC_POLICIES",
    "BATCH_MAX_OVERHEAD_X",
    "DEFAULT_REQUESTS",
    "DEFAULT_ROUNDS",
    "QUICK_REQUESTS",
    "QUICK_ROUNDS",
    "durability_benchmark",
    "crash_recover_cycle",
]
