"""Benchmark harness reproducing the paper's evaluation (§V)."""

from repro.bench.harness import (
    BenchmarkFixture,
    measure_median,
    overhead_percent,
    render_table,
)
from repro.bench import figures

__all__ = [
    "BenchmarkFixture",
    "measure_median",
    "overhead_percent",
    "render_table",
    "figures",
]
