"""Concurrent serving benchmark: threads × trigger mode × auditing.

Measures the engine as a multi-threaded query server. Each simulated
client request pays a fixed GIL-releasing stall (``time.sleep``) modeling
the client/storage round-trip, then executes one audited point query.
On the single-core CI box the CPU work of concurrent requests cannot run
in parallel under the GIL, but the stalls *can* overlap — exactly the
regime a Python query server lives in — so throughput scales with thread
count until the GIL-serialized CPU slice becomes the bottleneck.

Three serving modes are compared at 1/2/4/8 threads:

* ``unaudited``      — audit instrumentation off (the ceiling);
* ``audited_sync``   — SELECT triggers fire on the caller's thread before
  ``execute`` returns (the seed semantics); every firing takes the engine
  write lock, stalling all concurrent readers;
* ``audited_async``  — AFTER-timing firings are deferred to the trigger
  pipeline; ``execute`` returns right after enqueueing.

Each audited cell proves **zero lost firings**: after ``drain_triggers``
the audit-log row count must equal the analytically expected number of
sensitive-ID disclosures for the request mix.

:func:`stress_parity` is the CI smoke check — 8 threads of mixed audited
SELECT / DML traffic, then the identical operation sequence replayed
serially on a fresh database; both audit logs must have the same row
count.

``benchmarks/bench_concurrency.py`` serializes the output to
``benchmarks/results/BENCH_concurrency.json``.
"""

from __future__ import annotations

import gc
import statistics
import threading
import time

from repro.database import Database
from repro.audit.logging import install_audit_log

#: serving threads compared in the scaling sweep
THREAD_COUNTS = (1, 2, 4, 8)

#: simulated per-request client/storage round-trip (GIL-releasing)
DEFAULT_STALL_S = 0.003

DEFAULT_REQUESTS = 120
QUICK_REQUESTS = 48

DEFAULT_ROUNDS = 3
QUICK_ROUNDS = 1

AUDIT_NAME = "audit_vips"
LOG_TABLE = "access_log"

#: wards (request partitions) and how many sensitive patients each holds;
#: every ward holds at least one so the *median* audited request fires
#: its logging trigger (sync mode pays it inline, async defers it)
WARDS = tuple(f"w{i}" for i in range(8))
VIPS_PER_WARD = {
    "w0": 3, "w1": 2, "w2": 2, "w3": 1,
    "w4": 1, "w5": 1, "w6": 1, "w7": 1,
}

PATIENTS_PER_WARD = 30

SERVE_QUERY = "SELECT name, status FROM patients WHERE ward = :ward"


class ServingFixture:
    """A small clinic database built for concurrent point-query traffic.

    ``patients`` has :data:`PATIENTS_PER_WARD` rows per ward; the wards in
    :data:`VIPS_PER_WARD` contain that many sensitive (``vip = 1``) rows.
    The audit expression covers the vips; :func:`install_audit_log` wires
    the standard §II-C logging trigger over it, so every audited request
    appends ``|vips-in-ward|`` rows to the log.
    """

    def __init__(self) -> None:
        self.database = Database(user_id="server")
        db = self.database
        db.execute(
            "CREATE TABLE patients (patientid INT PRIMARY KEY, "
            "name VARCHAR, ward VARCHAR, vip INT, status VARCHAR)"
        )
        rows = []
        pid = 0
        self.vip_ids: set[int] = set()
        for ward in WARDS:
            vips = VIPS_PER_WARD.get(ward, 0)
            for i in range(PATIENTS_PER_WARD):
                vip = 1 if i < vips else 0
                if vip:
                    self.vip_ids.add(pid)
                rows.append(
                    f"({pid}, 'p{pid}', '{ward}', {vip}, 'stable')"
                )
                pid += 1
        db.execute("INSERT INTO patients VALUES " + ", ".join(rows))
        db.execute(
            f"CREATE AUDIT EXPRESSION {AUDIT_NAME} AS "
            "SELECT * FROM patients WHERE vip = 1 "
            "FOR SENSITIVE TABLE patients, PARTITION BY patientid"
        )
        self.audit_log = install_audit_log(
            db, AUDIT_NAME, table_name=LOG_TABLE
        )
        # measured, not assumed: the sensitive IDs each ward's query
        # actually discloses under the installed placement heuristic
        self.hits_per_ward = {}
        for ward in WARDS:
            result = db.execute(SERVE_QUERY, {"ward": ward})
            accessed = result.accessed.get(AUDIT_NAME, frozenset())
            self.hits_per_ward[ward] = len(accessed)
        self.audit_log.clear()

    def log_rows(self) -> int:
        self.database.drain_triggers()
        return self.database.execute(
            f"SELECT COUNT(*) FROM {LOG_TABLE}"
        ).rows[0][0]

    def expected_rows(self, requests: list[str]) -> int:
        return sum(self.hits_per_ward[ward] for ward in requests)


def request_mix(total: int) -> list[str]:
    """Deterministic round-robin ward cycle of ``total`` requests."""
    return [WARDS[i % len(WARDS)] for i in range(total)]


def _serve(
    database: Database,
    requests: list[str],
    threads: int,
    stall_s: float,
) -> tuple[float, list[float]]:
    """Run ``requests`` across ``threads`` workers; returns
    ``(wall_seconds, per-request execute() latencies)``.

    Requests are dealt round-robin so every thread sees the same ward
    mix. The wall clock covers stall + execution for the whole batch —
    the quantity a client population experiences — while the latency
    samples time ``execute`` alone (the engine's share of a request).
    """
    barrier = threading.Barrier(threads)
    latencies: list[list[float]] = [[] for _ in range(threads)]
    failures: list[BaseException] = []

    def worker(index: int) -> None:
        mine = requests[index::threads]
        samples = latencies[index]
        try:
            barrier.wait()
            for ward in mine:
                time.sleep(stall_s)
                start = time.perf_counter()
                database.execute(SERVE_QUERY, {"ward": ward})
                samples.append(time.perf_counter() - start)
        except BaseException as error:  # pragma: no cover - surfaced below
            failures.append(error)

    pool = [
        threading.Thread(target=worker, args=(i,), name=f"serve-{i}")
        for i in range(threads)
    ]
    start = time.perf_counter()
    for thread in pool:
        thread.start()
    for thread in pool:
        thread.join()
    wall = time.perf_counter() - start
    if failures:
        raise failures[0]
    return wall, [sample for bucket in latencies for sample in bucket]


def _percentile(samples: list[float], fraction: float) -> float:
    ordered = sorted(samples)
    index = min(len(ordered) - 1, int(fraction * len(ordered)))
    return ordered[index]


def _measure_cell(
    fixture: ServingFixture,
    mode: str,
    threads: int,
    requests: list[str],
    stall_s: float,
    rounds: int,
) -> dict:
    """Best-of-``rounds`` throughput for one (mode, thread-count) cell."""
    db = fixture.database
    db.audit_enabled = mode != "unaudited"
    db.trigger_mode = "async" if mode == "audited_async" else "sync"
    best: dict | None = None
    try:
        for _ in range(rounds):
            fixture.audit_log.clear()
            gc_was_enabled = gc.isenabled()
            gc.disable()
            try:
                wall, latencies = _serve(db, requests, threads, stall_s)
            finally:
                if gc_was_enabled:
                    gc.enable()
            drain_start = time.perf_counter()
            db.drain_triggers()
            drain_s = time.perf_counter() - drain_start
            cell = {
                "qps": len(requests) / wall,
                "wall_s": wall,
                "drain_s": drain_s,
                "p50_ms": statistics.median(latencies) * 1e3,
                "p95_ms": _percentile(latencies, 0.95) * 1e3,
            }
            if mode != "unaudited":
                logged = fixture.log_rows()
                expected = fixture.expected_rows(requests)
                cell["audit_rows"] = logged
                cell["expected_rows"] = expected
                cell["zero_lost_firings"] = logged == expected
            if best is None or cell["qps"] > best["qps"]:
                best = cell
    finally:
        db.audit_enabled = True
        db.trigger_mode = "sync"
        fixture.audit_log.clear()
    assert best is not None
    return best


def concurrency_benchmark(
    total_requests: int = DEFAULT_REQUESTS,
    rounds: int = DEFAULT_ROUNDS,
    stall_s: float = DEFAULT_STALL_S,
    thread_counts: tuple[int, ...] = THREAD_COUNTS,
) -> dict:
    """Full serving sweep; returns a JSON-ready dict."""
    fixture = ServingFixture()
    requests = request_mix(total_requests)
    results: dict = {
        "benchmark": "concurrency",
        "total_requests": total_requests,
        "rounds": rounds,
        "simulated_stall_ms": stall_s * 1e3,
        "thread_counts": list(thread_counts),
        "hits_per_ward": dict(sorted(fixture.hits_per_ward.items())),
        "modes": {},
    }
    for mode in ("unaudited", "audited_sync", "audited_async"):
        cells = {}
        for threads in thread_counts:
            cells[str(threads)] = _measure_cell(
                fixture, mode, threads, requests, stall_s, rounds
            )
        results["modes"][mode] = cells

    async_cells = results["modes"]["audited_async"]
    sync_cells = results["modes"]["audited_sync"]
    four = str(4) if 4 in thread_counts else str(max(thread_counts))
    one = str(min(thread_counts))
    results["scaling_async_4v1"] = (
        async_cells[four]["qps"] / async_cells[one]["qps"]
    )
    results["scaling_sync_4v1"] = (
        sync_cells[four]["qps"] / sync_cells[one]["qps"]
    )
    results["async_p50_beats_sync"] = {
        threads: async_cells[threads]["p50_ms"]
        < sync_cells[threads]["p50_ms"]
        for threads in async_cells
    }
    results["zero_lost_firings"] = all(
        cell["zero_lost_firings"]
        for mode in ("audited_sync", "audited_async")
        for cell in results["modes"][mode].values()
    )
    results["pipeline"] = fixture.database.drain_triggers()
    fixture.database.close()
    return results


# ----------------------------------------------------------------------
# CI stress: concurrent mixed traffic vs serial replay


def _stress_operations(
    fixture: ServingFixture, threads: int, per_thread: int
) -> list[list[tuple[str, dict]]]:
    """Deterministic per-thread operation scripts: mostly audited SELECTs
    with an UPDATE of a *non-sensitive* row every fourth request, so the
    per-query ACCESSED sets — and hence the audit-log row count — are
    independent of thread interleaving."""
    safe_ids = sorted(
        set(range(threads * per_thread)) - fixture.vip_ids
    )
    scripts = []
    for t in range(threads):
        script: list[tuple[str, dict]] = []
        for j in range(per_thread):
            if (t + j) % 4 == 3:
                pid = safe_ids[(t * per_thread + j) % len(safe_ids)]
                script.append((
                    "UPDATE patients SET status = :status "
                    "WHERE patientid = :pid",
                    {"status": f"seen-{t}-{j}", "pid": pid},
                ))
            else:
                ward = WARDS[(t + j) % len(WARDS)]
                script.append((SERVE_QUERY, {"ward": ward}))
        scripts.append(script)
    return scripts


def _run_scripts_concurrently(
    database: Database, scripts: list[list[tuple[str, dict]]]
) -> None:
    barrier = threading.Barrier(len(scripts))
    failures: list[BaseException] = []

    def worker(script: list[tuple[str, dict]]) -> None:
        try:
            barrier.wait()
            for sql, parameters in script:
                database.execute(sql, parameters)
        except BaseException as error:  # pragma: no cover
            failures.append(error)

    pool = [
        threading.Thread(target=worker, args=(script,), name=f"stress-{i}")
        for i, script in enumerate(scripts)
    ]
    for thread in pool:
        thread.start()
    for thread in pool:
        thread.join()
    if failures:
        raise failures[0]


def stress_parity(threads: int = 8, per_thread: int = 24) -> dict:
    """8-thread mixed SELECT/DML stress with a serial ground-truth replay.

    Runs the deterministic scripts concurrently in async trigger mode on
    one database, then replays the identical statement sequence serially
    (sync mode) on a fresh database. Equal audit-log row counts prove the
    concurrent run lost no firings and produced no spurious ones.
    """
    concurrent = ServingFixture()
    scripts = _stress_operations(concurrent, threads, per_thread)
    concurrent.database.trigger_mode = "async"
    _run_scripts_concurrently(concurrent.database, scripts)
    drain_stats = concurrent.database.drain_triggers()
    concurrent_rows = concurrent.log_rows()
    concurrent.database.close()

    serial = ServingFixture()
    for script in scripts:
        for sql, parameters in script:
            serial.database.execute(sql, parameters)
    serial_rows = serial.log_rows()

    return {
        "threads": threads,
        "operations": threads * per_thread,
        "concurrent_audit_rows": concurrent_rows,
        "serial_audit_rows": serial_rows,
        "match": concurrent_rows == serial_rows,
        "pipeline": drain_stats,
        "trigger_errors": len(concurrent.database.trigger_errors),
    }


__all__ = [
    "ServingFixture",
    "concurrency_benchmark",
    "stress_parity",
    "request_mix",
    "THREAD_COUNTS",
    "DEFAULT_STALL_S",
    "DEFAULT_REQUESTS",
    "QUICK_REQUESTS",
    "DEFAULT_ROUNDS",
    "QUICK_ROUNDS",
]
