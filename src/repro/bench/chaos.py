"""Cluster chaos differential: fault phases vs a serial ground truth.

Runs the same armed workload through a fault-injected
:class:`~repro.cluster.ClusterDatabase` and a serial
:class:`~repro.database.Database`, phase by phase, and checks the
fault-tolerance contract at each step:

* **flaky** — one-shot transient scatter failures on one shard: retries
  must restore *exact* parity (rows, ACCESSED sets, audit-log
  attribution) with zero operator-visible damage;
* **slow** — the same shard hangs well past ``shard_deadline``: the
  fail-open cluster serves deadline-capped partial results and records
  one audit gap per skipped shard per query, while a fail-closed
  cluster must **never** return a partial result — it refuses with
  :class:`~repro.errors.ClusterDegradedError`;
* **dead** — the shard is killed (``CrashError``): immediate
  quarantine, DML to the dead owner refused up front, degraded reads
  keep recording gaps;
* **rejoin** — ``rejoin_shard`` repairs replicas and replays the
  shard's journal: full parity must return, and a fresh armed workload
  must fire identically on both sides (zero lost firings), with
  journal-replayed firings keeping their original user attribution.

Any violated check lands in the report's ``violations`` list; the
driver exits non-zero when it is non-empty.
"""

from __future__ import annotations

import tempfile

from repro.cluster import ClusterDatabase, shard_of
from repro.database import Database
from repro.errors import ClusterDegradedError
from repro.testing.faults import CrashError, FaultInjector

SHARDS = 3
VICTIM = 1
ROWS = 30
DEADLINE_S = 0.2
HANG_S = 5.0

SCHEMA = """
CREATE TABLE patients (pid INT PRIMARY KEY, name VARCHAR, disease VARCHAR,
                       age INT);
CREATE TABLE audit_log (uid VARCHAR, pid INT);
CREATE AUDIT EXPRESSION sick AS SELECT pid FROM patients
    WHERE disease = 'flu' FOR SENSITIVE TABLE patients, PARTITION BY pid;
CREATE TRIGGER log_access ON ACCESS TO sick AS
    INSERT INTO audit_log SELECT user_id(), pid FROM accessed;
"""

DISEASES = ("flu", "cold", "flu", "cough")

#: armed workload: every query's ACCESSED set is non-empty, so every
#: execution journals intents and fires the trigger
WORKLOAD = (
    "SELECT pid, name FROM patients WHERE disease = 'flu' ORDER BY pid",
    "SELECT COUNT(*) FROM patients WHERE disease = 'flu'",
    "SELECT disease, COUNT(*) FROM patients GROUP BY disease",
    "SELECT pid FROM patients WHERE age > 21 AND disease = 'flu' "
    "ORDER BY pid",
)


def _load(db) -> None:
    db.execute_script(SCHEMA)
    for i in range(ROWS):
        db.execute(
            f"INSERT INTO patients VALUES ({i}, 'p{i}', "
            f"'{DISEASES[i % len(DISEASES)]}', {20 + i % 9})"
        )


def _log_rows(db) -> list:
    return sorted(db.execute("SELECT uid, pid FROM audit_log").rows_list())


def _run_both(truth, cluster, user: str):
    """One workload pass on both sides under ``user``; returns results."""
    outcomes = []
    for sql in WORKLOAD:
        truth.session.user_id = user
        cluster.session.user_id = user
        outcomes.append((truth.execute(sql), cluster.execute(sql)))
    return outcomes


def chaos_differential() -> dict:
    report: dict = {
        "benchmark": "cluster_chaos",
        "shards": SHARDS,
        "victim": VICTIM,
        "deadline_s": DEADLINE_S,
        "hang_s": HANG_S,
        "phases": {},
        "violations": [],
    }

    def check(condition: bool, message: str) -> None:
        if not condition:
            report["violations"].append(message)

    truth = Database()
    injector = FaultInjector()
    journal_dir = tempfile.mkdtemp(prefix="repro-chaos-")
    cluster = ClusterDatabase(
        shards=SHARDS,
        shard_fault_injectors={VICTIM: injector},
        shard_deadline=DEADLINE_S,
        shard_retries=2,
        retry_backoff_base=0.005,
        retry_backoff_cap=0.05,
        audit_policy="fail_open",
        degraded_reads=True,
    )
    cluster.attach_journal(journal_dir)
    _load(truth)
    _load(cluster)

    try:
        # ---------------------------------------------------- flaky
        for sql in WORKLOAD:
            injector.arm(
                "shard-scatter",
                error=OSError("transient"),
                at_hit=injector.hit_count("shard-scatter") + 1,
            )
            truth.session.user_id = "alice"
            cluster.session.user_id = "alice"
            lhs, rhs = truth.execute(sql), cluster.execute(sql)
            check(
                sorted(lhs.rows_list(), key=repr)
                == sorted(rhs.rows_list(), key=repr),
                f"flaky: result parity broken for {sql!r}",
            )
            check(lhs.accessed == rhs.accessed,
                  f"flaky: ACCESSED parity broken for {sql!r}")
        health = cluster.cluster_health()
        check(health["scatter_retries"] >= len(WORKLOAD),
              "flaky: transient failures were not retried")
        check(health["quarantined"] == [],
              "flaky: transient failures must not quarantine")
        check(_log_rows(truth) == _log_rows(cluster),
              "flaky: audit-log attribution diverged")
        report["phases"]["flaky"] = {
            "retries": health["scatter_retries"],
            "audit_rows": len(_log_rows(cluster)),
        }

        # ----------------------------------------------------- slow
        # a fail-closed twin must never emit a partial result
        closed_injector = FaultInjector()
        closed = ClusterDatabase(
            shards=SHARDS,
            shard_fault_injectors={VICTIM: closed_injector},
            shard_deadline=DEADLINE_S,
            shard_retries=0,
            audit_policy="fail_closed",
        )
        _load(closed)
        closed_injector.arm_latency(
            "shard-scatter", delay_s=HANG_S, repeat=True
        )
        refused = 0
        for sql in WORKLOAD:
            try:
                closed.execute(sql)
                check(False,
                      f"slow: fail_closed returned a partial result "
                      f"for {sql!r}")
            except ClusterDegradedError:
                refused += 1
        closed.close()

        injector.arm_latency("shard-scatter", delay_s=HANG_S, repeat=True)
        gaps_before = len(cluster.cluster_gaps)
        degraded_queries = 0
        for lhs, rhs in _run_both(truth, cluster, "bob"):
            if sorted(lhs.rows_list(), key=repr) \
                    != sorted(rhs.rows_list(), key=repr):
                degraded_queries += 1
        new_gaps = len(cluster.cluster_gaps) - gaps_before
        check(new_gaps == degraded_queries,
              f"slow: {degraded_queries} degraded reads but {new_gaps} "
              f"recorded gaps (one per skipped shard per query expected)")
        health = cluster.cluster_health()
        check(health["deadline_timeouts"] >= 1,
              "slow: no deadline timeout recorded against the hung shard")
        report["phases"]["slow"] = {
            "fail_closed_refusals": refused,
            "degraded_queries": degraded_queries,
            "gaps": new_gaps,
            "deadline_timeouts": health["deadline_timeouts"],
            "victim_state": health["shards"][VICTIM]["state"],
        }

        # ----------------------------------------------------- dead
        injector.disarm()
        if not cluster.health.is_quarantined(VICTIM):
            injector.arm("shard-scatter", error=CrashError("shard died"))
            cluster.execute(WORKLOAD[0])
        check(cluster.cluster_health()["quarantined"] == [VICTIM],
              "dead: CrashError did not quarantine the victim")
        dead_key = next(
            key for key in range(1000, 2000)
            if shard_of(key, SHARDS) == VICTIM
        )
        try:
            cluster.execute(
                f"INSERT INTO patients VALUES ({dead_key}, 'x', 'flu', 1)"
            )
            check(False, "dead: INSERT to a quarantined owner was accepted")
        except ClusterDegradedError:
            pass
        gaps_before = len(cluster.cluster_gaps)
        for lhs, rhs in _run_both(truth, cluster, "carol"):
            check(
                len(rhs.rows_list()) <= len(lhs.rows_list()),
                "dead: degraded result is not a subset of the truth's",
            )
        check(len(cluster.cluster_gaps) - gaps_before >= len(WORKLOAD),
              "dead: degraded reads did not record a gap per query")
        report["phases"]["dead"] = {
            "gaps": len(cluster.cluster_gaps) - gaps_before,
            "refused_inserts": 1,
        }

        # --------------------------------------------------- rejoin
        recovery = cluster.rejoin_shard(VICTIM)
        health = cluster.cluster_health()
        check(health["quarantined"] == [],
              "rejoin: victim still quarantined after rejoin_shard")
        check(health["stale_replicas"] == [],
              "rejoin: stale replicas not repaired")
        check(recovery is not None and recovery.corrupt == 0,
              "rejoin: journal replay reported corruption")
        # replayed firings keep their original attribution: nothing in
        # the cluster log may name a user the truth never saw
        truth_users = {row[0] for row in _log_rows(truth)}
        cluster_users = {row[0] for row in _log_rows(cluster)}
        check(cluster_users <= truth_users,
              f"rejoin: replay invented attribution "
              f"{cluster_users - truth_users}")
        # zero lost firings going forward: a fresh armed pass under a
        # fresh user must fire identically on both sides
        for lhs, rhs in _run_both(truth, cluster, "auditor"):
            check(
                sorted(lhs.rows_list(), key=repr)
                == sorted(rhs.rows_list(), key=repr),
                "rejoin: post-rejoin result parity broken",
            )
            check(lhs.accessed == rhs.accessed,
                  "rejoin: post-rejoin ACCESSED parity broken")
        truth_audit = [r for r in _log_rows(truth) if r[0] == "auditor"]
        cluster_audit = [r for r in _log_rows(cluster) if r[0] == "auditor"]
        check(truth_audit == cluster_audit,
              f"rejoin: lost firings — {len(truth_audit)} expected, "
              f"{len(cluster_audit)} fired")
        report["phases"]["rejoin"] = {
            "replayed": recovery.replayed if recovery else 0,
            "skipped_applied": recovery.skipped_applied if recovery else 0,
            "post_rejoin_firings": len(cluster_audit),
        }
    finally:
        cluster.close()
        truth.close()

    report["ok"] = not report["violations"]
    return report


__all__ = ["WORKLOAD", "chaos_differential"]
