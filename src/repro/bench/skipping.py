"""Data-skipping benchmark: block sketches vs full probe passes.

Loads TPC-H, installs an audit expression of the form ``c_custkey <= K``
at each target sensitive selectivity, and measures — with the
``skipping`` knob on vs off:

* *scan-under-audit* — draining the instrumented ``Audit(Scan(customer))``
  subtree in batch mode (the engine's default execution mode). This
  isolates the component the block sketches accelerate: with skipping on
  the audit operator consults each block's sensitive-ID sketch (a
  zone-range shortcut resolves clustered ID sets in two comparisons) and
  skips the per-row membership pass for blocks provably free of
  sensitive rows;
* *end-to-end* — the full ``SELECT * FROM customer`` through ``rows()``,
  where projection cost dominates and the win is proportionally smaller;
* *offline* — one :class:`OfflineAuditor` audit of the same query, whose
  lineage run skips per-row lineage tagging for candidate-disjoint
  blocks.

Before reporting any timing the benchmark asserts the conservative-skip
invariant observationally: query results, ACCESSED sets, and
offline-audit verdicts must be identical under both knob settings.
``benchmarks/bench_skipping.py`` serializes the result to
``benchmarks/results/BENCH_skipping.json``.
"""

from __future__ import annotations

import gc
import os
import time

from repro import Database
from repro.audit.offline import OfflineAuditor
from repro.exec.operators.audit import AuditOperator
from repro.tpch import load_tpch

#: the paper's evaluation ran at SF 10; the skipping experiment needs
#: enough blocks for block-granular skipping to be visible, so this
#: benchmark defaults higher than the harness-wide 0.005
DEFAULT_SCALE_FACTOR = float(os.environ.get("REPRO_BENCH_SF", "0.1"))
QUICK_SCALE_FACTOR = 0.02

DEFAULT_REPEATS = 7
QUICK_REPEATS = 3

#: fraction of customers declared sensitive (``c_custkey <= K``)
SELECTIVITIES = (0.001, 0.01, 0.1)

AUDIT_NAME = "aud_skip"
QUERY = "SELECT * FROM customer"


def _find_audit(operator) -> AuditOperator:
    if isinstance(operator, AuditOperator):
        return operator
    for child in operator.children():
        found = _find_audit(child)
        if found is not None:
            return found
    return None


def _best_of(action, repeats: int) -> float:
    action()  # warm-up
    best = float("inf")
    was_enabled = gc.isenabled()
    gc.disable()
    try:
        for __ in range(repeats):
            start = time.perf_counter()
            action()
            elapsed = time.perf_counter() - start
            if elapsed < best:
                best = elapsed
    finally:
        if was_enabled:
            gc.enable()
    return best


def _compile_instrumented(database: Database, sql: str):
    """Leaf-instrumented physical plan (scan-fused audit placement)."""
    from repro.sql.parser import parse_statement

    statement = parse_statement(sql)
    logical = database._builder.build_select(statement)
    instrumented = database.audit_manager.instrument(
        logical, heuristic="leaf-node"
    )
    return database._optimizer.compile(instrumented)


def _measure_point(
    database: Database, sensitive_upto: int, repeats: int
) -> dict:
    database.execute(
        f"CREATE AUDIT EXPRESSION {AUDIT_NAME} AS "
        f"SELECT * FROM customer WHERE c_custkey <= {sensitive_upto} "
        "FOR SENSITIVE TABLE customer, PARTITION BY c_custkey"
    )
    try:
        physical = _compile_instrumented(database, QUERY)
        audit = _find_audit(physical)
        assert audit is not None, "instrumented plan lost its audit node"

        def drain_audit() -> None:
            context = database.make_context()
            for __ in audit.rows_batched(context):
                pass

        def drain_query() -> None:
            context = database.make_context()
            for __ in physical.rows(context):
                pass

        entry: dict = {"sensitive_ids": sensitive_upto}
        contexts = {}
        for label, skipping in (("on", True), ("off", False)):
            database.skipping = skipping
            entry[f"scan_under_audit_{label}_s"] = _best_of(
                drain_audit, repeats
            )
            entry[f"query_{label}_s"] = _best_of(drain_query, repeats)
            context = database.make_context()
            for __ in audit.rows_batched(context):
                pass
            contexts[label] = context
            entry[f"probes_{label}"] = context.audit_probe_count
            entry[f"blocks_skipped_{label}"] = context.audit_blocks_skipped

        # conservative-skip differential: ACCESSED must be knob-invariant
        database.skipping = True
        accessed_on = database.execute(QUERY).accessed
        database.skipping = False
        accessed_off = database.execute(QUERY).accessed
        entry["accessed_equal"] = accessed_on == accessed_off
        entry["accessed_ids"] = len(accessed_on.get(AUDIT_NAME, ()))

        # offline mode: lineage run with candidate-disjoint block skip
        def offline(skipping: bool):
            database.skipping = skipping
            return OfflineAuditor(database).audit(QUERY, AUDIT_NAME)

        entry["offline_on_s"] = _best_of(lambda: offline(True), repeats)
        entry["offline_off_s"] = _best_of(lambda: offline(False), repeats)
        entry["offline_verdicts_equal"] = offline(True) == offline(False)

        entry["scan_under_audit_speedup"] = _ratio(
            entry["scan_under_audit_off_s"], entry["scan_under_audit_on_s"]
        )
        entry["query_speedup"] = _ratio(
            entry["query_off_s"], entry["query_on_s"]
        )
        entry["offline_speedup"] = _ratio(
            entry["offline_off_s"], entry["offline_on_s"]
        )
        return entry
    finally:
        database.skipping = True
        database.audit_manager.drop_expression(AUDIT_NAME)


def skipping_benchmark(
    scale_factor: float = DEFAULT_SCALE_FACTOR,
    repeats: int = DEFAULT_REPEATS,
    selectivities: tuple[float, ...] = SELECTIVITIES,
) -> dict:
    """Run the on/off comparison; returns a JSON-ready dict."""
    database = Database()
    row_counts = load_tpch(database, scale_factor=scale_factor, seed=42)
    customers = row_counts["customer"]
    table = database.catalog.table("customer")
    results: dict = {
        "benchmark": "skipping",
        "scale_factor": scale_factor,
        "repeats": repeats,
        "customer_rows": customers,
        "block_size": database.block_size,
        "block_count": table.block_count,
        "query": QUERY,
        "selectivities": {},
    }
    for fraction in selectivities:
        sensitive_upto = max(1, round(fraction * customers))
        results["selectivities"][str(fraction)] = _measure_point(
            database, sensitive_upto, repeats
        )
    return results


def _ratio(numerator: float, denominator: float) -> float:
    if denominator <= 0:
        return 0.0
    return numerator / denominator


__all__ = [
    "skipping_benchmark",
    "DEFAULT_SCALE_FACTOR",
    "QUICK_SCALE_FACTOR",
    "DEFAULT_REPEATS",
    "QUICK_REPEATS",
    "SELECTIVITIES",
]
