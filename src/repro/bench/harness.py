"""Shared benchmark infrastructure: fixture, timing, table rendering.

The paper's evaluation ran on TPC-H at scale factor 10 inside SQL Server;
our substrate is a pure-Python engine, so the default scale factor is
``0.005`` (≈750 customers) — every reported quantity is either a
cardinality (scale-free in shape) or a *relative* overhead. Set the
``REPRO_BENCH_SF`` environment variable to rescale.
"""

from __future__ import annotations

import os
import statistics
import time
from typing import Callable, Sequence

from repro import Database
from repro.tpch import audit_expression_sql, load_tpch

DEFAULT_SCALE_FACTOR = float(os.environ.get("REPRO_BENCH_SF", "0.005"))
DEFAULT_SEGMENT = "BUILDING"
AUDIT_NAME = "audit_customer"


class BenchmarkFixture:
    """A loaded TPC-H database with the §V audit expression installed."""

    def __init__(
        self,
        scale_factor: float = DEFAULT_SCALE_FACTOR,
        segment: str = DEFAULT_SEGMENT,
        seed: int = 42,
    ) -> None:
        self.scale_factor = scale_factor
        self.segment = segment
        self.database = Database()
        self.row_counts = load_tpch(
            self.database, scale_factor=scale_factor, seed=seed
        )
        self.database.execute(
            audit_expression_sql(AUDIT_NAME, segment)
        )

    @property
    def audit_view(self):
        return self.database.audit_manager.view(AUDIT_NAME)

    def orderdate_for_selectivity(self, fraction: float):
        """The o_orderdate cutoff such that ``o_orderdate > cutoff``
        selects ≈``fraction`` of the orders table."""
        dates = sorted(
            self.database.execute(
                "SELECT o_orderdate FROM orders"
            ).column(0)
        )
        index = max(
            0, min(len(dates) - 1, round((1.0 - fraction) * len(dates)))
        )
        return dates[index]

    def compile_with_heuristic(
        self,
        sql: str,
        heuristic: str | None,
        join_strategy: str | None = None,
    ):
        """Compile a SELECT to a physical plan under one heuristic.

        Benchmarks time pre-compiled plans — matching the paper, which
        reports query *execution* overheads — so parse/optimize noise does
        not pollute the audit-operator measurements.
        """
        from repro.sql.parser import parse_statement

        database = self.database
        statement = parse_statement(sql)
        logical = database._builder.build_select(statement)
        if heuristic is None:
            instrument = None
        else:
            manager = database.audit_manager

            def instrument(plan):
                return manager.instrument(plan, heuristic=heuristic)

        optimized = database._optimizer.optimize_logical(
            logical, instrument=instrument
        )
        previous = database.join_strategy
        if join_strategy is not None:
            database.join_strategy = join_strategy
        try:
            return database._optimizer.compile(optimized)
        finally:
            database.join_strategy = previous

    def execution_time(
        self,
        sql: str,
        parameters: dict | None,
        heuristic: str | None,
        repeats: int = 9,
        join_strategy: str | None = None,
    ) -> float:
        """Best-of-N wall-clock seconds for executing the compiled plan."""
        physical = self.compile_with_heuristic(sql, heuristic, join_strategy)
        database = self.database

        def run():
            context = database.make_context(parameters)
            for __ in physical.rows(context):
                pass

        run()  # warm-up
        import gc

        best = float("inf")
        was_enabled = gc.isenabled()
        gc.disable()
        try:
            for __ in range(repeats):
                start = time.perf_counter()
                run()
                elapsed = time.perf_counter() - start
                if elapsed < best:
                    best = elapsed
        finally:
            if was_enabled:
                gc.enable()
        return best

    def compare_execution(
        self,
        sql: str,
        parameters: dict | None,
        variants: dict[str, tuple[str | None, str | None]],
        repeats: int = 11,
    ) -> dict[str, float]:
        """Best-of-N execution seconds per variant, measured interleaved.

        ``variants`` maps a label to ``(heuristic, join_strategy)``. All
        plans are compiled up front; each timing round runs every variant
        once, so slow machine phases hit all variants equally instead of
        biasing whichever variant happened to run last.
        """
        import gc

        database = self.database
        plans = {
            label: self.compile_with_heuristic(sql, heuristic, strategy)
            for label, (heuristic, strategy) in variants.items()
        }

        def run(physical) -> None:
            context = database.make_context(parameters)
            for __ in physical.rows(context):
                pass

        for physical in plans.values():
            run(physical)  # warm-up
        best = {label: float("inf") for label in plans}
        was_enabled = gc.isenabled()
        gc.disable()
        try:
            for __ in range(repeats):
                for label, physical in plans.items():
                    start = time.perf_counter()
                    run(physical)
                    elapsed = time.perf_counter() - start
                    if elapsed < best[label]:
                        best[label] = elapsed
        finally:
            if was_enabled:
                gc.enable()
        return best

    def run_with_heuristic(
        self,
        sql: str,
        parameters: dict | None,
        heuristic: str | None,
        join_strategy: str = "hash",
    ):
        """Execute ``sql`` under a placement heuristic (None = no audit).

        Cardinality experiments default to the hash-join plan family so
        the leaf-node heuristic audits every tuple passing the sensitive
        table's single-table predicates — the §III semantics — instead of
        only the tuples an index nested-loop join happens to fetch.
        """
        database = self.database
        previous_strategy = database.join_strategy
        database.join_strategy = join_strategy
        try:
            if heuristic is None:
                database.audit_enabled = False
                try:
                    return database.execute(sql, parameters)
                finally:
                    database.audit_enabled = True
            previous = database.audit_manager.heuristic
            database.audit_manager.heuristic = heuristic
            try:
                return database.execute(sql, parameters)
            finally:
                database.audit_manager.heuristic = previous
        finally:
            database.join_strategy = previous_strategy


def measure_median(
    action: Callable[[], object],
    repeats: int = 5,
    warmup: int = 1,
) -> float:
    """Median wall-clock seconds of ``action`` over ``repeats`` runs."""
    for __ in range(warmup):
        action()
    samples = []
    for __ in range(repeats):
        start = time.perf_counter()
        action()
        samples.append(time.perf_counter() - start)
    return statistics.median(samples)


def overhead_percent(instrumented: float, baseline: float) -> float:
    """Relative overhead in percent (clamped below at 0 for noise)."""
    if baseline <= 0:
        return 0.0
    return max(0.0, (instrumented / baseline - 1.0) * 100.0)


def render_table(
    title: str,
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
) -> str:
    """Fixed-width text table in the style of the paper's figures."""
    formatted = [
        [_format_cell(value) for value in row] for row in rows
    ]
    widths = [
        max(len(str(header)), *(len(row[i]) for row in formatted))
        if formatted
        else len(str(header))
        for i, header in enumerate(headers)
    ]
    lines = [title, "=" * len(title)]
    lines.append(
        "  ".join(
            str(header).ljust(width)
            for header, width in zip(headers, widths)
        )
    )
    lines.append("  ".join("-" * width for width in widths))
    for row in formatted:
        lines.append(
            "  ".join(cell.ljust(width) for cell, width in zip(row, widths))
        )
    return "\n".join(lines)


def _format_cell(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.2f}"
    return str(value)
