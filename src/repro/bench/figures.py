"""Experiment drivers, one per figure of the paper's evaluation (§V).

Each ``fig*`` function returns the rows of the corresponding figure as a
list of tuples (plus headers), so benchmarks and EXPERIMENTS.md generation
share one implementation. Figures 6 and 9 report cardinalities (exact,
engine-independent); figures 7, 8, and 10 report relative runtime
overheads measured as medians over repeated runs.
"""

from __future__ import annotations

import datetime

from repro import (
    HEURISTIC_HCN,
    HEURISTIC_LEAF,
    OfflineAuditor,
    StaticAnalysisAuditor,
)
from repro.bench.harness import (
    AUDIT_NAME,
    BenchmarkFixture,
    measure_median,
    overhead_percent,
)
from repro.tpch import MICRO_BENCHMARK_QUERY, QUERIES, QUERY_PARAMETERS

#: the fixed account-balance predicate of the micro-benchmark (§V-A)
MICRO_ACCTBAL = 2500.0

#: order-date selectivity sweep of Figures 6 and 7
SELECTIVITY_SWEEP = (0.1, 0.2, 0.4, 0.6, 0.8, 1.0)

#: Figure 8 fixes the micro query at the 40 % selectivity point
FIG8_SELECTIVITY = 0.4


def micro_parameters(
    fixture: BenchmarkFixture, fraction: float
) -> dict[str, object]:
    return {
        "acctbal": MICRO_ACCTBAL,
        "orderdate": fixture.orderdate_for_selectivity(fraction),
    }


# ---------------------------------------------------------------------------
# Figure 6: micro-benchmark false positives (audit cardinalities)

FIG6_HEADERS = (
    "selectivity_pct",
    "offline_accessed",
    "hcn_audit_ids",
    "leaf_audit_ids",
)


def fig6_micro_false_positives(fixture: BenchmarkFixture):
    auditor = OfflineAuditor(fixture.database)
    rows = []
    for fraction in SELECTIVITY_SWEEP:
        parameters = micro_parameters(fixture, fraction)
        offline = auditor.audit(
            MICRO_BENCHMARK_QUERY, AUDIT_NAME, parameters
        )
        hcn = fixture.run_with_heuristic(
            MICRO_BENCHMARK_QUERY, parameters, HEURISTIC_HCN
        ).accessed.get(AUDIT_NAME, frozenset())
        leaf = fixture.run_with_heuristic(
            MICRO_BENCHMARK_QUERY, parameters, HEURISTIC_LEAF
        ).accessed.get(AUDIT_NAME, frozenset())
        rows.append(
            (round(fraction * 100), len(offline), len(hcn), len(leaf))
        )
    return FIG6_HEADERS, rows


# ---------------------------------------------------------------------------
# Figure 7: micro-benchmark overheads vs predicate selectivity

FIG7_HEADERS = (
    "selectivity_pct",
    "baseline_ms",
    "leaf_overhead_pct",
    "hcn_overhead_pct",
    "leaf_probes",
    "hcn_probes",
)


def fig7_micro_overheads(fixture: BenchmarkFixture, repeats: int = 9):
    """Overhead of leaf vs hcn as the orders predicate selectivity sweeps.

    The paper's plan for this query fetches customers per order row, so
    the leaf audit operator's work grows with the order-date selectivity
    (the mechanism behind its ≈10 % worst case). We force the same plan
    shape — an index nested-loop join with the audit operator inside the
    inner subtree — via the ``index-nl`` join strategy.
    """
    rows = []
    for fraction in SELECTIVITY_SWEEP:
        parameters = micro_parameters(fixture, fraction)
        timings = fixture.compare_execution(
            MICRO_BENCHMARK_QUERY,
            parameters,
            {
                "baseline": (None, "index-nl"),
                "leaf": (HEURISTIC_LEAF, "index-nl"),
                "hcn": (HEURISTIC_HCN, "index-nl"),
            },
            repeats,
        )
        probes = {}
        for label, heuristic in (
            ("leaf", HEURISTIC_LEAF), ("hcn", HEURISTIC_HCN)
        ):
            physical = fixture.compile_with_heuristic(
                MICRO_BENCHMARK_QUERY, heuristic, "index-nl"
            )
            context = fixture.database.make_context(parameters)
            for __ in physical.rows(context):
                pass
            probes[label] = context.audit_probe_count
        rows.append((
            round(fraction * 100),
            timings["baseline"] * 1000.0,
            overhead_percent(timings["leaf"], timings["baseline"]),
            overhead_percent(timings["hcn"], timings["baseline"]),
            probes["leaf"],
            probes["hcn"],
        ))
    return FIG7_HEADERS, rows


# ---------------------------------------------------------------------------
# Figure 8: hcn overhead vs audit-expression cardinality

FIG8_HEADERS = (
    "audit_cardinality",
    "baseline_ms",
    "hcn_overhead_pct",
)


def fig8_cardinalities(fixture: BenchmarkFixture) -> tuple[int, ...]:
    total = fixture.row_counts["customer"]
    steps = sorted({
        1,
        10,
        max(1, total // 10),
        max(1, total // 4),
        max(1, total // 2),
        total,
    })
    return tuple(steps)


def fig8_audit_cardinality(fixture: BenchmarkFixture, repeats: int = 5):
    """Sweep the number of audited customers from 1 to the whole table.

    The paper sweeps 1 → 1M customers at SF 10 and reports ≈2 % overhead
    at the top end; the property under test — probe cost independent of
    the sensitive-ID set size — is scale-free.
    """
    database = fixture.database
    parameters = micro_parameters(fixture, FIG8_SELECTIVITY)

    rows = []
    for cardinality in fig8_cardinalities(fixture):
        name = f"audit_card_{cardinality}"
        database.execute(
            f"CREATE AUDIT EXPRESSION {name} AS SELECT * FROM customer "
            f"WHERE c_custkey <= {cardinality} "
            "FOR SENSITIVE TABLE customer, PARTITION BY c_custkey"
        )
        # audit only through this expression for the measurement
        try:
            with database.audit_manager.suspend_expression(AUDIT_NAME):
                timings = fixture.compare_execution(
                    MICRO_BENCHMARK_QUERY,
                    parameters,
                    {
                        "baseline": (None, None),
                        "hcn": (HEURISTIC_HCN, None),
                    },
                    repeats,
                )
        finally:
            database.execute(f"DROP AUDIT EXPRESSION {name}")
        rows.append((
            cardinality,
            timings["baseline"] * 1000.0,
            overhead_percent(timings["hcn"], timings["baseline"]),
        ))
    return FIG8_HEADERS, rows


# ---------------------------------------------------------------------------
# Figure 9: false positives on the complex-query workload

FIG9_HEADERS = (
    "query",
    "offline_accessed",
    "hcn_audit_ids",
    "leaf_audit_ids",
)


def fig9_tpch_false_positives(fixture: BenchmarkFixture):
    auditor = OfflineAuditor(fixture.database)
    rows = []
    for name in sorted(QUERIES):
        sql = QUERIES[name]
        parameters = QUERY_PARAMETERS[name]
        offline = auditor.audit(sql, AUDIT_NAME, parameters)
        hcn = fixture.run_with_heuristic(
            sql, parameters, HEURISTIC_HCN
        ).accessed.get(AUDIT_NAME, frozenset())
        leaf = fixture.run_with_heuristic(
            sql, parameters, HEURISTIC_LEAF
        ).accessed.get(AUDIT_NAME, frozenset())
        rows.append((name, len(offline), len(hcn), len(leaf)))
    return FIG9_HEADERS, rows


# ---------------------------------------------------------------------------
# Figure 10: hcn overheads on the complex-query workload

FIG10_HEADERS = (
    "query",
    "baseline_ms",
    "hcn_ms",
    "hcn_overhead_pct",
)


def fig10_tpch_overheads(fixture: BenchmarkFixture, repeats: int = 13):
    rows = []
    for name in sorted(QUERIES):
        sql = QUERIES[name]
        parameters = QUERY_PARAMETERS[name]
        timings = fixture.compare_execution(
            sql,
            parameters,
            {"baseline": (None, None), "hcn": (HEURISTIC_HCN, None)},
            repeats,
        )
        rows.append((
            name,
            timings["baseline"] * 1000.0,
            timings["hcn"] * 1000.0,
            overhead_percent(timings["hcn"], timings["baseline"]),
        ))
    return FIG10_HEADERS, rows


# ---------------------------------------------------------------------------
# §VI / Example 6.1: static-analysis baseline comparison

STATIC_HEADERS = (
    "query",
    "fga_flags",
    "audit_op_flags",
    "offline_accessed",
)


def static_analysis_comparison(fixture: BenchmarkFixture):
    """FGA-style flagging vs audit operators vs ground truth per query."""
    analyzer = StaticAnalysisAuditor(fixture.database)
    auditor = OfflineAuditor(fixture.database)
    rows = []
    for name in sorted(QUERIES):
        sql = QUERIES[name]
        parameters = QUERY_PARAMETERS[name]
        flagged = analyzer.flags_query(sql, AUDIT_NAME, parameters)
        accessed = fixture.run_with_heuristic(
            sql, parameters, HEURISTIC_HCN
        ).accessed.get(AUDIT_NAME, frozenset())
        offline = auditor.audit(sql, AUDIT_NAME, parameters)
        rows.append((
            name,
            "yes" if flagged else "no",
            "yes" if accessed else "no",
            len(offline),
        ))
    # The paper notes FGA avoids a false positive only for Q3, whose
    # c_mktsegment predicate can be provably disjoint from the audit
    # expression's segment. Run Q3 against a different segment to show it.
    other_segment = "AUTOMOBILE" if fixture.segment != "AUTOMOBILE" \
        else "MACHINERY"
    q3_parameters = dict(QUERY_PARAMETERS["Q3"], segment=other_segment)
    flagged = analyzer.flags_query(QUERIES["Q3"], AUDIT_NAME, q3_parameters)
    accessed = fixture.run_with_heuristic(
        QUERIES["Q3"], q3_parameters, HEURISTIC_HCN
    ).accessed.get(AUDIT_NAME, frozenset())
    offline = auditor.audit(QUERIES["Q3"], AUDIT_NAME, q3_parameters)
    rows.append((
        f"Q3({other_segment[:4].lower()})",
        "yes" if flagged else "no",
        "yes" if accessed else "no",
        len(offline),
    ))
    return STATIC_HEADERS, rows


# ---------------------------------------------------------------------------
# Ablation X7: Theorem 3.7 on a generated select-join workload

SJ_HEADERS = ("selectivity_pct", "offline", "hcn", "false_positives")


def sj_exactness(fixture: BenchmarkFixture):
    """hcn must equal the offline auditor on every SJ query instance."""
    auditor = OfflineAuditor(fixture.database)
    rows = []
    for fraction in SELECTIVITY_SWEEP:
        parameters = micro_parameters(fixture, fraction)
        offline = auditor.audit(
            MICRO_BENCHMARK_QUERY, AUDIT_NAME, parameters
        )
        hcn = fixture.run_with_heuristic(
            MICRO_BENCHMARK_QUERY, parameters, HEURISTIC_HCN
        ).accessed.get(AUDIT_NAME, frozenset())
        rows.append((
            round(fraction * 100),
            len(offline),
            len(hcn),
            len(hcn - offline),
        ))
    return SJ_HEADERS, rows


# ---------------------------------------------------------------------------
# Ablation: ID-view compilation vs evaluating the audit predicate (§IV-A.1)

IDVIEW_HEADERS = ("probe_kind", "rows_probed", "total_ms")


def idview_probe_ablation(fixture: BenchmarkFixture, repeats: int = 5):
    """Cost of the per-row check: compiled ID set vs full predicate.

    The paper compiles audit expressions to materialized ID views so the
    operator does an O(1) key probe instead of evaluating the audit
    predicate on every row. This measures both on the customer table.
    """
    from repro.exec.context import ExecutionContext
    from repro.expr.evaluator import evaluate
    from repro.plan.builder import PlanBuilder, Scope
    from repro.plan.logical import PlanColumn
    from repro.sql.parser import parse_expression

    database = fixture.database
    table = database.catalog.table("customer")
    rows = list(table.rows()) * 20  # amplify for stable timing
    view = fixture.audit_view
    key_slot = table.schema.position_of("c_custkey")

    def probe_ids():
        hits = 0
        for row in rows:
            if row[key_slot] in view:
                hits += 1
        return hits

    builder = PlanBuilder(database.catalog)
    scope = Scope(tuple(
        PlanColumn(c.name, "customer", ("customer", c.name))
        for c in table.schema.columns
    ))
    predicate = builder.bind_expression(
        parse_expression(f"c_mktsegment = '{fixture.segment}'"), scope
    )
    context = ExecutionContext()

    def probe_predicate():
        hits = 0
        for row in rows:
            if evaluate(predicate, row, context) is True:
                hits += 1
        return hits

    assert probe_ids() == probe_predicate()
    id_time = measure_median(probe_ids, repeats)
    predicate_time = measure_median(probe_predicate, repeats)
    return IDVIEW_HEADERS, [
        ("compiled_id_view", len(rows), id_time * 1000.0),
        ("full_predicate", len(rows), predicate_time * 1000.0),
    ]


# ---------------------------------------------------------------------------
# §V-D: SELECT triggers as a filter in front of the offline auditor

FILTERING_HEADERS = (
    "strategy",
    "queries_audited_offline",
    "total_seconds",
)


def offline_filtering_benefit(
    fixture: BenchmarkFixture, workload_size: int = 12
):
    """The Figure-1 architecture claim (§III-A, §V-D).

    Build a mixed workload — queries that touch the audited segment and
    queries that provably cannot — then compare total auditing cost:

    * **offline-everything**: ship every query to the deletion-based
      auditor (the pre-paper architecture);
    * **trigger-filtered**: run queries with SELECT triggers online and
      audit offline only those whose ACCESSED state is non-empty.

    The one-sided guarantee makes the filter safe: a query with an empty
    ACCESSED state cannot have accessed any sensitive tuple (no false
    negatives), so skipping it loses nothing.
    """
    import time

    database = fixture.database
    other_segments = [
        segment
        for segment in (
            "AUTOMOBILE", "MACHINERY", "FURNITURE", "HOUSEHOLD"
        )
        if segment != fixture.segment
    ]
    workload: list[tuple[str, dict]] = []
    for index in range(workload_size):
        if index % 3 == 0:
            # touches the audited segment
            parameters = dict(
                QUERY_PARAMETERS["Q3"], segment=fixture.segment
            )
            workload.append((QUERIES["Q3"], parameters))
        elif index % 3 == 1:
            # a different market segment: never touches audited customers
            parameters = dict(
                QUERY_PARAMETERS["Q3"],
                segment=other_segments[index % len(other_segments)],
            )
            workload.append((QUERIES["Q3"], parameters))
        else:
            # no customer table at all
            workload.append((
                "SELECT l_returnflag, COUNT(*) FROM lineitem "
                "WHERE l_shipdate > :cutoff GROUP BY l_returnflag",
                {"cutoff": datetime.date(1996, 1, 1)},
            ))

    # arm 1: the naive pre-paper architecture — every query goes to a
    # Definition-2.3 offline system that deletion-tests every sensitive
    # tuple (no SELECT-trigger information available to narrow anything)
    # (deletion strategy pinned: the naive system predates lineage)
    naive_auditor = OfflineAuditor(
        database, restrict_candidates=False, mode="deletion"
    )
    start = time.perf_counter()
    audited_everything = 0
    for sql, parameters in workload:
        naive_auditor.audit(sql, AUDIT_NAME, parameters)
        audited_everything += 1
    offline_everything = time.perf_counter() - start

    # arm 2: Figure 1's architecture — SELECT triggers run online; only
    # queries with a non-empty ACCESSED state reach the offline system,
    # which additionally restricts its deletion tests to the flagged IDs'
    # leaf-reachable candidates
    auditor = OfflineAuditor(database)
    start = time.perf_counter()
    audited_filtered = 0
    for sql, parameters in workload:
        result = fixture.run_with_heuristic(sql, parameters, HEURISTIC_HCN)
        flagged = result.accessed.get(AUDIT_NAME, frozenset())
        if flagged:
            auditor.audit(sql, AUDIT_NAME, parameters)
            audited_filtered += 1
    trigger_filtered = time.perf_counter() - start

    return FILTERING_HEADERS, [
        ("offline-everything", audited_everything, offline_everything),
        ("trigger-filtered", audited_filtered, trigger_filtered),
    ]


# ---------------------------------------------------------------------------
# Ablation: greedy join reordering (engine substrate quality)

REORDER_HEADERS = ("query", "reordered_ms", "from_order_ms", "speedup")


def join_reorder_ablation(fixture: BenchmarkFixture, repeats: int = 5):
    """Greedy join reordering vs FROM-order left-deep plans.

    Not a paper experiment — an engine-substrate ablation showing the
    reproduction's optimizer handles the authentic TPC-H FROM clauses
    (Q8 starts with ``part``) without manual reordering.
    """
    database = fixture.database
    optimizer = database._optimizer
    rows = []
    for name in ("Q5", "Q7", "Q8", "Q10"):
        sql = QUERIES[name]
        parameters = QUERY_PARAMETERS[name]
        timings = {}
        for label, flag in (("reordered", True), ("from_order", False)):
            optimizer.join_reorder = flag
            try:
                timings[label] = fixture.execution_time(
                    sql, parameters, None, repeats
                )
            finally:
                optimizer.join_reorder = True
        speedup = (
            timings["from_order"] / timings["reordered"]
            if timings["reordered"] > 0 else float("inf")
        )
        rows.append((
            name,
            timings["reordered"] * 1000.0,
            timings["from_order"] * 1000.0,
            round(speedup, 2),
        ))
    return REORDER_HEADERS, rows


# ---------------------------------------------------------------------------
# Ablation: Bloom-filter probe structure (§IV-A.2)

BLOOM_HEADERS = (
    "probe",
    "memory_bytes",
    "accessed_ids",
    "extra_false_positives",
)


def bloom_probe_ablation(fixture: BenchmarkFixture):
    """Exact set vs counting Bloom filter as the operator's probe.

    The Bloom probe may flag extra IDs (one-sided false positives that the
    offline auditor later clears) in exchange for constant small memory.
    """
    from repro.audit.idview import IdView

    database = fixture.database
    expression = database.audit_manager.expression(AUDIT_NAME)
    parameters = micro_parameters(fixture, FIG8_SELECTIVITY)

    results = []
    exact_accessed: frozenset = frozenset()
    for probe in ("set", "bloom"):
        view = IdView(
            expression,
            database.catalog,
            database._materialize_ids,
            probe_structure=probe,
        )
        with database.audit_manager.override_view(AUDIT_NAME, view):
            result = fixture.run_with_heuristic(
                MICRO_BENCHMARK_QUERY, parameters, HEURISTIC_HCN
            )
        accessed = result.accessed.get(AUDIT_NAME, frozenset())
        if probe == "set":
            exact_accessed = accessed
        results.append((
            probe,
            view.probe_size_bytes,
            len(accessed),
            len(accessed - exact_accessed),
        ))
    return BLOOM_HEADERS, results


# ---------------------------------------------------------------------------
# Serving experiment: concurrent throughput, sync vs async triggers

CONCURRENCY_HEADERS = (
    "threads",
    "unaudited_qps",
    "sync_qps",
    "async_qps",
    "sync_p50_ms",
    "async_p50_ms",
)


def concurrency_serving(total_requests: int = 48, rounds: int = 1):
    """Multi-threaded serving throughput per trigger mode.

    Unlike the figure drivers this one builds its own clinic-style
    serving fixture (point queries over a small audited table) rather
    than taking the TPC-H :class:`BenchmarkFixture` — the experiment
    measures the engine's locking and trigger pipeline, not plan
    execution. Full sweep + acceptance checks live in
    ``benchmarks/bench_concurrency.py``.
    """
    from repro.bench.concurrency import concurrency_benchmark

    results = concurrency_benchmark(
        total_requests=total_requests, rounds=rounds
    )
    rows = []
    for threads in results["thread_counts"]:
        key = str(threads)
        rows.append((
            threads,
            results["modes"]["unaudited"][key]["qps"],
            results["modes"]["audited_sync"][key]["qps"],
            results["modes"]["audited_async"][key]["qps"],
            results["modes"]["audited_sync"][key]["p50_ms"],
            results["modes"]["audited_async"][key]["p50_ms"],
        ))
    return CONCURRENCY_HEADERS, rows


# ---------------------------------------------------------------------------
# Ablation: offline auditor subplan caching

OFFLINE_CACHE_HEADERS = ("query", "cached_ms", "uncached_ms", "speedup")


def offline_cache_ablation(fixture: BenchmarkFixture, repeats: int = 3):
    # deletion strategy pinned: the subplan cache only matters on the
    # per-candidate re-run path the lineage mode exists to avoid
    cached_auditor = OfflineAuditor(
        fixture.database, use_cache=True, mode="deletion"
    )
    uncached_auditor = OfflineAuditor(
        fixture.database, use_cache=False, mode="deletion"
    )
    cases = [
        ("micro", MICRO_BENCHMARK_QUERY,
         micro_parameters(fixture, FIG8_SELECTIVITY)),
        ("Q10", QUERIES["Q10"], QUERY_PARAMETERS["Q10"]),
    ]
    rows = []
    for name, sql, parameters in cases:
        cached = measure_median(
            lambda: cached_auditor.audit(sql, AUDIT_NAME, parameters),
            repeats,
        )
        uncached = measure_median(
            lambda: uncached_auditor.audit(sql, AUDIT_NAME, parameters),
            repeats,
        )
        speedup = uncached / cached if cached > 0 else float("inf")
        rows.append(
            (name, cached * 1000.0, uncached * 1000.0, round(speedup, 1))
        )
    return OFFLINE_CACHE_HEADERS, rows
