"""Replication benchmark: read scaling, lag, and the audit differential.

Three sections over :mod:`repro.replication` replicas tailing a
journaling primary (``replicate_statements`` on):

* ``read_scaling`` — a fixed pool of reader threads issues point
  SELECTs while a writer thread streams UPDATEs into the primary. The
  readers target either the primary alone (baseline: every read
  contends the primary's writer-preferring lock) or a fleet of 1/2/4
  file-tailing replicas round-robin. Each replica is its own engine, so
  replica reads never touch the primary's lock. Two write loads are
  measured: a *paced* stream (steady-state; in one GIL-bound process
  the qps deltas are modest by construction) and a *saturated* writer
  (time-boxed) — the scenario replicas exist for, where the primary's
  writer-preferring lock starves its own readers while replica reads
  keep serving at full speed.
* ``lag`` — a write burst with the replica attached; samples the
  maximum observed ``replication_lag()`` during the burst and times the
  catch-up back to lag zero after the last write.
* ``audit_differential`` — the armed proof. The same seeded workload
  (several users, point reads over sensitive rows) runs once serially
  on a single node (ground truth) and once spread over two replicas
  with read-your-writes token waits. Replicas fire BEFORE locally and
  forward AFTER intents to the primary, so the primary's audit log must
  come out **identical** to the single-node run: zero lost firings,
  zero phantom firings, original user attribution.

``benchmarks/bench_replication.py`` serializes the output to
``benchmarks/results/BENCH_replication.json``.
"""

from __future__ import annotations

import gc
import pathlib
import statistics
import tempfile
import threading
import time

from repro.database import Database
from repro.replication import ReplicaDatabase

REPLICA_COUNTS = (1, 2, 4)

#: reader threads in the scaling section (constant across configs)
READERS = 8

#: delay between writes in the scaling section's background stream
WRITE_PACING_S = 0.001

#: measurement window for the saturated-writer scenario
SATURATED_WINDOW_S = 1.5
QUICK_SATURATED_WINDOW_S = 0.6

DEFAULT_READS = 4000
QUICK_READS = 800

DEFAULT_WRITES = 400
QUICK_WRITES = 120

DEFAULT_AUDIT_QUERIES = 90
QUICK_AUDIT_QUERIES = 36

N_PATIENTS = 64

SCHEMA = """
CREATE TABLE patients (pid INT PRIMARY KEY, name VARCHAR, age INT);
CREATE TABLE log (uid VARCHAR, pid INT);
"""

ARM_SQL = """
CREATE AUDIT EXPRESSION aud AS SELECT * FROM patients
    FOR SENSITIVE TABLE patients, PARTITION BY pid;
CREATE TRIGGER ins_log ON ACCESS TO aud AS
    INSERT INTO log SELECT user_id(), pid FROM accessed
"""


def _build_primary(journal_dir: pathlib.Path, armed: bool) -> Database:
    db = Database(user_id="bench", journal_path=journal_dir)
    db.replicate_statements = True
    db.execute_script(SCHEMA)
    rows = ", ".join(
        f"({pid}, 'P{pid}', {20 + pid % 40})"
        for pid in range(1, N_PATIENTS + 1)
    )
    db.execute(f"INSERT INTO patients VALUES {rows}")
    if armed:
        db.execute_script(ARM_SQL)
        db.trigger_mode = "async"
    return db


def _catch_up(primary: Database, replicas: list[ReplicaDatabase]) -> None:
    token = primary.replication_token()
    for replica in replicas:
        replica.wait_for(token, timeout=30.0)


def _percentiles(latencies: list[float]) -> dict:
    ordered = sorted(latencies)
    return {
        "p50_ms": statistics.median(ordered) * 1000.0,
        "p99_ms": ordered[min(len(ordered) - 1,
                              int(len(ordered) * 0.99))] * 1000.0,
    }


# ----------------------------------------------------------------------
# section 1: read scaling under write load


def _measure_reads(
    execute_for: list, total_reads: int, primary: Database
) -> dict:
    """Readers round-robin over ``execute_for`` targets while a writer
    streams UPDATEs into the primary."""
    stop_writer = threading.Event()
    writes_done = [0]

    def writer() -> None:
        # paced: a steady ~250 writes/s stream, the same offered write
        # load for every config — an unthrottled writer would seize the
        # primary's writer-preferring lock and starve the baseline's
        # readers, measuring starvation instead of contention
        k = 0
        while not stop_writer.wait(WRITE_PACING_S):
            low = k % N_PATIENTS + 1
            sql = (
                f"UPDATE patients SET name = 'W{k}' "
                f"WHERE pid >= {low} AND pid < {low + 16}"
            )
            with primary.session.override(sql, "writer"):
                primary.execute(sql)
            writes_done[0] += 1
            k += 1

    latencies: list[float] = []
    errors: list[str] = []
    lock = threading.Lock()

    def reader(index: int) -> None:
        execute = execute_for[index % len(execute_for)]
        mine: list[float] = []
        try:
            for n in range(index, total_reads, READERS):
                pid = n % N_PATIENTS + 1
                sql = f"SELECT name FROM patients WHERE pid = {pid}"
                started = time.perf_counter()
                execute(sql)
                mine.append(time.perf_counter() - started)
        except Exception as error:  # noqa: BLE001 — reported, fails check
            with lock:
                errors.append(f"{type(error).__name__}: {error}")
        with lock:
            latencies.extend(mine)

    threads = [
        threading.Thread(target=reader, args=(index,))
        for index in range(READERS)
    ]
    writer_thread = threading.Thread(target=writer)
    gc.collect()
    started = time.perf_counter()
    writer_thread.start()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    wall = time.perf_counter() - started
    stop_writer.set()
    writer_thread.join()
    cell = {
        "reads": len(latencies),
        "expected": total_reads,
        "qps": (len(latencies) / wall) if wall > 0 else 0.0,
        "writes_during": writes_done[0],
        "errors": errors,
    }
    if latencies:
        cell.update(_percentiles(latencies))
    return cell


def _measure_reads_saturated(
    execute_for: list, window_s: float, primary: Database
) -> dict:
    """Time-boxed reads while an *unthrottled* writer owns the primary.

    The writer loops back-to-back UPDATEs; the primary's
    writer-preferring lock then makes its readers wait essentially the
    whole window. Readers are counted, not quota'd — a starved baseline
    must not stretch the wall clock.
    """
    stop_writer = threading.Event()
    writes_done = [0]

    def writer() -> None:
        k = 0
        while not stop_writer.is_set():
            low = k % N_PATIENTS + 1
            sql = (
                f"UPDATE patients SET name = 'S{k}' "
                f"WHERE pid >= {low} AND pid < {low + 16}"
            )
            with primary.session.override(sql, "writer"):
                primary.execute(sql)
            writes_done[0] += 1
            k += 1

    counts = [0] * READERS
    errors: list[str] = []
    lock = threading.Lock()
    deadline = [0.0]

    def reader(index: int) -> None:
        execute = execute_for[index % len(execute_for)]
        n = index
        try:
            while time.perf_counter() < deadline[0]:
                pid = n % N_PATIENTS + 1
                execute(f"SELECT name FROM patients WHERE pid = {pid}")
                counts[index] += 1
                n += READERS
        except Exception as error:  # noqa: BLE001 — reported, fails check
            with lock:
                errors.append(f"{type(error).__name__}: {error}")

    threads = [
        threading.Thread(target=reader, args=(index,))
        for index in range(READERS)
    ]
    gc.collect()
    writer_thread = threading.Thread(target=writer)
    deadline[0] = time.perf_counter() + window_s
    writer_thread.start()
    for thread in threads:
        thread.start()
    # stop the writer at the deadline so readers blocked on the lock
    # can finish their in-flight statement and exit promptly
    time.sleep(max(0.0, deadline[0] - time.perf_counter()))
    stop_writer.set()
    writer_thread.join()
    for thread in threads:
        thread.join()
    return {
        "window_s": window_s,
        "reads": sum(counts),
        "qps": sum(counts) / window_s,
        "writes_during": writes_done[0],
        "errors": errors,
    }


def _saturated_comparison(window_s: float) -> dict:
    """Primary-only vs two replicas under a saturated writer."""
    cells: dict[str, dict] = {}
    for replicas_n in (0, 2):
        with tempfile.TemporaryDirectory(prefix="bench-repl-") as tmp:
            journal = pathlib.Path(tmp) / "journal"
            primary = _build_primary(journal, armed=False)
            replicas = [
                ReplicaDatabase.from_journal(journal)
                for _ in range(replicas_n)
            ]
            try:
                _catch_up(primary, replicas)
                if replicas_n == 0:
                    def primary_read(sql: str):
                        with primary.session.override(sql, "reader"):
                            return primary.execute(sql)

                    targets = [primary_read]
                else:
                    targets = [replica.execute for replica in replicas]
                cell = _measure_reads_saturated(targets, window_s, primary)
                cell["stalled"] = any(r.stalled for r in replicas)
                cells[str(replicas_n)] = cell
            finally:
                for replica in replicas:
                    replica.close()
                primary.close()
    return {
        "window_s": window_s,
        "primary_only": cells["0"],
        "two_replicas": cells["2"],
        "speedup": cells["2"]["qps"] / max(cells["0"]["qps"], 1e-9),
    }


def _read_scaling(total_reads: int, saturated_window_s: float) -> dict:
    cells: dict[str, dict] = {}
    for replicas_n in (0,) + REPLICA_COUNTS:
        with tempfile.TemporaryDirectory(prefix="bench-repl-") as tmp:
            journal = pathlib.Path(tmp) / "journal"
            primary = _build_primary(journal, armed=False)
            replicas = [
                ReplicaDatabase.from_journal(journal)
                for _ in range(replicas_n)
            ]
            try:
                _catch_up(primary, replicas)
                if replicas_n == 0:
                    def primary_read(sql: str):
                        with primary.session.override(sql, "reader"):
                            return primary.execute(sql)

                    targets = [primary_read]
                else:
                    targets = [replica.execute for replica in replicas]
                cell = _measure_reads(targets, total_reads, primary)
                cell["stalled"] = any(r.stalled for r in replicas)
                cells[str(replicas_n)] = cell
            finally:
                for replica in replicas:
                    replica.close()
                primary.close()
    baseline = max(cells["0"]["qps"], 1e-9)
    baseline_p99 = cells["0"].get("p99_ms", 0.0)
    return {
        "reads": total_reads,
        "readers": READERS,
        "replica_counts": [0, *REPLICA_COUNTS],
        "cells": cells,
        "speedup_vs_primary_only": {
            str(n): cells[str(n)]["qps"] / baseline for n in REPLICA_COUNTS
        },
        # the sharper story in one GIL-bound process: replica reads
        # never stall behind the primary's writer-preferring lock, so
        # the read tail collapses even when raw qps barely moves
        "p99_improvement_vs_primary_only": {
            str(n): baseline_p99 / max(cells[str(n)].get("p99_ms", 0.0),
                                       1e-9)
            for n in REPLICA_COUNTS
        },
        "saturated": _saturated_comparison(saturated_window_s),
    }


# ----------------------------------------------------------------------
# section 2: lag under a write burst, then catch-up


def _lag_profile(total_writes: int) -> dict:
    with tempfile.TemporaryDirectory(prefix="bench-repl-") as tmp:
        journal = pathlib.Path(tmp) / "journal"
        primary = _build_primary(journal, armed=False)
        replica = ReplicaDatabase.from_journal(journal)
        try:
            _catch_up(primary, [replica])
            max_lag = [0]
            stop_sampler = threading.Event()

            def sampler() -> None:
                while not stop_sampler.is_set():
                    lag = replica.replication_lag()["lag_records"]
                    max_lag[0] = max(max_lag[0], lag)
                    time.sleep(0.002)

            sampler_thread = threading.Thread(target=sampler)
            sampler_thread.start()
            started = time.perf_counter()
            for k in range(total_writes):
                pid = k % N_PATIENTS + 1
                sql = f"UPDATE patients SET age = {20 + k % 60} " \
                      f"WHERE pid = {pid}"
                with primary.session.override(sql, "writer"):
                    primary.execute(sql)
            write_wall = time.perf_counter() - started
            token = primary.replication_token()
            started = time.perf_counter()
            caught_up = replica.wait_for(token, timeout=30.0)
            catch_up_s = time.perf_counter() - started
            stop_sampler.set()
            sampler_thread.join()
            final_lag = replica.replication_lag()
            return {
                "writes": total_writes,
                "write_wall_s": write_wall,
                "max_lag_records": max_lag[0],
                "caught_up": bool(caught_up),
                "catch_up_s": catch_up_s,
                "final_lag_records": final_lag["lag_records"],
                "stalled": final_lag["stalled"],
            }
        finally:
            replica.close()
            primary.close()


# ----------------------------------------------------------------------
# section 3: audit differential vs serial single-node ground truth


def _workload(total_queries: int) -> list[tuple[str, str]]:
    """A seeded (user, point-select) sequence — deterministic, so the
    serial and replicated runs see byte-identical statements."""
    users = ("dr_adams", "dr_baker", "dr_clark")
    return [
        (
            users[index % len(users)],
            f"SELECT name FROM patients "
            f"WHERE pid = {(7 * index) % N_PATIENTS + 1}",
        )
        for index in range(total_queries)
    ]


def _serial_ground_truth(total_queries: int) -> list[tuple]:
    db = Database(user_id="bench")
    try:
        db.execute_script(SCHEMA)
        rows = ", ".join(
            f"({pid}, 'P{pid}', {20 + pid % 40})"
            for pid in range(1, N_PATIENTS + 1)
        )
        db.execute(f"INSERT INTO patients VALUES {rows}")
        db.execute_script(ARM_SQL)
        db.trigger_mode = "async"
        for user, sql in _workload(total_queries):
            with db.session.override(sql, user):
                db.execute(sql)
        db.drain_triggers()
        return sorted(db.execute("SELECT uid, pid FROM log").rows)
    finally:
        db.close()


def _audit_differential(total_queries: int) -> dict:
    expected = _serial_ground_truth(total_queries)
    with tempfile.TemporaryDirectory(prefix="bench-repl-") as tmp:
        journal = pathlib.Path(tmp) / "journal"
        primary = _build_primary(journal, armed=True)
        replicas = [
            ReplicaDatabase.from_journal(journal, primary=primary)
            for _ in range(2)
        ]
        try:
            _catch_up(primary, replicas)
            for index, (user, sql) in enumerate(_workload(total_queries)):
                replicas[index % len(replicas)].execute(sql, user_id=user)
            primary.drain_triggers()
            sql = "SELECT uid, pid FROM log"
            with primary.session.override(sql, "bench"):
                actual = sorted(primary.execute(sql).rows)
            return {
                "queries": total_queries,
                "replicas": len(replicas),
                "expected_firings": len(expected),
                "actual_firings": len(actual),
                "identical_to_serial": actual == expected,
                "replica_stalled": any(r.stalled for r in replicas),
                "intents_replayed": sum(
                    r.intents_replayed for r in replicas
                ),
            }
        finally:
            for replica in replicas:
                replica.close()
            primary.close()


# ----------------------------------------------------------------------


def replication_benchmark(
    total_reads: int = DEFAULT_READS,
    total_writes: int = DEFAULT_WRITES,
    audit_queries: int = DEFAULT_AUDIT_QUERIES,
    saturated_window_s: float = SATURATED_WINDOW_S,
) -> dict:
    return {
        "read_scaling": _read_scaling(total_reads, saturated_window_s),
        "lag": _lag_profile(total_writes),
        "audit_differential": _audit_differential(audit_queries),
    }


__all__ = [
    "replication_benchmark",
    "REPLICA_COUNTS",
    "DEFAULT_READS",
    "DEFAULT_WRITES",
    "DEFAULT_AUDIT_QUERIES",
    "QUICK_READS",
    "QUICK_WRITES",
    "QUICK_AUDIT_QUERIES",
    "SATURATED_WINDOW_S",
    "QUICK_SATURATED_WINDOW_S",
]
