"""Offline-auditing benchmark: lineage fast path vs deletion testing.

Times the same TPC-H offline-audit workload through the three strategies
the offline auditor offers:

* ``lineage``           — one lineage-capturing execution classifies every
  candidate (``offline_audit_mode='lineage'``);
* ``deletion``          — the literal Definition-2.3 re-runs, one
  ``Q(D − t)`` per candidate tuple, serial;
* ``deletion_parallel`` — the same re-runs dispatched as chunked per-ID
  batches across a thread pool (``offline_audit_workers`` > 1).

All strategies must return the identical accessed-ID set — the lineage
engine is exact, not approximate — which this benchmark asserts before
reporting timings (it doubles as the CI differential check). The output is
a machine-readable dict that ``benchmarks/bench_offline_lineage.py``
serializes to ``benchmarks/results/BENCH_offline.json``: wall-clock per
mode, deletion runs performed and avoided, and the worker count.
"""

from __future__ import annotations

import gc
import time
from typing import TYPE_CHECKING

from repro.audit.offline import OfflineAuditor
from repro.bench.figures import micro_parameters
from repro.bench.harness import AUDIT_NAME
from repro.tpch import MICRO_BENCHMARK_QUERY, QUERIES, QUERY_PARAMETERS

if TYPE_CHECKING:  # pragma: no cover - cycle guard
    from repro.bench.harness import BenchmarkFixture

#: the micro query's order-date selectivity point (§V-A's 40 %)
MICRO_SELECTIVITY = 0.4

DEFAULT_REPEATS = 3
QUICK_REPEATS = 1
DEFAULT_WORKERS = 4


def _workloads(fixture: "BenchmarkFixture") -> dict[str, tuple[str, dict]]:
    return {
        # bag-semantics SPJ: the pure one-pass lineage case (empty tail)
        "micro_join": (
            MICRO_BENCHMARK_QUERY,
            micro_parameters(fixture, MICRO_SELECTIVITY),
        ),
        # aggregation + ORDER BY + LIMIT spine: incremental per-group
        # re-derivation with a replayed top-k tail
        "tpch_q3": (QUERIES["Q3"], QUERY_PARAMETERS["Q3"]),
    }


def _time_audit(auditor, sql, parameters, repeats: int) -> tuple[float, set]:
    """Best-of-N seconds for one full audit() call (plan cache warm)."""
    accessed = auditor.audit(sql, AUDIT_NAME, parameters)  # warm-up
    best = float("inf")
    was_enabled = gc.isenabled()
    gc.disable()
    try:
        for __ in range(repeats):
            start = time.perf_counter()
            result = auditor.audit(sql, AUDIT_NAME, parameters)
            elapsed = time.perf_counter() - start
            assert result == accessed
            if elapsed < best:
                best = elapsed
    finally:
        if was_enabled:
            gc.enable()
    return best, accessed


def offline_lineage_benchmark(
    fixture: "BenchmarkFixture",
    repeats: int = DEFAULT_REPEATS,
    workers: int = DEFAULT_WORKERS,
) -> dict:
    """Run the strategy comparison; returns a JSON-ready dict."""
    database = fixture.database
    results: dict = {
        "benchmark": "offline_lineage",
        "scale_factor": fixture.scale_factor,
        "repeats": repeats,
        "workers": workers,
        "audit_expression": AUDIT_NAME,
        "queries": {},
    }
    for name, (sql, parameters) in _workloads(fixture).items():
        lineage = OfflineAuditor(database, mode="lineage")
        deletion = OfflineAuditor(database, mode="deletion")
        pooled = OfflineAuditor(database, mode="deletion", workers=workers)

        lineage_s, lineage_ids = _time_audit(
            lineage, sql, parameters, repeats
        )
        deletion_s, deletion_ids = _time_audit(
            deletion, sql, parameters, repeats
        )
        pooled_s, pooled_ids = _time_audit(pooled, sql, parameters, repeats)

        entry = {
            "lineage_s": lineage_s,
            "deletion_s": deletion_s,
            "deletion_parallel_s": pooled_s,
            "speedup_lineage": _ratio(deletion_s, lineage_s),
            "speedup_parallel": _ratio(deletion_s, pooled_s),
            "accessed_ids": len(deletion_ids),
            "candidates": deletion.last_candidate_count,
            "lineage_mode": lineage.last_mode,
            "lineage_certified": lineage.last_lineage_certified,
            "lineage_deletion_runs": lineage.last_deletion_runs,
            "deletion_runs": deletion.last_deletion_runs,
            "deletion_runs_avoided": lineage.last_deletion_runs_avoided,
            "parallel_workers": pooled.last_workers,
            "accessed_sets_equal": lineage_ids == deletion_ids == pooled_ids,
        }
        results["queries"][name] = entry
    return results


def _ratio(numerator: float, denominator: float) -> float:
    if denominator <= 0:
        return 0.0
    return numerator / denominator


__all__ = [
    "offline_lineage_benchmark",
    "DEFAULT_REPEATS",
    "QUICK_REPEATS",
    "DEFAULT_WORKERS",
    "MICRO_SELECTIVITY",
]
