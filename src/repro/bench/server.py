"""Network serving benchmark: wire overhead vs the in-process engine.

Measures what :mod:`repro.server` costs. The same audited point-query
workload runs two ways at 1/4/16 concurrent clients:

* ``inprocess`` — each client thread calls ``Database.execute`` directly
  (under ``Session.override``, mirroring the server's attribution path);
* ``server``    — each client thread drives its own authenticated
  :class:`~repro.server.client.Connection` against a live TCP server
  multiplexing onto the same database.

Both are run with the audit trigger **armed** (audit expression + async
logging trigger — the serving configuration) and **unarmed** (audit
machinery absent, the ceiling), giving the four-way grid the paper's
serving story needs: what the wire costs, what auditing costs, and
whether the two compose.

Every armed cell proves **zero lost firings**: after ``drain_triggers``
the audit log must have grown by exactly one row per request (each point
query discloses exactly one sensitive ID).

``benchmarks/bench_server.py`` serializes the output to
``benchmarks/results/BENCH_server.json``.
"""

from __future__ import annotations

import gc
import statistics
import threading
import time

from repro.database import Database

#: concurrent clients compared in the scaling sweep
CLIENT_COUNTS = (1, 4, 16)

DEFAULT_REQUESTS = 240
QUICK_REQUESTS = 48

DEFAULT_ROUNDS = 2
QUICK_ROUNDS = 1

N_PATIENTS = 32

ARM_SQL = """
CREATE AUDIT EXPRESSION aud AS SELECT * FROM patients
    FOR SENSITIVE TABLE patients, PARTITION BY pid;
CREATE TRIGGER ins_log ON ACCESS TO aud AS
    INSERT INTO log SELECT user_id(), pid FROM accessed
"""


def _build_database(armed: bool) -> Database:
    db = Database(user_id="bench")
    db.execute(
        "CREATE TABLE patients (pid INT PRIMARY KEY, name VARCHAR)"
    )
    db.execute("CREATE TABLE log (uid VARCHAR, pid INT)")
    rows = ", ".join(f"({pid}, 'P{pid}')" for pid in range(1, N_PATIENTS + 1))
    db.execute(f"INSERT INTO patients VALUES {rows}")
    if armed:
        db.execute_script(ARM_SQL)
        db.trigger_mode = "async"
    return db


def _queries(total_requests: int, clients: int) -> list[list[str]]:
    """Split the request mix into per-client scripts of point queries."""
    scripts: list[list[str]] = [[] for _ in range(clients)]
    for index in range(total_requests):
        pid = index % N_PATIENTS + 1
        scripts[index % clients].append(
            f"SELECT name FROM patients WHERE pid = {pid}"
        )
    return scripts


def _percentiles(latencies: list[float]) -> dict:
    ordered = sorted(latencies)
    return {
        "p50_ms": statistics.median(ordered) * 1000.0,
        "p99_ms": ordered[min(len(ordered) - 1,
                              int(len(ordered) * 0.99))] * 1000.0,
    }


def _log_count(db: Database) -> int:
    return db.execute("SELECT COUNT(*) FROM log").scalar()


def _run_clients(workers: list) -> tuple[list[float], list[str], float]:
    """Start one thread per worker; collect latencies, errors, wall time."""
    latencies: list[float] = []
    errors: list[str] = []
    lock = threading.Lock()

    def body(work) -> None:
        execute, script = work
        mine: list[float] = []
        try:
            for sql in script:
                started = time.perf_counter()
                execute(sql)
                mine.append(time.perf_counter() - started)
        except Exception as error:  # noqa: BLE001 — reported, fails _check
            with lock:
                errors.append(f"{type(error).__name__}: {error}")
        with lock:
            latencies.extend(mine)

    threads = [
        threading.Thread(target=body, args=(work,)) for work in workers
    ]
    gc.collect()
    started = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    wall = time.perf_counter() - started
    return latencies, errors, wall


def _measure_inprocess(
    db: Database, armed: bool, total_requests: int, clients: int
) -> dict:
    scripts = _queries(total_requests, clients)

    def make_execute(user: str):
        def execute(sql: str):
            with db.session.override(sql, user):
                return db.execute(sql)
        return execute

    workers = [
        (make_execute(f"client{index}"), script)
        for index, script in enumerate(scripts)
    ]
    before = _log_count(db) if armed else 0
    latencies, errors, wall = _run_clients(workers)
    cell = _cell(latencies, errors, wall, total_requests)
    if armed:
        db.drain_triggers()
        cell["lost_firings"] = (
            before + total_requests - _log_count(db)
        )
    return cell


def _measure_server(
    db: Database, armed: bool, total_requests: int, clients: int
) -> dict:
    from repro.server.client import Connection

    scripts = _queries(total_requests, clients)
    with db.serve(
        max_connections=max(CLIENT_COUNTS) + 4, close_database=False
    ) as server:
        connections = [
            Connection(server.host, server.port, user_id=f"client{index}")
            for index in range(clients)
        ]
        try:
            workers = [
                (connection.execute, script)
                for connection, script in zip(connections, scripts)
            ]
            before = _log_count(db) if armed else 0
            latencies, errors, wall = _run_clients(workers)
        finally:
            for connection in connections:
                connection.close()
    cell = _cell(latencies, errors, wall, total_requests)
    if armed:
        db.drain_triggers()
        cell["lost_firings"] = (
            before + total_requests - _log_count(db)
        )
    return cell


def _cell(
    latencies: list[float], errors: list[str], wall: float, expected: int
) -> dict:
    cell = {
        "requests": len(latencies),
        "expected": expected,
        "qps": (len(latencies) / wall) if wall > 0 else 0.0,
        "errors": errors,
    }
    if latencies:
        cell.update(_percentiles(latencies))
    return cell


def server_benchmark(
    total_requests: int = DEFAULT_REQUESTS, rounds: int = DEFAULT_ROUNDS
) -> dict:
    """The full grid; best-of-``rounds`` per cell by qps."""
    grid: dict[str, dict] = {}
    for armed in (False, True):
        db = _build_database(armed)
        try:
            for transport, measure in (
                ("inprocess", _measure_inprocess),
                ("server", _measure_server),
            ):
                mode = f"{transport}_{'armed' if armed else 'unarmed'}"
                cells: dict[str, dict] = {}
                for clients in CLIENT_COUNTS:
                    best: dict | None = None
                    for _ in range(rounds):
                        cell = measure(db, armed, total_requests, clients)
                        if best is None or cell["qps"] > best["qps"]:
                            best = cell
                    cells[str(clients)] = best
                grid[mode] = cells
        finally:
            db.close()
    results: dict = {
        "total_requests": total_requests,
        "rounds": rounds,
        "client_counts": list(CLIENT_COUNTS),
        "modes": grid,
    }
    one = str(CLIENT_COUNTS[0])
    results["wire_overhead_1c"] = (
        grid["inprocess_unarmed"][one]["qps"]
        / max(grid["server_unarmed"][one]["qps"], 1e-9)
    )
    results["audit_overhead_server_1c"] = (
        grid["server_unarmed"][one]["qps"]
        / max(grid["server_armed"][one]["qps"], 1e-9)
    )
    results["zero_lost_firings"] = all(
        cell.get("lost_firings", 0) == 0
        for mode, cells in grid.items()
        if mode.endswith("_armed")
        for cell in cells.values()
    )
    results["all_requests_served"] = all(
        cell["requests"] == cell["expected"] and not cell["errors"]
        for cells in grid.values()
        for cell in cells.values()
    )
    return results


__all__ = [
    "server_benchmark",
    "CLIENT_COUNTS",
    "DEFAULT_REQUESTS",
    "DEFAULT_ROUNDS",
    "QUICK_REQUESTS",
    "QUICK_ROUNDS",
]
