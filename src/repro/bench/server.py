"""Network serving benchmark: wire overhead vs the in-process engine.

Measures what :mod:`repro.server` costs. The same audited point-query
workload runs two ways at 1/4/16 concurrent clients:

* ``inprocess`` — each client thread calls ``Database.execute`` directly
  (under ``Session.override``, mirroring the server's attribution path);
* ``server``    — each client thread drives its own authenticated
  :class:`~repro.server.client.Connection` against a live TCP server
  multiplexing onto the same database.

Both are run with the audit trigger **armed** (audit expression + async
logging trigger — the serving configuration) and **unarmed** (audit
machinery absent, the ceiling), giving the four-way grid the paper's
serving story needs: what the wire costs, what auditing costs, and
whether the two compose.

Every armed cell proves **zero lost firings**: after ``drain_triggers``
the audit log must have grown by exactly one row per request (each point
query discloses exactly one sensitive ID).

Two further sections compare the serving front ends directly:

* ``high_concurrency`` — 256 and 1024 open connections against the
  threaded :class:`~repro.server.server.Server` (thread per connection)
  and the asyncio :class:`~repro.server.aserver.AsyncServer` (fd +
  coroutine per connection, bounded worker pool), driven by a small
  fixed pool of driver threads. Reports qps, p50/p99, and the resident
  thread count while all connections are open — the number the asyncio
  front end exists to flatten.
* ``pipelining`` — one connection, a run of small point SELECTs,
  executed one-at-a-time (``execute``) vs pipelined
  (``execute_many``). The asyncio front end additionally batches
  consecutive pipelined statements into single worker-pool hops, so
  its speedup is the acceptance bar (>= 2x).

``benchmarks/bench_server.py`` serializes the output to
``benchmarks/results/BENCH_server.json``.
"""

from __future__ import annotations

import gc
import itertools
import statistics
import threading
import time

from repro.database import Database

#: concurrent clients compared in the scaling sweep
CLIENT_COUNTS = (1, 4, 16)

DEFAULT_REQUESTS = 240
QUICK_REQUESTS = 48

DEFAULT_ROUNDS = 2
QUICK_ROUNDS = 1

#: open-connection counts for the front-end comparison
HIGHCONC_CLIENTS = (256, 1024)
QUICK_HIGHCONC_CLIENTS = (64,)

HIGHCONC_REQUESTS = 2048
QUICK_HIGHCONC_REQUESTS = 256

#: threads actually driving requests in the high-concurrency section —
#: connections far outnumber drivers, as in a real fan-in tier
DRIVER_THREADS = 16

PIPELINE_STATEMENTS = 200
QUICK_PIPELINE_STATEMENTS = 80

N_PATIENTS = 32

ARM_SQL = """
CREATE AUDIT EXPRESSION aud AS SELECT * FROM patients
    FOR SENSITIVE TABLE patients, PARTITION BY pid;
CREATE TRIGGER ins_log ON ACCESS TO aud AS
    INSERT INTO log SELECT user_id(), pid FROM accessed
"""


def _build_database(armed: bool) -> Database:
    db = Database(user_id="bench")
    db.execute(
        "CREATE TABLE patients (pid INT PRIMARY KEY, name VARCHAR)"
    )
    db.execute("CREATE TABLE log (uid VARCHAR, pid INT)")
    rows = ", ".join(f"({pid}, 'P{pid}')" for pid in range(1, N_PATIENTS + 1))
    db.execute(f"INSERT INTO patients VALUES {rows}")
    if armed:
        db.execute_script(ARM_SQL)
        db.trigger_mode = "async"
    return db


def _queries(total_requests: int, clients: int) -> list[list[str]]:
    """Split the request mix into per-client scripts of point queries."""
    scripts: list[list[str]] = [[] for _ in range(clients)]
    for index in range(total_requests):
        pid = index % N_PATIENTS + 1
        scripts[index % clients].append(
            f"SELECT name FROM patients WHERE pid = {pid}"
        )
    return scripts


def _percentiles(latencies: list[float]) -> dict:
    ordered = sorted(latencies)
    return {
        "p50_ms": statistics.median(ordered) * 1000.0,
        "p99_ms": ordered[min(len(ordered) - 1,
                              int(len(ordered) * 0.99))] * 1000.0,
    }


def _log_count(db: Database) -> int:
    return db.execute("SELECT COUNT(*) FROM log").scalar()


def _run_clients(workers: list) -> tuple[list[float], list[str], float]:
    """Start one thread per worker; collect latencies, errors, wall time."""
    latencies: list[float] = []
    errors: list[str] = []
    lock = threading.Lock()

    def body(work) -> None:
        execute, script = work
        mine: list[float] = []
        try:
            for sql in script:
                started = time.perf_counter()
                execute(sql)
                mine.append(time.perf_counter() - started)
        except Exception as error:  # noqa: BLE001 — reported, fails _check
            with lock:
                errors.append(f"{type(error).__name__}: {error}")
        with lock:
            latencies.extend(mine)

    threads = [
        threading.Thread(target=body, args=(work,)) for work in workers
    ]
    gc.collect()
    started = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    wall = time.perf_counter() - started
    return latencies, errors, wall


def _measure_inprocess(
    db: Database, armed: bool, total_requests: int, clients: int
) -> dict:
    scripts = _queries(total_requests, clients)

    def make_execute(user: str):
        def execute(sql: str):
            with db.session.override(sql, user):
                return db.execute(sql)
        return execute

    workers = [
        (make_execute(f"client{index}"), script)
        for index, script in enumerate(scripts)
    ]
    before = _log_count(db) if armed else 0
    latencies, errors, wall = _run_clients(workers)
    cell = _cell(latencies, errors, wall, total_requests)
    if armed:
        db.drain_triggers()
        cell["lost_firings"] = (
            before + total_requests - _log_count(db)
        )
    return cell


def _measure_server(
    db: Database, armed: bool, total_requests: int, clients: int
) -> dict:
    from repro.server.client import Connection

    scripts = _queries(total_requests, clients)
    with db.serve(
        max_connections=max(CLIENT_COUNTS) + 4, close_database=False
    ) as server:
        connections = [
            Connection(server.host, server.port, user_id=f"client{index}")
            for index in range(clients)
        ]
        try:
            workers = [
                (connection.execute, script)
                for connection, script in zip(connections, scripts)
            ]
            before = _log_count(db) if armed else 0
            latencies, errors, wall = _run_clients(workers)
        finally:
            for connection in connections:
                connection.close()
    cell = _cell(latencies, errors, wall, total_requests)
    if armed:
        db.drain_triggers()
        cell["lost_firings"] = (
            before + total_requests - _log_count(db)
        )
    return cell


def _raise_nofile(minimum: int = 4096) -> None:
    """Lift the fd soft limit so 1024 sockets (x2 ends) fit."""
    try:
        import resource
    except ImportError:  # pragma: no cover - non-POSIX
        return
    soft, hard = resource.getrlimit(resource.RLIMIT_NOFILE)
    if soft < minimum:
        try:
            resource.setrlimit(
                resource.RLIMIT_NOFILE, (min(minimum, hard), hard)
            )
        except (ValueError, OSError):  # pragma: no cover - capped env
            pass


def _make_frontend(frontend: str, db: Database, max_connections: int):
    """A started server of the requested flavour over ``db``."""
    from repro.server import AsyncServer, Server

    factory = Server if frontend == "threaded" else AsyncServer
    return factory(
        db,
        max_connections=max_connections,
        admission_queue=max_connections,
        admission_timeout=60.0,
        close_database=False,
    ).start()


def _measure_high_concurrency(
    frontend: str, clients: int, total_requests: int
) -> dict:
    """qps/latency/thread-count with ``clients`` open connections.

    All connections are opened first (this is where the front ends
    diverge: the threaded server holds a handler thread per connection,
    the asyncio server a coroutine). A fixed pool of driver threads then
    spreads ``total_requests`` round-robin over the connections, so the
    measured work per front end is identical.
    """
    from repro.server.client import Connection

    _raise_nofile()
    db = _build_database(armed=False)
    baseline_threads = threading.active_count()
    server = _make_frontend(frontend, db, clients + DRIVER_THREADS)
    try:
        connections = [
            Connection(server.host, server.port, user_id=f"c{i}")
            for i in range(clients)
        ]
        try:
            resident_threads = threading.active_count()
            drivers = min(DRIVER_THREADS, clients)
            scripts = _queries(total_requests, drivers)
            shares = [connections[i::drivers] for i in range(drivers)]

            def make_execute(share: list) -> object:
                rotation = itertools.cycle(share)

                def execute(sql: str):
                    return next(rotation).execute(sql)

                return execute

            workers = [
                (make_execute(share), script)
                for share, script in zip(shares, scripts)
            ]
            latencies, errors, wall = _run_clients(workers)
        finally:
            for connection in connections:
                connection.close()
    finally:
        server.shutdown()
        db.close()
    cell = _cell(latencies, errors, wall, total_requests)
    cell["resident_threads"] = resident_threads
    cell["baseline_threads"] = baseline_threads
    return cell


def _measure_pipelining(frontend: str, statements: int) -> dict:
    """One connection: serial ``execute`` vs pipelined ``execute_many``."""
    from repro.server.client import Connection

    db = _build_database(armed=False)
    server = _make_frontend(frontend, db, 4)
    try:
        batch = [
            f"SELECT name FROM patients WHERE pid = {i % N_PATIENTS + 1}"
            for i in range(statements)
        ]
        with Connection(server.host, server.port, user_id="pipe") as conn:
            conn.execute("SELECT 1")  # warm both ends
            gc.collect()
            started = time.perf_counter()
            for sql in batch:
                conn.execute(sql)
            serial_s = time.perf_counter() - started
            started = time.perf_counter()
            outcomes = conn.execute_many(batch)
            batched_s = time.perf_counter() - started
            served = sum(1 for outcome in outcomes if outcome.rows)
    finally:
        server.shutdown()
        db.close()
    return {
        "statements": statements,
        "served": served,
        "serial_s": serial_s,
        "batched_s": batched_s,
        "speedup": serial_s / max(batched_s, 1e-9),
    }


def _cell(
    latencies: list[float], errors: list[str], wall: float, expected: int
) -> dict:
    cell = {
        "requests": len(latencies),
        "expected": expected,
        "qps": (len(latencies) / wall) if wall > 0 else 0.0,
        "errors": errors,
    }
    if latencies:
        cell.update(_percentiles(latencies))
    return cell


def server_benchmark(
    total_requests: int = DEFAULT_REQUESTS,
    rounds: int = DEFAULT_ROUNDS,
    highconc_clients: tuple = HIGHCONC_CLIENTS,
    highconc_requests: int = HIGHCONC_REQUESTS,
    pipeline_statements: int = PIPELINE_STATEMENTS,
) -> dict:
    """The full grid; best-of-``rounds`` per cell by qps."""
    grid: dict[str, dict] = {}
    for armed in (False, True):
        db = _build_database(armed)
        try:
            for transport, measure in (
                ("inprocess", _measure_inprocess),
                ("server", _measure_server),
            ):
                mode = f"{transport}_{'armed' if armed else 'unarmed'}"
                cells: dict[str, dict] = {}
                for clients in CLIENT_COUNTS:
                    best: dict | None = None
                    for _ in range(rounds):
                        cell = measure(db, armed, total_requests, clients)
                        if best is None or cell["qps"] > best["qps"]:
                            best = cell
                    cells[str(clients)] = best
                grid[mode] = cells
        finally:
            db.close()
    results: dict = {
        "total_requests": total_requests,
        "rounds": rounds,
        "client_counts": list(CLIENT_COUNTS),
        "modes": grid,
    }
    one = str(CLIENT_COUNTS[0])
    results["wire_overhead_1c"] = (
        grid["inprocess_unarmed"][one]["qps"]
        / max(grid["server_unarmed"][one]["qps"], 1e-9)
    )
    results["audit_overhead_server_1c"] = (
        grid["server_unarmed"][one]["qps"]
        / max(grid["server_armed"][one]["qps"], 1e-9)
    )
    results["zero_lost_firings"] = all(
        cell.get("lost_firings", 0) == 0
        for mode, cells in grid.items()
        if mode.endswith("_armed")
        for cell in cells.values()
    )
    results["all_requests_served"] = all(
        cell["requests"] == cell["expected"] and not cell["errors"]
        for cells in grid.values()
        for cell in cells.values()
    )

    highconc: dict[str, dict] = {}
    for frontend in ("threaded", "async"):
        highconc[frontend] = {
            str(clients): _measure_high_concurrency(
                frontend, clients, highconc_requests
            )
            for clients in highconc_clients
        }
    results["high_concurrency"] = {
        "client_counts": list(highconc_clients),
        "requests": highconc_requests,
        "driver_threads": DRIVER_THREADS,
        "frontends": highconc,
    }

    results["pipelining"] = {
        frontend: _measure_pipelining(frontend, pipeline_statements)
        for frontend in ("threaded", "async")
    }
    return results


__all__ = [
    "server_benchmark",
    "CLIENT_COUNTS",
    "DEFAULT_REQUESTS",
    "DEFAULT_ROUNDS",
    "HIGHCONC_CLIENTS",
    "HIGHCONC_REQUESTS",
    "PIPELINE_STATEMENTS",
    "QUICK_HIGHCONC_CLIENTS",
    "QUICK_HIGHCONC_REQUESTS",
    "QUICK_PIPELINE_STATEMENTS",
    "QUICK_REQUESTS",
    "QUICK_ROUNDS",
]
