"""Execution-pipeline benchmark: row vs batch vs batch + plan cache.

Times the same audited workload through the three execution pipelines the
engine offers:

* ``row``      — the classic Volcano loop, plan compiled per call (the
  seed engine's only mode);
* ``batch``    — batch-at-a-time operators with compiled predicate and
  projection closures, plan still compiled per call;
* ``batch_cached`` — batch execution through a warm plan cache, so the
  parse/bind/rewrite/instrument/plan pipeline is skipped entirely.

All three produce bit-identical results, ACCESSED sets, and audit probe
counts (asserted here and by the hypothesis equivalence property test);
only the wall-clock changes. The output is a machine-readable dict that
``benchmarks/bench_pipeline.py`` serializes to
``benchmarks/results/BENCH_pipeline.json``.

Timings are best-of-N with variants interleaved per round and the GC
disabled, matching the harness conventions.
"""

from __future__ import annotations

import gc
import logging
import time
from typing import TYPE_CHECKING

from repro.bench.harness import AUDIT_NAME
from repro.bench.figures import micro_parameters
from repro.exec.operators.base import collect_rows
from repro.tpch import MICRO_BENCHMARK_QUERY, QUERIES, QUERY_PARAMETERS

if TYPE_CHECKING:  # pragma: no cover - cycle guard
    from repro.bench.harness import BenchmarkFixture

#: the micro-benchmark's order-date selectivity point (§V-A's 40 %)
MICRO_SELECTIVITY = 0.4

DEFAULT_REPEATS = 7
QUICK_REPEATS = 3

#: estimated-vs-actual probe ratio above which the planner's cardinality
#: model is considered off the rails for this workload (either direction)
PROBE_ESTIMATE_WARN_RATIO = 4.0

_LOG = logging.getLogger(__name__)


def _workloads(fixture: "BenchmarkFixture") -> dict[str, tuple[str, dict]]:
    return {
        "micro_join": (
            MICRO_BENCHMARK_QUERY,
            micro_parameters(fixture, MICRO_SELECTIVITY),
        ),
        "tpch_q3": (QUERIES["Q3"], QUERY_PARAMETERS["Q3"]),
    }


def _time_modes(
    database, sql: str, parameters: dict, repeats: int
) -> dict[str, float]:
    """Best-of-N seconds per pipeline, interleaved round-robin.

    The cold variants evict the query's plan-cache entry inside the timed
    region (an O(1) pop) so every call pays the full parse-to-plan cost,
    like the seed engine did; the warm variant leaves the entry in place
    and must hit the cache on every timed call.
    """
    key = sql.strip()

    def row_cold() -> None:
        database.exec_mode = "row"
        database.plan_cache.evict(key)
        database.execute(sql, parameters)

    def batch_cold() -> None:
        database.exec_mode = "batch"
        database.plan_cache.evict(key)
        database.execute(sql, parameters)

    def batch_warm() -> None:
        database.exec_mode = "batch"
        database.execute(sql, parameters)

    variants = {
        "row_s": row_cold,
        "batch_s": batch_cold,
        "batch_cached_s": batch_warm,
    }
    saved_mode = database.exec_mode
    best = {label: float("inf") for label in variants}
    was_enabled = gc.isenabled()
    try:
        for action in variants.values():  # warm-up; primes the plan cache
            action()
        hits_before = database.plan_cache.hits
        gc.disable()
        for __ in range(repeats):
            for label, action in variants.items():
                start = time.perf_counter()
                action()
                elapsed = time.perf_counter() - start
                if elapsed < best[label]:
                    best[label] = elapsed
        warm_hits = database.plan_cache.hits - hits_before
    finally:
        if was_enabled:
            gc.enable()
        database.exec_mode = saved_mode
    best["warm_cache_hits"] = warm_hits
    return best


def _audit_artifacts(
    fixture: "BenchmarkFixture", sql: str, parameters: dict
) -> dict[str, dict]:
    """Result/ACCESSED/probe-count fingerprint of each execution mode.

    One physical plan, two executions — any divergence between the modes
    is an equivalence bug, not noise.
    """
    database = fixture.database
    physical = fixture.compile_with_heuristic(
        sql, database.audit_manager.heuristic
    )
    artifacts: dict[str, dict] = {}
    for mode in ("row", "batch"):
        context = database.make_context(parameters)
        rows = collect_rows(physical, context, mode=mode)
        artifacts[mode] = {
            "result_rows": len(rows),
            "accessed": {
                name: sorted(ids)
                for name, ids in context.accessed.items()
            },
            "audit_probes": context.audit_probe_count,
            "audit_probes_by_name": dict(
                sorted(context.audit_probe_counts.items())
            ),
        }
    return artifacts


def _estimated_probes(fixture: "BenchmarkFixture", sql: str) -> float:
    """Cost-model estimate of total audit probes for ``sql``.

    Re-runs the logical half of the pipeline (build, rewrite, instrument)
    and asks the placement cost model for its probe estimate of the
    instrumented plan — the same number 'cost' placement minimizes, so
    comparing it against the measured probe count calibrates the model.
    """
    from repro.optimizer.cost import CostModel
    from repro.sql.parser import parse_statement

    database = fixture.database
    manager = database.audit_manager
    logical = database._optimizer.optimize_logical(
        database._builder.build_select(parse_statement(sql)),
        instrument=manager.instrument,
    )
    model = CostModel(database.catalog, manager.resolve_view)
    return model.estimate_plan_probes(logical)


def _probe_estimate_entry(estimated: float, actual: int) -> dict:
    """Estimated-vs-actual probe accounting, with the 4x drift warning."""
    if estimated <= 0 and actual <= 0:
        ratio = 1.0
    elif estimated <= 0 or actual <= 0:
        ratio = float("inf")
    else:
        ratio = max(estimated / actual, actual / estimated)
    if ratio > PROBE_ESTIMATE_WARN_RATIO:
        _LOG.warning(
            "audit probe estimate off by %.1fx (estimated %.0f, "
            "actual %d) — cost-based placement may be mis-ranking "
            "candidates on this workload",
            ratio, estimated, actual,
        )
    return {
        "audit_probes_estimated": estimated,
        "probe_estimate_ratio": ratio if ratio != float("inf") else None,
        "probe_estimate_within_bounds": ratio <= PROBE_ESTIMATE_WARN_RATIO,
    }


def pipeline_benchmark(
    fixture: "BenchmarkFixture", repeats: int = DEFAULT_REPEATS
) -> dict:
    """Run the full pipeline comparison; returns a JSON-ready dict."""
    database = fixture.database
    results: dict = {
        "benchmark": "pipeline",
        "scale_factor": fixture.scale_factor,
        "repeats": repeats,
        "audit_expression": AUDIT_NAME,
        "queries": {},
    }
    for name, (sql, parameters) in _workloads(fixture).items():
        timings = _time_modes(database, sql, parameters, repeats)
        artifacts = _audit_artifacts(fixture, sql, parameters)
        row, batch = artifacts["row"], artifacts["batch"]
        entry = dict(timings)
        entry["speedup_batch"] = _ratio(
            timings["row_s"], timings["batch_s"]
        )
        entry["speedup_batch_cached"] = _ratio(
            timings["row_s"], timings["batch_cached_s"]
        )
        entry["audit_artifacts_equal"] = row == batch
        entry["result_rows"] = row["result_rows"]
        entry["audit_probes"] = row["audit_probes"]
        entry.update(
            _probe_estimate_entry(
                _estimated_probes(fixture, sql), row["audit_probes"]
            )
        )
        entry["accessed_counts"] = {
            audit: len(ids) for audit, ids in row["accessed"].items()
        }
        results["queries"][name] = entry
    results["plan_cache"] = database.plan_cache.stats()
    return results


def _ratio(numerator: float, denominator: float) -> float:
    if denominator <= 0:
        return 0.0
    return numerator / denominator


__all__ = [
    "pipeline_benchmark",
    "DEFAULT_REPEATS",
    "QUICK_REPEATS",
    "MICRO_SELECTIVITY",
    "PROBE_ESTIMATE_WARN_RATIO",
]
