"""Cluster scatter-gather benchmark: shard-count sweep on TPC-H customer.

Loads the SF ≥ 0.1 customer table into a :class:`ClusterDatabase` at
each shard count, installs the §V audit expression (which repartitions
customer on ``c_custkey``) plus a SELECT trigger, and measures aggregate
qps over a scan-heavy **armed** workload — every query's ACCESSED set is
non-empty, so each execution pays the full audit pipeline: per-shard
probe, gathered ACCESSED union, trigger firing.

Two invariants gate every timing:

* **zero lost firings** — each configuration fires the trigger exactly
  once per workload query, and every query's ACCESSED set equals the
  1-shard baseline's;
* **result parity** — each query's result multiset matches the baseline.

A pure-Python 1-CPU harness cannot show real scan parallelism (the GIL
serializes fragment compute), so the benchmark models per-shard storage
latency with the coordinator's ``simulated_io_us_per_row`` knob: each
fragment sleeps ``µs × (partitioned rows stored on its shard)`` before
executing, releasing the GIL — N-way sharding divides the stall by ~N
and overlaps the remainder, exactly the speedup a multi-node deployment
gets from scanning partitions concurrently. The knob's value is recorded
in the result JSON; compute-only times (knob = 0) are reported alongside.

A final **slow-shard** section measures fault-tolerant tail latency: one
shard's scatter site hangs for seconds per fragment while the
coordinator runs with a sub-second ``shard_deadline`` and fail-open
degraded reads. The recorded p99 must stay under deadline-plus-slack —
queries pay the deadline, never the hang — and the breaker quarantines
the hung shard so steady-state queries stop paying even that.
"""

from __future__ import annotations

import os
import time

from repro.cluster import ClusterDatabase
from repro.tpch.datagen import TpchGenerator
from repro.tpch.queries import audit_expression_sql

DEFAULT_SCALE_FACTOR = max(
    0.1, float(os.environ.get("REPRO_BENCH_SF", "0.1"))
)
QUICK_SCALE_FACTOR = 0.02

DEFAULT_REPEATS = 5
QUICK_REPEATS = 2

SHARD_COUNTS = (1, 2, 4, 8)
QUICK_SHARD_COUNTS = (1, 2)

AUDIT_NAME = "audit_customer"
SEGMENT = "BUILDING"

#: simulated per-row storage latency (µs); ~300 ms of modeled scan I/O
#: per fragment at SF 0.1 single-shard
IO_US_PER_ROW = 20.0

#: slow-shard section: one shard hangs for this long per fragment...
SLOW_SHARD_HANG_S = 5.0
#: ...and the coordinator's per-fragment deadline caps the damage here
SLOW_SHARD_DEADLINE_S = 0.25
#: p99 acceptance bound: deadline + scheduling/cancellation slack —
#: far below the hang, which is what "bounded tail latency" means
SLOW_SHARD_P99_BOUND_S = SLOW_SHARD_DEADLINE_S + 0.5
SLOW_SHARD_COUNT = 4

#: scan-heavy armed workload: every query reads the whole customer
#: partition on every shard and touches BUILDING customers (the
#: sensitive set), so audit probes and trigger firing are always live
WORKLOAD = (
    # MIN/MAX instead of SUM(c_acctbal): float summation is
    # order-sensitive in the last bits, and the parity gate is exact
    ("agg_by_segment",
     "SELECT c_mktsegment, COUNT(*), MIN(c_acctbal), MAX(c_acctbal) "
     "FROM customer GROUP BY c_mktsegment"),
    ("filter_scan",
     "SELECT c_name, c_acctbal FROM customer "
     "WHERE c_acctbal > 5000 AND c_mktsegment = 'BUILDING'"),
    ("topk",
     "SELECT c_custkey, c_acctbal FROM customer "
     "ORDER BY c_acctbal DESC, c_custkey LIMIT 20"),
    ("count_armed",
     "SELECT COUNT(*) FROM customer WHERE c_mktsegment = 'BUILDING'"),
)


#: the customer table alone (the full TPC-H schema declares an FK from
#: orders to customer, and partitioning an FK-referenced table is a
#: documented cluster v1 restriction)
CUSTOMER_DDL = """
CREATE TABLE customer (
    c_custkey INT PRIMARY KEY,
    c_name VARCHAR NOT NULL,
    c_address VARCHAR,
    c_nationkey INT NOT NULL,
    c_phone VARCHAR,
    c_acctbal DECIMAL(15, 2),
    c_mktsegment VARCHAR,
    c_comment VARCHAR
)
"""


def _build_cluster(
    shards: int, scale_factor: float, **cluster_kwargs
) -> ClusterDatabase:
    cluster = ClusterDatabase(shards=shards, **cluster_kwargs)
    cluster.execute(CUSTOMER_DDL)
    generator = TpchGenerator(scale_factor, seed=42)
    cluster.bulk_load("customer", generator.customer_rows())
    cluster.execute("ANALYZE")
    # repartitions customer on c_custkey across the shards
    cluster.execute(audit_expression_sql(AUDIT_NAME, SEGMENT))
    cluster.execute(
        f"CREATE TRIGGER fired ON ACCESS TO {AUDIT_NAME} AS NOTIFY 'hit'"
    )
    return cluster


def _run_workload(cluster: ClusterDatabase) -> list:
    """One pass over the workload; returns per-query results."""
    return [cluster.execute(sql) for _, sql in WORKLOAD]


def cluster_benchmark(
    scale_factor: float = DEFAULT_SCALE_FACTOR,
    repeats: int = DEFAULT_REPEATS,
    shard_counts: tuple[int, ...] = SHARD_COUNTS,
) -> dict:
    results: dict = {
        "benchmark": "cluster",
        "scale_factor": scale_factor,
        "repeats": repeats,
        "io_us_per_row": IO_US_PER_ROW,
        "workload": {name: sql for name, sql in WORKLOAD},
        "shards": {},
    }
    baseline_rows: list | None = None
    baseline_accessed: list | None = None
    baseline_qps: float | None = None
    for shards in shard_counts:
        cluster = _build_cluster(shards, scale_factor)
        try:
            customer_rows = sum(
                len(shard.catalog.table("customer"))
                for shard in cluster.shards
            )
            results["customer_rows"] = customer_rows
            partition_sizes = [
                len(shard.catalog.table("customer"))
                for shard in cluster.shards
            ]
            # correctness pass (no stall): parity + firing accounting
            fired_before = len(cluster.notifications)
            outcomes = _run_workload(cluster)
            fired = len(cluster.notifications) - fired_before
            rows = [sorted(r.rows_list(), key=repr) for r in outcomes]
            accessed = [r.accessed for r in outcomes]
            if baseline_rows is None:
                baseline_rows = rows
                baseline_accessed = accessed
            assert rows == baseline_rows, "result parity broken"
            assert accessed == baseline_accessed, "ACCESSED parity broken"
            assert fired == len(WORKLOAD), (
                f"lost firings: {fired} != {len(WORKLOAD)}"
            )
            # compute-only timing (GIL-bound; expected flat across counts)
            compute = _best_of(repeats, cluster)
            # modeled-I/O timing: per-row stall, overlapping across shards
            cluster.simulated_io_us_per_row = IO_US_PER_ROW
            modeled = _best_of(repeats, cluster)
            cluster.simulated_io_us_per_row = 0.0
            qps = len(WORKLOAD) / modeled
            if baseline_qps is None:
                baseline_qps = qps
            results["shards"][str(shards)] = {
                "partition_rows": partition_sizes,
                "compute_only_s": compute,
                "modeled_io_s": modeled,
                "qps": qps,
                "speedup_vs_1shard": qps / baseline_qps,
                "firings": fired,
                "lost_firings": len(WORKLOAD) - fired,
                "accessed_ids": sum(
                    len(ids)
                    for per_query in accessed
                    for ids in per_query.values()
                ),
            }
        finally:
            cluster.close()
    results["slow_shard"] = _slow_shard_section(scale_factor, repeats)
    return results


def _slow_shard_section(scale_factor: float, repeats: int) -> dict:
    """Tail latency with one hung shard: deadline-capped, not hang-capped.

    One shard's scatter site sleeps ``SLOW_SHARD_HANG_S`` per fragment;
    the coordinator runs with ``shard_deadline`` and fail-open degraded
    reads. The per-query p99 must stay under the deadline-plus-slack
    bound — the whole point of the fault-tolerance layer — and after
    ``quarantine_after`` misses the breaker opens and queries stop
    paying even the deadline.
    """
    from repro.testing.faults import FaultInjector

    victim = SLOW_SHARD_COUNT - 1
    injector = FaultInjector()
    cluster = _build_cluster(
        SLOW_SHARD_COUNT,
        scale_factor,
        shard_fault_injectors={victim: injector},
        shard_deadline=SLOW_SHARD_DEADLINE_S,
        shard_retries=0,
        audit_policy="fail_open",
        degraded_reads=True,
    )
    try:
        healthy = _per_query_latencies(repeats, cluster)
        injector.arm_latency(
            "shard-scatter", delay_s=SLOW_SHARD_HANG_S, repeat=True
        )
        degraded = _per_query_latencies(repeats, cluster)
        health = cluster.cluster_health()
        return {
            "shards": SLOW_SHARD_COUNT,
            "victim": victim,
            "hang_s": SLOW_SHARD_HANG_S,
            "deadline_s": SLOW_SHARD_DEADLINE_S,
            "healthy_p50_ms": _quantile(healthy, 0.5) * 1e3,
            "healthy_p99_ms": _quantile(healthy, 0.99) * 1e3,
            "degraded_p50_ms": _quantile(degraded, 0.5) * 1e3,
            "degraded_p99_ms": _quantile(degraded, 0.99) * 1e3,
            "p99_bound_ms": SLOW_SHARD_P99_BOUND_S * 1e3,
            "p99_bounded": _quantile(degraded, 0.99)
            <= SLOW_SHARD_P99_BOUND_S,
            "deadline_timeouts": health["deadline_timeouts"],
            "degraded_reads": health["degraded_reads"],
            "victim_state": health["shards"][victim]["state"],
            "audit_gaps": len(cluster.cluster_gaps),
        }
    finally:
        cluster.close()


def _per_query_latencies(
    repeats: int, cluster: ClusterDatabase
) -> list[float]:
    samples: list[float] = []
    for _ in range(repeats):
        for _, sql in WORKLOAD:
            start = time.perf_counter()
            cluster.execute(sql)
            samples.append(time.perf_counter() - start)
    return samples


def _quantile(samples: list[float], q: float) -> float:
    ordered = sorted(samples)
    index = min(len(ordered) - 1, max(0, int(round(q * len(ordered))) - 1))
    return ordered[index]


def _best_of(repeats: int, cluster: ClusterDatabase) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        _run_workload(cluster)
        best = min(best, time.perf_counter() - start)
    return best


__all__ = [
    "AUDIT_NAME",
    "DEFAULT_REPEATS",
    "DEFAULT_SCALE_FACTOR",
    "IO_US_PER_ROW",
    "QUICK_REPEATS",
    "QUICK_SCALE_FACTOR",
    "QUICK_SHARD_COUNTS",
    "SHARD_COUNTS",
    "SLOW_SHARD_DEADLINE_S",
    "SLOW_SHARD_HANG_S",
    "SLOW_SHARD_P99_BOUND_S",
    "WORKLOAD",
    "cluster_benchmark",
]
