"""Columnar-execution benchmark: row vs batch vs columnar, armed/unarmed.

Times scan-heavy workloads through the three execution modes over the
same pre-compiled physical plan:

* ``row``      — the classic Volcano loop;
* ``batch``    — tuple batches with compiled predicate closures;
* ``columnar`` — :class:`~repro.exec.batch.ColumnBatch` pipelines where
  filters narrow a selection vector and a scan-fused audit operator
  probes the partition-by column in one bulk pass per block.

Every (query, armed/unarmed) cell is run in all three modes and the
results, ACCESSED sets, and audit probe counts are compared — any
divergence is an equivalence bug and flips ``artifacts_equal`` to False,
which the standalone script (and CI smoke) turns into a non-zero exit.
*Armed* cells instrument the query with leaf placement, the placement
that fuses the audit probe with the sensitive-table scan; *unarmed*
cells compile without instrumentation, isolating the executor's own
columnar win from the probe win.

Timings are best-of-N with modes interleaved per round and the GC
disabled, matching the harness conventions. The output is a
JSON-ready dict that ``benchmarks/bench_columnar.py`` serializes to
``benchmarks/results/BENCH_columnar.json``.
"""

from __future__ import annotations

import gc
import sys
import time
from typing import TYPE_CHECKING

from repro.audit.placement import HEURISTIC_LEAF
from repro.bench.harness import AUDIT_NAME
from repro.exec.batch import ColumnBatch
from repro.exec.operators.base import collect_rows

if TYPE_CHECKING:  # pragma: no cover - cycle guard
    from repro.bench.harness import BenchmarkFixture

DEFAULT_REPEATS = 7
QUICK_REPEATS = 3

#: ISSUE acceptance gate: the ≥2x columnar-vs-batch claim is only
#: meaningful once per-row Python overheads dominate, i.e. at scale
#: factors from here up (at toy scales fixed costs drown the signal)
SPEEDUP_GATE_SCALE_FACTOR = 0.05

MODES = ("row", "batch", "columnar")

#: scan-heavy statements over the sensitive table (customer): the armed
#: variants place the audit operator at the leaf, so the whole per-row
#: cost is scan + predicate + probe — exactly what columnar vectorizes
SCAN_HEAVY_QUERIES = {
    "full_scan": "SELECT c_custkey, c_acctbal FROM customer",
    "filter_scan": (
        "SELECT c_custkey, c_name, c_acctbal FROM customer "
        "WHERE c_acctbal > 9000.0"
    ),
    # no equality conjunct: an indexable '=' would compile to an
    # IndexSeek and the cell would stop measuring the scan at all
    "conjunct_scan": (
        "SELECT c_custkey FROM customer "
        "WHERE c_acctbal BETWEEN 0.0 AND 5000.0 "
        "AND c_mktsegment <> 'MACHINERY'"
    ),
}

#: rides along un-gated: exercises the columnar aggregate fast path but
#: is not scan-dominated, so it carries no speedup requirement
EXTRA_QUERIES = {
    "aggregate_scan": (
        "SELECT c_mktsegment, COUNT(*), SUM(c_acctbal) FROM customer "
        "GROUP BY c_mktsegment"
    ),
}


def _artifacts(database, physical) -> dict[str, dict]:
    """Result/ACCESSED/probe fingerprint of each mode, one plan."""
    out: dict[str, dict] = {}
    for mode in MODES:
        context = database.make_context()
        rows = collect_rows(physical, context, mode=mode)
        out[mode] = {
            "rows": rows,  # the full sequence — equality means identical
            "accessed": {
                name: sorted(ids)
                for name, ids in context.accessed.items()
            },
            "audit_probes": context.audit_probe_count,
            "audit_probes_by_name": dict(
                sorted(context.audit_probe_counts.items())
            ),
        }
    return out


def _time_modes(database, physical, repeats: int) -> dict[str, float]:
    """Best-of-N seconds per mode, interleaved round-robin."""

    def run(mode: str) -> None:
        context = database.make_context()
        collect_rows(physical, context, mode=mode)

    best = {mode: float("inf") for mode in MODES}
    was_enabled = gc.isenabled()
    try:
        for mode in MODES:  # warm-up
            run(mode)
        gc.disable()
        for __ in range(repeats):
            for mode in MODES:
                start = time.perf_counter()
                run(mode)
                elapsed = time.perf_counter() - start
                if elapsed < best[mode]:
                    best[mode] = elapsed
    finally:
        if was_enabled:
            gc.enable()
    return {f"{mode}_s": best[mode] for mode in MODES}


def _cell(fixture: "BenchmarkFixture", sql: str, armed: bool,
          repeats: int) -> dict:
    heuristic = HEURISTIC_LEAF if armed else None
    physical = fixture.compile_with_heuristic(sql, heuristic)
    database = fixture.database
    artifacts = _artifacts(database, physical)
    reference = artifacts["row"]
    entry = _time_modes(database, physical, repeats)
    entry["speedup_columnar_vs_row"] = _ratio(
        entry["row_s"], entry["columnar_s"]
    )
    entry["speedup_columnar_vs_batch"] = _ratio(
        entry["batch_s"], entry["columnar_s"]
    )
    entry["artifacts_equal"] = all(
        artifacts[mode] == reference for mode in MODES
    )
    entry["result_rows"] = len(reference["rows"])
    entry["audit_probes"] = reference["audit_probes"]
    entry["accessed_counts"] = {
        name: len(ids) for name, ids in reference["accessed"].items()
    }
    return entry


def _slots_note(iterations: int = 100_000) -> dict:
    """Micro-benchmark: what ``__slots__`` buys on the hot batch class.

    Compares :class:`ColumnBatch` construction against a shape-identical
    class that carries an instance ``__dict__``, and reports per-instance
    memory as measured by ``sys.getsizeof`` (object header plus the dict
    the slotted class never allocates).
    """

    class _DictBatch:  # ColumnBatch minus __slots__, for comparison
        def __init__(self, columns, length, selection=None):
            self.columns = columns
            self.length = length
            self.selection = selection

    columns = ((1, 2, 3, 4), ("a", "b", "c", "d"))

    def _time(factory) -> float:
        best = float("inf")
        for __ in range(5):
            start = time.perf_counter()
            for __ in range(iterations):
                factory(columns, 4, None)
            elapsed = time.perf_counter() - start
            if elapsed < best:
                best = elapsed
        return best

    was_enabled = gc.isenabled()
    try:
        gc.disable()
        slotted_s = _time(ColumnBatch)
        dict_s = _time(_DictBatch)
    finally:
        if was_enabled:
            gc.enable()
    slotted = ColumnBatch(columns, 4, None)
    plain = _DictBatch(columns, 4, None)
    slotted_bytes = sys.getsizeof(slotted)
    dict_bytes = sys.getsizeof(plain) + sys.getsizeof(plain.__dict__)
    return {
        "iterations": iterations,
        "slotted_alloc_ns": slotted_s / iterations * 1e9,
        "dict_alloc_ns": dict_s / iterations * 1e9,
        "alloc_speedup": _ratio(dict_s, slotted_s),
        "slotted_instance_bytes": slotted_bytes,
        "dict_instance_bytes": dict_bytes,
        "bytes_saved_per_instance": dict_bytes - slotted_bytes,
    }


def columnar_benchmark(
    fixture: "BenchmarkFixture", repeats: int = DEFAULT_REPEATS
) -> dict:
    """Run the three-mode × armed/unarmed grid; returns a JSON dict."""
    results: dict = {
        "benchmark": "columnar",
        "scale_factor": fixture.scale_factor,
        "repeats": repeats,
        "audit_expression": AUDIT_NAME,
        "armed_heuristic": HEURISTIC_LEAF,
        "scan_heavy": sorted(SCAN_HEAVY_QUERIES),
        "queries": {},
    }
    workloads = {**SCAN_HEAVY_QUERIES, **EXTRA_QUERIES}
    for name, sql in workloads.items():
        results["queries"][name] = {
            "sql": sql,
            "armed": _cell(fixture, sql, armed=True, repeats=repeats),
            "unarmed": _cell(fixture, sql, armed=False, repeats=repeats),
        }
    results["artifacts_equal_all"] = all(
        entry[cell]["artifacts_equal"]
        for entry in results["queries"].values()
        for cell in ("armed", "unarmed")
    )
    results["slots_microbenchmark"] = _slots_note()
    return results


def _ratio(numerator: float, denominator: float) -> float:
    if denominator <= 0:
        return 0.0
    return numerator / denominator


__all__ = [
    "columnar_benchmark",
    "DEFAULT_REPEATS",
    "QUICK_REPEATS",
    "SCAN_HEAVY_QUERIES",
    "SPEEDUP_GATE_SCALE_FACTOR",
]
